(* The multicore layer: domain-pool semantics, domain-safety of the
   shared engine state (budgets, caches), and the hard determinism
   requirement — every decider returns the same verdict, certificate and
   fuel consumption at any pool size. *)

module DG = Datagraph.Data_graph
module TR = Datagraph.Tuple_relation
module Gen = Datagraph.Graph_gen
module Budget = Engine.Budget
module Instance = Engine.Instance
module Outcome = Engine.Outcome
module Registry = Engine.Registry
module Pool = Par.Pool

let () = Definability.Deciders.init ()

let fig1 = Gen.fig1 ()
let s1 = Gen.fig1_s1 fig1
let s2 = Gen.fig1_s2 fig1
let s3 = Gen.fig1_s3 fig1
let all_langs = [ "krem"; "ree"; "rem"; "rpq"; "ucrdpq" ]
let pool_sizes = [ 1; 2; 4; 8 ]

(* A canonical string for everything the determinism contract covers —
   verdict, certificate, counterexample, reason, and the step count
   (fuel consumption must match too).  Wall time and decider extras are
   the documented carve-out. *)
let verdict_repr (o : Outcome.t) =
  let v =
    match o.verdict with
    | Outcome.Definable c ->
        Printf.sprintf "definable[%s:%s]"
          (Outcome.certificate_lang c)
          (Outcome.certificate_to_string c)
    | Outcome.Not_definable (Outcome.Missing_pairs ps) ->
        Printf.sprintf "not_definable[missing:%s]"
          (String.concat ";"
             (List.map (fun (u, v) -> Printf.sprintf "%d,%d" u v) ps))
    | Outcome.Not_definable (Outcome.Violating_hom { hom; tuple }) ->
        Printf.sprintf "not_definable[hom:%s|tuple:%s]"
          (String.concat ","
             (List.map string_of_int (Array.to_list hom)))
          (String.concat "," (List.map string_of_int tuple))
    | Outcome.Unknown r ->
        Printf.sprintf "unknown[%s]" (Outcome.reason_to_string r)
  in
  Printf.sprintf "%s steps=%d" v o.stats.steps

let decide ?budget ?(k = 1) lang g s =
  let inst = Instance.of_binary g s in
  match Registry.decide ?budget ~params:{ Registry.k } ~lang inst with
  | Ok o -> o
  | Error msg -> Alcotest.fail msg

let with_pool_size n f =
  let saved = Pool.size () in
  Pool.set_size n;
  Fun.protect ~finally:(fun () -> Pool.set_size saved) f

(* ---------- pool semantics ---------- *)

let test_pool_run_order () =
  with_pool_size 4 @@ fun () ->
  let thunks = Array.init 100 (fun i () -> i * i) in
  Alcotest.(check (array int))
    "results line up with input order"
    (Array.init 100 (fun i -> i * i))
    (Pool.run thunks)

let test_pool_map_chunking () =
  List.iter
    (fun size ->
      with_pool_size size @@ fun () ->
      let input = Array.init 1000 Fun.id in
      Alcotest.(check (array int))
        (Printf.sprintf "map at pool size %d" size)
        (Array.map (fun x -> x + 1) input)
        (Pool.map (fun x -> x + 1) input);
      Alcotest.(check (list int))
        (Printf.sprintf "map_list at pool size %d" size)
        [ 2; 4; 6 ]
        (Pool.map_list (fun x -> 2 * x) [ 1; 2; 3 ]))
    pool_sizes

let test_pool_exception () =
  with_pool_size 4 @@ fun () ->
  let boom i = Failure (Printf.sprintf "boom %d" i) in
  (match
     Pool.run
       (Array.init 16 (fun i () -> if i mod 5 = 2 then raise (boom i) else i))
   with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
      Alcotest.(check string) "lowest-index exception wins" "boom 2" msg);
  (* The pool survives a failed batch. *)
  Alcotest.(check (array int))
    "pool usable after exception" [| 0; 1; 2 |]
    (Pool.run (Array.init 3 (fun i () -> i)))

let test_pool_nesting () =
  with_pool_size 4 @@ fun () ->
  (* A task that itself maps over the pool: the inner batch must run
     inline (no deadlock, same results). *)
  let result =
    Pool.map
      (fun i ->
        Array.fold_left ( + ) 0 (Pool.map (fun j -> (i * 10) + j) (Array.init 4 Fun.id)))
      (Array.init 8 Fun.id)
  in
  Alcotest.(check (array int))
    "nested maps compute correctly"
    (Array.init 8 (fun i -> (4 * 10 * i) + 6))
    result

let test_pool_size_env () =
  Alcotest.(check bool) "size is at least 1" true (Pool.size () >= 1);
  with_pool_size 3 @@ fun () ->
  Alcotest.(check int) "set_size takes effect" 3 (Pool.size ())

(* ---------- work-stealing deque ---------- *)

module Deque = Par.Deque

let test_deque_lifo () =
  let q = Deque.create () in
  for i = 1 to 5 do
    Deque.push q i
  done;
  Alcotest.(check int) "length" 5 (Deque.length q);
  List.iter
    (fun expect ->
      Alcotest.(check (option int)) "owner pops LIFO" (Some expect) (Deque.pop q))
    [ 5; 4; 3; 2; 1 ];
  Alcotest.(check (option int)) "then empty" None (Deque.pop q);
  Alcotest.(check (option int)) "stays empty" None (Deque.pop q)

let steal_opt q =
  match Deque.steal q with `Stolen v -> Some v | `Empty | `Retry -> None

let test_deque_fifo_steals () =
  let q = Deque.create () in
  for i = 1 to 5 do
    Deque.push q i
  done;
  List.iter
    (fun expect ->
      Alcotest.(check (option int)) "thief steals FIFO" (Some expect)
        (steal_opt q))
    [ 1; 2; 3; 4; 5 ];
  (match Deque.steal q with
  | `Empty -> ()
  | `Stolen _ | `Retry -> Alcotest.fail "steal from empty must report `Empty");
  (* Opposite ends meet in the middle. *)
  for i = 1 to 6 do
    Deque.push q (10 + i)
  done;
  Alcotest.(check (option int)) "steal oldest" (Some 11) (steal_opt q);
  Alcotest.(check (option int)) "pop newest" (Some 16) (Deque.pop q);
  Alcotest.(check (option int)) "steal next" (Some 12) (steal_opt q);
  Alcotest.(check (option int)) "pop next" (Some 15) (Deque.pop q);
  Alcotest.(check int) "two left" 2 (Deque.length q)

let test_deque_growth () =
  (* Start at the minimum capacity and push far past it: growth must
     preserve order and lose nothing, from both ends. *)
  let q = Deque.create ~capacity:1 () in
  for i = 0 to 999 do
    Deque.push q i
  done;
  for i = 0 to 499 do
    Alcotest.(check (option int))
      (Printf.sprintf "steal %d after growth" i)
      (Some i) (steal_opt q)
  done;
  for i = 999 downto 500 do
    Alcotest.(check (option int))
      (Printf.sprintf "pop %d after growth" i)
      (Some i) (Deque.pop q)
  done;
  Alcotest.(check (option int)) "drained" None (Deque.pop q)

let test_deque_empty_races () =
  (* One owner domain pushes [n] values and pops aggressively; three
     thieves hammer [steal] the whole time, racing the owner for the
     last element over and over.  Every value must be delivered exactly
     once, across all participants. *)
  let n = 20_000 in
  let q = Deque.create ~capacity:2 () in
  let seen = Array.init n (fun _ -> Atomic.make 0) in
  let stop = Atomic.make false in
  let thieves =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let continue_ = ref true in
            while !continue_ do
              match Deque.steal q with
              | `Stolen v -> Atomic.incr seen.(v)
              | `Retry -> Domain.cpu_relax ()
              | `Empty ->
                  if Atomic.get stop then continue_ := false
                  else Domain.cpu_relax ()
            done))
  in
  for i = 0 to n - 1 do
    Deque.push q i;
    (* Pop in bursts so the owner keeps racing thieves at b = t. *)
    if i mod 3 = 0 then
      match Deque.pop q with Some v -> Atomic.incr seen.(v) | None -> ()
  done;
  let rec drain () =
    match Deque.pop q with
    | Some v ->
        Atomic.incr seen.(v);
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  Array.iteri
    (fun i c ->
      let c = Atomic.get c in
      if c <> 1 then
        Alcotest.failf "value %d delivered %d times (want exactly once)" i c)
    seen

(* ---------- steal-path determinism under skewed costs ---------- *)

(* A spin that the compiler cannot elide: data-dependent accumulator. *)
let burn units =
  let acc = ref 0 in
  for i = 1 to units * 64 do
    acc := (!acc * 31) + i
  done;
  !acc

(* Task sets with one pathologically heavy subtree: the heavy task pins
   whoever claims it while the others get stolen around it, maximally
   exercising uneven-split scheduling.  Results (and hence their order)
   must not depend on pool size or on the run. *)
let qcheck_skewed_tasks =
  QCheck.Test.make ~name:"skewed task sets: results independent of stealing"
    ~count:30
    QCheck.(
      pair (int_range 2 24) (int_range 0 1_000_000)
      (* (task count, seed); the heavy index is derived from the seed *))
    (fun (n, seed) ->
      let heavy = seed mod n in
      let task i () =
        let units = if i = heavy then 1000 else 1 in
        (i, burn units)
      in
      let reference = with_pool_size 1 (fun () -> Pool.run (Array.init n task)) in
      List.for_all
        (fun size ->
          List.for_all
            (fun _run ->
              with_pool_size size (fun () -> Pool.run (Array.init n task))
              = reference)
            [ 1; 2 ])
        [ 2; 4; 8 ])

let qcheck_skewed_deciders =
  (* Same adversarial shape at the decider level: random instances,
     verdict/certificate/fuel byte-identity across pool sizes 1/2/4/8
     and across repeated runs. *)
  QCheck.Test.make ~name:"random instances: verdict bytes independent of pool"
    ~count:8
    QCheck.(int_range 100 10_000)
    (fun seed ->
      let g =
        Gen.random ~seed ~n:4 ~delta:2 ~labels:[ "a"; "b" ] ~density:0.35 ()
      in
      let s = Gen.random_reachable_relation ~seed g ~count:2 in
      List.for_all
        (fun lang ->
          let reference =
            with_pool_size 1 (fun () -> verdict_repr (decide lang g s))
          in
          List.for_all
            (fun size ->
              List.for_all
                (fun _run ->
                  with_pool_size size (fun () ->
                      verdict_repr (decide lang g s))
                  = reference)
                [ 1; 2 ])
            pool_sizes)
        [ "krem"; "ree"; "rem" ])

(* ---------- submission path and nesting signals ---------- *)

let pool_stat key =
  match List.assoc_opt key (Pool.stats ()) with
  | Some v -> v
  | None -> Alcotest.failf "Pool.stats has no %S field" key

let test_in_pool () =
  Alcotest.(check bool) "not in pool on the main domain" false (Pool.in_pool ());
  with_pool_size 4 @@ fun () ->
  match Pool.submit [| (fun () -> Pool.in_pool ()) |] with
  | Ok [| inside |] ->
      Alcotest.(check bool) "submitted tasks run on pool workers" true inside;
      Alcotest.(check bool) "still not in pool after" false (Pool.in_pool ())
  | Ok _ | Error `Queue_full -> Alcotest.fail "submit of one task failed"

let test_submit_order_and_errors () =
  with_pool_size 4 @@ fun () ->
  (match Pool.submit (Array.init 50 (fun i () -> i * 3)) with
  | Ok r ->
      Alcotest.(check (array int))
        "submit returns results in input order"
        (Array.init 50 (fun i -> i * 3))
        r
  | Error `Queue_full -> Alcotest.fail "unexpected Queue_full");
  match
    Pool.submit
      (Array.init 16 (fun i () ->
           if i mod 7 = 3 then failwith (Printf.sprintf "sub %d" i) else i))
  with
  | Ok _ -> Alcotest.fail "expected an exception"
  | Error `Queue_full -> Alcotest.fail "unexpected Queue_full"
  | exception Failure msg ->
      Alcotest.(check string) "lowest-index exception wins" "sub 3" msg

let test_submit_queue_full () =
  with_pool_size 4 @@ fun () ->
  let saved = Pool.submission_bound () in
  Fun.protect ~finally:(fun () -> Pool.set_submission_bound saved) @@ fun () ->
  Pool.set_submission_bound 0;
  (match Pool.submit [| (fun () -> ()) |] with
  | Error `Queue_full -> ()
  | Ok _ -> Alcotest.fail "bound 0 must reject every submission");
  let rejected = pool_stat "submit_rejected" in
  Alcotest.(check bool) "rejection counted" true (rejected >= 1);
  Pool.set_submission_bound 32;
  match Pool.submit [| (fun () -> 41 + 1) |] with
  | Ok [| v |] -> Alcotest.(check int) "admitted again after raising bound" 42 v
  | Ok _ | Error `Queue_full -> Alcotest.fail "submit after restore failed"

let test_submit_counts_steals () =
  with_pool_size 4 @@ fun () ->
  let before = pool_stat "steal_success" in
  (match Pool.submit (Array.init 8 (fun i () -> burn (i + 1))) with
  | Ok _ -> ()
  | Error `Queue_full -> Alcotest.fail "unexpected Queue_full");
  let after = pool_stat "steal_success" in
  (* The submitter does not participate, so every one of the 8 tasks was
     necessarily a steal. *)
  Alcotest.(check bool)
    (Printf.sprintf "steal_success grew by >= 8 (before %d, after %d)" before
       after)
    true
    (after - before >= 8)

let test_nested_inline_counter () =
  with_pool_size 4 @@ fun () ->
  let before = pool_stat "nested_inline" in
  (match
     Pool.submit
       [|
         (fun () ->
           (* A nested batch from inside a pool task: must inline, and
              must say so. *)
           Array.fold_left ( + ) 0 (Pool.run (Array.init 5 (fun i () -> i))))
       |]
   with
  | Ok [| v |] -> Alcotest.(check int) "nested run computes" 10 v
  | Ok _ | Error `Queue_full -> Alcotest.fail "submit failed");
  let after = pool_stat "nested_inline" in
  Alcotest.(check bool)
    (Printf.sprintf "nested_inline grew (before %d, after %d)" before after)
    true (after > before)

let test_submit_size_one_inline () =
  with_pool_size 1 @@ fun () ->
  match Pool.submit [| (fun () -> Pool.in_pool ()) |] with
  | Ok [| inside |] ->
      Alcotest.(check bool) "size 1 runs submissions inline on the caller"
        false inside
  | Ok _ | Error `Queue_full -> Alcotest.fail "size-1 submit must not reject"

(* ---------- budget domain-safety ---------- *)

let test_budget_concurrent_takes () =
  let fuel = 10_000 in
  let b = Budget.create ~fuel () in
  let counts =
    Array.map Domain.join
      (Array.init 4 (fun _ ->
           Domain.spawn (fun () ->
               let n = ref 0 in
               while Budget.take b do
                 incr n
               done;
               !n)))
  in
  Alcotest.(check int)
    "successful takes across domains = fuel exactly" fuel
    (Array.fold_left ( + ) 0 counts);
  Alcotest.(check int) "used is exact after death" fuel (Budget.used b);
  Alcotest.(check bool) "exhausted and sticky" true (Budget.exhausted b);
  Alcotest.(check bool) "takes stay refused" false (Budget.take b)

let test_budget_local_views () =
  (* Unbounded fuel: local views claim chunks from the shared word and
     every take succeeds. *)
  let b = Budget.unlimited () in
  let totals =
    Array.map Domain.join
      (Array.init 4 (fun _ ->
           Domain.spawn (fun () ->
               let l = Budget.local b in
               let n = ref 0 in
               for _ = 1 to 1000 do
                 if Budget.take_local l then incr n
               done;
               !n)))
  in
  Alcotest.(check (array int))
    "all local takes succeed on an unlimited budget"
    [| 1000; 1000; 1000; 1000 |] totals;
  (* Finite fuel: the view degrades to plain take — exact accounting. *)
  let b = Budget.create ~fuel:100 () in
  let l = Budget.local b in
  let n = ref 0 in
  while Budget.take_local l do
    incr n
  done;
  Alcotest.(check int) "finite fuel stays exact through a view" 100 !n;
  Alcotest.(check int) "used matches" 100 (Budget.used b)

let test_budget_expired_deadline_local () =
  let b = Budget.create ~deadline_s:0. () in
  Unix.sleepf 0.002;
  let l = Budget.local b in
  Alcotest.(check bool)
    "expired deadline refuses the first local take" false
    (Budget.take_local l);
  Alcotest.(check bool) "budget is dead" true (Budget.exhausted b)

(* ---------- shared-cache hammer ---------- *)

let test_cache_hammer () =
  (* Four raw domains race the lazy per-graph caches (adjacency,
     reachability, Hom's CSP + root-domain caches) on the same graphs.
     Every domain must see the same answers; the caches must not tear. *)
  let graphs =
    List.map
      (fun seed ->
        let g =
          Gen.random ~seed ~n:5 ~delta:2 ~labels:[ "a"; "b" ] ~density:0.4 ()
        in
        (g, Gen.random_reachable_relation ~seed g ~count:2))
      [ 11; 12; 13 ]
  in
  let work () =
    List.map
      (fun (g, s) ->
        let reach = DG.reachability_matrix g in
        let reach_bits = ref 0 in
        for u = 0 to DG.size g - 1 do
          for v = 0 to DG.size g - 1 do
            if Util.Bitmatrix.get reach u v then incr reach_bits
          done
        done;
        let adj_bits = ref 0 in
        List.iteri
          (fun a _ ->
            let m = DG.adjacency_matrix g a in
            for u = 0 to DG.size g - 1 do
              for v = 0 to DG.size g - 1 do
                if Util.Bitmatrix.get m u v then incr adj_bits
              done
            done)
          (DG.alphabet g);
        let viol =
          Definability.Hom.search_violating g (TR.of_binary s)
        in
        ( !reach_bits,
          !adj_bits,
          match viol.Definability.Hom.result with
          | `Preserved -> "preserved"
          | `Violation (h, _) ->
              String.concat "," (List.map string_of_int (Array.to_list h))
          | `Budget_exhausted -> "exhausted" ))
      graphs
  in
  let expected = work () in
  let results =
    Array.map Domain.join
      (Array.init 4 (fun _ -> Domain.spawn work))
  in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d agrees with the sequential answer" i)
        true (r = expected))
    results

(* ---------- decider agreement across pool sizes ---------- *)

let random_instances =
  List.map
    (fun seed ->
      let g =
        Gen.random ~seed ~n:4 ~delta:2 ~labels:[ "a"; "b" ] ~density:0.35 ()
      in
      (g, Gen.random_reachable_relation ~seed g ~count:2))
    [ 1; 2; 3; 4; 5 ]

let test_decider_agreement () =
  let instances = (fig1, s1) :: (fig1, s2) :: (fig1, s3) :: random_instances in
  List.iter
    (fun lang ->
      List.iteri
        (fun idx (g, s) ->
          let reference =
            with_pool_size 1 @@ fun () -> verdict_repr (decide lang g s)
          in
          List.iter
            (fun size ->
              (* Twice per size: steal order varies between runs and must
                 not leak into the verdict. *)
              List.iter
                (fun run ->
                  let got =
                    with_pool_size size @@ fun () ->
                    verdict_repr (decide lang g s)
                  in
                  Alcotest.(check string)
                    (Printf.sprintf "%s instance %d at pool size %d, run %d"
                       lang idx size run)
                    reference got)
                [ 1; 2 ])
            pool_sizes)
        instances)
    all_langs

let test_exhaustion_determinism () =
  (* A fuel bound small enough to trip every decider: exhaustion must
     hit the same step at every pool size (finite fuel forces the
     sequential search order). *)
  List.iter
    (fun lang ->
      let reference =
        with_pool_size 1 @@ fun () ->
        verdict_repr (decide ~budget:(Budget.create ~fuel:3 ()) lang fig1 s2)
      in
      List.iter
        (fun size ->
          let got =
            with_pool_size size @@ fun () ->
            verdict_repr
              (decide ~budget:(Budget.create ~fuel:3 ()) lang fig1 s2)
          in
          Alcotest.(check string)
            (Printf.sprintf "%s exhaustion at pool size %d" lang size)
            reference got)
        pool_sizes)
    all_langs

(* ---------- decide_batch ---------- *)

let test_decide_batch_order_and_agreement () =
  with_pool_size 4 @@ fun () ->
  let cases = [ (fig1, s1); (fig1, s2); (fig1, s3) ] @ random_instances in
  let insts = List.map (fun (g, s) -> Instance.of_binary g s) cases in
  List.iter
    (fun lang ->
      let singles =
        List.map (fun (g, s) -> verdict_repr (decide lang g s)) cases
      in
      let batched =
        Registry.decide_batch ~params:{ Registry.k = 1 } ~lang insts
        |> List.map (function
             | Ok o -> verdict_repr o
             | Error msg -> Alcotest.fail msg)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "batch of %s agrees with decide, in order" lang)
        singles batched)
    all_langs

let test_decide_batch_duplicates () =
  with_pool_size 4 @@ fun () ->
  (* The same instance value decided many times concurrently: the memo
     cache inside the instance is raced, results must agree. *)
  let inst = Instance.of_binary fig1 s2 in
  let results =
    Registry.decide_batch ~lang:"rem" (List.init 8 (fun _ -> inst))
    |> List.map (function
         | Ok o -> verdict_repr o
         | Error msg -> Alcotest.fail msg)
  in
  match results with
  | [] -> Alcotest.fail "empty batch result"
  | r :: rest ->
      List.iteri
        (fun i r' ->
          Alcotest.(check string)
            (Printf.sprintf "duplicate %d agrees" (i + 1))
            r r')
        rest

let test_decide_batch_budgets () =
  with_pool_size 2 @@ fun () ->
  let inst = Instance.of_binary fig1 s2 in
  let results =
    Registry.decide_batch
      ~make_budget:(fun () -> Budget.create ~fuel:3 ())
      ~lang:"rem"
      (List.init 4 (fun _ -> inst))
  in
  List.iter
    (function
      | Ok (o : Outcome.t) ->
          Alcotest.(check string)
            "each instance gets its own fresh budget" "unknown"
            (Outcome.verdict_name o.verdict)
      | Error msg -> Alcotest.fail msg)
    results

let test_decide_batch_unknown_lang () =
  let inst = Instance.of_binary fig1 s1 in
  match Registry.decide_batch ~lang:"datalog" [ inst; inst ] with
  | [ Error a; Error b ] ->
      Alcotest.(check string) "same error per instance" a b
  | _ -> Alcotest.fail "expected one Error per instance"

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "run order" `Quick test_pool_run_order;
          Alcotest.test_case "map chunking" `Quick test_pool_map_chunking;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "nesting" `Quick test_pool_nesting;
          Alcotest.test_case "sizing" `Quick test_pool_size_env;
        ] );
      ( "deque",
        [
          Alcotest.test_case "owner ops are LIFO" `Quick test_deque_lifo;
          Alcotest.test_case "steals are FIFO" `Quick test_deque_fifo_steals;
          Alcotest.test_case "growth preserves order" `Quick test_deque_growth;
          Alcotest.test_case "empty races deliver exactly once" `Quick
            test_deque_empty_races;
        ] );
      ( "stealing",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_skewed_tasks; qcheck_skewed_deciders ] );
      ( "submit",
        [
          Alcotest.test_case "in_pool signal" `Quick test_in_pool;
          Alcotest.test_case "order and errors" `Quick
            test_submit_order_and_errors;
          Alcotest.test_case "bounded backlog" `Quick test_submit_queue_full;
          Alcotest.test_case "all submitted tasks are steals" `Quick
            test_submit_counts_steals;
          Alcotest.test_case "nested inline is counted" `Quick
            test_nested_inline_counter;
          Alcotest.test_case "size one runs inline" `Quick
            test_submit_size_one_inline;
        ] );
      ( "budget",
        [
          Alcotest.test_case "concurrent takes" `Quick
            test_budget_concurrent_takes;
          Alcotest.test_case "local views" `Quick test_budget_local_views;
          Alcotest.test_case "expired deadline via view" `Quick
            test_budget_expired_deadline_local;
        ] );
      ( "caches",
        [ Alcotest.test_case "4-domain hammer" `Quick test_cache_hammer ] );
      ( "determinism",
        [
          Alcotest.test_case "all deciders, pool sizes 1/2/4" `Quick
            test_decider_agreement;
          Alcotest.test_case "budget exhaustion" `Quick
            test_exhaustion_determinism;
        ] );
      ( "batch",
        [
          Alcotest.test_case "order and agreement" `Quick
            test_decide_batch_order_and_agreement;
          Alcotest.test_case "duplicate instances" `Quick
            test_decide_batch_duplicates;
          Alcotest.test_case "per-instance budgets" `Quick
            test_decide_batch_budgets;
          Alcotest.test_case "unknown language" `Quick
            test_decide_batch_unknown_lang;
        ] );
    ]
