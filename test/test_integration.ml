(* Integration properties across the whole stack, on random instances:

   - the expressivity hierarchy RPQ ⇒ REE ⇒ REM ⇒ UCRDPQ on definable
     relations (each definable relation stays definable one level up);
   - monotonicity of k-REM definability in k;
   - Lemma 23: unbounded REM definability = δ-register definability,
     checked as profile-automaton search vs full assignment-graph search;
   - the condition-alphabet ablation: single complete types vs all
     disjunctions of complete types give the same verdicts;
   - synthesized queries re-evaluate to the input relation;
   - query evaluation distributes as Lemma 29 predicts. *)

module Rel = Datagraph.Relation
module DG = Datagraph.Data_graph
module Gen = Datagraph.Graph_gen
module Rpq = Definability.Rpq_definability
module Remd = Definability.Rem_definability
module Reed = Definability.Ree_definability
module Ucd = Definability.Ucrdpq_definability

(* Boolean views over the raw searches (the deprecated [is_definable]
   wrappers were removed with the tiered-storage PR). *)
let ws_def (o : Definability.Witness_search.outcome) =
  match o.verdict with
  | Definability.Witness_search.Definable -> true
  | Definability.Witness_search.Not_definable _ -> false
  | Definability.Witness_search.Exhausted -> failwith "search truncated"

let rpq_def g s = ws_def (Rpq.search g s)
let rem_def g s = ws_def (Remd.search g s)
let krem_def g ~k s = ws_def (Remd.search_k g ~k s)

let ree_def g s =
  match Reed.verdict (Reed.search g s) with
  | Some b -> b
  | None -> failwith "REE closure truncated"

(* A pool of small random instances; graphs are kept tiny because the
   checkers are (correctly!) exponential. *)
let instances =
  List.concat_map
    (fun seed ->
      let g =
        Gen.random ~seed ~n:4 ~delta:2 ~labels:[ "a" ] ~density:0.4 ()
      in
      let g2 =
        Gen.random ~seed:(seed + 50) ~n:4 ~delta:3 ~labels:[ "a"; "b" ]
          ~density:0.3 ()
      in
      [
        (g, Gen.random_reachable_relation ~seed g ~count:2);
        (g2, Gen.random_reachable_relation ~seed g2 ~count:2);
      ])
    [ 1; 2; 3; 4; 5 ]

let test_hierarchy () =
  List.iteri
    (fun i (g, s) ->
      let name what = Printf.sprintf "instance %d: %s" i what in
      let rpq = rpq_def g s in
      let ree = ree_def g s in
      let rem = rem_def g s in
      let uc = Ucd.is_definable_binary g s in
      Alcotest.(check bool) (name "rpq->ree") true ((not rpq) || ree);
      Alcotest.(check bool) (name "ree->rem") true ((not ree) || rem);
      Alcotest.(check bool) (name "rem->ucrdpq") true ((not rem) || uc))
    instances

let test_k_monotone () =
  List.iteri
    (fun i (g, s) ->
      let d0 = krem_def g ~k:0 s in
      let d1 = krem_def g ~k:1 s in
      let d2 = krem_def g ~k:2 s in
      let name = Printf.sprintf "instance %d" i in
      Alcotest.(check bool) (name ^ " 0->1") true ((not d0) || d1);
      Alcotest.(check bool) (name ^ " 1->2") true ((not d1) || d2);
      (* k = 0 coincides with RPQ-definability. *)
      Alcotest.(check bool) (name ^ " k0=rpq") d0 (rpq_def g s))
    instances

let test_profile_vs_full_delta () =
  (* Lemma 23 / the profile-vs-full ablation. *)
  List.iteri
    (fun i (g, s) ->
      if DG.delta g <= 2 then
        Alcotest.(check bool)
          (Printf.sprintf "instance %d" i)
          (rem_def g s)
          (krem_def g ~k:(DG.delta g) s))
    instances

let test_condition_alphabet_ablation () =
  (* Searching with all disjunctions of complete types is equivalent to
     single complete types (see Assignment_graph). *)
  List.iteri
    (fun i (g, s) ->
      let verdict (o : Definability.Witness_search.outcome) =
        match o.verdict with
        | Definability.Witness_search.Definable -> Some true
        | Definability.Witness_search.Not_definable _ -> Some false
        | Definability.Witness_search.Exhausted -> None
      in
      let plain = verdict (Remd.search_k g ~k:1 s) in
      let full = verdict (Remd.search_k ~all_condition_sets:true g ~k:1 s) in
      Alcotest.(check bool) (Printf.sprintf "instance %d" i) true (plain = full))
    instances

let test_synthesis_verified () =
  List.iteri
    (fun i (g, s) ->
      let name what = Printf.sprintf "instance %d: %s" i what in
      (match Definability.Synthesis.rpq g s with
      | Some v -> Alcotest.(check bool) (name "rpq") true v.correct
      | None -> ());
      (match Definability.Synthesis.ree g s with
      | Some v -> Alcotest.(check bool) (name "ree") true v.correct
      | None -> ());
      (match Definability.Synthesis.rem g s with
      | Some v -> Alcotest.(check bool) (name "rem") true v.correct
      | None -> ());
      match Definability.Synthesis.rem_k g ~k:1 s with
      | Some v -> Alcotest.(check bool) (name "rem_k") true v.correct
      | None -> ())
    instances

let test_ucrdpq_canonical_queries () =
  (* For definable relations on tiny graphs, evaluate the canonical
     phi_G-based query and compare. *)
  List.iteri
    (fun i (g, s) ->
      if DG.size g <= 4 then
        let ts = Datagraph.Tuple_relation.of_binary s in
        if Ucd.is_definable g ts then
          match Ucd.defining_query g ts with
          | Some (_ :: _ as q) ->
              let r = Query_lang.Conjunctive.eval g q in
              Alcotest.(check bool)
                (Printf.sprintf "instance %d" i)
                true
                (Datagraph.Tuple_relation.equal r ts)
          | _ -> ())
    instances

let test_eval_consistency () =
  (* The same relation computed three ways: REE evaluation via register
     automata, via the term semantics, and via an equivalent REM. *)
  let term =
    Ree_lang.Ree_term.EqTest
      (Ree_lang.Ree_term.Concat
         (Ree_lang.Ree_term.Letter "a", Ree_lang.Ree_term.Letter "a"))
  in
  let ree = Ree_lang.Ree_term.to_ree term in
  List.iteri
    (fun i (g, _) ->
      let direct = Ree_lang.Ree_term.relation g term in
      let via_rem =
        Rem_lang.Register_automaton.eval_on_graph g
          (Rem_lang.Register_automaton.of_rem (Ree_lang.Ree.to_rem ree))
      in
      let via_query = Query_lang.Query.eval g (Query_lang.Query.Ree ree) in
      Alcotest.(check bool) (Printf.sprintf "instance %d a" i) true
        (Rel.equal direct via_rem);
      Alcotest.(check bool) (Printf.sprintf "instance %d b" i) true
        (Rel.equal direct via_query))
    instances

let test_witnesses_are_witnesses () =
  (* Every witness word reported by the RPQ checker genuinely witnesses
     its pair: it connects the pair and connects nothing outside S. *)
  List.iteri
    (fun i (g, s) ->
      let r = Rpq.search g s in
      List.iter
        (fun ((u, v), word) ->
          let e = Regexp.Regex.of_word word in
          let rel = Regexp.Nfa.eval_on_graph g (Regexp.Nfa.of_regex e) in
          Alcotest.(check bool)
            (Printf.sprintf "instance %d connects" i)
            true (Rel.mem rel u v);
          Alcotest.(check bool)
            (Printf.sprintf "instance %d no extraneous" i)
            true (Rel.subset rel s))
        r.witnesses)
    instances

let () =
  Alcotest.run "integration"
    [
      ( "hierarchy",
        [
          Alcotest.test_case "rpq->ree->rem->ucrdpq" `Slow test_hierarchy;
          Alcotest.test_case "k monotone" `Slow test_k_monotone;
          Alcotest.test_case "profile vs delta (Lemma 23)" `Slow
            test_profile_vs_full_delta;
          Alcotest.test_case "condition alphabet ablation" `Slow
            test_condition_alphabet_ablation;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "synthesized queries verify" `Slow
            test_synthesis_verified;
          Alcotest.test_case "canonical UCRDPQ queries" `Slow
            test_ucrdpq_canonical_queries;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "evaluation agreement" `Quick test_eval_consistency;
          Alcotest.test_case "witnesses verified" `Slow
            test_witnesses_are_witnesses;
        ] );
    ]
