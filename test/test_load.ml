(* The load generator: schedule synthesis must be a pure function of
   (seed, profile); the runner must execute it against a real server
   with a clean taxonomy; the clean-vs-chaos check must catch a wrong
   answer.  The e2e tests spawn an in-process [Service.Server] on a
   Unix socket — the same idiom as test_service. *)

module Workload = Load.Workload
module Runner = Load.Runner

let () = Definability.Deciders.init ()

let build_ok ~seed profile =
  match Workload.build ~seed profile with
  | Ok wl -> wl
  | Error e -> Alcotest.failf "build: %s" e

(* A small, cheap profile: enough entries and ops to exercise every op
   kind, nothing that takes more than milliseconds to decide. *)
let small_profile =
  {
    Workload.default_profile with
    Workload.requests = 60;
    mode = Workload.Closed 3;
    fuel = 1_000;
    deadline_s = Some 10.;
    families = [ ("random", 3); ("fig1", 1) ];
    size = 5;
    edits_per_entry = 4;
  }

(* ---------- schedule synthesis ---------- *)

let test_schedule_deterministic () =
  let a = build_ok ~seed:7 small_profile in
  let b = build_ok ~seed:7 small_profile in
  let c = build_ok ~seed:8 small_profile in
  Alcotest.(check string) "same seed, same schedule" a.Workload.schedule_crc
    b.Workload.schedule_crc;
  Alcotest.(check bool) "different seed, different schedule" true
    (a.Workload.schedule_crc <> c.Workload.schedule_crc);
  Alcotest.(check int) "one op per request slot" small_profile.Workload.requests
    (Array.length a.Workload.ops);
  Alcotest.(check int) "entry pool sized by families" 4
    (Array.length a.Workload.entries);
  (* Every op kind appears in a 60-op schedule with 6/1/3 weights. *)
  let d = ref 0 and b' = ref 0 and dl = ref 0 in
  Array.iter
    (function
      | Workload.Decide _ -> incr d
      | Workload.Batch _ -> incr b'
      | Workload.Delta _ -> incr dl)
    a.Workload.ops;
  Alcotest.(check bool)
    (Printf.sprintf "op mix covered (%d/%d/%d)" !d !b' !dl)
    true
    (!d > 0 && !b' > 0 && !dl > 0)

let test_families () =
  List.iter
    (fun fam ->
      let p =
        { small_profile with Workload.families = [ (fam, 2) ]; requests = 4 }
      in
      let wl = build_ok ~seed:3 p in
      Array.iter
        (fun e ->
          Alcotest.(check bool)
            (fam ^ " entry renders")
            true
            (String.length e.Workload.text > 0))
        wl.Workload.entries)
    [ "random"; "fig1"; "tiling"; "sat" ];
  (match
     Workload.build ~seed:0
       { small_profile with Workload.families = [ ("nope", 1) ] }
   with
  | Ok _ -> Alcotest.fail "unknown family accepted"
  | Error _ -> ());
  match Workload.build ~seed:0 { small_profile with Workload.ops = (0, 0, 0) } with
  | Ok _ -> Alcotest.fail "all-zero op weights accepted"
  | Error _ -> ()

let test_profile_parsing () =
  (match Workload.profile_of_string "{}" with
  | Ok p ->
      Alcotest.(check int) "defaults fill in"
        Workload.default_profile.Workload.requests p.Workload.requests
  | Error e -> Alcotest.fail e);
  (match
     Workload.profile_of_string
       {|{"requests":5,"mode":"open","rate":50,"max_outstanding":8,
          "popularity":"hot","hot_fraction":0.25,"hot_period":64,
          "families":{"fig1":2},"ops":{"decide":1,"batch":0,"delta":0}}|}
   with
  | Ok p ->
      Alcotest.(check int) "requests" 5 p.Workload.requests;
      (match p.Workload.mode with
      | Workload.Open { rate; max_outstanding } ->
          Alcotest.(check (float 0.001)) "rate" 50. rate;
          Alcotest.(check int) "outstanding" 8 max_outstanding
      | _ -> Alcotest.fail "mode not open");
      (match p.Workload.popularity with
      | Workload.Hot { fraction; period } ->
          Alcotest.(check (float 0.001)) "fraction" 0.25 fraction;
          Alcotest.(check int) "period" 64 period
      | _ -> Alcotest.fail "popularity not hot")
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s ->
      match Workload.profile_of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "nonsense"; {|{"mode":"sometimes"}|}; {|{"requests":"many"}|} ]

(* ---------- runner end to end ---------- *)

let with_server f =
  let path = Filename.temp_file "loadsvc" ".sock" in
  let addr = Service.Wire.Unix_sock path in
  let srv = Service.Server.create ~config:Service.Server.default_config addr in
  let th = Thread.create Service.Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      Service.Server.shutdown srv;
      Thread.join th)
    (fun () -> f addr)

let run_ok ~seed addr wl =
  match Runner.run ~seed ~addr wl with
  | Ok r -> r
  | Error e -> Alcotest.failf "run: %s" e

let test_runner_clean () =
  with_server (fun addr ->
      let wl = build_ok ~seed:11 small_profile in
      let r = run_ok ~seed:11 addr wl in
      Alcotest.(check string) "report carries the schedule crc"
        wl.Workload.schedule_crc r.Runner.schedule_crc;
      Alcotest.(check (list string)) "no disallowed events" []
        r.Runner.disallowed;
      Alcotest.(check bool) "answers recorded" true (r.Runner.ok > 0);
      Alcotest.(check bool) "verdict map populated" true
        (List.length r.Runner.verdicts > 0);
      Alcotest.(check bool) "latencies recorded" true
        (List.exists
           (fun (_, (count, _, _, _)) -> count > 0)
           r.Runner.latency_us);
      (* A clean run against itself satisfies the invariant. *)
      match Runner.check ~clean:r ~chaos:r with
      | Ok n -> Alcotest.(check bool) "digests compared" true (n > 0)
      | Error vs -> Alcotest.failf "violations: %s" (String.concat "; " (List.map (fun v -> v) vs)))

let test_runner_replay_verdicts_agree () =
  (* Two runs of the same seed must produce byte-identical verdicts for
     every shared digest — the foundation of the chaos harness. *)
  with_server (fun addr ->
      let wl = build_ok ~seed:19 small_profile in
      let r1 = run_ok ~seed:19 addr wl in
      let r2 = run_ok ~seed:19 addr wl in
      match Runner.check ~clean:r1 ~chaos:r2 with
      | Ok _ -> ()
      | Error vs -> Alcotest.failf "violations: %s" (String.concat "; " vs))

let test_report_roundtrip () =
  with_server (fun addr ->
      let wl =
        build_ok ~seed:5 { small_profile with Workload.requests = 20 }
      in
      let r = run_ok ~seed:5 addr wl in
      match Runner.report_of_string (Runner.report_to_string r) with
      | Error e -> Alcotest.fail e
      | Ok r' ->
          Alcotest.(check string) "crc" r.Runner.schedule_crc r'.Runner.schedule_crc;
          Alcotest.(check int) "requests" r.Runner.requests r'.Runner.requests;
          Alcotest.(check int) "ok" r.Runner.ok r'.Runner.ok;
          Alcotest.(check bool) "verdicts survive" true
            (r.Runner.verdicts = r'.Runner.verdicts);
          Alcotest.(check bool) "errors survive" true
            (r.Runner.errors = r'.Runner.errors))

let test_check_catches_wrong_answer () =
  with_server (fun addr ->
      let wl =
        build_ok ~seed:23 { small_profile with Workload.requests = 20 }
      in
      let clean = run_ok ~seed:23 addr wl in
      (match clean.Runner.verdicts with
      | [] -> Alcotest.fail "no verdicts to corrupt"
      | (digest, verdict) :: rest ->
          let forged =
            { clean with Runner.verdicts = (digest, verdict ^ "X") :: rest }
          in
          (match Runner.check ~clean ~chaos:forged with
          | Ok _ -> Alcotest.fail "byte-different verdict passed the check"
          | Error _ -> ()));
      (* A disallowed event is a violation even with equal verdicts. *)
      let noisy = { clean with Runner.disallowed = [ "worker exception: X" ] } in
      (match Runner.check ~clean ~chaos:noisy with
      | Ok _ -> Alcotest.fail "disallowed event passed the check"
      | Error _ -> ());
      (* Reports from different schedules refuse to compare. *)
      let other = { clean with Runner.schedule_crc = "00000000" } in
      match Runner.check ~clean ~chaos:other with
      | Ok _ -> Alcotest.fail "schedule mismatch passed the check"
      | Error _ -> ())

let () =
  Alcotest.run "load"
    [
      ( "workload",
        [
          Alcotest.test_case "deterministic schedule" `Quick
            test_schedule_deterministic;
          Alcotest.test_case "families" `Quick test_families;
          Alcotest.test_case "profile parsing" `Quick test_profile_parsing;
        ] );
      ( "runner",
        [
          Alcotest.test_case "clean run" `Quick test_runner_clean;
          Alcotest.test_case "replay verdicts agree" `Quick
            test_runner_replay_verdicts_agree;
          Alcotest.test_case "report roundtrip" `Quick test_report_roundtrip;
          Alcotest.test_case "check catches wrong answers" `Quick
            test_check_catches_wrong_answer;
        ] );
    ]
