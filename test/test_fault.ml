(* The fault plane: trigger schedules, the failpoint registry, the
   store corruption sites end to end, and the chaos proxy as a real
   socket-level man in the middle.  Everything here must be
   deterministic from seeds — a failing chaos run is only useful if it
   replays. *)

let trigger_of s =
  match Fault.Trigger.of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "trigger %S: %s" s e

(* ---------- triggers ---------- *)

let test_trigger_parse () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check string) s expect (Fault.Trigger.to_string (trigger_of s)))
    [ ("once", "once"); ("after:7", "after:7"); ("1-in:50", "1-in:50") ];
  List.iter
    (fun s ->
      match Fault.Trigger.of_string s with
      | Ok _ -> Alcotest.failf "accepted bad trigger %S" s
      | Error _ -> ())
    [ ""; "always"; "after:"; "after:-1"; "1-in:0"; "1-in:x" ]

let test_trigger_semantics () =
  let fires t salt n =
    List.filter (Fault.Trigger.hits t ~salt) (List.init n Fun.id)
  in
  Alcotest.(check (list int)) "once = call 0" [ 0 ] (fires Fault.Trigger.Once 1 10);
  Alcotest.(check (list int))
    "after:3 = call 3 only" [ 3 ]
    (fires (Fault.Trigger.After 3) 1 10);
  Alcotest.(check (list int)) "1-in:1 = every call" (List.init 10 Fun.id)
    (fires (Fault.Trigger.One_in 1) 1 10);
  (* 1-in:8 over 4000 calls: deterministic per salt, roughly 1/8, and a
     different salt gives a different schedule. *)
  let a = fires (Fault.Trigger.One_in 8) 17 4000 in
  let b = fires (Fault.Trigger.One_in 8) 17 4000 in
  let c = fires (Fault.Trigger.One_in 8) 18 4000 in
  Alcotest.(check (list int)) "deterministic per salt" a b;
  Alcotest.(check bool) "salt changes the schedule" true (a <> c);
  let n = List.length a in
  Alcotest.(check bool)
    (Printf.sprintf "rate plausible (%d/4000)" n)
    true
    (n > 4000 / 16 && n < 4000 / 4)

(* ---------- failpoint registry ---------- *)

let test_failpoint_spec () =
  (match Fault.Failpoint.parse "a=once, b.c=1-in:9,d=after:2" with
  | Ok [ ("a", _); ("b.c", _); ("d", _) ] -> ()
  | Ok _ -> Alcotest.fail "wrong sites"
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "empty spec = empty list" true
    (Fault.Failpoint.parse "" = Ok []);
  List.iter
    (fun s ->
      match Fault.Failpoint.parse s with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" s
      | Error _ -> ())
    [ "a"; "=once"; "a=nope" ]

let test_failpoint_fire () =
  Fun.protect ~finally:Fault.Failpoint.disarm (fun () ->
      Alcotest.(check bool) "unarmed never fires" false
        (Fault.Failpoint.fire "x");
      (match Fault.Failpoint.arm ~seed:3 "x=after:1" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "armed" true (Fault.Failpoint.armed ());
      let a = Fault.Failpoint.fire "x" in
      let b = Fault.Failpoint.fire "x" in
      let c = Fault.Failpoint.fire "x" in
      Alcotest.(check (list bool))
        "after:1 fires on the second call only" [ false; true; false ]
        [ a; b; c ];
      Alcotest.(check bool) "unknown site never fires" false
        (Fault.Failpoint.fire "y");
      (match Fault.Failpoint.stats () with
      | [ ("x", 3, 1) ] -> ()
      | l ->
          Alcotest.failf "stats: %s"
            (String.concat ";"
               (List.map (fun (n, c, f) -> Printf.sprintf "%s/%d/%d" n c f) l)));
      (match Fault.Failpoint.arm "" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "empty spec disarms" false (Fault.Failpoint.armed ()))

(* ---------- store corruption end to end ---------- *)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let test_store_corrupt_recovery () =
  let dir = temp_dir "faultlog" in
  Fun.protect ~finally:Fault.Failpoint.disarm (fun () ->
      (match Fault.Failpoint.arm ~seed:11 "store.append.corrupt=after:1" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let s = Store.Log.open_ ~fsync:Store.Log.Always dir in
      Store.Log.put s "good" "kept";
      Store.Log.put s "bad" "corrupted-on-disk";
      Store.Log.put s "after" "behind the torn frame";
      Store.Log.close s;
      Fault.Failpoint.disarm ();
      (* Recovery stops at the first bad frame and truncates: the record
         before the corruption survives, everything at and after it is
         gone — but never served corrupt. *)
      let s = Store.Log.open_ dir in
      Alcotest.(check (option string)) "prefix survives" (Some "kept")
        (Store.Log.find s "good");
      Alcotest.(check (option string)) "corrupt record dropped" None
        (Store.Log.find s "bad");
      Alcotest.(check (option string)) "suffix unreachable" None
        (Store.Log.find s "after");
      let truncated =
        List.assoc "recovery_truncated_bytes" (Store.Log.stats s)
      in
      Alcotest.(check bool) "truncation counted" true (truncated > 0);
      (* The store is writable again after recovery. *)
      Store.Log.put s "bad" "recomputed";
      Alcotest.(check (option string)) "recompute lands" (Some "recomputed")
        (Store.Log.find s "bad");
      Store.Log.close s)

let test_store_fsync_skip () =
  let dir = temp_dir "faultsync" in
  Fun.protect ~finally:Fault.Failpoint.disarm (fun () ->
      (match Fault.Failpoint.arm "store.fsync.skip=once" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let s = Store.Log.open_ ~fsync:Store.Log.Always dir in
      Store.Log.put s "k1" "v1";
      Store.Log.put s "k2" "v2";
      (match Fault.Failpoint.stats () with
      | [ ("store.fsync.skip", calls, 1) ] when calls >= 2 -> ()
      | l ->
          Alcotest.failf "stats: %s"
            (String.concat ";"
               (List.map (fun (n, c, f) -> Printf.sprintf "%s/%d/%d" n c f) l)));
      (* The lying disk is only observable across a crash; in-process the
         data is intact. *)
      Alcotest.(check (option string)) "data intact" (Some "v1")
        (Store.Log.find s "k1");
      Store.Log.close s)

(* ---------- chaos proxy ---------- *)

let test_proxy_rules_roundtrip () =
  let spec = "delay-ms:50@1-in:20,reset@once,truncate@after:3,corrupt@1-in:61" in
  (match Fault.Proxy.rules_of_string spec with
  | Ok rules ->
      Alcotest.(check string) "roundtrip" spec (Fault.Proxy.rules_to_string rules)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s ->
      match Fault.Proxy.rules_of_string s with
      | Ok _ -> Alcotest.failf "accepted bad rules %S" s
      | Error _ -> ())
    [ "reset"; "nuke@once"; "delay-ms:x@once"; "corrupt@sometimes" ]

(* A line-echo upstream: accepts connections and echoes every line
   back, so what the client receives is exactly what survived both
   proxy directions. *)
let with_echo_upstream f =
  let path = Filename.temp_file "faultecho" ".sock" in
  Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  let stop = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        try
          while not (Atomic.get stop) do
            let c, _ = Unix.accept fd in
            ignore
              (Thread.create
                 (fun () ->
                   let ic = Unix.in_channel_of_descr c in
                   let oc = Unix.out_channel_of_descr c in
                   try
                     while true do
                       let l = input_line ic in
                       output_string oc l;
                       output_char oc '\n';
                       flush oc
                     done
                   with _ -> ( try Unix.close c with _ -> ()))
                 ())
          done
        with _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
      (try Unix.close fd with _ -> ());
      Thread.join th;
      try Sys.remove path with _ -> ())
    (fun () -> f (Unix.ADDR_UNIX path))

let with_proxy ?seed upstream rules f =
  let path = Filename.temp_file "faultproxy" ".sock" in
  Sys.remove path;
  let listen = Unix.ADDR_UNIX path in
  let p = Fault.Proxy.create ?seed ~listen ~upstream rules in
  let th = Thread.create Fault.Proxy.run p in
  Fun.protect
    ~finally:(fun () ->
      Fault.Proxy.shutdown p;
      Thread.join th;
      try Sys.remove path with _ -> ())
    (fun () -> f listen p)

let dial addr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send_line oc l =
  output_string oc l;
  output_char oc '\n';
  flush oc

let test_proxy_transparent () =
  with_echo_upstream (fun upstream ->
      with_proxy upstream [] (fun listen p ->
          let fd, ic, oc = dial listen in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              for i = 1 to 20 do
                let l = Printf.sprintf "{\"n\":%d,\"pad\":\"abcdef\"}" i in
                send_line oc l;
                Alcotest.(check string) "echoed verbatim" l (input_line ic)
              done;
              let s = Fault.Proxy.stats p in
              Alcotest.(check int) "20 lines up" 20 (List.assoc "lines_up" s);
              Alcotest.(check int) "nothing corrupted" 0
                (List.assoc "corrupted" s))))

let test_proxy_corrupt () =
  with_echo_upstream (fun upstream ->
      let rules =
        match Fault.Proxy.rules_of_string "corrupt@1-in:1" with
        | Ok r -> r
        | Error e -> Alcotest.fail e
      in
      with_proxy ~seed:5 upstream rules (fun listen p ->
          let fd, ic, oc = dial listen in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              let l = "{\"op\":\"ping\",\"payload\":\"0123456789abcdef\"}" in
              send_line oc l;
              let back = input_line ic in
              Alcotest.(check int) "length preserved" (String.length l)
                (String.length back);
              Alcotest.(check bool) "bytes flipped" true (back <> l);
              Alcotest.(check bool) "corruption counted" true
                (List.assoc "corrupted" (Fault.Proxy.stats p) > 0))))

let test_proxy_reset () =
  with_echo_upstream (fun upstream ->
      let rules =
        match Fault.Proxy.rules_of_string "reset@once" with
        | Ok r -> r
        | Error e -> Alcotest.fail e
      in
      with_proxy upstream rules (fun listen p ->
          let fd, ic, oc = dial listen in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              send_line oc "{\"op\":\"ping\"}";
              (match input_line ic with
              | exception End_of_file -> ()
              | exception Sys_error _ -> ()
              | l -> Alcotest.failf "line after reset: %S" l);
              Alcotest.(check int) "reset counted" 1
                (List.assoc "reset" (Fault.Proxy.stats p)))))

let test_proxy_determinism () =
  (* The same seed must corrupt the same byte positions: run the same
     3-line exchange twice and compare what comes back. *)
  let run () =
    with_echo_upstream (fun upstream ->
        let rules =
          match Fault.Proxy.rules_of_string "corrupt@1-in:2" with
          | Ok r -> r
          | Error e -> Alcotest.fail e
        in
        with_proxy ~seed:42 upstream rules (fun listen _p ->
            let fd, ic, oc = dial listen in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with _ -> ())
              (fun () ->
                List.map
                  (fun i ->
                    send_line oc (Printf.sprintf "{\"n\":%d,\"pad\":\"xyzw\"}" i);
                    input_line ic)
                  [ 1; 2; 3 ])))
  in
  Alcotest.(check (list string)) "same seed, same damage" (run ()) (run ())

let () =
  Alcotest.run "fault"
    [
      ( "trigger",
        [
          Alcotest.test_case "parse" `Quick test_trigger_parse;
          Alcotest.test_case "semantics" `Quick test_trigger_semantics;
        ] );
      ( "failpoint",
        [
          Alcotest.test_case "spec" `Quick test_failpoint_spec;
          Alcotest.test_case "fire/stats" `Quick test_failpoint_fire;
          Alcotest.test_case "store corrupt recovery" `Quick
            test_store_corrupt_recovery;
          Alcotest.test_case "store fsync skip" `Quick test_store_fsync_skip;
        ] );
      ( "proxy",
        [
          Alcotest.test_case "rules roundtrip" `Quick test_proxy_rules_roundtrip;
          Alcotest.test_case "transparent" `Quick test_proxy_transparent;
          Alcotest.test_case "corrupt" `Quick test_proxy_corrupt;
          Alcotest.test_case "reset" `Quick test_proxy_reset;
          Alcotest.test_case "determinism" `Quick test_proxy_determinism;
        ] );
    ]
