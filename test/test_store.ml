(* The durable store: CRC framing, put/remove/overwrite semantics,
   snapshot + compaction, the fsync policy syntax, recovery across
   reopen, the check callback, and — the property that matters — that a
   log truncated or corrupted at an arbitrary byte offset recovers
   exactly a prefix of the valid records: no crash, no wrong value. *)

module Log = Store.Log

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "defstore-%d-%d" (Unix.getpid ()) !counter)
    in
    (* Leftovers from a previous crashed run would corrupt the test. *)
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir
    end;
    dir

let with_store ?fsync ?auto_compact_bytes ?check dir f =
  let t = Log.open_ ?fsync ?auto_compact_bytes ?check dir in
  Fun.protect ~finally:(fun () -> Log.close t) (fun () -> f t)

let stat t name =
  match List.assoc_opt name (Log.stats t) with
  | Some v -> v
  | None -> Alcotest.failf "stat %s missing" name

let test_crc32 () =
  (* The standard check value for CRC-32/IEEE. *)
  Alcotest.(check int) "123456789" 0xCBF43926
    (Store.Crc32.digest_string "123456789");
  Alcotest.(check int) "empty" 0 (Store.Crc32.digest_string "");
  Alcotest.(check int) "sub = whole"
    (Store.Crc32.digest_string "456")
    (Store.Crc32.digest_sub "123456789" 3 3)

let test_basic_ops () =
  let dir = fresh_dir () in
  with_store dir (fun t ->
      Alcotest.(check (option string)) "miss" None (Log.find t "a");
      Log.put t "a" "1";
      Log.put t "b" "2";
      Alcotest.(check (option string)) "a" (Some "1") (Log.find t "a");
      Alcotest.(check (option string)) "b" (Some "2") (Log.find t "b");
      Log.put t "a" "1'";
      Alcotest.(check (option string)) "overwrite" (Some "1'") (Log.find t "a");
      Log.remove t "b";
      Alcotest.(check (option string)) "removed" None (Log.find t "b");
      Alcotest.(check bool) "mem" true (Log.mem t "a");
      Alcotest.(check int) "length" 1 (Log.length t);
      let seen = ref [] in
      Log.iter t (fun k v -> seen := (k, v) :: !seen);
      Alcotest.(check (list (pair string string))) "iter" [ ("a", "1'") ] !seen)

let test_reopen_recovers () =
  let dir = fresh_dir () in
  with_store dir (fun t ->
      Log.put t "x" (String.make 1000 'x');
      Log.put t "y" "why";
      Log.remove t "x");
  with_store dir (fun t ->
      Alcotest.(check (option string)) "y survives" (Some "why")
        (Log.find t "y");
      Alcotest.(check (option string)) "x stays deleted" None (Log.find t "x");
      Alcotest.(check int) "one live key recovered" 1
        (stat t "recovered_records");
      Alcotest.(check int) "nothing truncated" 0
        (stat t "recovery_truncated_bytes"))

let test_compaction () =
  let dir = fresh_dir () in
  with_store dir (fun t ->
      for i = 0 to 99 do
        Log.put t "k" (string_of_int i)
      done;
      Log.put t "other" "o";
      Log.remove t "other";
      let before = Log.disk_bytes t in
      Log.compact t;
      let after = Log.disk_bytes t in
      Alcotest.(check bool) "compaction reclaims dead records" true
        (after < before);
      Alcotest.(check int) "log emptied" 0 (stat t "log_bytes");
      Alcotest.(check (option string)) "live key survives" (Some "99")
        (Log.find t "k");
      (* Appends after compaction land in the (new, empty) log. *)
      Log.put t "post" "p";
      Alcotest.(check (option string)) "post-compaction put" (Some "p")
        (Log.find t "post"));
  with_store dir (fun t ->
      Alcotest.(check (option string)) "snapshot key after reopen" (Some "99")
        (Log.find t "k");
      Alcotest.(check (option string)) "log key after reopen" (Some "p")
        (Log.find t "post"))

let test_auto_compaction () =
  let dir = fresh_dir () in
  with_store ~auto_compact_bytes:512 dir (fun t ->
      for i = 0 to 99 do
        Log.put t "k" (Printf.sprintf "%032d" i)
      done;
      Alcotest.(check bool) "auto-compaction ran" true
        (stat t "compactions" > 0);
      Alcotest.(check (option string)) "value intact" (Some (Printf.sprintf "%032d" 99))
        (Log.find t "k"))

let test_fsync_policy_syntax () =
  List.iter
    (fun (s, p) ->
      Alcotest.(check bool) s true (Log.fsync_policy_of_string s = Ok p);
      Alcotest.(check string) "round-trip" s (Log.fsync_policy_to_string p))
    [ ("never", Log.Never); ("always", Log.Always); ("every:7", Log.Every 7) ];
  List.iter
    (fun s ->
      match Log.fsync_policy_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ ""; "every"; "every:"; "every:0"; "every:x"; "sometimes" ]

let test_check_drops_bad_records () =
  let dir = fresh_dir () in
  with_store dir (fun t ->
      Log.put t "good" "valid";
      Log.put t "bad" "poison");
  (* Reopen with a check that rejects the poisoned value: the record is
     dropped as if deleted, the rest load normally. *)
  with_store ~check:(fun ~key:_ v -> v <> "poison") dir (fun t ->
      Alcotest.(check (option string)) "good survives" (Some "valid")
        (Log.find t "good");
      Alcotest.(check (option string)) "bad dropped" None (Log.find t "bad");
      Alcotest.(check int) "drop counted" 1 (stat t "recovery_dropped_check"))

(* ---------- recovery under corruption (QCheck) ---------- *)

(* Write [n] records with deterministic contents, then flip one byte (or
   truncate) at an arbitrary offset of log.bin.  Recovery must yield
   exactly a prefix of the records (later puts of the same key winning),
   and never a value that was not written. *)

let record_key i = Printf.sprintf "key-%d" (i mod 7)
let record_value i = Printf.sprintf "value-%d-%s" i (String.make (i mod 13) 'v')

let write_records dir n =
  with_store ~fsync:Log.Never dir (fun t ->
      for i = 0 to n - 1 do
        Log.put t (record_key i) (record_value i)
      done)

(* The live map after the first [p] records. *)
let expected_prefix p =
  let tbl = Hashtbl.create 7 in
  for i = 0 to p - 1 do
    Hashtbl.replace tbl (record_key i) (record_value i)
  done;
  tbl

let recovered_is_valid_prefix ~n t =
  (* Find the longest prefix consistent with what the store serves. *)
  let serves p =
    let want = expected_prefix p in
    Log.length t = Hashtbl.length want
    && Hashtbl.fold
         (fun k v ok -> ok && Log.find t k = Some v)
         want true
  in
  let rec scan p = p >= 0 && (serves p || scan (p - 1)) in
  scan n

let corruption_case =
  (* (record count, corruption offset seed, flip-vs-truncate) *)
  QCheck.triple (QCheck.int_range 1 40) QCheck.small_nat QCheck.bool

let test_corrupted_log_recovers_prefix =
  QCheck.Test.make ~name:"corrupted log recovers a valid prefix" ~count:150
    corruption_case (fun (n, off_seed, truncate) ->
      let dir = fresh_dir () in
      write_records dir n;
      let log = Filename.concat dir "log.bin" in
      let size = (Unix.stat log).Unix.st_size in
      QCheck.assume (size > 0);
      let off = off_seed mod size in
      (if truncate then Unix.truncate log off
       else
         let fd = Unix.openfile log [ Unix.O_RDWR ] 0 in
         Fun.protect
           ~finally:(fun () -> Unix.close fd)
           (fun () ->
             ignore (Unix.lseek fd off Unix.SEEK_SET);
             let b = Bytes.create 1 in
             ignore (Unix.read fd b 0 1);
             Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
             ignore (Unix.lseek fd off Unix.SEEK_SET);
             ignore (Unix.write fd b 0 1)));
      with_store dir (fun t -> recovered_is_valid_prefix ~n t))

let test_double_corruption_reopen =
  (* After recovery truncates, a second open must be clean: recovery is
     idempotent and the truncated log reloads without further loss. *)
  QCheck.Test.make ~name:"recovery is idempotent" ~count:50
    (QCheck.pair (QCheck.int_range 1 30) QCheck.small_nat)
    (fun (n, off_seed) ->
      let dir = fresh_dir () in
      write_records dir n;
      let log = Filename.concat dir "log.bin" in
      let size = (Unix.stat log).Unix.st_size in
      QCheck.assume (size > 0);
      Unix.truncate log (off_seed mod size);
      let first =
        with_store dir (fun t ->
            (Log.length t, List.sort compare (Log.stats t) |> List.length))
      in
      ignore first;
      let bindings t =
        let l = ref [] in
        Log.iter t (fun k v -> l := (k, v) :: !l);
        List.sort compare !l
      in
      let b1 = with_store dir bindings in
      let b2 = with_store dir (fun t ->
          let b = bindings t in
          (b, stat t "recovery_truncated_bytes"))
      in
      b1 = fst b2 && snd b2 = 0)

let () =
  Alcotest.run "store"
    [
      ( "log",
        [
          ("crc32 check values", `Quick, test_crc32);
          ("basic ops", `Quick, test_basic_ops);
          ("reopen recovers", `Quick, test_reopen_recovers);
          ("compaction", `Quick, test_compaction);
          ("auto compaction", `Quick, test_auto_compaction);
          ("fsync policy syntax", `Quick, test_fsync_policy_syntax);
          ("check drops bad records", `Quick, test_check_drops_bad_records);
        ] );
      ( "recovery",
        List.map QCheck_alcotest.to_alcotest
          [ test_corrupted_log_recovers_prefix; test_double_corruption_reopen ]
      );
    ]
