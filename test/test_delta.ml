(* The incremental engine: structural edits on packed graphs, the
   certificate-repair fast path, and — the load-bearing part — a
   differential fuzz that replays random edit traces and checks
   [decide_delta] against a cold decide of the edited instance at
   every single step.  [Data_graph.audit_edits] is switched on for the
   whole file, so every patched adjacency/reachability matrix is also
   compared byte-for-byte against a scratch rebuild. *)

module Rel = Datagraph.Relation
module DG = Datagraph.Data_graph
module TR = Datagraph.Tuple_relation
module Gen = Datagraph.Graph_gen
module Budget = Engine.Budget
module Instance = Engine.Instance
module Outcome = Engine.Outcome
module Registry = Engine.Registry
module Delta = Engine.Delta
module Hom = Definability.Hom
module Cnf = Reductions.Cnf
module Sat = Reductions.Sat_reduction
module T = Reductions.Tiling

let () = Definability.Deciders.init ()
let () = DG.audit_edits := true

let fig1 = Gen.fig1 ()
let s2 = Gen.fig1_s2 fig1
let v = DG.node_of_name fig1

let decide ?budget ?(k = 1) ~lang inst =
  match Registry.decide ?budget ~params:{ Registry.k } ~lang inst with
  | Ok o -> o
  | Error msg -> Alcotest.fail msg

let delta ?budget ?(k = 1) ~lang ~prev inst edit =
  match Delta.decide_delta ?budget ~params:{ Registry.k } ~lang ~prev inst edit with
  | Ok r -> r
  | Error msg -> Alcotest.fail msg

(* ---------- apply_edit ---------- *)

let test_apply_edit_validity () =
  let inst = Instance.of_binary fig1 s2 in
  let expect_error what edit =
    match Delta.apply_edit inst edit with
    | Ok _ -> Alcotest.fail (what ^ " accepted")
    | Error _ -> ()
  in
  expect_error "duplicate edge" (Delta.Add_edge (v "v1", "a", v "v2"));
  expect_error "out-of-range node" (Delta.Add_edge (0, "a", DG.size fig1));
  expect_error "missing edge" (Delta.Remove_edge (v "v1", "b", v "v2"));
  expect_error "duplicate node name" (Delta.Add_node ("v1", Datagraph.Data_value.of_int 0));
  expect_error "ragged tuple" (Delta.Set_relation [ [ 0; 1 ]; [ 0 ] ])

let test_apply_edit_roundtrip () =
  (* add then remove an edge: back to the same edge set (matrices are
     audited against scratch rebuilds on every step). *)
  let inst = Instance.of_binary fig1 s2 in
  let added =
    match Delta.apply_edit inst (Delta.Add_edge (v "v1", "b", v "v3")) with
    | Ok i -> i
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "edge present" true
    (DG.mem_edge (Instance.graph added) (v "v1") "b" (v "v3"));
  let removed =
    match Delta.apply_edit added (Delta.Remove_edge (v "v1", "b", v "v3")) with
    | Ok i -> i
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "edge gone" false
    (DG.mem_edge (Instance.graph removed) (v "v1") "b" (v "v3"));
  Alcotest.(check int) "edge count restored" (DG.edge_count fig1)
    (DG.edge_count (Instance.graph removed))

let test_apply_edit_add_node () =
  let inst = Instance.of_binary fig1 s2 in
  match Delta.apply_edit inst (Delta.Add_node ("w1", Datagraph.Data_value.of_int 7)) with
  | Error msg -> Alcotest.fail msg
  | Ok grown ->
      let g' = Instance.graph grown in
      Alcotest.(check int) "one more node" (DG.size fig1 + 1) (DG.size g');
      Alcotest.(check int) "tuples unchanged"
        (TR.cardinal (Instance.relation inst))
        (TR.cardinal (Instance.relation grown))

(* ---------- repair semantics ---------- *)

let test_repair_hit_keeps_certificate () =
  (* A "b"-edge cannot invalidate a certificate over the alphabet {a}. *)
  let inst = Instance.of_binary fig1 s2 in
  let prev = decide ~lang:"rem" inst in
  let r = delta ~lang:"rem" ~prev inst (Delta.Add_edge (v "v1", "b", v "v3")) in
  Alcotest.(check bool) "repaired" true r.Delta.repaired;
  Alcotest.(check (option string)) "same certificate"
    (Option.map Outcome.certificate_to_string (Outcome.certificate prev))
    (Option.map Outcome.certificate_to_string (Outcome.certificate r.Delta.outcome))

let test_repair_miss_falls_back () =
  (* Adding an "a"-edge into the S2 pattern breaks the old certificate;
     the fallback must still agree with a cold decide. *)
  let inst = Instance.of_binary fig1 s2 in
  let prev = decide ~lang:"rem" inst in
  let edit = Delta.Add_edge (v "v4", "a", v "z1") in
  let r = delta ~lang:"rem" ~prev inst edit in
  Alcotest.(check bool) "not repaired" false r.Delta.repaired;
  let cold = decide ~lang:"rem" r.Delta.inst in
  Alcotest.(check (option bool)) "fallback agrees with cold decide"
    (Outcome.definable cold)
    (Outcome.definable r.Delta.outcome)

let test_repair_wrong_lang_cert_not_trusted () =
  (* A rem certificate must not be replayed when deciding rpq. *)
  let inst = Instance.of_binary fig1 s2 in
  let prev = decide ~lang:"rem" inst in
  let r = delta ~lang:"rpq" ~prev inst (Delta.Add_edge (v "v1", "b", v "v3")) in
  Alcotest.(check bool) "miss on language mismatch" false r.Delta.repaired

let test_repair_violating_hom_retuple () =
  (* Satisfiable formula -> not UCRDPQ-definable with a violating-hom
     refutation; a retuple that keeps the witness tuple in and its image
     out must repair, and the kept hom must satisfy the original
     (library-level) is_hom on the edited instance. *)
  let f = Cnf.make ~num_vars:1 [ (1, 1, 1) ] in
  let red = Sat.build f in
  let inst = Instance.create_exn red.Sat.graph red.Sat.target in
  let prev = decide ~lang:"ucrdpq" inst in
  match prev.Outcome.verdict with
  | Outcome.Not_definable (Outcome.Violating_hom { hom; tuple }) ->
      let base = TR.to_list red.Sat.target in
      let image = List.map (fun p -> hom.(p)) tuple in
      let arity = TR.arity red.Sat.target in
      let extra =
        let n = DG.size red.Sat.graph in
        let rec find i =
          if i >= n then Alcotest.fail "no free tuple"
          else
            let cand = List.init arity (fun _ -> i) in
            if List.mem cand base || cand = image then find (i + 1) else cand
        in
        find 0
      in
      let r =
        delta ~lang:"ucrdpq" ~prev inst (Delta.Set_relation (base @ [ extra ]))
      in
      Alcotest.(check bool) "repaired" true r.Delta.repaired;
      (match r.Delta.outcome.Outcome.verdict with
      | Outcome.Not_definable (Outcome.Violating_hom { hom = h; tuple = t }) ->
          Alcotest.(check bool) "kept hom is a hom (library check)" true
            (Hom.is_hom (Instance.graph r.Delta.inst) h);
          Alcotest.(check bool) "witness tuple still escapes" true
            (TR.mem (Instance.relation r.Delta.inst) t
            && not
                 (TR.mem (Instance.relation r.Delta.inst)
                    (List.map (fun p -> h.(p)) t)))
      | _ -> Alcotest.fail "expected a violating-hom refutation");
      (* the toggle that drops the witness tuple's membership must not
         be repaired from this refutation... but removing [extra] keeps
         the witness, so a full cold decide must agree either way. *)
      let back =
        delta ~lang:"ucrdpq" ~prev:r.Delta.outcome r.Delta.inst
          (Delta.Set_relation base)
      in
      Alcotest.(check (option bool)) "agrees with cold decide"
        (Outcome.definable (decide ~lang:"ucrdpq" back.Delta.inst))
        (Outcome.definable back.Delta.outcome)
  | _ -> Alcotest.fail "expected a violating-hom refutation"

let test_is_hom_replica_agrees () =
  (* The engine-local replica of Hom.is_hom against the original, on
     identity maps, real homomorphisms and random candidate arrays. *)
  let st = Random.State.make [| 42 |] in
  let graphs =
    fig1
    :: List.map
         (fun seed ->
           Gen.random ~seed ~n:5 ~delta:2 ~labels:[ "a"; "b" ] ~density:0.4 ())
         [ 1; 2; 3; 4; 5 ]
  in
  let checked = ref 0 in
  List.iter
    (fun g ->
      let n = DG.size g in
      let candidates =
        Hom.identity g
        :: List.init 40 (fun _ -> Array.init n (fun _ -> Random.State.int st n))
        @ Hom.all ~limit:20 g
      in
      List.iter
        (fun h ->
          incr checked;
          Alcotest.(check bool)
            (Printf.sprintf "replica agrees (graph %d, candidate %d)" n !checked)
            (Hom.is_hom g h) (Delta.is_hom g h))
        candidates)
    graphs;
  Alcotest.(check bool) "enough candidates" true (!checked > 200)

(* ---------- differential fuzz ---------- *)

(* Global count across all traces: the acceptance criterion is at least
   a thousand fuzzed edits with zero disagreements. *)
let fuzzed_edits = ref 0

(* Replay a random trace, checking [decide_delta] against a cold decide
   of the edited instance at every step.  [fuel] bounds both sides on
   instances whose cold decide can explode (the hard reductions); a
   budget-exhausted side makes the step's comparison vacuous, but the
   edit still counts as exercised (the matrix audit ran either way). *)
let fuzz_trace ?fuel ?deadline_s ?(add_nodes = false) ?(k = 1) ~seed ~lang
    ~steps name inst =
  let st = Random.State.make [| seed |] in
  let rand n = Random.State.int st n in
  let edits = Delta.random_edits ~add_nodes ~rand ~steps inst in
  let budget () =
    match (fuel, deadline_s) with
    | None, None -> None
    | _ -> Some (Budget.create ?fuel ?deadline_s ())
  in
  let prev = ref (decide ?budget:(budget ()) ~k ~lang inst) in
  let cur = ref inst in
  List.iteri
    (fun i edit ->
      let r = delta ?budget:(budget ()) ~k ~lang ~prev:!prev !cur edit in
      let cold = decide ?budget:(budget ()) ~k ~lang r.Delta.inst in
      (match (Outcome.definable r.Delta.outcome, Outcome.definable cold) with
      | Some a, Some b when a <> b ->
          Alcotest.fail
            (Printf.sprintf "%s: step %d (%s): delta says %b, cold decide %b"
               name i (Delta.edit_to_string edit) a b)
      | _ -> ());
      incr fuzzed_edits;
      prev := r.Delta.outcome;
      cur := r.Delta.inst)
    edits

let test_fuzz_random_graphs () =
  List.iter
    (fun seed ->
      let g =
        Gen.random ~seed ~n:4 ~delta:2 ~labels:[ "a"; "b" ] ~density:0.35 ()
      in
      let s = Gen.random_reachable_relation ~seed g ~count:2 in
      let inst = Instance.of_binary g s in
      List.iter
        (fun lang ->
          fuzz_trace ~fuel:200_000 ~seed:(100 + seed) ~lang ~steps:24
            (Printf.sprintf "random n4 seed %d %s" seed lang)
            inst)
        [ "rpq"; "rem"; "ree"; "ucrdpq" ];
      fuzz_trace ~fuel:200_000 ~seed:(200 + seed) ~k:2 ~lang:"krem" ~steps:24
        (Printf.sprintf "random n4 seed %d krem" seed)
        inst)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_fuzz_node_growth () =
  List.iter
    (fun seed ->
      let g =
        Gen.random ~seed ~n:4 ~delta:3 ~labels:[ "a" ] ~density:0.4 ()
      in
      let s = Gen.random_reachable_relation ~seed g ~count:2 in
      let inst = Instance.of_binary g s in
      List.iter
        (fun lang ->
          fuzz_trace ~fuel:200_000 ~add_nodes:true ~seed:(300 + seed) ~lang
            ~steps:12
            (Printf.sprintf "growing n4 seed %d %s" seed lang)
            inst)
        [ "rem"; "ucrdpq" ])
    [ 1; 2; 3; 4; 5; 6 ]

let test_fuzz_fig1 () =
  List.iter
    (fun (rel_name, s) ->
      let inst = Instance.of_binary fig1 s in
      List.iter
        (fun lang ->
          fuzz_trace ~seed:(Hashtbl.hash (rel_name, lang)) ~lang ~steps:10
            (Printf.sprintf "fig1 %s %s" rel_name lang)
            inst)
        [ "rem"; "ucrdpq" ])
    [ ("s2", s2); ("s3", Gen.fig1_s3 fig1) ]

let test_fuzz_hard_instances () =
  (* Theorem 25 (tiling) and Figure 3 (SAT) reduction graphs: the cold
     side is budgeted — these are the instances built to be hard. *)
  let til = T.build { T.num_tiles = 2; horiz = [ (0, 1); (1, 0) ];
                      vert = [ (0, 0); (1, 1) ]; t_init = 0; t_final = 1; n = 1 }
  in
  fuzz_trace ~fuel:20_000 ~deadline_s:0.5 ~seed:77 ~lang:"rem" ~steps:8
    "tiling n1 rem"
    (Instance.of_binary til.T.graph til.T.target);
  List.iter
    (fun (name, f) ->
      let red = Sat.build f in
      fuzz_trace ~fuel:50_000 ~deadline_s:0.5 ~seed:(Hashtbl.hash name)
        ~lang:"ucrdpq" ~steps:10
        ("sat " ^ name)
        (Instance.create_exn red.Sat.graph red.Sat.target))
    [
      ("sat-1var", Cnf.make ~num_vars:1 [ (1, 1, 1) ]);
      ("unsat-1var", Cnf.make ~num_vars:1 [ (1, 1, 1); (-1, -1, -1) ]);
      ("rand-3var", Cnf.random ~seed:3 ~num_vars:3 ~num_clauses:4 ());
    ]

let test_fuzz_volume () =
  Alcotest.(check bool)
    (Printf.sprintf "at least 1000 fuzzed edits (got %d)" !fuzzed_edits)
    true (!fuzzed_edits >= 1000)

let () =
  Alcotest.run "delta"
    [
      ( "apply_edit",
        [
          Alcotest.test_case "invalid edits rejected" `Quick
            test_apply_edit_validity;
          Alcotest.test_case "add/remove round-trip" `Quick
            test_apply_edit_roundtrip;
          Alcotest.test_case "add node grows universe" `Quick
            test_apply_edit_add_node;
        ] );
      ( "repair",
        [
          Alcotest.test_case "hit keeps certificate" `Quick
            test_repair_hit_keeps_certificate;
          Alcotest.test_case "miss falls back" `Quick test_repair_miss_falls_back;
          Alcotest.test_case "wrong-language cert not trusted" `Quick
            test_repair_wrong_lang_cert_not_trusted;
          Alcotest.test_case "violating hom survives retuple" `Quick
            test_repair_violating_hom_retuple;
          Alcotest.test_case "is_hom replica agrees" `Quick
            test_is_hom_replica_agrees;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "random graphs, all languages" `Slow
            test_fuzz_random_graphs;
          Alcotest.test_case "node growth" `Slow test_fuzz_node_growth;
          Alcotest.test_case "figure 1" `Slow test_fuzz_fig1;
          Alcotest.test_case "hard reductions" `Slow test_fuzz_hard_instances;
          Alcotest.test_case "volume >= 1000 edits" `Quick test_fuzz_volume;
        ] );
    ]
