(* Fuzzing the protocol edge: whatever bytes arrive on a socket —
   hostile nesting, oversized tokens, truncated or bit-flipped lines —
   the parsing layer must return [Error]/[`Unsealed], never raise and
   never overflow the stack.  This is the property the chaos proxy
   leans on: a corrupted line becomes a typed error, not a crash. *)

module Json = Service.Json
module Wire = Service.Wire

let no_raise name f =
  QCheck.Test.make ~count:500 ~name (QCheck.string_of_size (QCheck.Gen.int_bound 2048))
    (fun s ->
      (match Json.parse s with Ok _ | Error _ -> ());
      (match Wire.request_of_string s with Ok _ | Error _ -> ());
      (match Wire.crc_status s with `Sealed_ok | `Sealed_bad | `Unsealed -> ());
      ignore (f s);
      true)

(* ---------- deep nesting ---------- *)

let nested open_c close_c n =
  String.make n open_c ^ String.make n close_c

let test_deep_nesting () =
  List.iter
    (fun n ->
      (* Arrays and objects, at and far beyond the 512 cap: a typed
         error, not a stack overflow. *)
      (match Json.parse (nested '[' ']' n) with
      | Ok _ -> Alcotest.(check bool) "under cap parses" true (n <= 513)
      | Error _ -> Alcotest.(check bool) "over cap rejected" true (n > 513));
      let braces =
        String.concat "" (List.init n (fun _ -> "{\"k\":"))
        ^ "null" ^ String.make n '}'
      in
      match Json.parse braces with
      | Ok _ -> Alcotest.(check bool) "under cap parses" true (n <= 513)
      | Error _ -> Alcotest.(check bool) "over cap rejected" true (n > 513))
    [ 8; 511; 514; 4096; 100_000 ]

let test_oversized_tokens () =
  (* Megabyte-long strings and absurd numbers parse or fail cleanly. *)
  let big = String.make (1 lsl 20) 'a' in
  (match Json.parse (Printf.sprintf "{\"k\":%S}" big) with
  | Ok j -> (
      match Option.bind (Json.member "k" j) Json.to_str with
      | Some s -> Alcotest.(check int) "big string survives" (String.length big) (String.length s)
      | None -> Alcotest.fail "big string lost")
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s -> match Json.parse s with Ok _ | Error _ -> ())
    [
      "1" ^ String.make 400 '0';
      "-1e99999";
      "\"" ^ String.make 65536 '\\';
      String.make 100_000 '"';
    ]

(* ---------- truncation and corruption of real protocol lines ---------- *)

let sample_lines =
  [
    Wire.request_to_string
      (Wire.Decide
         {
           lang = "rem";
           k = Some 1;
           fuel = Some 100;
           timeout_s = None;
           instance = "graph { a -> b } relation { (a,b) }";
         });
    Wire.request_to_string Wire.Stats;
    Wire.seal [ ("op", Wire.json_string "decide"); ("status", Wire.json_string "ok") ];
    Wire.seal_line "{\"op\":\"ping\"}";
  ]

let test_truncated_lines () =
  List.iter
    (fun line ->
      for cut = 0 to String.length line - 1 do
        let s = String.sub line 0 cut in
        (match Json.parse s with Ok _ | Error _ -> ());
        (match Wire.request_of_string s with Ok _ | Error _ -> ());
        match Wire.crc_status s with
        | `Sealed_ok ->
            (* A strict prefix of a sealed line can never re-seal. *)
            Alcotest.failf "truncation sealed ok: %S" s
        | `Sealed_bad | `Unsealed -> ()
      done)
    sample_lines

let test_corrupted_seal_never_ok () =
  (* Flip every byte of a sealed line through a few masks: the seal
     must never verify on damaged bytes. *)
  let line = Wire.seal_line "{\"op\":\"decide\",\"lang\":\"rem\",\"k\":1}" in
  Alcotest.(check bool) "pristine line seals ok" true
    (Wire.crc_status line = `Sealed_ok);
  List.iter
    (fun mask ->
      String.iteri
        (fun i c ->
          let b = Bytes.of_string line in
          Bytes.set b i (Char.chr (Char.code c lxor mask land 0xff));
          let s = Bytes.to_string b in
          if s <> line then
            match Wire.crc_status s with
            | `Sealed_ok -> Alcotest.failf "corruption at %d sealed ok" i
            | `Sealed_bad | `Unsealed -> ())
        line)
    [ 0x01; 0x80; 0xff ]

(* ---------- QCheck: arbitrary bytes ---------- *)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      no_raise "arbitrary bytes never raise" (fun _ -> ());
      QCheck.Test.make ~count:200 ~name:"mutated request lines never raise"
        QCheck.(pair (int_bound (List.length sample_lines - 1)) (pair small_nat char))
        (fun (which, (pos, c)) ->
          let line = List.nth sample_lines which in
          let b = Bytes.of_string line in
          let pos = pos mod String.length line in
          Bytes.set b pos c;
          let s = Bytes.to_string b in
          (match Json.parse s with Ok _ | Error _ -> ());
          (match Wire.request_of_string s with Ok _ | Error _ -> ());
          (match Wire.crc_status s with
          | `Sealed_ok | `Sealed_bad | `Unsealed -> ());
          true);
      QCheck.Test.make ~count:200 ~name:"seal/crc_status inverse"
        QCheck.(
          small_list
            (pair
               (string_of_size (Gen.int_bound 12))
               (string_of_size (Gen.int_bound 24))))
        (fun pairs ->
          QCheck.assume (pairs <> []);
          let fields =
            List.map (fun (k, v) -> (k, Wire.json_string v)) pairs
          in
          Wire.crc_status (Wire.seal fields) = `Sealed_ok
          && Wire.crc_status (Wire.seal_line (Wire.json_obj fields))
             = `Sealed_ok);
    ]

let () =
  Alcotest.run "wire_fuzz"
    [
      ( "parser",
        [
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "oversized tokens" `Quick test_oversized_tokens;
          Alcotest.test_case "truncated lines" `Quick test_truncated_lines;
          Alcotest.test_case "corrupted seal never verifies" `Quick
            test_corrupted_seal_never_ok;
        ] );
      ("qcheck", qcheck_tests);
    ]
