(* Tests for the packed bitset kernel and the hot paths rebuilt on it:
   Bitset / Bitmatrix unit tests at word boundaries, then randomized
   agreement checks of the packed implementations against simple
   reference implementations (list-based sets, DFS reachability,
   brute-force homomorphism enumeration, the generic REM evaluator). *)

module Bitset = Util.Bitset
module Bitmatrix = Util.Bitmatrix
module DV = Datagraph.Data_value
module DP = Datagraph.Data_path
module DG = Datagraph.Data_graph
module TR = Datagraph.Tuple_relation
module Hom = Definability.Hom
module Rem = Rem_lang.Rem
module Condition = Rem_lang.Condition

let dv = DV.of_int

(* Widths that straddle the 63-bit word boundary. *)
let widths = [ 0; 1; 62; 63; 64; 65; 130 ]

(* ---------- Bitset unit tests ---------- *)

let test_bitset_empty_full () =
  List.iter
    (fun w ->
      let lbl s = Printf.sprintf "%s (width %d)" s w in
      let e = Bitset.create w in
      Alcotest.(check bool) (lbl "empty is_empty") true (Bitset.is_empty e);
      Alcotest.(check int) (lbl "empty cardinal") 0 (Bitset.cardinal e);
      Alcotest.(check (list int)) (lbl "empty to_list") [] (Bitset.to_list e);
      Alcotest.(check bool) (lbl "empty first") true (Bitset.first e = None);
      let f = Bitset.full w in
      Alcotest.(check int) (lbl "full cardinal") w (Bitset.cardinal f);
      Alcotest.(check (list int))
        (lbl "full to_list")
        (List.init w Fun.id) (Bitset.to_list f);
      for i = 0 to w - 1 do
        Alcotest.(check bool) (lbl "full mem") true (Bitset.mem f i)
      done;
      Bitset.clear f;
      Alcotest.(check bool) (lbl "cleared") true (Bitset.is_empty f);
      Bitset.fill f;
      Alcotest.(check int) (lbl "refilled") w (Bitset.cardinal f);
      Alcotest.(check bool) (lbl "full = full") true
        (Bitset.equal f (Bitset.full w)))
    widths

let test_bitset_add_remove_bounds () =
  List.iter
    (fun w ->
      if w > 0 then begin
        let lbl s = Printf.sprintf "%s (width %d)" s w in
        let b = Bitset.create w in
        Bitset.add b 0;
        Bitset.add b (w - 1);
        Alcotest.(check bool) (lbl "mem 0") true (Bitset.mem b 0);
        Alcotest.(check bool) (lbl "mem last") true (Bitset.mem b (w - 1));
        Alcotest.(check int)
          (lbl "card")
          (if w = 1 then 1 else 2)
          (Bitset.cardinal b);
        Alcotest.(check bool) (lbl "first") true (Bitset.first b = Some 0);
        let c = Bitset.copy b in
        Bitset.remove b 0;
        Alcotest.(check bool) (lbl "removed") false (Bitset.mem b 0);
        Alcotest.(check bool) (lbl "copy unaffected") true (Bitset.mem c 0)
      end)
    widths

let test_bitset_iter_remove_current () =
  (* [iter] guarantees f may remove the element it is called with — the
     CSP revise loop depends on this. *)
  let b = Bitset.of_list 130 [ 0; 5; 62; 63; 64; 100; 129 ] in
  let seen = ref [] in
  Bitset.iter
    (fun i ->
      seen := i :: !seen;
      Bitset.remove b i)
    b;
  Alcotest.(check (list int))
    "all visited ascending"
    [ 0; 5; 62; 63; 64; 100; 129 ]
    (List.rev !seen);
  Alcotest.(check bool) "emptied" true (Bitset.is_empty b)

(* ---------- Randomized Bitset ops vs list-based reference ---------- *)

let rand_subset st w =
  List.filter (fun _ -> Random.State.int st 3 = 0) (List.init w Fun.id)

let test_bitset_ops_agree () =
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 300 do
    let w = List.nth widths (Random.State.int st (List.length widths)) in
    let xs = rand_subset st w and ys = rand_subset st w in
    let a = Bitset.of_list w xs and b = Bitset.of_list w ys in
    let inter = List.filter (fun x -> List.mem x ys) xs in
    let union = List.sort_uniq compare (xs @ ys) in
    let diff = List.filter (fun x -> not (List.mem x ys)) xs in
    Alcotest.(check int) "cardinal" (List.length xs) (Bitset.cardinal a);
    Alcotest.(check (list int)) "to_list" xs (Bitset.to_list a);
    Alcotest.(check bool) "first" true
      (Bitset.first a = match xs with [] -> None | x :: _ -> Some x);
    Alcotest.(check bool) "disjoint" (inter = []) (Bitset.disjoint a b);
    Alcotest.(check bool) "intersects" (inter <> []) (Bitset.intersects a b);
    Alcotest.(check bool) "subset"
      (List.for_all (fun x -> List.mem x ys) xs)
      (Bitset.subset a b);
    Alcotest.(check int) "fold"
      (List.fold_left ( + ) 0 xs)
      (Bitset.fold ( + ) a 0);
    let c = Bitset.copy a in
    Bitset.inter_inplace c b;
    Alcotest.(check (list int)) "inter" inter (Bitset.to_list c);
    let c = Bitset.copy a in
    Bitset.union_inplace c b;
    Alcotest.(check (list int)) "union" union (Bitset.to_list c);
    let c = Bitset.copy a in
    Bitset.diff_inplace c b;
    Alcotest.(check (list int)) "diff" diff (Bitset.to_list c);
    (* equal and hash must agree on equal sets however they were built. *)
    let a' = Bitset.of_list w (List.rev xs) in
    Alcotest.(check bool) "equal" true (Bitset.equal a a');
    Alcotest.(check int) "hash stable" (Bitset.hash a) (Bitset.hash a')
  done

(* ---------- Bitmatrix ---------- *)

let rand_matrix st r c =
  let m = Bitmatrix.create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      if Random.State.int st 3 = 0 then Bitmatrix.set m i j
    done
  done;
  m

let test_bitmatrix_basics () =
  let m = Bitmatrix.create 3 70 in
  Bitmatrix.set m 0 69;
  Bitmatrix.set m 2 0;
  Alcotest.(check bool) "get set" true (Bitmatrix.get m 0 69);
  Alcotest.(check bool) "get unset" false (Bitmatrix.get m 1 33);
  Bitmatrix.unset m 0 69;
  Alcotest.(check bool) "unset" false (Bitmatrix.get m 0 69);
  Alcotest.(check (list int)) "row" [ 0 ] (Bitset.to_list (Bitmatrix.row m 2))

let test_bitmatrix_transpose () =
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 50 do
    let r = 1 + Random.State.int st 5 and c = 1 + Random.State.int st 70 in
    let m = rand_matrix st r c in
    let t = Bitmatrix.transpose m in
    Alcotest.(check int) "rows" c (Bitmatrix.rows t);
    Alcotest.(check int) "cols" r (Bitmatrix.cols t);
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        Alcotest.(check bool) "transposed bit" (Bitmatrix.get m i j)
          (Bitmatrix.get t j i)
      done
    done;
    Alcotest.(check bool) "involution" true
      (Bitmatrix.equal m (Bitmatrix.transpose t))
  done

let test_bitmatrix_closure () =
  let st = Random.State.make [| 11 |] in
  for _ = 1 to 60 do
    let n = 1 + Random.State.int st 8 in
    let m = rand_matrix st n n in
    (* Reference: reflexive-transitive closure via boolean Floyd–Warshall. *)
    let reach = Array.init n (fun i -> Array.init n (fun j -> i = j || Bitmatrix.get m i j)) in
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
        done
      done
    done;
    Bitmatrix.set_diagonal m;
    Bitmatrix.closure_inplace m;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Alcotest.(check bool) "closure bit" reach.(i).(j) (Bitmatrix.get m i j)
      done
    done
  done

(* ---------- Random data graphs: packed accessors vs references ---------- *)

let rand_graph st =
  let n = 1 + Random.State.int st 5 in
  let values = Array.init n (fun _ -> dv (Random.State.int st 3)) in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      List.iter
        (fun a -> if Random.State.int st 10 < 3 then edges := (u, a, v) :: !edges)
        [ "a"; "b" ]
    done
  done;
  DG.build ~values ~edges:!edges

let ref_reachable g u =
  let n = DG.size g in
  let seen = Array.make n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter (fun (p, _, q) -> if p = v then dfs q) (DG.edges g)
    end
  in
  dfs u;
  seen

let test_graph_accessors_agree () =
  let st = Random.State.make [| 123 |] in
  for _ = 1 to 60 do
    let g = rand_graph st in
    let n = DG.size g in
    let edges = DG.edges g in
    Alcotest.(check int) "edge_count" (List.length edges) (DG.edge_count g);
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        List.iter
          (fun a ->
            Alcotest.(check bool) "mem_edge"
              (List.mem (u, a, v) edges)
              (DG.mem_edge g u a v))
          [ "a"; "b"; "zz" ]
      done;
      Alcotest.(check (array bool)) "reachable" (ref_reachable g u)
        (DG.reachable g u)
    done;
    (* Out-of-range probes answer false rather than raising. *)
    Alcotest.(check bool) "oob u" false (DG.mem_edge g (-1) "a" 0);
    Alcotest.(check bool) "oob v" false (DG.mem_edge g 0 "a" n)
  done

(* ---------- Hom: CSP search vs brute-force enumeration ---------- *)

let ref_is_hom g h =
  let edges = DG.edges g in
  List.for_all (fun (p, a, q) -> List.mem (h.(p), a, h.(q)) edges) edges
  && List.for_all
       (fun p ->
         let reach = ref_reachable g p in
         List.for_all
           (fun q ->
             (not reach.(q))
             || DG.same_value g p q = DG.same_value g h.(p) h.(q))
           (DG.nodes g))
       (DG.nodes g)

let all_maps n =
  let rec go i acc =
    if i = n then [ Array.of_list (List.rev acc) ]
    else List.concat_map (fun x -> go (i + 1) (x :: acc)) (List.init n Fun.id)
  in
  go 0 []

let test_hom_agrees_with_brute_force () =
  let st = Random.State.make [| 31337 |] in
  for _ = 1 to 40 do
    let g = rand_graph st in
    let n = DG.size g in
    if n <= 4 then begin
      let maps = all_maps n in
      let brute = List.filter (ref_is_hom g) maps in
      Alcotest.(check int) "count" (List.length brute) (Hom.count g);
      List.iter
        (fun h ->
          Alcotest.(check bool) "is_hom" (ref_is_hom g h) (Hom.is_hom g h))
        maps;
      let found = Hom.all g in
      Alcotest.(check int) "all length" (List.length brute) (List.length found);
      List.iter
        (fun h ->
          Alcotest.(check bool) "all sound" true (ref_is_hom g h))
        found;
      (* find_violating against the brute-force certificate check. *)
      let s =
        TR.of_list ~universe:n ~arity:2
          (List.filter
             (fun _ -> Random.State.bool st)
             (List.concat_map
                (fun p -> List.map (fun q -> [ p; q ]) (List.init n Fun.id))
                (List.init n Fun.id)))
      in
      let violates h =
        TR.exists
          (fun tup -> not (TR.mem s (List.map (fun p -> h.(p)) tup)))
          s
      in
      match Hom.find_violating g s with
      | Some h ->
          Alcotest.(check bool) "violator is hom" true (ref_is_hom g h);
          Alcotest.(check bool) "violator violates" true (violates h)
      | None ->
          Alcotest.(check bool) "no violator exists" false
            (List.exists violates brute)
    end
  done

(* ---------- Rem: packed evaluator vs generic reference ---------- *)

let rand_cond st =
  match Random.State.int st 7 with
  | 0 -> Condition.True
  | 1 -> Condition.Eq (Random.State.int st 2)
  | 2 -> Condition.Neq (Random.State.int st 2)
  | 3 -> Condition.And (Condition.Eq 0, Condition.Neq 1)
  | 4 -> Condition.Or (Condition.Eq 1, Condition.Eq 0)
  | 5 -> Condition.Not (Condition.Eq (Random.State.int st 2))
  | _ -> Condition.Neq 0

let rec rand_rem st depth =
  if depth = 0 then
    if Random.State.bool st then Rem.Eps
    else Rem.Letter (if Random.State.bool st then "a" else "b")
  else
    match Random.State.int st 6 with
    | 0 -> Rem.Union (rand_rem st (depth - 1), rand_rem st (depth - 1))
    | 1 -> Rem.Concat (rand_rem st (depth - 1), rand_rem st (depth - 1))
    | 2 -> Rem.Plus (rand_rem st (depth - 1))
    | 3 -> Rem.Test (rand_rem st (depth - 1), rand_cond st)
    | 4 -> Rem.Bind ([ Random.State.int st 2 ], rand_rem st (depth - 1))
    | _ -> rand_rem st 0

let rand_path st =
  let m = Random.State.int st 4 in
  DP.make
    ~values:(Array.init (m + 1) (fun _ -> dv (Random.State.int st 3)))
    ~labels:(Array.init m (fun _ -> if Random.State.bool st then "a" else "b"))

let assignments_as_ints l =
  List.map
    (fun sigma -> Array.to_list sigma |> List.map (Option.map DV.to_int))
    l
  |> List.sort compare

let test_rem_packed_agrees_with_generic () =
  let st = Random.State.make [| 2718 |] in
  for _ = 1 to 300 do
    let e = rand_rem st (1 + Random.State.int st 3) in
    let w = rand_path st in
    let k = max 2 (Rem.registers e) in
    let sigma =
      Array.init k (fun _ ->
          if Random.State.bool st then None
          else Some (dv (Random.State.int st 3)))
    in
    let packed = Rem.final_assignments ~k e w sigma in
    let generic = Rem.final_assignments_generic ~k e w sigma in
    Alcotest.(check (list (list (option int))))
      (Format.asprintf "final_assignments of %a on %s" Rem.pp e
         (DP.to_string w))
      (assignments_as_ints generic)
      (assignments_as_ints packed)
  done

let () =
  Alcotest.run "bitset"
    [
      ( "bitset",
        [
          Alcotest.test_case "empty/full at word boundaries" `Quick
            test_bitset_empty_full;
          Alcotest.test_case "add/remove at bounds" `Quick
            test_bitset_add_remove_bounds;
          Alcotest.test_case "iter tolerates removal" `Quick
            test_bitset_iter_remove_current;
          Alcotest.test_case "ops agree with list reference" `Quick
            test_bitset_ops_agree;
        ] );
      ( "bitmatrix",
        [
          Alcotest.test_case "get/set/row" `Quick test_bitmatrix_basics;
          Alcotest.test_case "transpose" `Quick test_bitmatrix_transpose;
          Alcotest.test_case "closure vs Floyd-Warshall" `Quick
            test_bitmatrix_closure;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "graph accessors vs references" `Quick
            test_graph_accessors_agree;
          Alcotest.test_case "Hom vs brute force" `Quick
            test_hom_agrees_with_brute_force;
          Alcotest.test_case "Rem packed vs generic" `Quick
            test_rem_packed_agrees_with_generic;
        ] );
    ]
