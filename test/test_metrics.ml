(* The metrics plane's data model: the log-bucketed histogram (bucket
   geometry, the index/upper-bound inverse, exact-count percentiles
   against a sorted reference, merge, concurrent recording from
   domains), the snapshot JSON codec, and the Prometheus text
   exposition's grammar. *)

module H = Obs.Histogram
module Json = Service.Json
module Metrics = Service.Metrics

let observed f =
  Obs.enable [ Obs.Sink.null ];
  Fun.protect ~finally:Obs.disable f

(* ---------- bucket geometry ---------- *)

(* Every bucket's upper bound must index back into that bucket, the
   bound after it into the next — the property percentile reporting
   rests on ([percentile_of] answers an upper bound, and the answer
   must be the tightest one). *)
let test_bucket_inverse () =
  for i = 0 to H.n_buckets - 2 do
    let upper = H.bucket_upper_ns i in
    Alcotest.(check int)
      (Printf.sprintf "upper of bucket %d (%d ns) maps back" i upper)
      i (H.bucket_index upper);
    if i < H.n_buckets - 2 then
      Alcotest.(check int)
        (Printf.sprintf "first value past bucket %d maps forward" i)
        (i + 1)
        (H.bucket_index (upper + 1))
  done;
  Alcotest.(check int) "negative values clamp to bucket 0" 0 (H.bucket_index (-5));
  Alcotest.(check int) "zero is bucket 0" 0 (H.bucket_index 0);
  Alcotest.(check int) "max_int lands in the overflow bucket"
    (H.n_buckets - 1) (H.bucket_index max_int)

let test_bucket_monotone () =
  (* Bounds strictly increase: the cumulative rendering and the
     percentile scan both assume it. *)
  let prev = ref (-1) in
  for i = 0 to H.n_buckets - 2 do
    let u = H.bucket_upper_ns i in
    Alcotest.(check bool) (Printf.sprintf "bound %d grows" i) true (u > !prev);
    prev := u
  done;
  (* Sub-bucket resolution: with 4 sub-buckets per octave each bound
     exceeds the previous by at most a quarter of it — so a reported
     percentile is at most 25% above the true value.  Integer
     arithmetic: bounds reach 2^60, past float precision. *)
  for i = 17 to H.n_buckets - 2 do
    let lo = H.bucket_upper_ns (i - 1) and hi = H.bucket_upper_ns i in
    Alcotest.(check bool)
      (Printf.sprintf "bucket %d within 25%% of its neighbour" i)
      true
      (hi - lo <= (lo + 1) / 4)
  done

(* ---------- recording and percentiles ---------- *)

let fresh_histogram =
  let n = ref 0 in
  fun () ->
    incr n;
    H.make (Printf.sprintf "test.h%d" !n)

let test_record_disabled_noop () =
  let h = fresh_histogram () in
  H.record_ns h 100;
  Alcotest.(check int) "disabled record is a no-op" 0 (H.count h);
  observed (fun () -> H.record_ns h 100);
  Alcotest.(check int) "enabled record lands" 1 (H.count h)

(* Percentiles against a sorted reference: for every requested p the
   histogram must answer exactly the upper bound of the bucket holding
   the reference sample — the discretization is the bucket, nothing
   else. *)
let test_percentile_exact () =
  let h = fresh_histogram () in
  let samples =
    (* A skewed spread crossing several octaves, with duplicates. *)
    [ 3; 3; 7; 12; 18; 45; 45; 120; 700; 3_000; 12_000; 90_000; 90_000;
      500_000; 4_000_000 ]
  in
  observed (fun () -> List.iter (H.record_ns h) samples);
  let sorted = List.sort compare samples in
  let n = List.length sorted in
  let s = H.snapshot h in
  List.iter
    (fun p ->
      let rank =
        max 1 (int_of_float (Float.ceil (p /. 100. *. float_of_int n)))
      in
      let reference = List.nth sorted (rank - 1) in
      let expected = H.bucket_upper_ns (H.bucket_index reference) in
      Alcotest.(check int)
        (Printf.sprintf "p%.0f = upper bound of reference bucket" p)
        expected (H.percentile_of s p))
    [ 1.; 25.; 50.; 75.; 90.; 95.; 99.; 100. ];
  Alcotest.(check int) "empty histogram reports 0" 0
    (H.percentile_of (H.zero_snapshot ()) 50.);
  Alcotest.(check int) "count" n (H.total s);
  Alcotest.(check int) "sum" (List.fold_left ( + ) 0 samples) s.H.sum_ns

let test_merge () =
  let a = fresh_histogram () and b = fresh_histogram () in
  observed (fun () ->
      List.iter (H.record_ns a) [ 10; 100; 1_000 ];
      List.iter (H.record_ns b) [ 10; 50_000 ]);
  let m = H.merge (H.snapshot a) (H.snapshot b) in
  Alcotest.(check int) "merged count" 5 (H.total m);
  Alcotest.(check int) "merged sum" 51_120 m.H.sum_ns;
  (* Merge must agree with recording everything into one histogram. *)
  let c = fresh_histogram () in
  observed (fun () ->
      List.iter (H.record_ns c) [ 10; 100; 1_000; 10; 50_000 ]);
  Alcotest.(check bool) "merge = union of recordings" true
    (m = H.snapshot c);
  Alcotest.(check bool) "merge with zero is identity" true
    (H.merge (H.zero_snapshot ()) (H.snapshot a) = H.snapshot a)

(* Four domains hammering one histogram concurrently: every record must
   land (atomic buckets, no lost updates). *)
let test_concurrent_recording () =
  let h = fresh_histogram () in
  let per_domain = 25_000 in
  observed (fun () ->
      let workers =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to per_domain do
                  H.record_ns h ((d * 1_000) + (i mod 97))
                done))
      in
      List.iter Domain.join workers);
  Alcotest.(check int) "no lost updates" (4 * per_domain) (H.count h)

let test_time_measures () =
  let h = fresh_histogram () in
  observed (fun () ->
      let v = H.time h (fun () -> Thread.delay 0.01; 42) in
      Alcotest.(check int) "value through" 42 v);
  Alcotest.(check int) "one sample" 1 (H.count h);
  Alcotest.(check bool) "at least the slept time" true
    (H.sum_ns h >= 9_000_000)

(* ---------- snapshot codec ---------- *)

let test_snapshot_roundtrip () =
  let h = fresh_histogram () in
  let c = Obs.Counter.make "test.codec_counter" in
  observed (fun () ->
      List.iter (H.record_ns h) [ 5; 5_000; 77_000_000 ];
      Obs.Counter.add c 9);
  let snap = Metrics.capture () in
  Alcotest.(check bool) "capture sees the counter" true
    (List.mem_assoc "test.codec_counter" snap.Metrics.counters);
  match Metrics.of_string (Metrics.to_json snap) with
  | Error msg -> Alcotest.failf "codec roundtrip failed: %s" msg
  | Ok back ->
      Alcotest.(check bool) "roundtrip preserves the snapshot" true
        (back = snap)

let test_merge_snapshots () =
  let mk name counts =
    {
      Metrics.histograms = [ (name, { H.counts; sum_ns = 0 }) ];
      counters = [ ("c", 1) ];
    }
  in
  let a = mk "h" (Array.init H.n_buckets (fun i -> if i = 3 then 2 else 0)) in
  let b = mk "h" (Array.init H.n_buckets (fun i -> if i = 3 then 1 else 0)) in
  let m = Metrics.merge a b in
  (match m.Metrics.histograms with
  | [ ("h", s) ] -> Alcotest.(check int) "bucket summed" 3 s.H.counts.(3)
  | _ -> Alcotest.fail "one histogram expected");
  Alcotest.(check (list (pair string int))) "counters summed" [ ("c", 2) ]
    m.Metrics.counters

(* ---------- Prometheus exposition ---------- *)

(* A small validator for the text format: every sample line must be
   NAME{labels} VALUE with a legal metric name, every metric mentioned
   by a sample needs a preceding TYPE line, histogram buckets must be
   cumulative and end in +Inf, and _count must equal the +Inf bucket. *)
let validate_prometheus text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let legal_name n =
    n <> ""
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
         n
    && not (match n.[0] with '0' .. '9' -> true | _ -> false)
  in
  let typed = Hashtbl.create 16 in
  let bucket_state = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: ("HELP" | "TYPE") :: name :: _ when legal_name name ->
            if String.sub line 2 4 = "TYPE" then Hashtbl.replace typed name ()
        | _ -> Alcotest.failf "malformed comment line: %s" line
      end
      else begin
        let name_part, value_part =
          match String.index_opt line ' ' with
          | Some i ->
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
          | None -> Alcotest.failf "sample line without a value: %s" line
        in
        (match float_of_string_opt (String.trim value_part) with
        | Some _ -> ()
        | None -> Alcotest.failf "unparsable sample value: %s" line);
        let metric, labels =
          match String.index_opt name_part '{' with
          | Some i ->
              let m = String.sub name_part 0 i in
              let rest = String.sub name_part i (String.length name_part - i) in
              if rest.[String.length rest - 1] <> '}' then
                Alcotest.failf "unterminated label set: %s" line;
              (m, Some (String.sub rest 1 (String.length rest - 2)))
          | None -> (name_part, None)
        in
        if not (legal_name metric) then
          Alcotest.failf "illegal metric name: %s" metric;
        let base =
          List.find_map
            (fun suffix ->
              let ls = String.length suffix and lm = String.length metric in
              if lm > ls && String.sub metric (lm - ls) ls = suffix then
                Some (String.sub metric 0 (lm - ls))
              else None)
            [ "_bucket"; "_sum"; "_count" ]
        in
        let family = Option.value base ~default:metric in
        if not (Hashtbl.mem typed family || Hashtbl.mem typed metric) then
          Alcotest.failf "sample without a TYPE line: %s" metric;
        (* Track bucket cumulativeness per histogram family. *)
        match (base, labels) with
        | Some fam, Some l
          when String.length metric > 7
               && String.sub metric (String.length metric - 7) 7 = "_bucket"
          ->
            let v = float_of_string (String.trim value_part) in
            let prev =
              Option.value (Hashtbl.find_opt bucket_state fam) ~default:(0., false)
            in
            if snd prev then
              Alcotest.failf "%s: bucket after +Inf" fam;
            if v < fst prev then
              Alcotest.failf "%s: non-cumulative buckets" fam;
            let is_inf =
              let needle = "le=\"+Inf\"" in
              let ln = String.length needle and ll = String.length l in
              let rec go i =
                i + ln <= ll && (String.sub l i ln = needle || go (i + 1))
              in
              go 0
            in
            Hashtbl.replace bucket_state fam (v, is_inf)
        | _ -> ()
      end)
    lines;
  Hashtbl.iter
    (fun fam (_, saw_inf) ->
      if not saw_inf then Alcotest.failf "%s: missing +Inf bucket" fam)
    bucket_state

let test_prometheus_exposition () =
  let h = fresh_histogram () in
  let c = Obs.Counter.make "test.prom_counter" in
  observed (fun () ->
      List.iter (H.record_ns h) [ 40; 40; 90_000; 2_000_000 ];
      Obs.Counter.add c 3);
  let snap = Metrics.capture () in
  let text = Metrics.render ~gauges:[ ("uptime_seconds", 12.5) ] snap in
  validate_prometheus text;
  let has needle =
    let ln = String.length needle and lt = String.length text in
    let rec go i = i + ln <= lt && (String.sub text i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter rendered as _total" true
    (has "defcheck_test_prom_counter_total 3");
  Alcotest.(check bool) "gauge rendered" true (has "defcheck_uptime_seconds 12.5");
  Alcotest.(check bool) "build info present" true (has "defcheck_build_info{");
  Alcotest.(check bool) "histogram family present" true
    (has "_seconds_bucket{le=");
  (* The mandatory histogram triplet for our histogram. *)
  let fam = Metrics.prom_name "test.h" in
  Alcotest.(check bool) "prom_name sanitizes" true
    (String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       fam)

let test_percentile_us () =
  let h = fresh_histogram () in
  observed (fun () -> List.iter (H.record_ns h) [ 1_000; 2_000; 3_000 ]);
  let snap = Metrics.capture () in
  match Metrics.percentile_us snap ~histogram:(H.name h) 50. with
  | Some us ->
      Alcotest.(check bool) "p50 in the right octave" true
        (us >= 1. && us <= 4.)
  | None -> Alcotest.fail "percentile of recorded histogram"

let () =
  Alcotest.run "metrics"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket index/bound inverse" `Quick
            test_bucket_inverse;
          Alcotest.test_case "bounds monotone, <=25% apart" `Quick
            test_bucket_monotone;
          Alcotest.test_case "disabled recording no-op" `Quick
            test_record_disabled_noop;
          Alcotest.test_case "percentiles vs sorted reference" `Quick
            test_percentile_exact;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "concurrent recording (4 domains)" `Quick
            test_concurrent_recording;
          Alcotest.test_case "time wraps and records" `Quick test_time_measures;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "JSON codec roundtrip" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "merge sums" `Quick test_merge_snapshots;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "exposition validates" `Quick
            test_prometheus_exposition;
          Alcotest.test_case "percentile_us" `Quick test_percentile_us;
        ] );
    ]
