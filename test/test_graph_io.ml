(* Graph_io: the textual instance format round-trips ([parse ∘ print]
   is the identity) on random graphs, and malformed documents are
   rejected with an [Error], never an exception. *)

module DG = Datagraph.Data_graph
module TR = Datagraph.Tuple_relation
module Gen = Datagraph.Graph_gen
module Io = Datagraph.Graph_io

let graph_repr g =
  let nodes =
    List.map
      (fun u ->
        Printf.sprintf "%s=%d" (DG.name g u)
          (Datagraph.Data_value.to_int (DG.value g u)))
      (DG.nodes g)
  in
  let edges =
    List.sort compare
      (List.map
         (fun (u, a, v) -> Printf.sprintf "%s-%s->%s" (DG.name g u) a (DG.name g v))
         (DG.edges g))
  in
  String.concat ";" nodes ^ "|" ^ String.concat ";" edges

let relation_repr s =
  String.concat ";"
    (List.map
       (fun tup -> String.concat "," (List.map string_of_int tup))
       (TR.to_list s))

let random_instance seed =
  let g =
    Gen.random ~seed ~n:(3 + (seed mod 7)) ~delta:(1 + (seed mod 4))
      ~labels:[ "a"; "b" ] ~density:0.3 ()
  in
  let s = TR.of_binary (Gen.random_reachable_relation ~seed g ~count:4) in
  (g, s)

let roundtrip_prop =
  QCheck.Test.make ~name:"parse ∘ print = id (random instances)" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, s = random_instance seed in
      let text = Io.instance_to_string g s in
      match Io.instance_of_string text with
      | Error msg -> QCheck.Test.fail_reportf "reparse failed: %s" msg
      | Ok (g', s') ->
          (* Same nodes (names, values, order), edges and tuples — and a
             reprint of the reparse is byte-identical, so printing is a
             canonical form. *)
          graph_repr g = graph_repr g'
          && relation_repr s = relation_repr s'
          && Io.instance_to_string g' s' = text)

let test_fig1_roundtrip () =
  let g = Gen.fig1 () in
  let s = TR.of_binary (Gen.fig1_s2 g) in
  let text = Io.instance_to_string g s in
  match Io.instance_of_string text with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok (g', s') ->
      Alcotest.(check string) "graph" (graph_repr g) (graph_repr g');
      Alcotest.(check string) "relation" (relation_repr s) (relation_repr s');
      Alcotest.(check string) "reprint" text (Io.instance_to_string g' s')

let test_comments_and_blanks () =
  let text =
    "# header comment\n\nnode v1 0   # inline comment\nnode v2 1\n\n\
     edge v1 a v2\npair v1 v2\n"
  in
  match Io.instance_of_string text with
  | Error msg -> Alcotest.failf "should parse: %s" msg
  | Ok (g, s) ->
      Alcotest.(check int) "nodes" 2 (DG.size g);
      Alcotest.(check int) "edges" 1 (DG.edge_count g);
      Alcotest.(check int) "tuples" 1 (TR.cardinal s)

let rejected name text =
  ( name,
    `Quick,
    fun () ->
      match Io.instance_of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input: %s" name )

let malformed_cases =
  [
    rejected "node missing value" "node v1\n";
    rejected "node non-integer value" "node v1 zero\n";
    rejected "duplicate node name" "node v1 0\nnode v1 1\n";
    rejected "edge missing target" "node v1 0\nedge v1 a\n";
    rejected "edge dangling endpoint" "node v1 0\nedge v1 a v9\n";
    rejected "duplicate edge" "node v1 0\nedge v1 a v1\nedge v1 a v1\n";
    rejected "pair arity" "node v1 0\npair v1\n";
    rejected "pair unknown node" "node v1 0\npair v1 v9\n";
    rejected "mixed tuple arities" "node v1 0\npair v1 v1\ntuple v1 v1 v1\n";
    rejected "unknown keyword" "node v1 0\nfrobnicate v1\n";
  ]

let test_graph_of_string_rejects_pairs () =
  match Io.graph_of_string "node v1 0\npair v1 v1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "graph_of_string accepted a pair line"

let () =
  Alcotest.run "graph_io"
    [
      ( "roundtrip",
        [
          QCheck_alcotest.to_alcotest roundtrip_prop;
          ("fig1 with S2", `Quick, test_fig1_roundtrip);
          ("comments and blank lines", `Quick, test_comments_and_blanks);
        ] );
      ( "malformed",
        malformed_cases
        @ [
            ( "graph_of_string rejects pairs",
              `Quick,
              test_graph_of_string_rejects_pairs );
          ] );
    ]
