(* Tests for the paper's decision procedures: RPQ-definability [3],
   k-RDPQ_mem (Theorem 22), RDPQ_mem (Theorem 24), RDPQ_= (Theorem 32),
   UCRDPQ (Theorem 35), witness search and query synthesis. *)

module Rel = Datagraph.Relation
module TRel = Datagraph.Tuple_relation
module DG = Datagraph.Data_graph
module DV = Datagraph.Data_value
module Gen = Datagraph.Graph_gen
module WS = Definability.Witness_search
module Rpq = Definability.Rpq_definability
module Remd = Definability.Rem_definability
module Reed = Definability.Ree_definability
module Ucd = Definability.Ucrdpq_definability
module Hom = Definability.Hom
module Synth = Definability.Synthesis

let dv = DV.of_int

(* Boolean views over the raw searches (the deprecated [is_definable]
   wrappers these tests used were removed with the tiered-storage PR). *)
let ws_def (o : WS.outcome) =
  match o.verdict with
  | WS.Definable -> true
  | WS.Not_definable _ -> false
  | WS.Exhausted -> failwith "search truncated; raise max_tuples"

let rpq_def ?max_tuples g s = ws_def (Rpq.search ?max_tuples g s)
let rem_def ?max_tuples g s = ws_def (Remd.search ?max_tuples g s)
let krem_def ?max_tuples g ~k s = ws_def (Remd.search_k ?max_tuples g ~k s)

let ree_def ?max_size g s =
  match Reed.verdict (Reed.search ?max_size g s) with
  | Some b -> b
  | None -> failwith "REE closure truncated; raise max_size"

let fig1 = Gen.fig1 ()
let s1 = Gen.fig1_s1 fig1
let s2 = Gen.fig1_s2 fig1
let s3 = Gen.fig1_s3 fig1

let pairs g names =
  Rel.of_list (DG.size g)
    (List.map (fun (u, v) -> (DG.node_of_name g u, DG.node_of_name g v)) names)

(* ---------- witness search engine ---------- *)

let test_ws_trivial () =
  (* Two isolated nodes, one self-block: only (i,i) pairs are
     witnessable, by the empty block sequence. *)
  let cfg =
    {
      WS.num_states = 2;
      sources = [| 0; 1 |];
      node_of = Fun.id;
      blocks = [| { WS.name = "a"; succ = (fun _ -> []) } |];
    }
  in
  let o = WS.search cfg ~target:(Rel.of_list 2 [ (0, 0); (1, 1) ]) in
  (match o.verdict with
  | WS.Definable -> ()
  | _ -> Alcotest.fail "identity should be witnessable");
  Alcotest.(check (list (pair (pair int int) (list string))))
    "empty witnesses"
    [ ((0, 0), []); ((1, 1), []) ]
    o.witnesses;
  (* A cross pair is not witnessable. *)
  let o = WS.search cfg ~target:(Rel.of_list 2 [ (0, 1) ]) in
  match o.verdict with
  | WS.Not_definable [ (0, 1) ] -> ()
  | _ -> Alcotest.fail "cross pair should have no witness"

let test_ws_empty_target () =
  let cfg =
    {
      WS.num_states = 1;
      sources = [| 0 |];
      node_of = Fun.id;
      blocks = [| { WS.name = "a"; succ = (fun s -> [ s ]) } |];
    }
  in
  match (WS.search cfg ~target:(Rel.empty 1)).verdict with
  | WS.Definable -> ()
  | _ -> Alcotest.fail "empty target is trivially definable"

let test_ws_truncation () =
  (* A line long enough that max_tuples = 2 cannot finish. *)
  let cfg =
    {
      WS.num_states = 5;
      sources = [| 0; 1; 2; 3; 4 |];
      node_of = Fun.id;
      blocks = [| { WS.name = "a"; succ = (fun s -> if s < 4 then [ s + 1 ] else []) } |];
    }
  in
  match (WS.search ~max_tuples:2 cfg ~target:(Rel.of_list 5 [ (0, 4) ])).verdict with
  | WS.Exhausted -> ()
  | _ -> Alcotest.fail "expected truncation"

(* ---------- RPQ-definability ---------- *)

let test_rpq_fig1 () =
  Alcotest.(check bool) "S1 yes" true (rpq_def fig1 s1);
  Alcotest.(check bool) "S2 no" false (rpq_def fig1 s2);
  Alcotest.(check bool) "S3 no" false (rpq_def fig1 s3)

let test_rpq_structured () =
  (* On a line a->b->c, {(0,2)} is defined by the word of length 2. *)
  let line = Gen.line ~values:[ dv 0; dv 0; dv 0 ] ~label:"a" in
  let s = Rel.of_list 3 [ (0, 2) ] in
  Alcotest.(check bool) "line pair" true (rpq_def line s);
  (* On a 2-cycle with equal values, {(0,1)} is not RPQ-definable: every
     word connecting 0 to 1 also connects 1 to 0. *)
  let c2 = Gen.cycle ~values:[ dv 0; dv 0 ] ~label:"a" in
  Alcotest.(check bool) "cycle pair" false
    (rpq_def c2 (Rel.of_list 2 [ (0, 1) ]));
  (* ... but the full cycle relation is definable. *)
  Alcotest.(check bool) "cycle both" true
    (rpq_def c2 (Rel.of_list 2 [ (0, 1); (1, 0) ]));
  (* Unreachable pair: not definable. *)
  let line2 = Gen.line ~values:[ dv 0; dv 0 ] ~label:"a" in
  Alcotest.(check bool) "unreachable" false
    (rpq_def line2 (Rel.of_list 2 [ (1, 0) ]))

let test_rpq_identity_and_empty () =
  let g = Gen.fig1 () in
  Alcotest.(check bool) "empty relation" true
    (rpq_def g (Rel.empty (DG.size g)));
  (* The identity is defined by ε. *)
  Alcotest.(check bool) "identity" true
    (rpq_def g (Rel.identity (DG.size g)))

let test_rpq_synthesis () =
  let o = Rpq.search fig1 s1 in
  match o.verdict with
  | WS.Not_definable _ | WS.Exhausted -> Alcotest.fail "S1 should be definable"
  | WS.Definable ->
      let e = Rpq.query_of_witnesses o.witnesses in
      let r = Regexp.Nfa.eval_on_graph fig1 (Regexp.Nfa.of_regex e) in
      Alcotest.(check bool) "synthesized defines S1" true (Rel.equal r s1)

(* ---------- k-RDPQ_mem-definability ---------- *)

let test_krem_fig1 () =
  Alcotest.(check bool) "S2 k=1 no" false (krem_def fig1 ~k:1 s2);
  Alcotest.(check bool) "S2 k=2 yes" true (krem_def fig1 ~k:2 s2);
  Alcotest.(check bool) "S3 k=1 no" false (krem_def fig1 ~k:1 s3);
  Alcotest.(check bool) "S3 k=2 yes" true (krem_def fig1 ~k:2 s3);
  (* k=0 coincides with RPQ-definability. *)
  Alcotest.(check bool) "S1 k=0 yes" true (krem_def fig1 ~k:0 s1);
  Alcotest.(check bool) "S2 k=0 no" false (krem_def fig1 ~k:0 s2)

let test_krem_monotone_in_k () =
  (* If definable with k registers then with k+1 too. *)
  List.iter
    (fun s ->
      let d1 = krem_def fig1 ~k:1 s in
      let d2 = krem_def fig1 ~k:2 s in
      Alcotest.(check bool) "monotone" true ((not d1) || d2))
    [ s1; s2; s3 ]

let test_krem_synthesis () =
  match Synth.rem_k fig1 ~k:2 s2 with
  | None -> Alcotest.fail "S2 should be 2-definable"
  | Some v ->
      Alcotest.(check bool) "verified" true v.correct;
      Alcotest.(check bool) "uses at most 2 registers" true
        (Rem_lang.Rem.registers v.query <= 2)

(* ---------- RDPQ_mem-definability (unbounded) ---------- *)

let test_rem_fig1 () =
  Alcotest.(check bool) "S1" true (rem_def fig1 s1);
  Alcotest.(check bool) "S2" true (rem_def fig1 s2);
  Alcotest.(check bool) "S3" true (rem_def fig1 s3);
  let v = DG.node_of_name fig1 in
  let q4rel = Rel.of_list (DG.size fig1) [ (v "v1", v "v2") ] in
  Alcotest.(check bool) "Q4 relation" false (rem_def fig1 q4rel)

let test_rem_profile_vs_delta () =
  (* Lemma 23: the profile search agrees with the explicit δ-register
     assignment-graph search. *)
  List.iter
    (fun (g, s) ->
      Alcotest.(check bool) "profile = delta registers" true
        (rem_def g s
        = krem_def g ~k:(DG.delta g) s))
    [
      (Gen.line ~values:[ dv 0; dv 1; dv 0 ] ~label:"a", Rel.of_list 3 [ (0, 2) ]);
      (Gen.cycle ~values:[ dv 0; dv 1 ] ~label:"a", Rel.of_list 2 [ (0, 1) ]);
      (Gen.cycle ~values:[ dv 0; dv 0 ] ~label:"a", Rel.of_list 2 [ (0, 1) ]);
    ]

let test_rem_synthesis () =
  match Synth.rem fig1 s2 with
  | None -> Alcotest.fail "S2 should be REM-definable"
  | Some v -> Alcotest.(check bool) "verified" true v.correct

(* ---------- RDPQ_=-definability ---------- *)

let test_ree_fig1 () =
  Alcotest.(check bool) "S1" true (ree_def fig1 s1);
  Alcotest.(check bool) "S2" false (ree_def fig1 s2);
  Alcotest.(check bool) "S3" true (ree_def fig1 s3)

let test_ree_closure_height_bound () =
  (* Lemma 28: levels stabilize by n^2; witness heights stay below. *)
  let r = Reed.search fig1 s3 in
  let n = DG.size fig1 in
  Alcotest.(check bool) "height <= n^2" true (r.max_height <= n * n);
  Alcotest.(check bool) "closure nonempty" true (r.closure_size > 0)

let test_ree_truncation () =
  let r = Reed.search ~max_size:2 fig1 s2 in
  Alcotest.(check bool) "truncated gives unknown" true (Reed.verdict r = None)

let test_ree_synthesis () =
  match Synth.ree fig1 s3 with
  | None -> Alcotest.fail "S3 should be REE-definable"
  | Some v -> Alcotest.(check bool) "verified" true v.correct

let test_ree_empty_and_identity () =
  Alcotest.(check bool) "empty" true
    (ree_def fig1 (Rel.empty (DG.size fig1)));
  Alcotest.(check bool) "identity" true
    (ree_def fig1 (Rel.identity (DG.size fig1)))

(* ---------- homomorphisms and UCRDPQ ---------- *)

let test_hom_identity () =
  Alcotest.(check bool) "identity is hom" true
    (Hom.is_hom fig1 (Hom.identity fig1))

let test_hom_conditions () =
  (* A map breaking edge compatibility is rejected. *)
  let g = Gen.line ~values:[ dv 0; dv 1 ] ~label:"a" in
  Alcotest.(check bool) "reversal not hom" false (Hom.is_hom g [| 1; 0 |]);
  (* Data compatibility: same-value pair must stay same-value. *)
  let g2 =
    DG.make
      ~nodes:[ ("x", dv 0); ("y", dv 0); ("x'", dv 0); ("y'", dv 1) ]
      ~edges:[ ("x", "a", "y"); ("x'", "a", "y'") ]
  in
  let x = DG.node_of_name g2 "x" in
  let h = Hom.identity g2 in
  h.(x) <- DG.node_of_name g2 "x'";
  h.(DG.node_of_name g2 "y") <- DG.node_of_name g2 "y'";
  Alcotest.(check bool) "data incompat rejected" false (Hom.is_hom g2 h);
  (* Reverse direction of condition 2: ≠ must stay ≠. *)
  let h' = Hom.identity g2 in
  h'.(DG.node_of_name g2 "x'") <- x;
  h'.(DG.node_of_name g2 "y'") <- DG.node_of_name g2 "y";
  Alcotest.(check bool) "neq collapse rejected" false (Hom.is_hom g2 h')

let test_hom_count () =
  (* On a single a-cycle of 3 equal-value nodes, homs are the rotations. *)
  let c3 = Gen.cycle ~values:[ dv 0; dv 0; dv 0 ] ~label:"a" in
  Alcotest.(check int) "rotations" 3 (Hom.count c3);
  (* With distinct values, data compatibility kills non-identity maps:
     rotation sends a ≠-pair to a ... ≠-pair; all values distinct, so all
     rotations still qualify. *)
  let c3' = Gen.cycle ~values:[ dv 0; dv 1; dv 2 ] ~label:"a" in
  Alcotest.(check int) "distinct values rotations" 3 (Hom.count c3');
  (* Two equal + one distinct value: only identity survives. *)
  let c3'' = Gen.cycle ~values:[ dv 0; dv 0; dv 1 ] ~label:"a" in
  Alcotest.(check int) "only identity" 1 (Hom.count c3'')

let test_hom_find_violating () =
  let c3 = Gen.cycle ~values:[ dv 0; dv 0; dv 0 ] ~label:"a" in
  (* {0} is not preserved by rotation. *)
  let s = TRel.of_list ~universe:3 ~arity:1 [ [ 0 ] ] in
  (match Hom.find_violating c3 s with
  | Some h ->
      Alcotest.(check bool) "certificate is hom" true (Hom.is_hom c3 h);
      Alcotest.(check bool) "moves 0 out" true (not (TRel.mem s [ h.(0) ]))
  | None -> Alcotest.fail "rotation should violate");
  (* The full node set is preserved by everything. *)
  let full = TRel.of_list ~universe:3 ~arity:1 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  Alcotest.(check bool) "full preserved" true (Hom.find_violating c3 full = None)

let test_ucrdpq_fig1 () =
  let v = DG.node_of_name fig1 in
  let q4rel = Rel.of_list (DG.size fig1) [ (v "v1", v "v2") ] in
  Alcotest.(check bool) "Q4 relation definable" true
    (Ucd.is_definable_binary fig1 q4rel);
  Alcotest.(check bool) "S2 definable" true (Ucd.is_definable_binary fig1 s2);
  Alcotest.(check bool) "S3 definable" true (Ucd.is_definable_binary fig1 s3)

let test_ucrdpq_not_definable () =
  let c3 = Gen.cycle ~values:[ dv 0; dv 0; dv 0 ] ~label:"a" in
  let s = TRel.of_list ~universe:3 ~arity:1 [ [ 0 ] ] in
  let r = Ucd.check c3 s in
  Alcotest.(check bool) "not definable" false r.definable;
  match r.violation with
  | Some (h, tup) ->
      Alcotest.(check bool) "certificate" true
        (Hom.is_hom c3 h && not (TRel.mem s (List.map (fun p -> h.(p)) tup)))
  | None -> Alcotest.fail "expected certificate"

let test_ucrdpq_canonical_query () =
  (* Lemma 34's φ_G query actually defines the relation (small graph so
     the n-variable join stays cheap). *)
  let g = Gen.line ~values:[ dv 0; dv 1; dv 0 ] ~label:"a" in
  let s = TRel.of_binary (Rel.of_list 3 [ (0, 2) ]) in
  Alcotest.(check bool) "definable" true (Ucd.is_definable g s);
  match Ucd.defining_query g s with
  | Some q ->
      let r = Query_lang.Conjunctive.eval g q in
      Alcotest.(check bool) "phi_G defines S" true (TRel.equal r s)
  | None -> Alcotest.fail "expected query"

let test_ucrdpq_higher_arity () =
  (* A ternary relation: all triples (u,v,w) along the line. *)
  let g = Gen.line ~values:[ dv 0; dv 1; dv 2 ] ~label:"a" in
  let s = TRel.of_list ~universe:3 ~arity:3 [ [ 0; 1; 2 ] ] in
  (* All values distinct: only the identity hom exists, so definable. *)
  Alcotest.(check bool) "ternary definable" true (Ucd.is_definable g s);
  match Ucd.defining_query g s with
  | Some q ->
      let r = Query_lang.Conjunctive.eval g q in
      Alcotest.(check bool) "phi_G ternary" true (TRel.equal r s)
  | None -> Alcotest.fail "expected query"

(* ---------- degenerate graphs ---------- *)

let test_singleton_graphs () =
  (* One node, no edges: only ∅ and {(0,0)} exist; the identity is
     defined by ε in every language, ∅ by the empty query. *)
  let g = DG.build ~values:[| dv 0 |] ~edges:[] in
  let empty = Rel.empty 1 and id = Rel.identity 1 in
  List.iter
    (fun (name, s, expected) ->
      Alcotest.(check bool) (name ^ " rpq") expected (rpq_def g s);
      Alcotest.(check bool) (name ^ " ree") expected (ree_def g s);
      Alcotest.(check bool) (name ^ " rem") expected (rem_def g s);
      Alcotest.(check bool) (name ^ " uc") expected
        (Ucd.is_definable_binary g s))
    [ ("empty", empty, true); ("identity", id, true) ];
  (* One node with a self-loop: {(0,0)} still definable; and now
     arbitrarily long witness words exist. *)
  let g' = DG.build ~values:[| dv 0 |] ~edges:[ (0, "a", 0) ] in
  Alcotest.(check bool) "loop identity" true (rpq_def g' id)

let test_two_isolated_nodes () =
  (* Two equal-valued isolated nodes: the swap is a homomorphism, so
     {(0,0)} is not even UCRDPQ-definable; the full identity is. *)
  let g = DG.build ~values:[| dv 0; dv 0 |] ~edges:[] in
  let single = Rel.of_list 2 [ (0, 0) ] in
  Alcotest.(check bool) "single diag not definable" false
    (Ucd.is_definable_binary g single);
  Alcotest.(check bool) "nor by REM" false (rem_def g single);
  Alcotest.(check bool) "identity definable" true
    (rem_def g (Rel.identity 2));
  (* With distinct values the swap breaks data compatibility... for
     ISOLATED nodes reachability is trivial, so the swap survives and
     {(0,0)} stays undefinable even with distinct values. *)
  let g' = DG.build ~values:[| dv 0; dv 1 |] ~edges:[] in
  Alcotest.(check bool) "distinct values, still swap" false
    (Ucd.is_definable_binary g' single)

(* ---------- assignment graph conforms to Definition 19 ---------- *)

let test_assignment_graph_def19 () =
  (* For every block ↓r̄.a[t] and every state (v,σ): the successor set
     must be exactly { (v',σ') | (v,a,v') ∈ E, σ' = σ[r̄ → ρ(v)],
     ρ(v'),σ' ⊨ t } — Definition 19, checked against the block decoded
     from its name. *)
  let g = Gen.line ~values:[ dv 0; dv 1; dv 0 ] ~label:"a" in
  let k = 1 in
  let ag = Definability.Assignment_graph.create g ~k in
  let n_states = Definability.Assignment_graph.num_states ag in
  Alcotest.(check int) "state count" (3 * (2 + 1)) n_states;
  Array.iter
    (fun (b : Definability.Witness_search.block) ->
      let decoded =
        Definability.Assignment_graph.basic_block_of_name ag
          b.Definability.Witness_search.name
      in
      for st = 0 to n_states - 1 do
        let v = Definability.Assignment_graph.node_of ag st in
        let sigma = Definability.Assignment_graph.assignment_of ag st in
        let sigma' = Array.copy sigma in
        List.iter
          (fun r -> sigma'.(r) <- Some (DG.value g v))
          decoded.Rem_lang.Basic_rem.bind;
        let expected =
          List.filter
            (fun v' ->
              Rem_lang.Condition.sat decoded.Rem_lang.Basic_rem.cond
                ~d:(DG.value g v') ~assignment:sigma')
            (DG.succ g v decoded.Rem_lang.Basic_rem.label)
          |> List.sort compare
        in
        let got =
          List.map
            (fun st' ->
              let v' = Definability.Assignment_graph.node_of ag st' in
              (* σ' must match the computed one *)
              let sig_got = Definability.Assignment_graph.assignment_of ag st' in
              Alcotest.(check bool) "sigma updated" true (sig_got = sigma');
              v')
            (b.Definability.Witness_search.succ st)
          |> List.sort compare
        in
        Alcotest.(check (list int)) "successor nodes" expected got
      done)
    (Definability.Assignment_graph.blocks ag)

let test_profile_graph_states () =
  let g = Gen.line ~values:[ dv 0; dv 1; dv 0 ] ~label:"a" in
  let pg = Definability.Profile_graph.create g in
  (* Initial states store the start value; ids are dense and project back
     to the right node. *)
  List.iter
    (fun v ->
      let st = Definability.Profile_graph.initial pg v in
      Alcotest.(check int) "projects back" v
        (Definability.Profile_graph.node_of pg st))
    (DG.nodes g);
  (* The canonical path of a witness re-parses to the right shape. *)
  let w =
    Definability.Profile_graph.path_of_witness pg [ "a!"; "a=0" ]
  in
  Alcotest.(check int) "length" 2 (Datagraph.Data_path.length w);
  Alcotest.(check (array int)) "profile" [| 0; 1; 0 |]
    (Datagraph.Data_path.profile w)

(* ---------- witnesses decode to genuine basic REMs ---------- *)

let test_krem_witnesses_decode () =
  (* Every block sequence reported by the k-REM checker decodes (through
     the assignment graph's name table) to a basic k-REM that connects
     its pair and stays inside S — the two conditions of Definition 17. *)
  let g = fig1 and s = s2 and k = 2 in
  let ag = Definability.Assignment_graph.create g ~k in
  let o =
    Definability.Witness_search.search
      (Definability.Assignment_graph.config ag)
      ~target:s
  in
  (match o.Definability.Witness_search.verdict with
  | Definability.Witness_search.Definable -> ()
  | _ -> Alcotest.fail "S2 should be 2-definable");
  List.iter
    (fun ((u, v), names) ->
      let blocks =
        List.map (Definability.Assignment_graph.basic_block_of_name ag) names
      in
      let rel =
        Rem_lang.Register_automaton.eval_on_graph g
          (Rem_lang.Register_automaton.of_basic blocks)
      in
      Alcotest.(check bool) "connecting path" true (Rel.mem rel u v);
      Alcotest.(check bool) "no extraneous pairs" true (Rel.subset rel s))
    o.Definability.Witness_search.witnesses

let test_profile_witnesses_decode () =
  (* Same for the unbounded checker: witnesses decode through the profile
     automaton to e_[w] expressions. *)
  let g = fig1 and s = s3 in
  let pg = Definability.Profile_graph.create g in
  let o =
    Definability.Witness_search.search
      (Definability.Profile_graph.config pg)
      ~target:s
  in
  List.iter
    (fun ((u, v), names) ->
      let w = Definability.Profile_graph.path_of_witness pg names in
      let e = Rem_lang.Basic_rem.of_data_path w in
      let rel =
        Rem_lang.Register_automaton.eval_on_graph g
          (Rem_lang.Register_automaton.of_basic e)
      in
      Alcotest.(check bool) "connecting path" true (Rel.mem rel u v);
      Alcotest.(check bool) "no extraneous pairs" true (Rel.subset rel s))
    o.Definability.Witness_search.witnesses

(* ---------- census ---------- *)

let test_census_line () =
  (* On a 3-node a-line, the RPQ/REE/REM-definable relations are exactly
     the 8 unions of the three distance classes (identity, step, two-step)
     — data tests add nothing because all witness paths are automorphic. *)
  let g = Gen.line ~values:[ dv 0; dv 1; dv 0 ] ~label:"a" in
  let c = Definability.Census.binary ~max_k:1 g in
  Alcotest.(check int) "all relations" 512 c.Definability.Census.relations;
  Alcotest.(check int) "rpq" 8 c.Definability.Census.rpq;
  Alcotest.(check int) "ree" 8 c.Definability.Census.ree;
  Alcotest.(check int) "rem" 8 c.Definability.Census.rem;
  Alcotest.(check int) "k=0 equals rpq" c.Definability.Census.rpq
    c.Definability.Census.krem.(0);
  (* All values distinct on 3 nodes, no symmetry: identity is the only
     hom?  No — constant maps onto a self-loop-free graph fail edges, and
     data compat kills collapses; so UCRDPQ defines everything. *)
  Alcotest.(check int) "ucrdpq" 512 c.Definability.Census.ucrdpq

let test_census_cycle () =
  (* On the equal-valued 3-cycle the homomorphisms are the 3 rotations,
     so UCRDPQ-definable = rotation-closed: the pair orbits are
     {identity, forward-step, backward-step}, giving 2^3 = 8. *)
  let g = Gen.cycle ~values:[ dv 0; dv 0; dv 0 ] ~label:"a" in
  let c = Definability.Census.binary ~max_k:0 g in
  Alcotest.(check int) "ucrdpq = rotation-closed" 8
    c.Definability.Census.ucrdpq;
  Alcotest.(check int) "rpq" 8 c.Definability.Census.rpq

let test_census_sampled () =
  let g = Gen.random ~seed:3 ~n:4 ~delta:2 ~labels:[ "a" ] ~density:0.4 () in
  let c = Definability.Census.binary ~max_k:0 ~sample:20 g in
  Alcotest.(check bool) "sampled" true (c.Definability.Census.relations <= 20);
  Alcotest.(check bool) "hierarchy" true
    (c.Definability.Census.rpq <= c.Definability.Census.ree
    && c.Definability.Census.ree <= c.Definability.Census.rem
    && c.Definability.Census.rem <= c.Definability.Census.ucrdpq)

(* ---------- schema mapping ---------- *)

let test_schema_mapping_fit () =
  let g = fig1 in
  let outcomes =
    Definability.Schema_mapping.fit g
      [ ("s1", s1); ("s2", s2); ("s3", s3) ]
  in
  let lang target =
    match
      List.find_map
        (function
          | Definability.Schema_mapping.Fitted r
            when r.Definability.Schema_mapping.target = target ->
              Some (Definability.Schema_mapping.lang_name
                      r.Definability.Schema_mapping.query)
          | _ -> None)
        outcomes
    with
    | Some l -> l
    | None -> "unfittable"
  in
  (* Least expressive language per relation, per Example 12. *)
  Alcotest.(check string) "s1 as RPQ" "RPQ" (lang "s1");
  Alcotest.(check string) "s2 needs REM" "RDPQmem" (lang "s2");
  Alcotest.(check string) "s3 as REE" "RDPQ=" (lang "s3");
  (* Every fitted rule verifies. *)
  List.iter
    (function
      | Definability.Schema_mapping.Fitted r ->
          let s =
            List.assoc r.Definability.Schema_mapping.target
              [ ("s1", s1); ("s2", s2); ("s3", s3) ]
          in
          Alcotest.(check bool) "verifies" true
            (Definability.Schema_mapping.verify g r s)
      | Definability.Schema_mapping.Unfittable _ ->
          Alcotest.fail "all three are definable")
    outcomes

let test_schema_mapping_unfittable () =
  let g = Gen.cycle ~values:[ dv 0; dv 0; dv 0 ] ~label:"a" in
  let s = Rel.of_list 3 [ (0, 1) ] in
  match Definability.Schema_mapping.fit g [ ("bad", s) ] with
  | [ Definability.Schema_mapping.Unfittable { violation = Some _; _ } ] -> ()
  | _ -> Alcotest.fail "expected an unfittable target with certificate"

(* ---------- cross-language sanity on fig1 ---------- *)

let test_hierarchy_on_fig1 () =
  (* RPQ-definable ⊆ REE-definable ⊆ REM-definable ⊆ UCRDPQ-definable. *)
  List.iter
    (fun s ->
      let rpq = rpq_def fig1 s in
      let ree = ree_def fig1 s in
      let rem = rem_def fig1 s in
      let uc = Ucd.is_definable_binary fig1 s in
      Alcotest.(check bool) "rpq->ree" true ((not rpq) || ree);
      Alcotest.(check bool) "ree->rem" true ((not ree) || rem);
      Alcotest.(check bool) "rem->uc" true ((not rem) || uc))
    [ s1; s2; s3; Rel.empty 10; Rel.identity 10; pairs fig1 [ ("v1", "v2") ] ]

let () =
  Alcotest.run "definability"
    [
      ( "witness search",
        [
          Alcotest.test_case "trivial" `Quick test_ws_trivial;
          Alcotest.test_case "empty target" `Quick test_ws_empty_target;
          Alcotest.test_case "truncation" `Quick test_ws_truncation;
        ] );
      ( "rpq",
        [
          Alcotest.test_case "fig1" `Quick test_rpq_fig1;
          Alcotest.test_case "structured" `Quick test_rpq_structured;
          Alcotest.test_case "identity/empty" `Quick test_rpq_identity_and_empty;
          Alcotest.test_case "synthesis" `Quick test_rpq_synthesis;
        ] );
      ( "k-rem",
        [
          Alcotest.test_case "fig1" `Quick test_krem_fig1;
          Alcotest.test_case "monotone in k" `Quick test_krem_monotone_in_k;
          Alcotest.test_case "synthesis" `Quick test_krem_synthesis;
        ] );
      ( "rem",
        [
          Alcotest.test_case "fig1" `Quick test_rem_fig1;
          Alcotest.test_case "profile vs delta" `Quick test_rem_profile_vs_delta;
          Alcotest.test_case "synthesis" `Quick test_rem_synthesis;
        ] );
      ( "ree",
        [
          Alcotest.test_case "fig1" `Quick test_ree_fig1;
          Alcotest.test_case "height bound" `Quick test_ree_closure_height_bound;
          Alcotest.test_case "truncation" `Quick test_ree_truncation;
          Alcotest.test_case "synthesis" `Quick test_ree_synthesis;
          Alcotest.test_case "empty/identity" `Quick test_ree_empty_and_identity;
        ] );
      ( "homomorphisms",
        [
          Alcotest.test_case "identity" `Quick test_hom_identity;
          Alcotest.test_case "conditions" `Quick test_hom_conditions;
          Alcotest.test_case "count" `Quick test_hom_count;
          Alcotest.test_case "find violating" `Quick test_hom_find_violating;
        ] );
      ( "ucrdpq",
        [
          Alcotest.test_case "fig1" `Quick test_ucrdpq_fig1;
          Alcotest.test_case "not definable" `Quick test_ucrdpq_not_definable;
          Alcotest.test_case "canonical query" `Quick test_ucrdpq_canonical_query;
          Alcotest.test_case "higher arity" `Quick test_ucrdpq_higher_arity;
        ] );
      ( "degenerate graphs",
        [
          Alcotest.test_case "singleton" `Quick test_singleton_graphs;
          Alcotest.test_case "isolated pair" `Quick test_two_isolated_nodes;
        ] );
      ( "assignment graph",
        [
          Alcotest.test_case "definition 19" `Quick test_assignment_graph_def19;
          Alcotest.test_case "profile graph" `Quick test_profile_graph_states;
        ] );
      ( "witness decoding",
        [
          Alcotest.test_case "k-REM witnesses" `Quick test_krem_witnesses_decode;
          Alcotest.test_case "profile witnesses" `Quick
            test_profile_witnesses_decode;
        ] );
      ( "census",
        [
          Alcotest.test_case "line" `Slow test_census_line;
          Alcotest.test_case "cycle" `Quick test_census_cycle;
          Alcotest.test_case "sampled" `Quick test_census_sampled;
        ] );
      ( "schema mapping",
        [
          Alcotest.test_case "fit fig1" `Slow test_schema_mapping_fit;
          Alcotest.test_case "unfittable" `Quick test_schema_mapping_unfittable;
        ] );
      ( "hierarchy",
        [ Alcotest.test_case "fig1 inclusions" `Quick test_hierarchy_on_fig1 ] );
    ]
