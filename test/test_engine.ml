(* The engine layer: registry dispatch, budgets, instance validation, and
   certificate checking — plus agreement between registry verdicts and
   the pre-engine decision modules they wrap. *)

module Rel = Datagraph.Relation
module DG = Datagraph.Data_graph
module TR = Datagraph.Tuple_relation
module Gen = Datagraph.Graph_gen
module Budget = Engine.Budget
module Instance = Engine.Instance
module Outcome = Engine.Outcome
module Registry = Engine.Registry
module Rpq = Definability.Rpq_definability
module Remd = Definability.Rem_definability
module Reed = Definability.Ree_definability
module Ucd = Definability.Ucrdpq_definability

let () = Definability.Deciders.init ()

let ws_def (o : Definability.Witness_search.outcome) =
  match o.verdict with
  | Definability.Witness_search.Definable -> true
  | Definability.Witness_search.Not_definable _ -> false
  | Definability.Witness_search.Exhausted -> failwith "search truncated"

let ree_def g s =
  match Reed.verdict (Reed.search g s) with
  | Some b -> b
  | None -> failwith "REE closure truncated"

let fig1 = Gen.fig1 ()
let s1 = Gen.fig1_s1 fig1
let s2 = Gen.fig1_s2 fig1
let s3 = Gen.fig1_s3 fig1
let all_langs = [ "krem"; "ree"; "rem"; "rpq"; "ucrdpq" ]

let decide ?budget ?(k = 1) lang g s =
  let inst = Instance.of_binary g s in
  match Registry.decide ?budget ~params:{ Registry.k } ~lang inst with
  | Ok o -> o
  | Error msg -> Alcotest.fail msg

let random_instances =
  List.map
    (fun seed ->
      let g =
        Gen.random ~seed ~n:4 ~delta:2 ~labels:[ "a"; "b" ] ~density:0.35 ()
      in
      (g, Gen.random_reachable_relation ~seed g ~count:2))
    [ 1; 2; 3; 4; 5; 6 ]

(* ---------- registry ---------- *)

let test_registry_names () =
  Alcotest.(check (list string)) "all five deciders registered" all_langs
    (Registry.names ())

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_registry_unknown_lang () =
  let inst = Instance.of_binary fig1 s1 in
  match Registry.decide ~lang:"datalog" inst with
  | Ok _ -> Alcotest.fail "dispatch on an unregistered language succeeded"
  | Error msg ->
      Alcotest.(check bool) "error names the language" true
        (contains ~sub:"datalog" msg && contains ~sub:"rpq" msg)

let test_registry_reregister_idempotent () =
  (* init is safe to call again and leaves the same names registered. *)
  Definability.Deciders.init ();
  Alcotest.(check (list string)) "names unchanged" all_langs (Registry.names ())

(* ---------- instance validation ---------- *)

let test_instance_validation () =
  let n = DG.size fig1 in
  (match Instance.create fig1 (TR.empty ~universe:(n + 1) ~arity:2) with
  | Ok _ -> Alcotest.fail "universe mismatch accepted"
  | Error _ -> ());
  (match Instance.create fig1 (TR.empty ~universe:n ~arity:0) with
  | Ok _ -> Alcotest.fail "arity 0 accepted"
  | Error _ -> ());
  match Instance.create fig1 (TR.of_binary s2) with
  | Ok inst ->
      Alcotest.(check int) "arity" 2 (Instance.arity inst);
      Alcotest.(check bool) "binary view packed" true
        (match Instance.binary inst with
        | Some b -> Rel.equal b s2
        | None -> false)
  | Error msg -> Alcotest.fail msg

let test_instance_nonbinary_unsupported () =
  (* Path-query deciders must refuse a ternary relation; ucrdpq takes it. *)
  let n = DG.size fig1 in
  let s = TR.of_list ~universe:n ~arity:3 [ [ 0; 1; 2 ] ] in
  let inst = Instance.create_exn fig1 s in
  List.iter
    (fun lang ->
      match Registry.decide ~lang inst with
      | Ok o -> (
          match o.Outcome.verdict with
          | Outcome.Unknown (Outcome.Unsupported _) -> ()
          | _ -> Alcotest.fail (lang ^ " did not refuse a ternary relation"))
      | Error msg -> Alcotest.fail msg)
    [ "rpq"; "krem"; "rem"; "ree" ];
  match Registry.decide ~lang:"ucrdpq" inst with
  | Ok o ->
      Alcotest.(check bool) "ucrdpq decides ternary relations" true
        (Outcome.definable o <> None)
  | Error msg -> Alcotest.fail msg

(* ---------- agreement with the pre-engine modules ---------- *)

let check_agreement name g s =
  let expect lang expected =
    let k = if lang = "krem" then 2 else 1 in
    let o = decide ~k lang g s in
    Alcotest.(check (option bool))
      (Printf.sprintf "%s: %s" name lang)
      (Some expected) (Outcome.definable o)
  in
  expect "rpq" (ws_def (Rpq.search g s));
  expect "ree" (ree_def g s);
  expect "krem" (ws_def (Remd.search_k g ~k:2 s));
  expect "rem" (ws_def (Remd.search g s));
  expect "ucrdpq" (Ucd.is_definable_binary g s)

let test_agreement_fig1 () =
  check_agreement "S1" fig1 s1;
  check_agreement "S2" fig1 s2;
  check_agreement "S3" fig1 s3

let test_agreement_random () =
  List.iteri
    (fun i (g, s) -> check_agreement (Printf.sprintf "random %d" i) g s)
    random_instances

(* ---------- budgets ---------- *)

let test_budget_take_fuel () =
  let b = Budget.create ~fuel:3 () in
  Alcotest.(check bool) "take 1" true (Budget.take b);
  Alcotest.(check bool) "take 2" true (Budget.take b);
  Alcotest.(check bool) "not yet exhausted" false (Budget.exhausted b);
  Alcotest.(check bool) "take 3" true (Budget.take b);
  Alcotest.(check bool) "take 4 fails" false (Budget.take b);
  Alcotest.(check bool) "sticky" false (Budget.take b);
  Alcotest.(check bool) "exhausted" true (Budget.exhausted b);
  Alcotest.(check int) "used" 3 (Budget.used b)

let test_budget_invalid () =
  Alcotest.check_raises "negative fuel"
    (Invalid_argument "Engine.Budget.create: negative fuel") (fun () ->
      ignore (Budget.create ~fuel:(-1) ()));
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Engine.Budget.create: negative deadline") (fun () ->
      ignore (Budget.create ~deadline_s:(-0.5) ()))

let unknown_exhausted o =
  match o.Outcome.verdict with
  | Outcome.Unknown Outcome.Budget_exhausted -> true
  | _ -> false

let test_fuel_exhaustion_deterministic () =
  (* Tiny fuel starves every decider into the same Unknown on every run,
     and the search state carries nothing over between runs.  The ucrdpq
     CSP proves fig1/S2 preserved almost without branching (AC-3 does the
     work), so only a zero budget reliably starves it. *)
  List.iter
    (fun lang ->
      let fuel = if lang = "ucrdpq" then 0 else 2 in
      let run () =
        decide ~budget:(Budget.create ~fuel ()) ~k:2 lang fig1 s2
      in
      let o1 = run () in
      let o2 = run () in
      Alcotest.(check bool) (lang ^ ": unknown") true (unknown_exhausted o1);
      Alcotest.(check bool)
        (lang ^ ": deterministic steps") true
        (o1.Outcome.stats.steps = o2.Outcome.stats.steps);
      Alcotest.(check string)
        (lang ^ ": deterministic verdict")
        (Outcome.verdict_name o1.Outcome.verdict)
        (Outcome.verdict_name o2.Outcome.verdict);
      (* The starved run corrupts nothing: an unlimited rerun still
         reaches the true verdict. *)
      let full = decide ~k:2 lang fig1 s2 in
      Alcotest.(check bool)
        (lang ^ ": rerun decides") true
        (Outcome.definable full <> None))
    all_langs

let test_deadline_already_expired () =
  List.iter
    (fun lang ->
      let o =
        decide ~budget:(Budget.create ~deadline_s:0.0 ()) ~k:2 lang fig1 s2
      in
      Alcotest.(check bool) (lang ^ ": unknown") true (unknown_exhausted o))
    all_langs

let test_deadline_krem_fig1 () =
  (* The ISSUE acceptance scenario: a 1ms wall-clock deadline on the
     Figure 1 k-REM instance must come back unknown, not wrong.  k = 3
     (10 nodes, (delta+1)^3 assignments each) takes orders of magnitude
     longer than 1ms. *)
  let o =
    decide ~budget:(Budget.create ~deadline_s:0.001 ()) ~k:3 "krem" fig1 s2
  in
  Alcotest.(check bool) "unknown under 1ms deadline" true (unknown_exhausted o)

(* ---------- certificates ---------- *)

let check_cert_accepted name g s lang k =
  let o = decide ~k lang g s in
  match o.Outcome.verdict with
  | Outcome.Definable cert -> (
      let inst = Instance.of_binary g s in
      match Outcome.check_certificate inst cert with
      | Ok () -> ()
      | Error msg ->
          Alcotest.fail (Printf.sprintf "%s: %s cert rejected: %s" name lang msg))
  | _ -> ()

let test_certificates_fig1 () =
  List.iter
    (fun (name, s) ->
      List.iter
        (fun lang -> check_cert_accepted name fig1 s lang 2)
        all_langs)
    [ ("S1", s1); ("S2", s2); ("S3", s3) ]

let test_certificates_random () =
  List.iteri
    (fun i (g, s) ->
      List.iter
        (fun lang -> check_cert_accepted (Printf.sprintf "random %d" i) g s lang 1)
        all_langs)
    random_instances

let test_certificates_empty_relation () =
  (* The empty relation is definable everywhere; its certificates must
     also check (the engine special-cases the empty UCRDPQ union). *)
  let empty = Rel.empty (DG.size fig1) in
  List.iter
    (fun lang -> check_cert_accepted "empty" fig1 empty lang 1)
    all_langs;
  let o = decide "ucrdpq" fig1 empty in
  match o.Outcome.verdict with
  | Outcome.Definable (Outcome.Ucrdpq []) -> ()
  | _ -> Alcotest.fail "empty relation should certify as the empty union"

let test_mutated_certificates_rejected () =
  (* Swapping a real certificate for an empty-language query of the same
     language must fail the check whenever the relation is nonempty. *)
  let inst = Instance.of_binary fig1 s1 in
  List.iter
    (fun (name, cert) ->
      match Outcome.check_certificate inst cert with
      | Ok () -> Alcotest.fail (name ^ ": empty-language mutant accepted")
      | Error _ -> ())
    [
      ("rpq", Outcome.Rpq Regexp.Regex.Empty);
      ("rem", Outcome.Rem Remd.empty_rem);
      ("ree", Outcome.Ree Reed.empty_ree);
      ("ucrdpq", Outcome.Ucrdpq []);
    ]

let test_wrong_language_certificate_rejected () =
  (* An RPQ certificate that defines S1 must still be rejected against
     S2 — the checker compares answers, not shapes. *)
  let o = decide "rpq" fig1 s1 in
  match o.Outcome.verdict with
  | Outcome.Definable cert -> (
      let inst2 = Instance.of_binary fig1 s2 in
      match Outcome.check_certificate inst2 cert with
      | Ok () -> Alcotest.fail "S1 certificate accepted for S2"
      | Error _ -> ())
  | _ -> Alcotest.fail "S1 should be RPQ-definable"

(* ---------- outcome plumbing ---------- *)

let test_counterexample_missing_pairs () =
  let o = decide "rpq" fig1 s2 in
  match o.Outcome.verdict with
  | Outcome.Not_definable (Outcome.Missing_pairs pairs) ->
      Alcotest.(check bool) "pairs reported" true (pairs <> []);
      List.iter
        (fun (u, v) ->
          Alcotest.(check bool) "pair is in S2" true (Rel.mem s2 u v))
        pairs
  | _ -> Alcotest.fail "S2 should be RPQ-refuted with missing pairs"

let test_counterexample_violating_hom () =
  (* On a single-valued 3-cycle the rotation is a homomorphism, so the
     unary relation {0} is not preserved; the counterexample must be a
     genuine homomorphism moving a tuple out. *)
  let dv = Datagraph.Data_value.of_int in
  let c3 = Gen.cycle ~values:[ dv 0; dv 0; dv 0 ] ~label:"a" in
  let s = TR.of_list ~universe:3 ~arity:1 [ [ 0 ] ] in
  let inst = Instance.create_exn c3 s in
  let o =
    match Registry.decide ~lang:"ucrdpq" inst with
    | Ok o -> o
    | Error msg -> Alcotest.fail msg
  in
  match o.Outcome.verdict with
  | Outcome.Not_definable (Outcome.Violating_hom { hom; tuple }) ->
      Alcotest.(check bool) "hom is a hom" true
        (Definability.Hom.is_hom c3 hom);
      Alcotest.(check bool) "tuple in S" true (TR.mem s tuple);
      Alcotest.(check bool) "image escapes S" false
        (TR.mem s (List.map (fun p -> hom.(p)) tuple))
  | _ -> Alcotest.fail "{0} on the 3-cycle should be refuted by a hom"

let () =
  Alcotest.run "engine"
    [
      ( "registry",
        [
          Alcotest.test_case "names" `Quick test_registry_names;
          Alcotest.test_case "unknown language" `Quick test_registry_unknown_lang;
          Alcotest.test_case "re-register" `Quick
            test_registry_reregister_idempotent;
        ] );
      ( "instance",
        [
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "non-binary unsupported" `Quick
            test_instance_nonbinary_unsupported;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "fig1" `Quick test_agreement_fig1;
          Alcotest.test_case "random" `Quick test_agreement_random;
        ] );
      ( "budget",
        [
          Alcotest.test_case "fuel accounting" `Quick test_budget_take_fuel;
          Alcotest.test_case "invalid arguments" `Quick test_budget_invalid;
          Alcotest.test_case "fuel exhaustion deterministic" `Quick
            test_fuel_exhaustion_deterministic;
          Alcotest.test_case "expired deadline" `Quick
            test_deadline_already_expired;
          Alcotest.test_case "1ms deadline on fig1 krem" `Quick
            test_deadline_krem_fig1;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "fig1 accepted" `Quick test_certificates_fig1;
          Alcotest.test_case "random accepted" `Quick test_certificates_random;
          Alcotest.test_case "empty relation" `Quick
            test_certificates_empty_relation;
          Alcotest.test_case "mutants rejected" `Quick
            test_mutated_certificates_rejected;
          Alcotest.test_case "wrong relation rejected" `Quick
            test_wrong_language_certificate_rejected;
        ] );
      ( "outcomes",
        [
          Alcotest.test_case "missing pairs" `Quick
            test_counterexample_missing_pairs;
          Alcotest.test_case "violating hom" `Quick
            test_counterexample_violating_hom;
        ] );
    ]
