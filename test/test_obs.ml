(* The telemetry layer: span nesting and ordering, counter semantics,
   the observation-free guarantee (identical decider results with
   telemetry on and off), the shape of the Chrome trace-event output,
   and the bounded CSP cache's hit/miss accounting. *)

module Gen = Datagraph.Graph_gen
module Instance = Engine.Instance
module Registry = Engine.Registry

let () = Definability.Deciders.init ()

let fig1 = Gen.fig1 ()
let s2 = Gen.fig1_s2 fig1
let all_langs = [ "krem"; "ree"; "rem"; "rpq"; "ucrdpq" ]

let decide lang =
  let inst = Instance.of_binary fig1 s2 in
  let budget = Engine.Budget.create ~fuel:200_000 () in
  match Registry.decide ~budget ~params:{ Registry.k = 2 } ~lang inst with
  | Ok o -> o
  | Error msg -> Alcotest.fail msg

(* Run [f] with [sinks] installed, restoring the disabled state even if
   [f] raises — keeps one failing test from leaking observation into the
   rest of the suite. *)
let observed sinks f =
  Obs.enable sinks;
  Fun.protect ~finally:Obs.disable f

(* ---------- spans ---------- *)

let test_span_passthrough () =
  Alcotest.(check int) "value through disabled span" 42
    (Obs.Span.with_ "x" (fun () -> 42));
  Alcotest.(check int) "value through enabled span" 42
    (observed [ Obs.Sink.null ] (fun () -> Obs.Span.with_ "x" (fun () -> 42)))

let test_span_nesting () =
  let seen = ref [] in
  let sink = Obs.Sink.make (fun s -> seen := s :: !seen) in
  observed [ sink ] (fun () ->
      Obs.Span.with_ "outer" (fun () ->
          Obs.Span.with_ "inner" (fun () -> ());
          Obs.Span.with_ "inner2" (fun () -> ())));
  (* Sinks see spans at exit, innermost first. *)
  let order = List.rev_map (fun (s : Obs.span) -> s.name) !seen in
  Alcotest.(check (list string))
    "exit order" [ "inner"; "inner2"; "outer" ] order;
  let find name = List.find (fun (s : Obs.span) -> s.name = name) !seen in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check int) "outer depth" 0 outer.depth;
  Alcotest.(check int) "inner depth" 1 inner.depth;
  Alcotest.(check bool) "inner within outer" true
    (inner.start_s >= outer.start_s && inner.stop_s <= outer.stop_s);
  List.iter
    (fun (s : Obs.span) ->
      Alcotest.(check bool) (s.name ^ " non-negative") true
        (s.stop_s >= s.start_s))
    !seen

let test_span_exception () =
  let seen = ref [] in
  let sink = Obs.Sink.make (fun s -> seen := s :: !seen) in
  (try
     observed [ sink ] (fun () ->
         Obs.Span.with_ "boom" (fun () -> failwith "no"))
   with Failure _ -> ());
  Alcotest.(check (list string))
    "span recorded on raise" [ "boom" ]
    (List.map (fun (s : Obs.span) -> s.name) !seen);
  let depth_after =
    let d = ref (-1) in
    let probe = Obs.Sink.make (fun s -> d := s.depth) in
    observed [ probe ] (fun () -> Obs.Span.with_ "probe" (fun () -> ()));
    !d
  in
  Alcotest.(check int) "depth restored after raise" 0 depth_after

let test_agg_phases () =
  let agg = Obs.Sink.Agg.create () in
  observed [ Obs.Sink.Agg.sink agg ] (fun () ->
      Obs.Span.with_ "a" (fun () -> ());
      Obs.Span.with_ "a" (fun () -> ());
      Obs.Span.with_ "b" (fun () -> ()));
  match Obs.Sink.Agg.phases agg with
  | [ ("a", 2, ta); ("b", 1, tb) ] ->
      Alcotest.(check bool) "totals non-negative" true (ta >= 0. && tb >= 0.)
  | other ->
      Alcotest.failf "unexpected phases: %s"
        (String.concat ";"
           (List.map (fun (n, c, _) -> Printf.sprintf "%s/%d" n c) other))

(* ---------- counters ---------- *)

let test_counter_semantics () =
  let c = Obs.Counter.make "test.counter" in
  Obs.Counter.incr c;
  Alcotest.(check int) "disabled incr is a no-op" 0 (Obs.Counter.value c);
  observed [] (fun () ->
      Obs.Counter.incr c;
      Obs.Counter.incr c;
      Obs.Counter.add c 3);
  Alcotest.(check int) "monotone while enabled" 5 (Obs.Counter.value c);
  Alcotest.(check int) "value survives disable" 5 (Obs.Counter.value c);
  Alcotest.(check bool) "catalogued" true
    (List.mem_assoc "test.counter" (Obs.Counter.all ()));
  observed [] (fun () -> ());
  Alcotest.(check int) "enable resets" 0 (Obs.Counter.value c)

let test_budget_counters_flushed () =
  observed [] (fun () -> ignore (decide "rpq"));
  let v name = List.assoc name (Obs.Counter.all ()) in
  Alcotest.(check bool) "takes published" true (v "budget.takes" > 0);
  Alcotest.(check bool) "polls published" true (v "budget.deadline_polls" > 0)

(* ---------- observation-freedom ---------- *)

(* Telemetry must not change any decision: run every decider with
   telemetry off, then again under an aggregator + trace sink, and
   require byte-identical verdicts (Marshal catches any drift in
   certificates or counterexamples, not just the constructor). *)
let test_observation_free () =
  List.iter
    (fun lang ->
      Obs.disable ();
      let off = decide lang in
      let agg = Obs.Sink.Agg.create () and tr = Obs.Sink.Trace.create () in
      let on =
        observed
          [ Obs.Sink.Agg.sink agg; Obs.Sink.Trace.sink tr ]
          (fun () -> decide lang)
      in
      Alcotest.(check string)
        (lang ^ ": verdict unchanged by observation")
        (Marshal.to_string off.Engine.Outcome.verdict [])
        (Marshal.to_string on.Engine.Outcome.verdict []);
      Alcotest.(check int)
        (lang ^ ": step count unchanged by observation")
        off.stats.steps on.stats.steps;
      (* And the observed run actually observed something. *)
      Alcotest.(check bool)
        (lang ^ ": root span recorded")
        true
        (List.exists
           (fun (n, _, _) -> n = "decide." ^ lang)
           (Obs.Sink.Agg.phases agg)))
    all_langs

(* ---------- trace shape ---------- *)

(* A minimal JSON reader — just enough grammar to check the trace's
   shape without adding a JSON dependency to the test suite. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else failwith (Printf.sprintf "expected %c at %d" c !pos)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | Some '"' -> incr pos
      | Some '\\' ->
          incr pos;
          (match peek () with
          | Some 'u' ->
              pos := !pos + 5;
              Buffer.add_char b '?'
          | Some c ->
              incr pos;
              Buffer.add_char b
                (match c with
                | 'n' -> '\n'
                | 't' -> '\t'
                | 'r' -> '\r'
                | c -> c)
          | None -> failwith "eof in escape");
          go ()
      | Some c ->
          incr pos;
          Buffer.add_char b c;
          go ()
      | None -> failwith "eof in string"
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (
          incr pos;
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((k, v) :: acc))
            | _ -> failwith "bad object"
          in
          fields []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (
          incr pos;
          Arr [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (v :: acc)
            | Some ']' ->
                incr pos;
                Arr (List.rev (v :: acc))
            | _ -> failwith "bad array"
          in
          items []
    | Some 't' ->
        pos := !pos + 4;
        Bool true
    | Some 'f' ->
        pos := !pos + 5;
        Bool false
    | Some 'n' ->
        pos := !pos + 4;
        Null
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          &&
          match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          incr pos
        done;
        Num (float_of_string (String.sub s start (!pos - start)))
    | None -> failwith "eof"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then failwith "trailing garbage";
  v

let test_trace_shape () =
  let tr = Obs.Sink.Trace.create () in
  observed [ Obs.Sink.Trace.sink tr ] (fun () -> ignore (decide "ucrdpq"));
  let counters = Obs.Counter.all () in
  let txt = Obs.Sink.Trace.to_string ~counters tr in
  match parse_json txt with
  | Arr events ->
      Alcotest.(check bool) "non-empty" true (events <> []);
      let field k = function
        | Obj fields -> List.assoc_opt k fields
        | _ -> None
      in
      List.iter
        (fun ev ->
          (match field "name" ev with
          | Some (Str _) -> ()
          | _ -> Alcotest.fail "event without a name");
          (match field "ts" ev with
          | Some (Num ts) ->
              Alcotest.(check bool) "ts non-negative" true (ts >= 0.)
          | _ -> Alcotest.fail "event without ts");
          match field "ph" ev with
          | Some (Str "X") -> (
              match field "dur" ev with
              | Some (Num d) ->
                  Alcotest.(check bool) "dur non-negative" true (d >= 0.)
              | _ -> Alcotest.fail "complete event without dur")
          | Some (Str "C") -> (
              match field "args" ev with
              | Some (Obj [ ("value", Num _) ]) -> ()
              | _ -> Alcotest.fail "counter event without args.value")
          | _ -> Alcotest.fail "event with unexpected ph")
        events;
      (* Every registered counter and the root span show up by name. *)
      let names =
        List.filter_map
          (fun ev ->
            match field "name" ev with Some (Str s) -> Some s | _ -> None)
          events
      in
      Alcotest.(check bool) "decide span present" true
        (List.mem "decide.ucrdpq" names);
      List.iter
        (fun (cname, _) ->
          Alcotest.(check bool) (cname ^ " counter present") true
            (List.mem cname names))
        counters
  | _ -> Alcotest.fail "trace is not a JSON array"

(* The streaming sink must leave a complete, loadable JSON array even
   when the traced computation raises — the in-memory collector's
   failure mode this replaces for the CLI's --trace. *)
let test_trace_stream_survives_exception () =
  let path = Filename.temp_file "obs_stream" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let stream = Obs.Sink.Trace.stream oc in
  (try
     observed
       [ Obs.Sink.Trace.stream_sink stream ]
       (fun () ->
         Obs.Span.with_ "outer" (fun () ->
             Obs.Span.with_ "inner" (fun () -> ());
             failwith "boom"))
   with Failure _ -> ());
  Obs.Sink.Trace.close_stream ~counters:[ ("some.counter", 7) ] stream;
  (* Idempotent: a second close (e.g. at_exit after an explicit close)
     must not corrupt the file. *)
  Obs.Sink.Trace.close_stream stream;
  close_out oc;
  let txt = In_channel.with_open_text path In_channel.input_all in
  match parse_json txt with
  | Arr events ->
      let names =
        List.filter_map
          (fun ev ->
            match ev with
            | Obj fields -> (
                match List.assoc_opt "name" fields with
                | Some (Str s) -> Some s
                | _ -> None)
            | _ -> None)
          events
      in
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " present") true (List.mem n names))
        [ "inner"; "outer"; "some.counter" ]
  | _ -> Alcotest.fail "streamed trace is not a JSON array"

(* ---------- bounded CSP cache ---------- *)

(* Alternating searches over two distinct graphs must both stay resident
   (the old single-slot cache thrashed: every probe but the first was a
   miss). *)
let test_csp_cache_alternation () =
  let g1 = Gen.random ~seed:11 ~n:5 ~delta:2 ~labels:[ "a" ] ~density:0.4 ()
  and g2 = Gen.random ~seed:12 ~n:5 ~delta:2 ~labels:[ "a" ] ~density:0.4 () in
  observed [] (fun () ->
      for _ = 1 to 3 do
        ignore (Definability.Hom.count g1);
        ignore (Definability.Hom.count g2)
      done);
  let counters = Obs.Counter.all () in
  let v name = List.assoc name counters in
  Alcotest.(check int) "one build per distinct graph" 2
    (v "hom.csp_cache_misses");
  Alcotest.(check int) "remaining probes hit" 4 (v "hom.csp_cache_hits")

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "passthrough" `Quick test_span_passthrough;
          Alcotest.test_case "nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "exceptional exit" `Quick test_span_exception;
          Alcotest.test_case "aggregation" `Quick test_agg_phases;
        ] );
      ( "counters",
        [
          Alcotest.test_case "semantics" `Quick test_counter_semantics;
          Alcotest.test_case "budget flush" `Quick test_budget_counters_flushed;
        ] );
      ( "observation-freedom",
        [
          Alcotest.test_case "all deciders identical" `Quick
            test_observation_free;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome trace shape" `Quick test_trace_shape;
          Alcotest.test_case "stream survives exceptions" `Quick
            test_trace_stream_survives_exception;
        ] );
      ( "csp-cache",
        [
          Alcotest.test_case "alternating graphs" `Quick
            test_csp_cache_alternation;
        ] );
    ]
