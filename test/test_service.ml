(* The service layer: JSON parsing, the LRU store, content-addressed
   instance keys (invariant under node renaming and value automorphisms,
   collision-free over random instances), the cross-request verdict
   cache (hit/miss, revalidation, Unknown never cached), the admission
   gate, and the server end-to-end over a Unix socket. *)

module DG = Datagraph.Data_graph
module TR = Datagraph.Tuple_relation
module Gen = Datagraph.Graph_gen
module Io = Datagraph.Graph_io
module Auto = Datagraph.Automorphism
module Outcome = Engine.Outcome
module Json = Service.Json
module Lru = Service.Lru
module Content_hash = Service.Content_hash
module Cache = Service.Cache
module Tier = Service.Tier
module Wire = Service.Wire
module Server = Service.Server
module Client = Service.Client

let () = Definability.Deciders.init ()

let fig1 = Gen.fig1 ()
let s2 = TR.of_binary (Gen.fig1_s2 fig1)
let s3 = TR.of_binary (Gen.fig1_s3 fig1)

let verdict_repr (o : Outcome.t) =
  match o.verdict with
  | Outcome.Definable c ->
      Printf.sprintf "definable[%s]" (Outcome.certificate_to_string c)
  | Outcome.Not_definable _ -> "not_definable"
  | Outcome.Unknown r -> Printf.sprintf "unknown[%s]" (Outcome.reason_to_string r)

(* ---------- Json ---------- *)

let test_json_parse () =
  match Json.parse "  {\"a\":[1,2,3],\"b\":\"x\\ny\",\"c\":true,\"d\":null,\"e\":-1.5e2} " with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok j ->
      let ints =
        Option.bind (Json.member "a" j) Json.to_list
        |> Option.map (List.filter_map Json.to_int)
      in
      Alcotest.(check (option (list int))) "a" (Some [ 1; 2; 3 ]) ints;
      Alcotest.(check (option string)) "b" (Some "x\ny")
        (Option.bind (Json.member "b" j) Json.to_str);
      Alcotest.(check (option bool)) "c" (Some true)
        (Option.bind (Json.member "c" j) Json.to_bool);
      Alcotest.(check bool) "d" true (Json.member "d" j = Some Json.Null);
      Alcotest.(check (option (float 1e-9))) "e" (Some (-150.))
        (Option.bind (Json.member "e" j) Json.to_float)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\n\t\x01");
        ("l", Json.List [ Json.Number 0.; Json.Bool false; Json.Null ]);
        ("o", Json.Obj [ ("k", Json.Number 42.) ]);
      ]
  in
  Alcotest.(check bool) "parse ∘ to_string = id" true
    (Json.parse (Json.to_string v) = Ok v)

let test_json_unicode () =
  Alcotest.(check bool) "BMP escape" true
    (Json.parse "\"\\u00e9\"" = Ok (Json.String "\xc3\xa9"));
  Alcotest.(check bool) "surrogate pair" true
    (Json.parse "\"\\ud83d\\ude00\"" = Ok (Json.String "\xf0\x9f\x98\x80"))

let test_json_errors () =
  List.iter
    (fun doc ->
      match Json.parse doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed JSON: %s" doc)
    [ ""; "{"; "[1 2]"; "\"abc"; "nul"; "{}x"; "{\"a\"}"; "[1,]" ]

let test_json_to_int () =
  Alcotest.(check (option int)) "integral" (Some 2) (Json.to_int (Json.Number 2.));
  Alcotest.(check (option int)) "fractional" None (Json.to_int (Json.Number 2.5))

(* ---------- Lru ---------- *)

let test_lru () =
  let t = Lru.create ~capacity:2 in
  Lru.put t "a" 1;
  Lru.put t "b" 2;
  Alcotest.(check (option int)) "find refreshes" (Some 1) (Lru.find t "a");
  Lru.put t "c" 3;
  (* [b] was least recently used (a was refreshed by the find). *)
  Alcotest.(check (option int)) "b evicted" None (Lru.find t "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find t "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find t "c");
  Alcotest.(check int) "evictions" 1 (Lru.evictions t);
  Lru.remove t "a";
  Alcotest.(check (option int)) "removed" None (Lru.find t "a");
  Alcotest.(check int) "length" 1 (Lru.length t);
  Lru.clear t;
  Alcotest.(check int) "cleared" 0 (Lru.length t)

(* ---------- Content_hash ---------- *)

let rename_nodes g =
  DG.make
    ~nodes:
      (List.map (fun u -> ("renamed" ^ string_of_int u, DG.value g u)) (DG.nodes g))
    ~edges:
      (List.map
         (fun (u, a, v) ->
           ("renamed" ^ string_of_int u, a, "renamed" ^ string_of_int v))
         (DG.edges g))

let key = Content_hash.instance_key ~lang:"rem" ~k:1

let test_hash_name_invariance () =
  Alcotest.(check string) "node names are not observable" (key fig1 s2)
    (key (rename_nodes fig1) s2)

let test_hash_automorphism_invariance () =
  let base = key fig1 s2 in
  List.iter
    (fun pi ->
      Alcotest.(check string) "value automorphism preserves the key" base
        (key (Auto.apply_graph pi fig1) s2))
    (Auto.permutations (DG.domain fig1))

let test_hash_edge_order_invariance () =
  let reordered =
    DG.make
      ~nodes:(List.map (fun u -> (DG.name fig1 u, DG.value fig1 u)) (DG.nodes fig1))
      ~edges:
        (List.rev
           (List.map
              (fun (u, a, v) -> (DG.name fig1 u, a, DG.name fig1 v))
              (DG.edges fig1)))
  in
  Alcotest.(check string) "edge order is not observable" (key fig1 s2)
    (key reordered s2)

let test_hash_sensitivity () =
  let k1 = key fig1 s2 in
  Alcotest.(check bool) "relation matters" true (k1 <> key fig1 s3);
  Alcotest.(check bool) "lang matters" true
    (k1 <> Content_hash.instance_key ~lang:"ree" ~k:1 fig1 s2);
  Alcotest.(check bool) "k matters" true
    (k1 <> Content_hash.instance_key ~lang:"rem" ~k:2 fig1 s2);
  (* Collapsing the value partition (all nodes one value) must change
     the key: the partition is the observable content of the values. *)
  Alcotest.(check bool) "value partition matters" true
    (k1 <> key (DG.constant_values fig1) s2)

let test_hash_no_collisions () =
  (* 10k randomized instances; equal keys must mean equal canonical
     bytes (i.e. genuinely the same problem, which duplicate seeds can
     legitimately produce). *)
  let tbl = Hashtbl.create 4096 in
  let samples = ref 0 in
  for seed = 0 to 4_999 do
    let g = Gen.random ~seed ~n:6 ~delta:3 ~labels:[ "a"; "b" ] ~density:0.25 () in
    List.iter
      (fun count ->
        let s = TR.of_binary (Gen.random_reachable_relation ~seed g ~count) in
        let bytes = Content_hash.instance_bytes ~lang:"rem" ~k:1 g s in
        let k = key g s in
        incr samples;
        match Hashtbl.find_opt tbl k with
        | Some bytes' when bytes' <> bytes ->
            Alcotest.failf "key collision at seed %d" seed
        | Some _ -> ()
        | None -> Hashtbl.add tbl k bytes)
      [ 1; 3 ]
  done;
  Alcotest.(check int) "sample count" 10_000 !samples

(* ---------- Cache ---------- *)

let cache_decide ?fuel ?k cache ~lang g s =
  match Cache.decide cache ?fuel ?k ~lang g s with
  | Ok r -> r
  | Error msg -> Alcotest.fail msg

let test_cache_miss_then_hit () =
  let cache = Cache.create () in
  let o1, origin1 = cache_decide cache ~lang:"rem" fig1 s2 in
  let o2, origin2 = cache_decide cache ~lang:"rem" fig1 s2 in
  Alcotest.(check bool) "first is a miss" true (origin1 = `Miss);
  Alcotest.(check bool) "second is a hit" true (origin2 = `Hit);
  Alcotest.(check string) "same verdict" (verdict_repr o1) (verdict_repr o2);
  Alcotest.(check string) "byte-identical verdict block"
    (Wire.verdict_to_string fig1 ~lang:"rem" o1)
    (Wire.verdict_to_string fig1 ~lang:"rem" o2);
  let stats = Cache.stats cache in
  Alcotest.(check (option int)) "one hit" (Some 1)
    (List.assoc_opt "verdict_hits" stats);
  Alcotest.(check (option int)) "one miss" (Some 1)
    (List.assoc_opt "verdict_misses" stats)

let test_cache_hit_across_renaming () =
  let cache = Cache.create () in
  let _ = cache_decide cache ~lang:"rem" fig1 s2 in
  (* The same problem under renamed nodes and permuted data values hits
     the same cache line. *)
  let renamed = rename_nodes fig1 in
  let _, origin = cache_decide cache ~lang:"rem" renamed s2 in
  Alcotest.(check bool) "renamed hit" true (origin = `Hit);
  let pi = List.hd (List.rev (Auto.permutations (DG.domain fig1))) in
  let _, origin = cache_decide cache ~lang:"rem" (Auto.apply_graph pi fig1) s2 in
  Alcotest.(check bool) "automorphic hit" true (origin = `Hit)

let test_cache_unknown_not_cached () =
  let cache = Cache.create () in
  let o1, origin1 = cache_decide cache ~fuel:1 ~lang:"rem" fig1 s2 in
  Alcotest.(check bool) "exhausted" true
    (match o1.verdict with Outcome.Unknown _ -> true | _ -> false);
  Alcotest.(check bool) "miss" true (origin1 = `Miss);
  let _, origin2 = cache_decide cache ~fuel:1 ~lang:"rem" fig1 s2 in
  Alcotest.(check bool) "still a miss: Unknown is never cached" true
    (origin2 = `Miss);
  (* With a real budget the instance now gets decided and cached. *)
  let o3, _ = cache_decide cache ~lang:"rem" fig1 s2 in
  let _, origin4 = cache_decide cache ~lang:"rem" fig1 s2 in
  Alcotest.(check bool) "definable" true
    (match o3.verdict with Outcome.Definable _ -> true | _ -> false);
  Alcotest.(check bool) "then a hit" true (origin4 = `Hit)

let test_cache_revalidation_drops_bogus_entries () =
  let cache = Cache.create () in
  let o_s2, _ = cache_decide cache ~lang:"rem" fig1 s2 in
  (* Seed the S3 cache line with S2's outcome: its certificate defines
     S2, so revalidation against S3 must fail and force a recompute. *)
  (match Cache.insert cache ~lang:"rem" fig1 s3 o_s2 with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let o, origin = cache_decide cache ~lang:"rem" fig1 s3 in
  Alcotest.(check bool) "bogus entry not served" true (origin = `Miss);
  Alcotest.(check bool) "recomputed verdict differs from the seed" true
    (verdict_repr o <> verdict_repr o_s2);
  Alcotest.(check (option int)) "failure counted" (Some 1)
    (List.assoc_opt "revalidation_failures" (Cache.stats cache))

let test_cache_revalidation_off_serves_seed () =
  let config = { Cache.default_config with Cache.revalidate = false } in
  let cache = Cache.create ~config () in
  let o_s2, _ = cache_decide cache ~lang:"rem" fig1 s2 in
  (match Cache.insert cache ~lang:"rem" fig1 s3 o_s2 with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let o, origin = cache_decide cache ~lang:"rem" fig1 s3 in
  Alcotest.(check bool) "served without revalidation" true (origin = `Hit);
  Alcotest.(check string) "the seeded outcome" (verdict_repr o_s2)
    (verdict_repr o)

let test_cache_eviction () =
  let config = { Cache.default_config with Cache.verdict_capacity = 1 } in
  let cache = Cache.create ~config () in
  let _ = cache_decide cache ~lang:"rem" fig1 s2 in
  let _ = cache_decide cache ~lang:"rem" fig1 s3 in
  let _, origin = cache_decide cache ~lang:"rem" fig1 s2 in
  Alcotest.(check bool) "evicted entry misses again" true (origin = `Miss);
  Alcotest.(check bool) "evictions counted" true
    (match List.assoc_opt "verdict_evictions" (Cache.stats cache) with
    | Some n -> n >= 1
    | None -> false)

(* ---------- Admission ---------- *)

let wait_until ?(timeout_s = 5.) f =
  let t0 = Unix.gettimeofday () in
  let rec loop () =
    if f () then true
    else if Unix.gettimeofday () -. t0 > timeout_s then false
    else begin
      Thread.yield ();
      Thread.delay 0.005;
      loop ()
    end
  in
  loop ()

let test_admission_overload () =
  let g = Server.Admission.make ~max_inflight:1 ~queue_depth:0 in
  Alcotest.(check bool) "first admitted" true (Server.Admission.admit g = `Admitted);
  Alcotest.(check bool) "no queue: overloaded" true
    (Server.Admission.admit g = `Overloaded);
  Server.Admission.release g;
  Alcotest.(check bool) "slot free again" true (Server.Admission.admit g = `Admitted);
  Server.Admission.release g

let test_admission_queueing () =
  let g = Server.Admission.make ~max_inflight:1 ~queue_depth:1 in
  Alcotest.(check bool) "admitted" true (Server.Admission.admit g = `Admitted);
  let second = ref `Overloaded in
  let th = Thread.create (fun () -> second := Server.Admission.admit g) () in
  Alcotest.(check bool) "second waits" true
    (wait_until (fun () -> Server.Admission.waiting g = 1));
  Alcotest.(check bool) "third refused" true
    (Server.Admission.admit g = `Overloaded);
  Server.Admission.release g;
  Thread.join th;
  Alcotest.(check bool) "waiter admitted after release" true (!second = `Admitted);
  Server.Admission.release g

let test_admission_drain () =
  let g = Server.Admission.make ~max_inflight:1 ~queue_depth:4 in
  Alcotest.(check bool) "admitted" true (Server.Admission.admit g = `Admitted);
  let drained = ref false in
  let th =
    Thread.create
      (fun () ->
        Server.Admission.drain g;
        drained := true)
      ()
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "drain waits for the running op" true (not !drained);
  Alcotest.(check bool) "no admissions while draining" true
    (Server.Admission.admit g = `Draining);
  Server.Admission.release g;
  Thread.join th;
  Alcotest.(check bool) "drained" true !drained;
  (* Idempotent, and still refusing. *)
  Server.Admission.drain g;
  Alcotest.(check bool) "still draining" true (Server.Admission.admit g = `Draining)

(* ---------- end-to-end over a Unix socket ---------- *)

let with_server ?(config = Server.default_config) f =
  let path = Filename.temp_file "defsvc" ".sock" in
  let addr = Wire.Unix_sock path in
  let srv = Server.create ~config addr in
  let th = Thread.create Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Thread.join th)
    (fun () -> f addr srv)

let member_str field j = Option.bind (Json.member field j) Json.to_str

let request_ok conn req =
  match Client.request conn req with
  | Error msg -> Alcotest.failf "request failed: %s" msg
  | Ok j -> j

let s2_text = Io.instance_to_string fig1 s2
let s3_text = Io.instance_to_string fig1 s3

let decide_req ?(lang = "rem") instance =
  Wire.Decide { lang; k = None; fuel = None; timeout_s = None; instance }

let test_e2e_ping_decide_cache () =
  with_server (fun addr _srv ->
      Client.with_connection addr (fun conn ->
          let pong = request_ok conn Wire.Ping in
          Alcotest.(check (option string)) "pong" (Some "ok")
            (member_str "status" pong);
          let cold = request_ok conn (decide_req s2_text) in
          let warm = request_ok conn (decide_req s2_text) in
          Alcotest.(check (option string)) "cold misses" (Some "miss")
            (member_str "cache" cold);
          Alcotest.(check (option string)) "warm hits" (Some "hit")
            (member_str "cache" warm);
          let result j =
            match Json.member "result" j with
            | Some r -> Json.to_string r
            | None -> Alcotest.fail "no result field"
          in
          Alcotest.(check string) "identical verdict blocks" (result cold)
            (result warm);
          Alcotest.(check (option string)) "a definable verdict"
            (Some "definable")
            (Option.bind (Json.member "result" warm) (member_str "verdict"));
          let stats = request_ok conn Wire.Stats in
          Alcotest.(check (option int)) "stats sees the hit" (Some 1)
            (Option.bind (Json.member "stats" stats) (fun s ->
                 Option.bind (Json.member "cache_verdict_hits" s) Json.to_int))))

let test_e2e_batch_and_errors () =
  with_server (fun addr _srv ->
      Client.with_connection addr (fun conn ->
          let resp =
            request_ok conn
              (Wire.Batch
                 {
                   lang = "rem";
                   k = None;
                   fuel = None;
                   timeout_s = None;
                   instances = [ s2_text; "node v1\n"; s3_text ];
                 })
          in
          Alcotest.(check (option string)) "ok" (Some "ok")
            (member_str "status" resp);
          match Option.bind (Json.member "results" resp) Json.to_list with
          | Some [ r1; r2; r3 ] ->
              Alcotest.(check (option string)) "first decided" (Some "definable")
                (Option.bind (Json.member "result" r1) (member_str "verdict"));
              Alcotest.(check bool) "second is a per-item error" true
                (Json.member "error" r2 <> None);
              Alcotest.(check bool) "third still decided" true
                (Json.member "result" r3 <> None)
          | _ -> Alcotest.fail "expected three results");
      (* A syntactically broken request line answers an error response,
         and the connection survives for the next request. *)
      Client.with_connection addr (fun conn ->
          (match Client.request_raw conn "{\"op\":}" with
          | Ok line ->
              Alcotest.(check bool) "error status" true
                (match Json.parse line with
                | Ok j -> member_str "status" j = Some "error"
                | Error _ -> false)
          | Error msg -> Alcotest.failf "transport failed: %s" msg);
          let pong = request_ok conn Wire.Ping in
          Alcotest.(check (option string)) "connection survives" (Some "ok")
            (member_str "status" pong)))

let test_e2e_ping_while_busy () =
  with_server (fun addr _srv ->
      let sleeper_status = ref None in
      let sleeper =
        Thread.create
          (fun () ->
            Client.with_connection addr (fun conn ->
                let j = request_ok conn (Wire.Sleep { ms = 600 }) in
                sleeper_status := member_str "status" j))
          ()
      in
      Thread.delay 0.1;
      let t0 = Unix.gettimeofday () in
      Client.with_connection addr (fun conn ->
          let pong = request_ok conn Wire.Ping in
          Alcotest.(check (option string)) "pong while busy" (Some "ok")
            (member_str "status" pong));
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "ping did not queue behind the sleeper" true
        (elapsed < 0.4);
      Thread.join sleeper;
      Alcotest.(check (option string)) "sleeper completed" (Some "ok")
        !sleeper_status)

let test_e2e_overload () =
  let config = { Server.default_config with Server.max_inflight = 1; queue_depth = 0 } in
  with_server ~config (fun addr _srv ->
      let sleeper =
        Thread.create
          (fun () ->
            Client.with_connection addr (fun conn ->
                ignore (request_ok conn (Wire.Sleep { ms = 600 }))))
          ()
      in
      Thread.delay 0.15;
      Client.with_connection addr (fun conn ->
          let j = request_ok conn (Wire.Sleep { ms = 10 }) in
          Alcotest.(check (option string)) "refused" (Some "overloaded")
            (member_str "status" j);
          Alcotest.(check (option string)) "with a reason" (Some "queue_full")
            (member_str "detail" j));
      Thread.join sleeper)

let with_pool_size n f =
  let old = Par.Pool.size () in
  Par.Pool.set_size n;
  Fun.protect ~finally:(fun () -> Par.Pool.set_size old) f

let pool_stat stats name =
  Option.bind (Json.member "stats" stats) (fun s ->
      Option.bind (Json.member name s) Json.to_int)

let test_e2e_pool_execution () =
  (* With a multi-domain pool, request bodies run on pool workers via
     [submit] — the handler thread never executes them itself, so every
     pool-served request implies at least one successful steal.  The
     verdict must nonetheless be byte-identical to the inline path. *)
  let inline =
    with_pool_size 1 (fun () ->
        with_server (fun addr _srv ->
            Client.with_connection addr (fun conn ->
                request_ok conn (decide_req s2_text))))
  in
  with_pool_size 4 (fun () ->
      with_server (fun addr _srv ->
          Client.with_connection addr (fun conn ->
              let before =
                Option.value ~default:0
                  (pool_stat (request_ok conn Wire.Stats) "pool_steal_success")
              in
              let pooled = request_ok conn (decide_req s2_text) in
              let batch =
                request_ok conn
                  (Wire.Batch
                     {
                       lang = "rem";
                       k = None;
                       fuel = None;
                       timeout_s = None;
                       instances = [ s2_text; s3_text ];
                     })
              in
              Alcotest.(check (option string)) "batch ok" (Some "ok")
                (member_str "status" batch);
              let result j =
                match Json.member "result" j with
                | Some r -> Json.to_string r
                | None -> Alcotest.fail "no result field"
              in
              Alcotest.(check string) "pool verdict = inline verdict"
                (result inline) (result pooled);
              let stats = request_ok conn Wire.Stats in
              (match pool_stat stats "pool_steal_success" with
              | Some after ->
                  Alcotest.(check bool) "workers stole the request bodies"
                    true (after > before)
              | None -> Alcotest.fail "stats missing pool_steal_success");
              List.iter
                (fun name ->
                  match pool_stat stats name with
                  | Some v ->
                      Alcotest.(check bool) (name ^ " non-negative") true
                        (v >= 0)
                  | None -> Alcotest.failf "stats missing %s" name)
                [ "pool_size"; "pool_deque_push"; "pool_deque_pop";
                  "pool_steal_fail"; "pool_submitted"; "pool_submit_rejected";
                  "pool_nested_inline" ])))

let test_e2e_pool_queue_full () =
  (* A zero-capacity submission queue refuses every pool hand-off: the
     server answers [overloaded]/[queue_full] instead of wedging, and
     ping (which never touches the pool) still works. *)
  with_pool_size 4 (fun () ->
      let config = { Server.default_config with Server.pool_queue_depth = 0 } in
      with_server ~config (fun addr _srv ->
          Client.with_connection addr (fun conn ->
              let j = request_ok conn (decide_req s2_text) in
              Alcotest.(check (option string)) "refused" (Some "overloaded")
                (member_str "status" j);
              Alcotest.(check (option string)) "pool queue full"
                (Some "queue_full") (member_str "detail" j);
              let pong = request_ok conn Wire.Ping in
              Alcotest.(check (option string)) "ping bypasses the pool"
                (Some "ok") (member_str "status" pong);
              let stats = request_ok conn Wire.Stats in
              match pool_stat stats "pool_submit_rejected" with
              | Some v ->
                  Alcotest.(check bool) "rejection counted" true (v >= 1)
              | None -> Alcotest.fail "stats missing pool_submit_rejected")))

let test_e2e_shutdown_drains () =
  let path = Filename.temp_file "defsvc" ".sock" in
  let addr = Wire.Unix_sock path in
  let config = { Server.default_config with Server.max_inflight = 1; queue_depth = 0 } in
  let srv = Server.create ~config addr in
  let server_thread = Thread.create Server.run srv in
  let sleeper_status = ref None in
  let sleeper =
    Thread.create
      (fun () ->
        Client.with_connection addr (fun conn ->
            let j = request_ok conn (Wire.Sleep { ms = 400 }) in
            sleeper_status := member_str "status" j))
      ()
  in
  Thread.delay 0.1;
  let t0 = Unix.gettimeofday () in
  Client.with_connection addr (fun conn ->
      let j = request_ok conn Wire.Shutdown in
      Alcotest.(check (option string)) "shutdown ok" (Some "ok")
        (member_str "status" j));
  Alcotest.(check bool) "shutdown waited for the drain" true
    (Unix.gettimeofday () -. t0 > 0.2);
  Thread.join sleeper;
  Alcotest.(check (option string)) "in-flight op was answered, not dropped"
    (Some "ok") !sleeper_status;
  Thread.join server_thread;
  Alcotest.(check bool) "socket file removed" true (not (Sys.file_exists path));
  match Client.connect addr with
  | exception Unix.Unix_error _ -> ()
  | conn ->
      Client.close conn;
      Alcotest.fail "server still accepting after shutdown"

let test_wire_roundtrip () =
  List.iter
    (fun req ->
      Alcotest.(check bool) "request round-trips" true
        (Wire.request_of_string (Wire.request_to_string req) = Ok req))
    [
      Wire.Ping;
      Wire.Stats;
      Wire.Shutdown;
      Wire.Sleep { ms = 250 };
      Wire.Decide
        {
          lang = "krem";
          k = Some 2;
          fuel = Some 100_000;
          timeout_s = None;
          instance = s2_text;
        };
      Wire.Batch
        {
          lang = "rem";
          k = None;
          fuel = None;
          timeout_s = Some 1.5;
          instances = [ s2_text; s3_text ];
        };
      Wire.Compact;
      Wire.Export { limit = Some 5 };
      Wire.Export { limit = None };
      Wire.Import { entries = [ ("d1", "aabb"); ("d2", "00ff") ] };
    ]

(* ---------- durable tier & tiered cache ---------- *)

let fresh_store_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "defsvc-store-%d-%d" (Unix.getpid ()) !counter)

let test_tier_codec () =
  let inst =
    match Engine.Instance.create fig1 s2 with
    | Ok i -> i
    | Error msg -> Alcotest.fail msg
  in
  let o =
    match Engine.Registry.decide ~lang:"rem" inst with
    | Ok o -> o
    | Error msg -> Alcotest.fail msg
  in
  let entry = { Tier.lang = "rem"; k = 1; inst; outcome = o } in
  let raw = Tier.encode entry in
  (match Tier.decode ~check:true raw with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok e ->
      Alcotest.(check string) "lang" "rem" e.Tier.lang;
      Alcotest.(check string) "same verdict" (verdict_repr o)
        (verdict_repr e.Tier.outcome));
  (* Hex round-trip (the export/import wire form). *)
  Alcotest.(check bool) "hex round-trip" true
    (Tier.of_hex (Tier.to_hex raw) = Ok raw);
  (* Corrupt bytes are rejected, not trusted. *)
  Alcotest.(check bool) "garbage refused" true
    (Result.is_error (Tier.decode ~check:true "defv1\ngarbage"));
  Alcotest.(check bool) "wrong magic refused" true
    (Result.is_error (Tier.decode ~check:true ("XX" ^ raw)))

let test_cache_write_through_and_promotion () =
  let dir = fresh_store_dir () in
  let tier = Tier.open_ dir in
  let cache = Cache.create ~durable:tier () in
  let o1, origin1 = cache_decide cache ~lang:"rem" fig1 s2 in
  Alcotest.(check bool) "cold miss" true (origin1 = `Miss);
  Alcotest.(check int) "written through to the store" 1 (Tier.length tier);
  (* A fresh memory tier over the same store: the hit is served by
     promotion from the durable tier. *)
  let cache2 = Cache.create ~durable:tier () in
  let o2, origin2 = cache_decide cache2 ~lang:"rem" fig1 s2 in
  Alcotest.(check bool) "durable hit" true (origin2 = `Hit);
  Alcotest.(check (option int)) "store hit counted" (Some 1)
    (List.assoc_opt "store_hits" (Cache.stats cache2));
  Alcotest.(check string) "byte-identical verdict block"
    (Wire.verdict_to_string fig1 ~lang:"rem" o1)
    (Wire.verdict_to_string fig1 ~lang:"rem" o2);
  (* Promoted: the next lookup is a pure memory hit. *)
  let _, origin3 = cache_decide cache2 ~lang:"rem" fig1 s2 in
  Alcotest.(check bool) "promoted to memory" true (origin3 = `Hit);
  Alcotest.(check (option int)) "no second store probe" (Some 1)
    (List.assoc_opt "store_hits" (Cache.stats cache2));
  Cache.close cache2;
  ignore cache

let test_cache_restart_byte_identical () =
  (* The acceptance property: close everything, reopen the directory,
     and the warm (certificate-revalidated) hit renders byte-identical
     to the cold verdict block. *)
  let dir = fresh_store_dir () in
  let cache = Cache.create ~durable:(Tier.open_ dir) () in
  let o_cold, origin = cache_decide cache ~lang:"rem" fig1 s2 in
  Alcotest.(check bool) "cold miss" true (origin = `Miss);
  Cache.close cache;
  let cache = Cache.create ~durable:(Tier.open_ dir) () in
  let o_warm, origin = cache_decide cache ~lang:"rem" fig1 s2 in
  Alcotest.(check bool) "warm hit after restart" true (origin = `Hit);
  Alcotest.(check string) "byte-identical across restart"
    (Wire.verdict_to_string fig1 ~lang:"rem" o_cold)
    (Wire.verdict_to_string fig1 ~lang:"rem" o_warm);
  Cache.close cache

let test_cache_eviction_backstopped_by_store () =
  (* With a 1-entry memory tier, an evicted verdict survives in the
     durable tier and comes back as a hit, not a recompute. *)
  let dir = fresh_store_dir () in
  let config = { Cache.default_config with Cache.verdict_capacity = 1 } in
  let cache = Cache.create ~config ~durable:(Tier.open_ dir) () in
  let _ = cache_decide cache ~lang:"rem" fig1 s2 in
  let _ = cache_decide cache ~lang:"rem" fig1 s3 in
  (* s2 was evicted from memory, but the store still has it. *)
  let _, origin = cache_decide cache ~lang:"rem" fig1 s2 in
  Alcotest.(check bool) "evicted entry hits the store" true (origin = `Hit);
  Alcotest.(check bool) "served from the durable tier" true
    (match List.assoc_opt "store_hits" (Cache.stats cache) with
    | Some n -> n >= 1
    | None -> false);
  Cache.close cache

(* ---------- consistent-hash ring ---------- *)

let test_ring_deterministic () =
  let names = [ "shard0"; "shard1"; "shard2" ] in
  let r1 = Service.Ring.create names in
  let r2 = Service.Ring.create names in
  let keys = List.init 200 (fun i -> Printf.sprintf "digest-%d" i) in
  List.iter
    (fun k ->
      Alcotest.(check string) "same placement" (Service.Ring.shard r1 k)
        (Service.Ring.shard r2 k))
    keys;
  (* Every shard owns a nonempty share of 200 random keys. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " owns keys") true
        (List.exists (fun k -> Service.Ring.shard r1 k = name) keys))
    names;
  (* Adding a shard only moves keys toward the new shard. *)
  let r3 = Service.Ring.create (names @ [ "shard3" ]) in
  List.iter
    (fun k ->
      let before = Service.Ring.shard r1 k and after = Service.Ring.shard r3 k in
      Alcotest.(check bool) "moves only to the new shard" true
        (before = after || after = "shard3"))
    keys

(* ---------- client retry ---------- *)

let test_client_retry_backoff () =
  let path = Filename.temp_file "defsvc" ".sock" in
  Sys.remove path;
  (* Nothing is listening yet: a plain connect must fail fast... *)
  (match Client.connect (Wire.Unix_sock path) with
  | exception Unix.Unix_error _ -> ()
  | conn ->
      Client.close conn;
      Alcotest.fail "connected to nothing");
  (* ...while a retrying connect outlasts a server that binds late. *)
  let srv = ref None in
  let starter =
    Thread.create
      (fun () ->
        Thread.delay 0.3;
        let s = Server.create (Wire.Unix_sock path) in
        srv := Some s;
        Server.run s)
      ()
  in
  let conn = Client.connect ~retries:30 ~backoff_s:0.02 (Wire.Unix_sock path) in
  let pong = request_ok conn Wire.Ping in
  Alcotest.(check (option string)) "pong after retrying" (Some "ok")
    (member_str "status" pong);
  Client.close conn;
  (match !srv with Some s -> Server.shutdown s | None -> ());
  Thread.join starter

let test_client_retry_jitter () =
  (* Pure-function contract of the connect backoff: every delay lands in
     the ±25% band around base·2^attempt, consecutive attempts strictly
     increase (bands never overlap: 1.25 < 2·0.75), and different salts
     actually decorrelate instead of collapsing to one value. *)
  let base = 0.05 in
  let distinct = Hashtbl.create 64 in
  for salt = 1 to 50 do
    let prev = ref neg_infinity in
    for attempt = 0 to 6 do
      let d = Client.retry_delay_s ~salt ~attempt base in
      let nominal = base *. (2. ** float_of_int attempt) in
      if d < 0.75 *. nominal || d >= 1.25 *. nominal then
        Alcotest.failf "delay %g outside [%g, %g) (salt %d attempt %d)" d
          (0.75 *. nominal) (1.25 *. nominal) salt attempt;
      if d <= !prev then
        Alcotest.failf "delay not increasing at salt %d attempt %d" salt
          attempt;
      prev := d;
      if attempt = 3 then Hashtbl.replace distinct (Printf.sprintf "%h" d) ()
    done
  done;
  Alcotest.(check bool) "salts decorrelate" true (Hashtbl.length distinct > 10);
  (* Deterministic: same inputs, same delay. *)
  Alcotest.(check bool) "pure" true
    (Client.retry_delay_s ~salt:7 ~attempt:2 base
    = Client.retry_delay_s ~salt:7 ~attempt:2 base)

(* ---------- sharded serving end-to-end ---------- *)

let with_sharded_cluster ?(store = true) f =
  let mk_server i =
    let path = Filename.temp_file "defshard" ".sock" in
    let store_dir = if store then Some (fresh_store_dir ()) else None in
    let config =
      {
        Server.default_config with
        Server.store_dir;
        shard = Some (i, 2);
        fsync = Store.Log.Always;
      }
    in
    let srv = Server.create ~config (Wire.Unix_sock path) in
    (srv, Thread.create Server.run srv)
  in
  let (s0, t0) = mk_server 0 and (s1, t1) = mk_server 1 in
  let shards =
    [ ("shard0", Server.address s0); ("shard1", Server.address s1) ]
  in
  let rpath = Filename.temp_file "defroute" ".sock" in
  let router = Service.Router.create ~shards (Wire.Unix_sock rpath) in
  let rth = Thread.create Service.Router.run router in
  Fun.protect
    ~finally:(fun () ->
      Service.Router.shutdown router;
      Server.shutdown s0;
      Server.shutdown s1;
      Thread.join rth;
      Thread.join t0;
      Thread.join t1)
    (fun () -> f ~router ~s0 ~s1 (Wire.Unix_sock rpath))

let test_e2e_router_decide () =
  with_sharded_cluster (fun ~router:_ ~s0:_ ~s1:_ addr ->
      Client.with_connection addr (fun conn ->
          let cold = request_ok conn (decide_req s2_text) in
          let warm = request_ok conn (decide_req s2_text) in
          Alcotest.(check (option string)) "cold misses" (Some "miss")
            (member_str "cache" cold);
          Alcotest.(check (option string))
            "warm hits (same problem, same shard)" (Some "hit")
            (member_str "cache" warm);
          let block j =
            match Json.member "result" j with
            | Some r -> Json.to_string r
            | None -> Alcotest.fail "no result"
          in
          Alcotest.(check string) "verdict blocks relay byte-identically"
            (block cold) (block warm);
          (* Aggregated stats see exactly one hit and one miss. *)
          let stats = request_ok conn Wire.Stats in
          let agg field =
            Option.bind (Json.member "stats" stats) (fun s ->
                Option.bind (Json.member field s) Json.to_int)
          in
          Alcotest.(check (option int)) "summed hits" (Some 1)
            (agg "cache_verdict_hits");
          Alcotest.(check (option int)) "summed misses" (Some 1)
            (agg "cache_verdict_misses");
          Alcotest.(check bool) "per-shard breakdown present" true
            (Json.member "shards" stats <> None)))

let test_e2e_router_batch () =
  with_sharded_cluster (fun ~router:_ ~s0:_ ~s1:_ addr ->
      Client.with_connection addr (fun conn ->
          let resp =
            request_ok conn
              (Wire.Batch
                 {
                   lang = "rem";
                   k = None;
                   fuel = None;
                   timeout_s = None;
                   instances = [ s2_text; "node v1\n"; s3_text ];
                 })
          in
          Alcotest.(check (option string)) "ok" (Some "ok")
            (member_str "status" resp);
          match Option.bind (Json.member "results" resp) Json.to_list with
          | Some [ r1; r2; r3 ] ->
              Alcotest.(check (option string)) "first decided"
                (Some "definable")
                (Option.bind (Json.member "result" r1) (member_str "verdict"));
              Alcotest.(check bool) "second is a per-item error" true
                (Json.member "error" r2 <> None);
              Alcotest.(check bool) "third decided" true
                (Json.member "result" r3 <> None)
          | _ -> Alcotest.fail "expected three results in request order"))

let test_e2e_router_delta_chain () =
  with_sharded_cluster (fun ~router:_ ~s0:_ ~s1:_ addr ->
      Client.with_connection addr (fun conn ->
          let first = request_ok conn (decide_req s2_text) in
          let digest =
            match member_str "digest" first with
            | Some d -> d
            | None -> Alcotest.fail "no digest in decide response"
          in
          let delta edit digest =
            request_ok conn
              (Wire.Delta
                 {
                   lang = "rem";
                   k = None;
                   fuel = None;
                   timeout_s = None;
                   digest;
                   edit;
                 })
          in
          let r1 = delta (Wire.Add_node ("w9", 7)) digest in
          Alcotest.(check (option string)) "delta answered" (Some "ok")
            (member_str "status" r1);
          (* Chain a second edit onto the response digest: the router
             must route it to the shard that holds the chained entry. *)
          let digest2 =
            match member_str "digest" r1 with
            | Some d -> d
            | None -> Alcotest.fail "no digest in delta response"
          in
          let r2 = delta (Wire.Add_node ("w10", 8)) digest2 in
          (* A chained digest resolving at all proves the router sent it
             to the shard holding the chain (a wrong shard answers
             "unknown instance digest"). *)
          Alcotest.(check (option string)) "chained delta answered" (Some "ok")
            (member_str "status" r2);
          Alcotest.(check bool) "repair outcome reported" true
            (member_str "repair" r2 <> None)))

let test_e2e_shard_restart_serves_warm () =
  (* Kill one shard (ungracefully: no shutdown, no sync beyond
     fsync=Always), restart it over the same store directory, and the
     verdict it decided earlier is served warm and byte-identical. *)
  let path = Filename.temp_file "defshard" ".sock" in
  let dir = fresh_store_dir () in
  let config =
    {
      Server.default_config with
      Server.store_dir = Some dir;
      fsync = Store.Log.Always;
    }
  in
  let srv = Server.create ~config (Wire.Unix_sock path) in
  let th = Thread.create Server.run srv in
  let cold =
    Client.with_connection (Wire.Unix_sock path) (fun conn ->
        request_ok conn (decide_req s2_text))
  in
  Alcotest.(check (option string)) "cold misses" (Some "miss")
    (member_str "cache" cold);
  Server.shutdown srv;
  Thread.join th;
  (* Restart over the same directory. *)
  let srv = Server.create ~config (Wire.Unix_sock path) in
  let th = Thread.create Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Thread.join th)
    (fun () ->
      Client.with_connection (Wire.Unix_sock path) (fun conn ->
          let warm = request_ok conn (decide_req s2_text) in
          Alcotest.(check (option string)) "warm hit after restart"
            (Some "hit")
            (member_str "cache" warm);
          let block j =
            match Json.member "result" j with
            | Some r -> Json.to_string r
            | None -> Alcotest.fail "no result"
          in
          Alcotest.(check string) "byte-identical verdict block"
            (block cold) (block warm)))

let test_e2e_export_import_compact () =
  with_sharded_cluster (fun ~router:_ ~s0 ~s1 _addr ->
      (* Decide shard-direct on shard0, then hand-carry the hot entry to
         shard1 and check shard1 serves it warm. *)
      let cold =
        Client.with_connection (Server.address s0) (fun conn ->
            request_ok conn (decide_req s2_text))
      in
      Alcotest.(check (option string)) "cold on shard0" (Some "miss")
        (member_str "cache" cold);
      let entries =
        Client.with_connection (Server.address s0) (fun conn ->
            let resp = request_ok conn (Wire.Export { limit = Some 10 }) in
            match Option.bind (Json.member "entries" resp) Json.to_list with
            | Some l ->
                List.filter_map
                  (fun e ->
                    match (member_str "digest" e, member_str "payload" e) with
                    | Some d, Some p -> Some (d, p)
                    | _ -> None)
                  l
            | None -> Alcotest.fail "export returned no entries")
      in
      Alcotest.(check int) "one hot entry exported" 1 (List.length entries);
      Client.with_connection (Server.address s1) (fun conn ->
          let resp = request_ok conn (Wire.Import { entries }) in
          Alcotest.(check (option int)) "imported" (Some 1)
            (Option.bind (Json.member "imported" resp) Json.to_int);
          let warm = request_ok conn (decide_req s2_text) in
          Alcotest.(check (option string)) "imported entry serves warm"
            (Some "hit")
            (member_str "cache" warm);
          (* A compact round-trips and reports store stats. *)
          let c = request_ok conn Wire.Compact in
          Alcotest.(check (option string)) "compact ok" (Some "ok")
            (member_str "status" c));
      (* A poisoned import is refused, not stored. *)
      Client.with_connection (Server.address s1) (fun conn ->
          let resp =
            request_ok conn
              (Wire.Import { entries = [ ("deadbeef", "00ff00ff") ] })
          in
          Alcotest.(check (option int)) "poison rejected" (Some 1)
            (Option.bind (Json.member "rejected" resp) Json.to_int)))

let test_e2e_rebalance () =
  with_sharded_cluster (fun ~router ~s0:_ ~s1:_ addr ->
      (* Decide through the router (lands on its ring owner), then
         rebalance: every hot entry must end up on the shard the ring
         names, so a post-rebalance decide still hits. *)
      Client.with_connection addr (fun conn ->
          ignore (request_ok conn (decide_req s2_text));
          ignore (request_ok conn (decide_req s3_text)));
      (match Service.Router.rebalance router () with
      | Ok _moved -> ()
      | Error msg -> Alcotest.failf "rebalance failed: %s" msg);
      Client.with_connection addr (fun conn ->
          let w2 = request_ok conn (decide_req s2_text) in
          let w3 = request_ok conn (decide_req s3_text) in
          Alcotest.(check (option string)) "s2 still warm" (Some "hit")
            (member_str "cache" w2);
          Alcotest.(check (option string)) "s3 still warm" (Some "hit")
            (member_str "cache" w3)))

(* ---------- observability plane end-to-end ---------- *)

module Metrics = Service.Metrics

let observed f =
  Obs.enable [ Obs.Sink.null ];
  Fun.protect ~finally:Obs.disable f

(* Send a request with a wire envelope (trace id / streaming) and parse
   the response. *)
let request_env conn ~envelope req =
  match Client.request_raw conn (Wire.request_line ~envelope req) with
  | Error msg -> Alcotest.failf "request failed: %s" msg
  | Ok line -> (
      match Json.parse line with
      | Ok j -> j
      | Error msg -> Alcotest.failf "unparsable response: %s" msg)

let result_block j =
  match Json.member "result" j with
  | Some r -> Json.to_string r
  | None -> Alcotest.fail "no result field"

let test_e2e_stats_uptime_version () =
  with_server (fun addr _srv ->
      Client.with_connection addr (fun conn ->
          let stats = request_ok conn Wire.Stats in
          Alcotest.(check (option string)) "build string reported"
            (Some Metrics.build_string)
            (member_str "version" stats);
          let stat name =
            Option.bind (Json.member "stats" stats) (fun s ->
                Option.bind (Json.member name s) Json.to_int)
          in
          (match stat "uptime_seconds" with
          | Some u -> Alcotest.(check bool) "uptime sane" true (u >= 0 && u < 3600)
          | None -> Alcotest.fail "no uptime_seconds in stats");
          match stat "started_at" with
          | Some t ->
              Alcotest.(check bool) "started_at is a recent epoch" true
                (float_of_int t <= Unix.gettimeofday ()
                && float_of_int t > Unix.gettimeofday () -. 3600.)
          | None -> Alcotest.fail "no started_at in stats"))

let test_e2e_metrics_op () =
  observed (fun () ->
      with_server (fun addr _srv ->
          Client.with_connection addr (fun conn ->
              ignore (request_ok conn (decide_req s2_text));
              ignore (request_ok conn (decide_req s2_text));
              let m = request_ok conn Wire.Metrics in
              Alcotest.(check (option string)) "ok" (Some "ok")
                (member_str "status" m);
              Alcotest.(check (option string)) "versioned"
                (Some Metrics.build_string) (member_str "version" m);
              (* The raw snapshot parses back and has both decides. *)
              let snap =
                match Json.member "data" m with
                | Some d -> (
                    match Metrics.of_json d with
                    | Ok s -> s
                    | Error msg -> Alcotest.failf "snapshot: %s" msg)
                | None -> Alcotest.fail "no data member"
              in
              let count name =
                match List.assoc_opt name snap.Metrics.histograms with
                | Some s -> Obs.Histogram.total s
                | None -> 0
              in
              Alcotest.(check int) "two decides measured" 2 (count "op.decide");
              Alcotest.(check int) "one cache hit timed" 1 (count "cache.hit");
              Alcotest.(check int) "one cache miss timed" 1 (count "cache.miss");
              (* And the exposition carries the same count. *)
              match member_str "metrics" m with
              | Some text ->
                  let has needle =
                    let ln = String.length needle and lt = String.length text in
                    let rec go i =
                      i + ln <= lt && (String.sub text i ln = needle || go (i + 1))
                    in
                    go 0
                  in
                  Alcotest.(check bool) "decide count exposed" true
                    (has "defcheck_op_decide_seconds_count 2");
                  Alcotest.(check bool) "build info exposed" true
                    (has "defcheck_build_info{")
              | None -> Alcotest.fail "no metrics text")))

let test_e2e_trace_propagation () =
  (* Router and shards share this process's telemetry plane, so one
     probe sink sees the route span and the shard's request span — both
     must carry the client's trace id, the router because it wraps
     dispatch in the context, the shard because the forwarded line
     still carries the envelope. *)
  let seen = ref [] in
  let probe =
    Obs.Sink.make (fun (s : Obs.span) -> seen := (s.name, s.trace) :: !seen)
  in
  Obs.enable [ probe ];
  Fun.protect ~finally:Obs.disable @@ fun () ->
  with_sharded_cluster ~store:false (fun ~router:_ ~s0:_ ~s1:_ addr ->
      Client.with_connection addr (fun conn ->
          let envelope =
            { Wire.trace_id = Some "e2e-trace-7"; parent_span = None;
              stream = false }
          in
          let resp = request_env conn ~envelope (decide_req s2_text) in
          Alcotest.(check (option string)) "decided" (Some "ok")
            (member_str "status" resp)));
  let tagged name =
    List.exists
      (fun (n, tr) -> n = name && tr = Some "e2e-trace-7")
      !seen
  in
  Alcotest.(check bool) "route span carries the trace id" true
    (tagged "service.route");
  Alcotest.(check bool) "shard request span carries the trace id" true
    (tagged "service.request");
  Alcotest.(check bool) "decision-phase span carries the trace id" true
    (tagged "decide.rem")

let test_e2e_streaming_progress () =
  observed (fun () ->
      with_sharded_cluster ~store:false (fun ~router:_ ~s0:_ ~s1:_ addr ->
          Client.with_connection addr (fun conn ->
              (* Plain decide first: its result block is the reference
                 the streamed decide must reproduce byte-for-byte. *)
              let plain = request_ok conn (decide_req s3_text) in
              let frames = ref [] in
              let envelope =
                { Wire.trace_id = Some "stream-1"; parent_span = None;
                  stream = true }
              in
              let line =
                Wire.request_line ~envelope (decide_req s3_text)
              in
              let final =
                match
                  Client.request_stream conn
                    ~on_progress:(fun f -> frames := f :: !frames)
                    line
                with
                | Ok l -> (
                    match Json.parse l with
                    | Ok j -> j
                    | Error m -> Alcotest.failf "final line: %s" m)
                | Error m -> Alcotest.failf "stream failed: %s" m
              in
              Alcotest.(check bool) "at least one progress frame" true
                (!frames <> []);
              List.iter
                (fun f ->
                  match Json.parse f with
                  | Ok j -> (
                      (match member_str "progress" j with
                      | Some ("enter" | "exit") -> ()
                      | _ -> Alcotest.failf "bad progress kind: %s" f);
                      match
                        (member_str "phase" j,
                         Option.bind (Json.member "t_s" j) Json.to_float)
                      with
                      | Some _, Some t ->
                          Alcotest.(check bool) "t_s non-negative" true (t >= 0.)
                      | _ -> Alcotest.failf "frame without phase/t_s: %s" f)
                  | Error m -> Alcotest.failf "unparsable frame: %s" m)
                !frames;
              Alcotest.(check bool) "an exit frame reports a duration" true
                (List.exists
                   (fun f ->
                     match Json.parse f with
                     | Ok j ->
                         member_str "progress" j = Some "exit"
                         && Json.member "dur_s" j <> None
                     | Error _ -> false)
                   !frames);
              Alcotest.(check bool) "final line is not a frame" true
                (Json.member "progress" final = None);
              Alcotest.(check string)
                "streamed result block byte-identical to plain"
                (result_block plain) (result_block final))))

let test_e2e_observation_free_service () =
  (* The whole-plane invariant at the service level: a server running
     with telemetry fully off and one under streaming + metrics answers
     byte-identical result blocks for the same instance. *)
  Obs.disable ();
  let off =
    with_server (fun addr _srv ->
        Client.with_connection addr (fun conn ->
            result_block (request_ok conn (decide_req ~lang:"krem" s2_text))))
  in
  let on =
    observed (fun () ->
        with_server (fun addr _srv ->
            Client.with_connection addr (fun conn ->
                let envelope =
                  { Wire.trace_id = Some "obsfree"; parent_span = None;
                    stream = true }
                in
                let line =
                  Wire.request_line ~envelope (decide_req ~lang:"krem" s2_text)
                in
                let j =
                  match
                    Client.request_stream conn ~on_progress:ignore line
                  with
                  | Ok l -> (
                      match Json.parse l with
                      | Ok j -> j
                      | Error m -> Alcotest.failf "final line: %s" m)
                  | Error m -> Alcotest.failf "stream failed: %s" m
                in
                ignore (request_ok conn Wire.Metrics);
                result_block j)))
  in
  Alcotest.(check string) "verdict bytes independent of the plane" off on

let test_e2e_router_metrics_aggregation () =
  observed (fun () ->
      with_sharded_cluster ~store:false (fun ~router ~s0:_ ~s1:_ addr ->
          Client.with_connection addr (fun conn ->
              ignore (request_ok conn (decide_req s2_text));
              ignore (request_ok conn (decide_req s3_text));
              let m = request_ok conn Wire.Metrics in
              Alcotest.(check (option string)) "ok" (Some "ok")
                (member_str "status" m);
              (* Both shards answered and identify their build. *)
              (match Json.member "shards" m with
              | Some (Json.Obj shards) ->
                  Alcotest.(check int) "two shard reports" 2
                    (List.length shards);
                  List.iter
                    (fun (_, s) ->
                      Alcotest.(check (option string)) "shard ok" (Some "ok")
                        (member_str "status" s))
                    shards
              | _ -> Alcotest.fail "no per-shard breakdown");
              (* Merged decide histogram counts every request, whichever
                 shard served it — the aggregation the router exists
                 for.  In-process shards share one registry, so compare
                 against the local capture rather than a constant. *)
              let merged =
                match Option.bind (Json.member "data" m) (fun d ->
                    Result.to_option (Metrics.of_json d))
                with
                | Some s -> s
                | None -> Alcotest.fail "merged snapshot unparsable"
              in
              let local = Metrics.capture () in
              let count snap name =
                match List.assoc_opt name snap.Metrics.histograms with
                | Some s -> Obs.Histogram.total s
                | None -> 0
              in
              Alcotest.(check bool) "decides measured" true
                (count merged "op.decide" >= 2);
              Alcotest.(check int) "aggregate = sum over shard replies"
                (2 * count local "op.decide")
                (count merged "op.decide"));
          (* Router stats: chain-LRU counters, uptime, and per-shard
             build strings ride along. *)
          Client.with_connection addr (fun conn ->
              let stats = request_ok conn Wire.Stats in
              let router_stat name =
                Option.bind (Json.member "router" stats) (fun r ->
                    Option.bind (Json.member name r) Json.to_int)
              in
              List.iter
                (fun name ->
                  match router_stat name with
                  | Some v ->
                      Alcotest.(check bool) (name ^ " non-negative") true
                        (v >= 0)
                  | None -> Alcotest.failf "router stats missing %s" name)
                [ "chain_entries"; "chain_hits"; "chain_misses";
                  "chain_evictions"; "uptime_seconds"; "started_at";
                  "forwarded" ];
              match Json.member "shards" stats with
              | Some (Json.Obj shards) ->
                  List.iter
                    (fun (_, s) ->
                      Alcotest.(check (option string)) "shard version"
                        (Some Metrics.build_string) (member_str "version" s))
                    shards
              | _ -> Alcotest.fail "no per-shard stats");
          ignore router))

(* ---------- idle timeout, client deadline, shard health ---------- *)

let test_e2e_idle_timeout () =
  let config =
    { Server.default_config with Server.idle_timeout_s = Some 0.2 }
  in
  with_server ~config (fun addr _srv ->
      let conn = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          (match Client.request conn Wire.Ping with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "live connection refused: %s" e);
          (* Stay idle past the timeout: the server reclaims the handler
             thread and the next request finds the connection gone. *)
          Thread.delay 0.6;
          match Client.request conn Wire.Ping with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "request succeeded on a reaped connection"))

let test_e2e_client_deadline () =
  with_server (fun addr _srv ->
      let conn = Client.connect ~deadline_s:0.3 addr in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          match Client.request conn (Wire.Sleep { ms = 1500 }) with
          | Error e ->
              Alcotest.(check string) "typed deadline error"
                "transport: request deadline expired" e
          | Ok _ -> Alcotest.fail "slow request beat a 0.3s deadline"))

let test_e2e_router_shard_unavailable () =
  (* A router whose only shard does not exist: the first decide fails
     with a typed [shard_unavailable] error, the health machinery marks
     the shard down, and subsequent requests fail fast without
     redialling until the cooldown lapses. *)
  let dead = Filename.temp_file "defdead" ".sock" in
  Sys.remove dead;
  let config =
    {
      Service.Router.default_config with
      Service.Router.connect_retries = 0;
      unhealthy_after = 1;
      health_cooldown_s = 30.;
    }
  in
  let rpath = Filename.temp_file "defroute" ".sock" in
  let router =
    Service.Router.create ~config
      ~shards:[ ("ghost", Wire.Unix_sock dead) ]
      (Wire.Unix_sock rpath)
  in
  let rth = Thread.create Service.Router.run router in
  Fun.protect
    ~finally:(fun () ->
      Service.Router.shutdown router;
      Thread.join rth)
    (fun () ->
      Client.with_connection (Wire.Unix_sock rpath) (fun conn ->
          let first = request_ok conn (decide_req s2_text) in
          Alcotest.(check (option string)) "typed status" (Some "unavailable")
            (member_str "status" first);
          (match member_str "error" first with
          | Some msg ->
              Alcotest.(check bool) "shard_unavailable prefix" true
                (String.length msg >= 17
                && String.sub msg 0 17 = "shard_unavailable")
          | None -> Alcotest.fail "no error text");
          let second = request_ok conn (decide_req s2_text) in
          Alcotest.(check (option string)) "still unavailable"
            (Some "unavailable")
            (member_str "status" second);
          let stats = request_ok conn Wire.Stats in
          let int_field f =
            match
              Option.bind (Json.member "router" stats) (fun r ->
                  Option.bind (Json.member f r) Json.to_int)
            with
            | Some n -> n
            | None -> Alcotest.failf "stats without %s" f
          in
          Alcotest.(check int) "shard marked unhealthy" 1
            (int_field "shards_unhealthy");
          Alcotest.(check bool) "fast fails counted" true
            (int_field "unavailable_fast_fails" >= 1);
          match
            Option.bind (Json.member "health" stats) (Json.member "ghost")
          with
          | Some (Json.String "down") -> ()
          | _ -> Alcotest.fail "health map does not show ghost down"))

let () =
  Alcotest.run "service"
    [
      ( "json",
        [
          ("parse", `Quick, test_json_parse);
          ("roundtrip", `Quick, test_json_roundtrip);
          ("unicode", `Quick, test_json_unicode);
          ("errors", `Quick, test_json_errors);
          ("to_int", `Quick, test_json_to_int);
        ] );
      ("lru", [ ("semantics", `Quick, test_lru) ]);
      ( "content_hash",
        [
          ("node-name invariance", `Quick, test_hash_name_invariance);
          ("value-automorphism invariance", `Quick, test_hash_automorphism_invariance);
          ("edge-order invariance", `Quick, test_hash_edge_order_invariance);
          ("sensitivity", `Quick, test_hash_sensitivity);
          ("no collisions in 10k samples", `Slow, test_hash_no_collisions);
        ] );
      ( "cache",
        [
          ("miss then hit", `Quick, test_cache_miss_then_hit);
          ("hit across renaming", `Quick, test_cache_hit_across_renaming);
          ("Unknown never cached", `Quick, test_cache_unknown_not_cached);
          ("revalidation drops bogus entries", `Quick,
           test_cache_revalidation_drops_bogus_entries);
          ("revalidation off serves the seed", `Quick,
           test_cache_revalidation_off_serves_seed);
          ("eviction", `Quick, test_cache_eviction);
        ] );
      ( "admission",
        [
          ("overload", `Quick, test_admission_overload);
          ("queueing", `Quick, test_admission_queueing);
          ("drain", `Quick, test_admission_drain);
        ] );
      ( "server",
        [
          ("ping, decide, cache hit", `Quick, test_e2e_ping_decide_cache);
          ("batch and malformed requests", `Quick, test_e2e_batch_and_errors);
          ("ping while busy", `Quick, test_e2e_ping_while_busy);
          ("overload refusal", `Quick, test_e2e_overload);
          ("pool executes request bodies", `Quick, test_e2e_pool_execution);
          ("pool queue full refusal", `Quick, test_e2e_pool_queue_full);
          ("idle timeout reaps parked connections", `Quick, test_e2e_idle_timeout);
          ("client deadline", `Quick, test_e2e_client_deadline);
          ("shutdown drains", `Quick, test_e2e_shutdown_drains);
          ("wire roundtrip", `Quick, test_wire_roundtrip);
        ] );
      ( "tier",
        [
          ("codec and hex", `Quick, test_tier_codec);
          ("write-through and promotion", `Quick,
           test_cache_write_through_and_promotion);
          ("restart serves byte-identical warm hit", `Quick,
           test_cache_restart_byte_identical);
          ("eviction backstopped by store", `Quick,
           test_cache_eviction_backstopped_by_store);
        ] );
      ("ring", [ ("deterministic placement", `Quick, test_ring_deterministic) ]);
      ( "client",
        [
          ("connect retry backoff", `Quick, test_client_retry_backoff);
          ("retry jitter bounds", `Quick, test_client_retry_jitter);
        ] );
      ( "router",
        [
          ("decide via router", `Quick, test_e2e_router_decide);
          ("batch split and reassembly", `Quick, test_e2e_router_batch);
          ("delta chain routing", `Quick, test_e2e_router_delta_chain);
          ("shard restart serves warm", `Quick, test_e2e_shard_restart_serves_warm);
          ("shard unavailable is typed and fast", `Quick,
           test_e2e_router_shard_unavailable);
          ("export/import/compact", `Quick, test_e2e_export_import_compact);
          ("rebalance", `Quick, test_e2e_rebalance);
        ] );
      ( "observability",
        [
          ("stats uptime and version", `Quick, test_e2e_stats_uptime_version);
          ("metrics op", `Quick, test_e2e_metrics_op);
          ("trace id crosses the router", `Quick, test_e2e_trace_propagation);
          ("streaming progress frames", `Quick, test_e2e_streaming_progress);
          ("verdict bytes plane-independent", `Quick,
           test_e2e_observation_free_service);
          ("router metrics aggregation", `Quick,
           test_e2e_router_metrics_aggregation);
        ] );
    ]
