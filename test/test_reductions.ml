(* Tests for the executable lower-bound constructions: 3-CNF/SAT
   (Theorem 35), corridor tiling (Theorem 25), and the RPQ embedding
   (Theorem 32). *)

module Cnf = Reductions.Cnf
module Sat = Reductions.Sat_reduction
module T = Reductions.Tiling
module Emb = Reductions.Rpq_embedding
module DG = Datagraph.Data_graph
module Rel = Datagraph.Relation
module RA = Rem_lang.Register_automaton
module DV = Datagraph.Data_value

let dv = DV.of_int

let ws_def (o : Definability.Witness_search.outcome) =
  match o.verdict with
  | Definability.Witness_search.Definable -> true
  | Definability.Witness_search.Not_definable _ -> false
  | Definability.Witness_search.Exhausted -> failwith "search truncated"

(* ---------- CNF ---------- *)

let test_cnf_eval () =
  let f = Cnf.make ~num_vars:2 [ (1, -2, -2) ] in
  Alcotest.(check bool) "10" true (Cnf.eval f [| true; false |]);
  Alcotest.(check bool) "01" false (Cnf.eval f [| false; true |]);
  Alcotest.(check bool) "sat" true (Cnf.satisfiable f)

let test_cnf_unsat () =
  let f = Cnf.make ~num_vars:1 [ (1, 1, 1); (-1, -1, -1) ] in
  Alcotest.(check bool) "unsat" false (Cnf.satisfiable f);
  Alcotest.(check bool) "no assignment" true (Cnf.satisfying_assignment f = None)

let test_cnf_validation () =
  Alcotest.check_raises "zero literal" (Invalid_argument "Cnf.make: zero literal")
    (fun () -> ignore (Cnf.make ~num_vars:1 [ (0, 1, 1) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Cnf.make: variable out of range") (fun () ->
      ignore (Cnf.make ~num_vars:1 [ (2, 1, 1) ]))

let test_cnf_random_deterministic () =
  let f1 = Cnf.random ~seed:4 ~num_vars:4 ~num_clauses:5 () in
  let f2 = Cnf.random ~seed:4 ~num_vars:4 ~num_clauses:5 () in
  Alcotest.(check string) "same" (Cnf.to_string f1) (Cnf.to_string f2);
  Alcotest.(check int) "clause count" 5 (List.length f1.Cnf.clauses)

(* ---------- Theorem 35 ---------- *)

let thm35_agree f =
  Alcotest.(check bool)
    ("thm35: " ^ Cnf.to_string f)
    (not (Cnf.satisfiable f))
    (Sat.definable f)

let test_sat_reduction_fixed () =
  thm35_agree (Cnf.make ~num_vars:1 [ (1, 1, 1) ]);
  thm35_agree (Cnf.make ~num_vars:1 [ (1, 1, 1); (-1, -1, -1) ]);
  thm35_agree (Cnf.make ~num_vars:2 [ (1, 2, 2); (-1, -2, -2) ]);
  thm35_agree
    (Cnf.make ~num_vars:2 [ (1, 2, 2); (1, -2, -2); (-1, 2, 2); (-1, -2, -2) ])

let test_sat_reduction_random () =
  for seed = 1 to 6 do
    thm35_agree (Cnf.random ~seed ~num_vars:3 ~num_clauses:4 ())
  done

let test_sat_reduction_shape () =
  let f = Cnf.make ~num_vars:3 [ (1, 2, 3); (-1, -2, -3) ] in
  let r = Sat.build f in
  Alcotest.(check int) "node count formula" (Sat.node_count f)
    (DG.size r.Sat.graph);
  Alcotest.(check int) "constant data value" 1 (DG.delta r.Sat.graph);
  (* S has m + 8m unary tuples. *)
  Alcotest.(check int) "|S|" 18 (Datagraph.Tuple_relation.cardinal r.Sat.target)

(* ---------- Theorem 25 ---------- *)

let stripes =
  {
    T.num_tiles = 2;
    horiz = [ (0, 1); (1, 0); (0, 0); (1, 1) ];
    vert = [ (0, 0); (1, 1) ];
    t_init = 0;
    t_final = 1;
    n = 1;
  }

let test_tiling_solver () =
  (match T.solve stripes with
  | Some tau -> Alcotest.(check bool) "legal" true (T.is_legal stripes tau)
  | None -> Alcotest.fail "stripes should be solvable");
  let unsolvable =
    { stripes with T.horiz = [ (0, 0); (1, 1) ]; vert = [ (0, 0); (1, 1) ] }
  in
  Alcotest.(check bool) "unsolvable" true (T.solve unsolvable = None)

let test_tiling_is_legal () =
  Alcotest.(check bool) "good" true (T.is_legal stripes [| [| 0; 1 |] |]);
  Alcotest.(check bool) "bad start" false (T.is_legal stripes [| [| 1; 1 |] |]);
  Alcotest.(check bool) "bad end" false (T.is_legal stripes [| [| 0; 0 |] |]);
  Alcotest.(check bool) "bad vert" false
    (T.is_legal stripes [| [| 0; 1 |]; [| 1; 1 |] |]);
  Alcotest.(check bool) "ragged" false (T.is_legal stripes [| [| 0 |] |])

let test_tiling_encoding_matches_rem () =
  let tau = Option.get (T.solve stripes) in
  let w = T.encode_tiling stripes tau in
  let e = T.tiling_rem stripes tau in
  Alcotest.(check bool) "encoding in L(rem)" true (Rem_lang.Basic_rem.matches e w);
  (* The REM accepts exactly the automorphism class: a same-shape path
     with a changed address value is rejected. *)
  let values = Datagraph.Data_path.values w in
  let labels = Datagraph.Data_path.labels w in
  values.(1) <- dv 999;
  (* first address value changes: still automorphic (it is only stored) —
     so instead break a *repeated* position: the second address's value. *)
  let w' = Datagraph.Data_path.make ~values ~labels in
  Alcotest.(check bool) "store-only change stays accepted" true
    (Rem_lang.Basic_rem.matches e w');
  let values2 = Datagraph.Data_path.values w in
  (* Position 2 is the second address (width 2, n=1); its bit is 1, i.e.
     "differs from the stored first-address value".  Making it *equal* to
     the stored value flips the bit and breaks membership.  (A different
     fresh value would still satisfy the != test.) *)
  values2.(2) <- values2.(1);
  let w2 = Datagraph.Data_path.make ~values:values2 ~labels in
  Alcotest.(check bool) "address bit flip rejected" false
    (Rem_lang.Basic_rem.matches e w2)

let test_tiling_reduction_conditions () =
  let red = T.build stripes in
  let g = red.T.graph in
  let tau = Option.get (T.solve stripes) in
  (* Condition 2: the encoding connects p2 to q2 (and nothing else). *)
  let w = T.encode_tiling stripes tau in
  Alcotest.(check (list (pair int int)))
    "encoding connects exactly (p2,q2)"
    [ (red.T.p2, red.T.q2) ]
    (DG.connects g w);
  (* Conditions 1-3 together: the legal tiling's REM evaluates to exactly
     the target relation. *)
  let rel = RA.eval_on_graph g (RA.of_basic (T.tiling_rem stripes tau)) in
  Alcotest.(check bool) "legal REM defines {(p2,q2)}" true
    (Rel.equal rel red.T.target)

let test_tiling_condition4_sampled () =
  let red = T.build stripes in
  let g = red.T.graph in
  (* Several illegal tilings: each one's REM must catch an automorphic
     copy from p1 to q1 (so it fails to define the target). *)
  let bad_tilings =
    [
      [| [| 1; 1 |] |] (* wrong initial tile *);
      [| [| 0; 0 |] |] (* wrong final tile *);
      [| [| 0; 1 |]; [| 1; 1 |] |] (* vertical incompatibility *);
    ]
  in
  List.iter
    (fun tau ->
      Alcotest.(check bool) "illegal indeed" false (T.is_legal stripes tau);
      let rel = RA.eval_on_graph g (RA.of_basic (T.tiling_rem stripes tau)) in
      Alcotest.(check bool) "caught at (p1,q1)" true
        (Rel.mem rel red.T.p1 red.T.q1))
    bad_tilings

let test_tiling_horizontal_error_caught () =
  (* An instance where horizontal compatibility can be violated. *)
  let inst = { stripes with T.horiz = [ (0, 1); (1, 0) ] } in
  let red = T.build inst in
  let bad = [| [| 0; 0 |] |] in
  (* 0,0 horizontally incompatible here; also wrong final tile — a
     doubly-bad tiling, still caught. *)
  let rel = RA.eval_on_graph red.T.graph (RA.of_basic (T.tiling_rem inst bad)) in
  Alcotest.(check bool) "caught" true (Rel.mem rel red.T.p1 red.T.q1)

let test_tiling_polynomial_size () =
  let sizes =
    List.map
      (fun n ->
        let red = T.build { stripes with T.n } in
        DG.size red.T.graph)
      [ 1; 2; 3; 4 ]
  in
  (* Polynomial (roughly cubic) growth: the ratio of consecutive sizes
     stays far below the exponential 2^n corridor width growth would
     suggest. *)
  let rec ratios = function
    | a :: (b :: _ as rest) -> (float_of_int b /. float_of_int a) :: ratios rest
    | _ -> []
  in
  List.iter
    (fun r -> Alcotest.(check bool) "sub-exponential" true (r < 4.0))
    (ratios sizes);
  Alcotest.(check bool) "monotone" true (List.sort compare sizes = sizes)

let test_tiling_validation () =
  Alcotest.check_raises "n too small" (Invalid_argument "Tiling: n must be >= 1")
    (fun () -> ignore (T.build { stripes with T.n = 0 }));
  Alcotest.check_raises "bad tile"
    (Invalid_argument "Tiling: initial/final tile out of range") (fun () ->
      ignore (T.build { stripes with T.t_init = 5 }))

(* Random tiling instances: for every solvable instance the legal
   tiling's REM must define exactly the target; for every illegal
   tiling (random corruption) the gadgets must catch it. *)
let test_tiling_random_instances () =
  let prng = ref 12345 in
  let next () =
    let s = !prng in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    prng := s;
    abs s
  in
  for _trial = 1 to 6 do
    let num_tiles = 2 + (next () mod 2) in
    let all_pairs =
      List.concat_map
        (fun a -> List.init num_tiles (fun b -> (a, b)))
        (List.init num_tiles Fun.id)
    in
    let subset l = List.filter (fun _ -> next () mod 3 > 0) l in
    let inst =
      {
        T.num_tiles;
        horiz = subset all_pairs;
        vert = subset all_pairs;
        t_init = next () mod num_tiles;
        t_final = next () mod num_tiles;
        n = 1;
      }
    in
    let red = T.build inst in
    (match T.solve ~max_rows:4 inst with
    | Some tau ->
        let rel =
          RA.eval_on_graph red.T.graph (RA.of_basic (T.tiling_rem inst tau))
        in
        Alcotest.(check bool) "legal tiling REM defines target" true
          (Rel.equal rel red.T.target)
    | None -> ());
    (* A random tiling; if illegal, its REM must hit (p1,q1). *)
    let rows = 1 + (next () mod 2) in
    let tau =
      Array.init rows (fun _ ->
          Array.init (T.width inst) (fun _ -> next () mod num_tiles))
    in
    if not (T.is_legal inst tau) then
      let rel =
        RA.eval_on_graph red.T.graph (RA.of_basic (T.tiling_rem inst tau))
      in
      Alcotest.(check bool) "illegal tiling caught" true
        (Rel.mem rel red.T.p1 red.T.q1)
  done

(* ---------- G_aut (Section 3 sketch) ---------- *)

let test_gaut_shape () =
  let g = Datagraph.Graph_gen.line ~values:[ dv 0; dv 1 ] ~label:"a" in
  let t = Reductions.Gaut.build g in
  (* delta = 2 so 2! = 2 copies; each copy doubles the nodes (entries). *)
  Alcotest.(check int) "copies" 2 t.Reductions.Gaut.copies;
  Alcotest.(check int) "nodes" 8 (DG.size t.Reductions.Gaut.graph);
  (* Entry nodes have exactly one outgoing edge. *)
  let entry = t.Reductions.Gaut.entry ~copy:0 0 in
  Alcotest.(check int) "entry degree" 1
    (List.length (DG.succ_all t.Reductions.Gaut.graph entry))

let test_gaut_agrees_with_direct () =
  (* The Section 3 reduction and the direct profile-automaton checker
     must give identical verdicts. *)
  List.iter
    (fun seed ->
      let g =
        Datagraph.Graph_gen.random ~seed ~n:3 ~delta:2 ~labels:[ "a" ]
          ~density:0.5 ()
      in
      let s = Datagraph.Graph_gen.random_reachable_relation ~seed g ~count:2 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d" seed)
        (ws_def (Definability.Rem_definability.search g s))
        (Reductions.Gaut.rem_definable_via_rpq g s))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  (* And on a graph with repeated values where data genuinely matters. *)
  let g = Datagraph.Graph_gen.line ~values:[ dv 0; dv 1; dv 0 ] ~label:"a" in
  let s = Rel.of_list 3 [ (0, 2) ] in
  Alcotest.(check bool) "line with repeat"
    (ws_def (Definability.Rem_definability.search g s))
    (Reductions.Gaut.rem_definable_via_rpq g s)

(* ---------- Theorem 32 ---------- *)

let test_rpq_embedding_fixed () =
  let g = Datagraph.Graph_gen.fig1 () in
  (* On the constant-value embedding, REE-definability coincides with
     RPQ-definability of the original graph. *)
  List.iter
    (fun s ->
      let rpq, ree = Emb.agree g s in
      Alcotest.(check bool) "agree" true (rpq = ree))
    [
      Datagraph.Graph_gen.fig1_s1 g;
      Datagraph.Graph_gen.fig1_s2 g;
      Rel.identity (DG.size g);
      Rel.empty (DG.size g);
    ]

let test_rpq_embedding_random () =
  for seed = 1 to 8 do
    let g =
      Datagraph.Graph_gen.random ~seed ~n:4 ~delta:2 ~labels:[ "a"; "b" ]
        ~density:0.35 ()
    in
    let s = Datagraph.Graph_gen.random_reachable_relation ~seed g ~count:2 in
    let rpq, ree = Emb.agree g s in
    Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true (rpq = ree)
  done

let () =
  Alcotest.run "reductions"
    [
      ( "cnf",
        [
          Alcotest.test_case "eval" `Quick test_cnf_eval;
          Alcotest.test_case "unsat" `Quick test_cnf_unsat;
          Alcotest.test_case "validation" `Quick test_cnf_validation;
          Alcotest.test_case "random deterministic" `Quick
            test_cnf_random_deterministic;
        ] );
      ( "theorem 35",
        [
          Alcotest.test_case "fixed formulas" `Quick test_sat_reduction_fixed;
          Alcotest.test_case "random formulas" `Slow test_sat_reduction_random;
          Alcotest.test_case "shape" `Quick test_sat_reduction_shape;
        ] );
      ( "theorem 25",
        [
          Alcotest.test_case "solver" `Quick test_tiling_solver;
          Alcotest.test_case "legality" `Quick test_tiling_is_legal;
          Alcotest.test_case "encoding vs REM" `Quick
            test_tiling_encoding_matches_rem;
          Alcotest.test_case "conditions 1-3" `Quick
            test_tiling_reduction_conditions;
          Alcotest.test_case "condition 4 sampled" `Quick
            test_tiling_condition4_sampled;
          Alcotest.test_case "horizontal error" `Quick
            test_tiling_horizontal_error_caught;
          Alcotest.test_case "polynomial size" `Quick test_tiling_polynomial_size;
          Alcotest.test_case "validation" `Quick test_tiling_validation;
          Alcotest.test_case "random instances" `Slow
            test_tiling_random_instances;
        ] );
      ( "gaut",
        [
          Alcotest.test_case "shape" `Quick test_gaut_shape;
          Alcotest.test_case "agrees with direct checker" `Slow
            test_gaut_agrees_with_direct;
        ] );
      ( "theorem 32",
        [
          Alcotest.test_case "fig1 relations" `Quick test_rpq_embedding_fixed;
          Alcotest.test_case "random graphs" `Slow test_rpq_embedding_random;
        ] );
    ]
