(* Tests for the data-graph substrate: data values, data paths,
   automorphisms, graphs, generators and the textual format. *)

module DV = Datagraph.Data_value
module DP = Datagraph.Data_path
module DG = Datagraph.Data_graph
module Auto = Datagraph.Automorphism
module Gen = Datagraph.Graph_gen
module Io = Datagraph.Graph_io

let dv = DV.of_int

let path values labels =
  DP.make
    ~values:(Array.of_list (List.map dv values))
    ~labels:(Array.of_list labels)

(* ---------- Data_value ---------- *)

let test_value_basics () =
  Alcotest.(check bool) "equal" true (DV.equal (dv 3) (dv 3));
  Alcotest.(check bool) "not equal" false (DV.equal (dv 3) (dv 4));
  Alcotest.(check int) "roundtrip" 42 (DV.to_int (dv 42));
  let f1 = DV.fresh () and f2 = DV.fresh () in
  Alcotest.(check bool) "fresh distinct" false (DV.equal f1 f2);
  Alcotest.(check bool) "fresh below naturals" true (DV.to_int f1 < 0)

(* ---------- Data_path ---------- *)

let test_path_construction () =
  let w = path [ 0; 1; 0 ] [ "a"; "b" ] in
  Alcotest.(check int) "length" 2 (DP.length w);
  Alcotest.(check int) "first" 0 (DV.to_int (DP.first w));
  Alcotest.(check int) "last" 0 (DV.to_int (DP.last w));
  Alcotest.(check string) "label" "b" (DP.label_at w 1);
  Alcotest.(check int) "value" 1 (DV.to_int (DP.value_at w 1));
  Alcotest.check_raises "mismatched lengths"
    (Invalid_argument "Data_path.make: need one more value than labels")
    (fun () -> ignore (DP.make ~values:[| dv 0 |] ~labels:[| "a" |]))

let test_path_singleton () =
  let w = DP.singleton (dv 7) in
  Alcotest.(check int) "length 0" 0 (DP.length w);
  Alcotest.(check bool) "first = last" true (DV.equal (DP.first w) (DP.last w))

let test_path_concat () =
  let w1 = path [ 0; 1 ] [ "a" ] and w2 = path [ 1; 2 ] [ "b" ] in
  let w = DP.concat w1 w2 in
  Alcotest.(check int) "length" 2 (DP.length w);
  Alcotest.(check string) "pp" "0 a 1 b 2" (DP.to_string w);
  (* Shared value appears once. *)
  Alcotest.(check int) "middle" 1 (DV.to_int (DP.value_at w 1));
  Alcotest.(check bool) "mismatch rejected" true
    (DP.concat_opt w2 w1 = None);
  (* Concatenation with a singleton is the identity. *)
  let id_left = DP.concat (DP.singleton (dv 0)) w1 in
  Alcotest.(check bool) "eps left unit" true (DP.equal id_left w1)

let test_path_profile () =
  let w = path [ 0; 1; 0; 2 ] [ "a"; "a"; "a" ] in
  Alcotest.(check (array int)) "profile" [| 0; 1; 0; 3 |] (DP.profile w)

let test_automorphic () =
  let w1 = path [ 0; 1; 0; 1 ] [ "a"; "a"; "a" ] in
  let w2 = path [ 2; 3; 2; 3 ] [ "a"; "a"; "a" ] in
  let w3 = path [ 0; 1; 0; 2 ] [ "a"; "a"; "a" ] in
  let w4 = path [ 0; 1; 0; 1 ] [ "a"; "a"; "b" ] in
  Alcotest.(check bool) "same pattern" true (DP.automorphic w1 w2);
  Alcotest.(check bool) "different pattern" false (DP.automorphic w1 w3);
  Alcotest.(check bool) "different labels" false (DP.automorphic w1 w4)

let test_matching () =
  let w1 = path [ 0; 1; 0; 1 ] [ "a"; "a"; "a" ] in
  let w2 = path [ 2; 3; 2; 3 ] [ "a"; "a"; "a" ] in
  (match Auto.matching w1 w2 with
  | None -> Alcotest.fail "expected a matching automorphism"
  | Some pi ->
      Alcotest.(check bool) "maps w1 to w2" true
        (DP.equal (Auto.apply_path pi w1) w2));
  let w3 = path [ 0; 1; 0; 2 ] [ "a"; "a"; "a" ] in
  Alcotest.(check bool) "no matching" true (Auto.matching w1 w3 = None)

let test_permutations () =
  let perms = Auto.permutations [ dv 0; dv 1; dv 2 ] in
  Alcotest.(check int) "3! permutations" 6 (List.length perms);
  (* Each is a bijection of the set. *)
  List.iter
    (fun pi ->
      let image =
        List.sort compare
          (List.map (fun d -> DV.to_int (Auto.apply pi d)) [ dv 0; dv 1; dv 2 ])
      in
      Alcotest.(check (list int)) "bijection" [ 0; 1; 2 ] image)
    perms

let test_automorphism_ops () =
  match Auto.of_pairs [ (dv 0, dv 1); (dv 1, dv 0) ] with
  | None -> Alcotest.fail "swap should be an automorphism"
  | Some swap ->
      Alcotest.(check bool) "involution" true
        (Auto.equal (Auto.compose swap swap) Auto.identity);
      Alcotest.(check bool) "inverse" true
        (Auto.equal (Auto.inverse swap) swap);
      Alcotest.(check bool) "non-injective rejected" true
        (Auto.of_pairs [ (dv 0, dv 2); (dv 1, dv 2); (dv 2, dv 0) ] = None);
      (* Domain/range mismatch rejected (not extendable by identity). *)
      Alcotest.(check bool) "dom<>range rejected" true
        (Auto.of_pairs [ (dv 0, dv 1) ] = None)

(* ---------- Data_graph ---------- *)

let triangle () =
  DG.make
    ~nodes:[ ("x", dv 0); ("y", dv 1); ("z", dv 0) ]
    ~edges:[ ("x", "a", "y"); ("y", "b", "z"); ("z", "a", "x") ]

let test_graph_basics () =
  let g = triangle () in
  Alcotest.(check int) "size" 3 (DG.size g);
  Alcotest.(check int) "delta" 2 (DG.delta g);
  Alcotest.(check (list string)) "alphabet" [ "a"; "b" ] (DG.alphabet g);
  Alcotest.(check int) "edges" 3 (DG.edge_count g);
  Alcotest.(check bool) "same value" true
    (DG.same_value g (DG.node_of_name g "x") (DG.node_of_name g "z"));
  Alcotest.(check bool) "mem edge" true
    (DG.mem_edge g (DG.node_of_name g "x") "a" (DG.node_of_name g "y"));
  Alcotest.(check bool) "absent edge" false
    (DG.mem_edge g (DG.node_of_name g "x") "b" (DG.node_of_name g "y"));
  Alcotest.(check (list int)) "succ on unknown label" []
    (DG.succ g 0 "zzz")

let test_graph_validation () =
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Data_graph.make: duplicate node name x") (fun () ->
      ignore (DG.make ~nodes:[ ("x", dv 0); ("x", dv 1) ] ~edges:[]));
  Alcotest.check_raises "unknown endpoint"
    (Invalid_argument "Data_graph.make: unknown node w") (fun () ->
      ignore (DG.make ~nodes:[ ("x", dv 0) ] ~edges:[ ("x", "a", "w") ]));
  Alcotest.check_raises "duplicate edge"
    (Invalid_argument "Data_graph.build: duplicate edge") (fun () ->
      ignore
        (DG.make
           ~nodes:[ ("x", dv 0); ("y", dv 1) ]
           ~edges:[ ("x", "a", "y"); ("x", "a", "y") ]))

let test_graph_paths () =
  let g = triangle () in
  let x = DG.node_of_name g "x" in
  let p = { DG.start = x; steps = [ ("a", 1); ("b", 2) ] } in
  Alcotest.(check bool) "is path" true (DG.is_path g p);
  let w = DG.data_path_of g p in
  Alcotest.(check string) "data path" "0 a 1 b 0" (DP.to_string w);
  Alcotest.(check bool) "not a path" false
    (DG.is_path g { DG.start = x; steps = [ ("b", 1) ] })

let test_connects () =
  let g = Gen.fig1 () in
  (* From Example 12: 0a1a0a1 connects exactly (v1,v4). *)
  let w = path [ 0; 1; 0; 1 ] [ "a"; "a"; "a" ] in
  let v = DG.node_of_name g in
  Alcotest.(check (list (pair int int)))
    "0a1a0a1" [ (v "v1", v "v4") ] (DG.connects g w);
  (* 2a3a2a3 connects exactly (v1',v4'). *)
  let w' = path [ 2; 3; 2; 3 ] [ "a"; "a"; "a" ] in
  Alcotest.(check (list (pair int int)))
    "2a3a2a3" [ (v "v1'", v "v4'") ] (DG.connects g w');
  (* 0a1a1a0 connects exactly (v1,v3)  (w5 of Example 12). *)
  let w5 = path [ 0; 1; 1; 0 ] [ "a"; "a"; "a" ] in
  Alcotest.(check (list (pair int int)))
    "0a1a1a0" [ (v "v1", v "v3") ] (DG.connects g w5)

let test_reachable () =
  let g = triangle () in
  let r = DG.reachable g 0 in
  Alcotest.(check (array bool)) "all reachable" [| true; true; true |] r;
  let line = Gen.line ~values:[ dv 0; dv 1; dv 2 ] ~label:"a" in
  Alcotest.(check (array bool))
    "line from middle" [| false; true; true |] (DG.reachable line 1)

let test_map_values () =
  let g = triangle () in
  let g' = DG.constant_values g in
  Alcotest.(check int) "constant delta" 1 (DG.delta g');
  Alcotest.(check int) "same size" (DG.size g) (DG.size g');
  Alcotest.(check int) "same edges" (DG.edge_count g) (DG.edge_count g');
  Alcotest.(check string) "names preserved" "y" (DG.name g' 1)

let test_disjoint_union () =
  let g1 = triangle () and g2 = triangle () in
  let g, embed = DG.disjoint_union g1 g2 in
  Alcotest.(check int) "size" 6 (DG.size g);
  Alcotest.(check int) "edges" 6 (DG.edge_count g);
  Alcotest.(check int) "embedding" 3 (embed 0);
  (* No cross edges. *)
  let r = DG.reachable g 0 in
  Alcotest.(check bool) "no crossing" false r.(embed 0);
  (* g2's names got primed. *)
  Alcotest.(check string) "renamed" "x'" (DG.name g (embed 0))

(* ---------- Figure 1 ---------- *)

let test_fig1_shape () =
  let g = Gen.fig1 () in
  Alcotest.(check int) "10 nodes" 10 (DG.size g);
  Alcotest.(check int) "12 edges" 12 (DG.edge_count g);
  Alcotest.(check int) "4 values" 4 (DG.delta g);
  Alcotest.(check (list string)) "unary alphabet" [ "a" ] (DG.alphabet g)

let test_fig1_s1_is_aaa () =
  (* S1 of Example 12 is exactly the pairs connected by words of length 3. *)
  let g = Gen.fig1 () in
  let s1 = Gen.fig1_s1 g in
  let aaa = Datagraph.Relation.edge_relation g "a" in
  let aaa3 = Datagraph.Relation.(compose aaa (compose aaa aaa)) in
  Alcotest.(check bool) "S1 = E^3" true (Datagraph.Relation.equal s1 aaa3)

(* ---------- Generators ---------- *)

let test_generators () =
  let c = Gen.cycle ~values:[ dv 0; dv 1; dv 2 ] ~label:"a" in
  Alcotest.(check int) "cycle edges" 3 (DG.edge_count c);
  let l = Gen.line ~values:[ dv 0; dv 1 ] ~label:"a" in
  Alcotest.(check int) "line edges" 1 (DG.edge_count l);
  let k = Gen.complete ~n:3 ~labels:[ "a"; "b" ] ~value:(fun _ -> dv 0) in
  Alcotest.(check int) "complete edges" 18 (DG.edge_count k)

let test_random_generator () =
  let g = Gen.random ~seed:5 ~n:6 ~delta:3 ~labels:[ "a"; "b" ] ~density:0.4 () in
  Alcotest.(check int) "n nodes" 6 (DG.size g);
  Alcotest.(check bool) "delta bounded" true (DG.delta g <= 3);
  (* Values forced to cover the pool when delta <= n. *)
  Alcotest.(check int) "delta reached" 3 (DG.delta g);
  (* Determinism. *)
  let g' = Gen.random ~seed:5 ~n:6 ~delta:3 ~labels:[ "a"; "b" ] ~density:0.4 () in
  Alcotest.(check int) "same edge count" (DG.edge_count g) (DG.edge_count g');
  let g'' = Gen.random ~seed:6 ~n:6 ~delta:3 ~labels:[ "a"; "b" ] ~density:0.4 () in
  Alcotest.(check bool) "seed matters" true
    (DG.edge_count g <> DG.edge_count g'' || DG.edges g <> DG.edges g'')

(* ---------- Graph_io ---------- *)

let test_io_roundtrip () =
  let g = Gen.fig1 () in
  let s = Datagraph.Tuple_relation.of_binary (Gen.fig1_s2 g) in
  let text = Io.instance_to_string g s in
  match Io.instance_of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok (g', s') ->
      Alcotest.(check int) "size" (DG.size g) (DG.size g');
      Alcotest.(check int) "edges" (DG.edge_count g) (DG.edge_count g');
      Alcotest.(check bool) "relation" true
        (Datagraph.Tuple_relation.equal s s');
      Alcotest.(check int) "value preserved"
        (DV.to_int (DG.value g (DG.node_of_name g "z1")))
        (DV.to_int (DG.value g' (DG.node_of_name g' "z1")))

let test_to_dot () =
  let g = Gen.fig1 () in
  let r = Datagraph.Tuple_relation.of_binary (Gen.fig1_s2 g) in
  let dot = Io.to_dot ~relation:r g in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 7 && String.sub dot 0 7 = "digraph");
  (* one node line per node, one edge line per edge, one dashed line per
     relation pair *)
  let count_sub sub =
    let n = ref 0 and i = ref 0 in
    let len = String.length sub in
    while !i + len <= String.length dot do
      if String.sub dot !i len = sub then incr n;
      incr i
    done;
    !n
  in
  Alcotest.(check int) "edges" 12 (count_sub "label=\"a\"");
  Alcotest.(check int) "relation pairs" 2 (count_sub "style=dashed")

let test_io_errors () =
  let bad l = match Io.instance_of_string l with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "bad directive" true (bad "frob x y");
  Alcotest.(check bool) "bad value" true (bad "node x abc");
  Alcotest.(check bool) "unknown node in pair" true
    (bad "node x 0\npair x y");
  Alcotest.(check bool) "mixed arity" true
    (bad "node x 0\npair x x\ntuple x x x");
  Alcotest.(check bool) "comments ok" false
    (bad "# hello\nnode x 0 # inline\n")

let () =
  Alcotest.run "datagraph"
    [
      ( "data_value",
        [ Alcotest.test_case "basics" `Quick test_value_basics ] );
      ( "data_path",
        [
          Alcotest.test_case "construction" `Quick test_path_construction;
          Alcotest.test_case "singleton" `Quick test_path_singleton;
          Alcotest.test_case "concat" `Quick test_path_concat;
          Alcotest.test_case "profile" `Quick test_path_profile;
          Alcotest.test_case "automorphic" `Quick test_automorphic;
        ] );
      ( "automorphism",
        [
          Alcotest.test_case "matching" `Quick test_matching;
          Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "operations" `Quick test_automorphism_ops;
        ] );
      ( "data_graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "paths" `Quick test_graph_paths;
          Alcotest.test_case "connects" `Quick test_connects;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "map_values" `Quick test_map_values;
          Alcotest.test_case "disjoint_union" `Quick test_disjoint_union;
        ] );
      ( "fig1",
        [
          Alcotest.test_case "shape" `Quick test_fig1_shape;
          Alcotest.test_case "s1 = aaa" `Quick test_fig1_s1_is_aaa;
        ] );
      ( "generators",
        [
          Alcotest.test_case "structured" `Quick test_generators;
          Alcotest.test_case "random" `Quick test_random_generator;
        ] );
      ( "graph_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "dot export" `Quick test_to_dot;
        ] );
    ]
