test/test_rem.mli:
