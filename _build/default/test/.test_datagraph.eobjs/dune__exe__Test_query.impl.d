test/test_query.ml: Alcotest Datagraph List QCheck QCheck_alcotest Query_lang Ree_lang Regexp
