test/test_definability.ml: Alcotest Array Datagraph Definability Fun List Query_lang Regexp Rem_lang
