test/test_datagraph.mli:
