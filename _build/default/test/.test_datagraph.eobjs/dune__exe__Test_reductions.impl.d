test/test_reductions.ml: Alcotest Array Datagraph Definability Fun List Option Printf Reductions Rem_lang
