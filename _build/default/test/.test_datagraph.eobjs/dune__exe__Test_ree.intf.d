test/test_ree.mli:
