test/test_relation.ml: Alcotest Datagraph Format List QCheck QCheck_alcotest
