test/test_rem.ml: Alcotest Array Datagraph List QCheck QCheck_alcotest Rem_lang
