test/test_regex.ml: Alcotest Datagraph List QCheck QCheck_alcotest Regexp String
