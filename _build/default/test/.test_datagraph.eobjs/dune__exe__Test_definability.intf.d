test/test_definability.mli:
