test/test_ree.ml: Alcotest Array Datagraph List QCheck QCheck_alcotest Ree_lang Rem_lang
