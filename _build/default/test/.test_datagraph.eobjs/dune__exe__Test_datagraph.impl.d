test/test_datagraph.ml: Alcotest Array Datagraph List String
