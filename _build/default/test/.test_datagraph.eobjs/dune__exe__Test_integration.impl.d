test/test_integration.ml: Alcotest Datagraph Definability List Printf Query_lang Ree_lang Regexp Rem_lang
