(* Tests for query evaluation (Definition 11) and conjunctive queries
   (Definition 13), centred on the paper's Examples 12 and 14. *)

module Query = Query_lang.Query
module Conj = Query_lang.Conjunctive
module Rel = Datagraph.Relation
module TRel = Datagraph.Tuple_relation
module DG = Datagraph.Data_graph
module Gen = Datagraph.Graph_gen

let fig1 = Gen.fig1 ()

let parse ~lang s =
  match Query.parse ~lang s with Ok q -> q | Error m -> failwith m

let test_eval_rpq () =
  let q1 = parse ~lang:`Rpq "a a a" in
  Alcotest.(check bool) "Q1(G) = S1" true
    (Rel.equal (Query.eval fig1 q1) (Gen.fig1_s1 fig1));
  Alcotest.(check bool) "defines" true
    (Query.defines fig1 q1 (Gen.fig1_s1 fig1))

let test_eval_rem () =
  let q2 = parse ~lang:`Rem "@r1 a @r2 a[r1=] a[r2=]" in
  Alcotest.(check bool) "Q2(G) = S2" true
    (Rel.equal (Query.eval fig1 q2) (Gen.fig1_s2 fig1))

let test_eval_ree () =
  let q3 = parse ~lang:`Ree "(a (a)= a)=" in
  Alcotest.(check bool) "Q3(G) = S3" true
    (Rel.equal (Query.eval fig1 q3) (Gen.fig1_s3 fig1))

let test_matches_path () =
  let w =
    Datagraph.Data_path.make
      ~values:[| Datagraph.Data_value.of_int 0; Datagraph.Data_value.of_int 1 |]
      ~labels:[| "a" |]
  in
  Alcotest.(check bool) "rpq sees labels only" true
    (Query.matches_path (parse ~lang:`Rpq "a") w);
  Alcotest.(check bool) "ree neq" true
    (Query.matches_path (parse ~lang:`Ree "(a)!=") w);
  Alcotest.(check bool) "ree eq" false
    (Query.matches_path (parse ~lang:`Ree "(a)=") w)

(* Example 14, Q4: unique valuation. *)
let q4 =
  let a = Query.Rpq (Regexp.Regex.Letter "a") in
  {
    Conj.head = [ "x1"; "y1" ];
    atoms =
      [
        { Conj.src = "x1"; dst = "y1"; expr = a };
        { Conj.src = "x1"; dst = "y2"; expr = a };
        { Conj.src = "y2"; dst = "y1"; expr = a };
      ];
  }

let test_q4 () =
  let result = Conj.eval fig1 [ q4 ] in
  let v = DG.node_of_name fig1 in
  Alcotest.(check int) "single tuple" 1 (TRel.cardinal result);
  Alcotest.(check bool) "is (v1,v2)" true
    (TRel.mem result [ v "v1"; v "v2" ])

let test_q5 () =
  let a_neq = Query.Ree Ree_lang.Ree.(NeqTest (Letter "a")) in
  let q5 =
    {
      Conj.head = [ "x1"; "y1"; "x2" ];
      atoms =
        [
          { Conj.src = "x1"; dst = "y1"; expr = a_neq };
          { Conj.src = "x2"; dst = "y1"; expr = a_neq };
        ];
    }
  in
  let result = Conj.eval fig1 [ q5 ] in
  let v = DG.node_of_name fig1 in
  (* The paper's three canonical tuples are present... *)
  List.iter
    (fun t -> Alcotest.(check bool) "paper tuple" true (TRel.mem result t))
    [
      [ v "v1"; v "z2"; v "z1" ];
      [ v "v3"; v "v4"; v "v2'" ];
      [ v "v3"; v "v3'"; v "v2'" ];
    ];
  (* ... as are their symmetric and diagonal variants (standard
     semantics quantifies valuations freely). *)
  Alcotest.(check bool) "symmetric" true
    (TRel.mem result [ v "z1"; v "z2"; v "v1" ]);
  Alcotest.(check bool) "diagonal" true
    (TRel.mem result [ v "v1"; v "z2"; v "v1" ])

let test_conjunctive_validation () =
  Alcotest.check_raises "head var not in body"
    (Invalid_argument "Conjunctive.eval_crdpq: head variable z not in body")
    (fun () -> ignore (Conj.eval_crdpq fig1 { q4 with head = [ "z" ] }));
  Alcotest.check_raises "empty union"
    (Invalid_argument "Conjunctive.eval: empty union") (fun () ->
      ignore (Conj.eval fig1 []));
  Alcotest.check_raises "mixed arity"
    (Invalid_argument "Conjunctive.eval: mixed arities") (fun () ->
      ignore (Conj.eval fig1 [ q4; { q4 with head = [ "x1" ] } ]))

let test_union_semantics () =
  (* A UCRDPQ answer is the union of member answers. *)
  let single name =
    {
      Conj.head = [ name; name ];
      atoms =
        [ { Conj.src = name; dst = name; expr = Query.Rpq Regexp.Regex.Eps } ];
    }
  in
  let q = [ single "x"; single "y" ] in
  let r = Conj.eval fig1 q in
  (* Each member yields all (v,v): union is the same set. *)
  Alcotest.(check int) "diagonal tuples" (DG.size fig1) (TRel.cardinal r)

let test_rdpq_as_crdpq () =
  (* A regular data path query is the m=1 special case of a CRDPQ.  The
     two evaluations agree. *)
  let e = parse ~lang:`Rem "@r1 a a[r1=]" in
  let direct = Query.eval fig1 e in
  let as_conj =
    Conj.eval fig1
      [ { Conj.head = [ "x"; "y" ]; atoms = [ { Conj.src = "x"; dst = "y"; expr = e } ] } ]
  in
  Alcotest.(check bool) "agree" true (Rel.equal direct (TRel.to_binary as_conj))

let test_boolean_query () =
  (* Arity 0: nonempty iff the body is satisfiable. *)
  let q =
    {
      Conj.head = [];
      atoms = [ { Conj.src = "x"; dst = "y"; expr = parse ~lang:`Rpq "a a a" } ];
    }
  in
  Alcotest.(check int) "satisfiable" 1 (TRel.cardinal (Conj.eval fig1 [ q ]));
  let q' =
    {
      Conj.head = [];
      atoms = [ { Conj.src = "x"; dst = "y"; expr = parse ~lang:`Rpq "b" } ];
    }
  in
  Alcotest.(check int) "unsatisfiable" 0 (TRel.cardinal (Conj.eval fig1 [ q' ]))

let test_containment_on_graph () =
  let a = parse ~lang:`Rpq "a" in
  let aaa = parse ~lang:`Rpq "a a a" in
  let aplus = parse ~lang:`Rpq "a+" in
  Alcotest.(check bool) "a <= a+" true (Query.contained_on fig1 a aplus);
  Alcotest.(check bool) "aaa <= a+" true (Query.contained_on fig1 aaa aplus);
  Alcotest.(check bool) "a+ not <= a" false (Query.contained_on fig1 aplus a);
  (* An REE refinement is contained in its base. *)
  let e = parse ~lang:`Ree "(a (a)= a)=" in
  Alcotest.(check bool) "restricted <= base" true
    (Query.contained_on fig1 e aaa);
  Alcotest.(check bool) "self equivalent" true (Query.equivalent_on fig1 e e)

let test_simplify_query () =
  let e = parse ~lang:`Rpq "(a | a) eps a" in
  let e' = Query.simplify e in
  Alcotest.(check bool) "same answer" true (Query.equivalent_on fig1 e e');
  Alcotest.(check string) "shrunk" "a . a" (Query.to_string e')

let test_bounded_containment () =
  let module Ct = Query_lang.Containment in
  let rpq s = parse ~lang:`Rpq s and ree s = parse ~lang:`Ree s in
  (* a ⊆ a|b over all paths. *)
  Alcotest.(check bool) "a <= a|b" true
    (Ct.contained_bounded (rpq "a") (rpq "a | b"));
  (* a|b ⊄ a: refuted by a b-path. *)
  (match Ct.refute ~alphabet:[] (rpq "a | b") (rpq "a") with
  | Some w -> Alcotest.(check string) "witness" "b" (Datagraph.Data_path.label_at w 0)
  | None -> Alcotest.fail "expected refutation");
  (* (a)= ⊆ a but not conversely. *)
  Alcotest.(check bool) "(a)= <= a" true
    (Ct.contained_bounded (ree "(a)=") (rpq "a"));
  Alcotest.(check bool) "a not <= (a)=" false
    (Ct.contained_bounded (rpq "a") (ree "(a)="));
  (* Equality vs memory: (a a)= coincides with @r1 a a[r1=]. *)
  let rem s = parse ~lang:`Rem s in
  Alcotest.(check bool) "ree = rem encoding" true
    (Ct.equivalent_bounded (ree "(a a)=") (rem "@r1 a a[r1=]"));
  (* The canonical separation: interleaved memory is not expressible;
     here just check the two differ as languages. *)
  Alcotest.(check bool) "xyxy differs from (a a a)=" false
    (Ct.equivalent_bounded
       (rem "@r1 a @r2 a[r1=] a[r2=]")
       (ree "(a a a)="))

let prop_simplify_equivalent_bounded =
  (* simplify is a language-preserving transformation; check it through
     the containment lens on REE expressions. *)
  QCheck.Test.make ~name:"simplify equivalent (bounded)" ~count:40
    (QCheck.make ~print:Ree_lang.Ree.to_string
       QCheck.Gen.(
         sized_size (int_bound 4) (fun n ->
             fix
               (fun self n ->
                 if n <= 0 then
                   oneof [ return Ree_lang.Ree.Eps; return (Ree_lang.Ree.Letter "a") ]
                 else
                   frequency
                     [
                       (2, map2 (fun a b -> Ree_lang.Ree.Union (a, b)) (self (n / 2)) (self (n / 2)));
                       (2, map2 (fun a b -> Ree_lang.Ree.Concat (a, b)) (self (n / 2)) (self (n / 2)));
                       (1, map (fun a -> Ree_lang.Ree.EqTest a) (self (n - 1)));
                       (1, map (fun a -> Ree_lang.Ree.NeqTest a) (self (n - 1)));
                     ])
               n)))
    (fun e ->
      Query_lang.Containment.equivalent_bounded ~max_len:4
        (Query.Ree e)
        (Query.Ree (Ree_lang.Ree.simplify e)))

let () =
  Alcotest.run "query"
    [
      ( "regular data path queries",
        [
          Alcotest.test_case "rpq" `Quick test_eval_rpq;
          Alcotest.test_case "rem" `Quick test_eval_rem;
          Alcotest.test_case "ree" `Quick test_eval_ree;
          Alcotest.test_case "matches_path" `Quick test_matches_path;
        ] );
      ( "conjunctive queries",
        [
          Alcotest.test_case "example 14 Q4" `Quick test_q4;
          Alcotest.test_case "example 14 Q5" `Quick test_q5;
          Alcotest.test_case "validation" `Quick test_conjunctive_validation;
          Alcotest.test_case "union" `Quick test_union_semantics;
          Alcotest.test_case "RDPQ as CRDPQ" `Quick test_rdpq_as_crdpq;
          Alcotest.test_case "boolean query" `Quick test_boolean_query;
        ] );
      ( "containment and simplification",
        [
          Alcotest.test_case "containment on a graph" `Quick
            test_containment_on_graph;
          Alcotest.test_case "simplify" `Quick test_simplify_query;
          Alcotest.test_case "bounded containment" `Quick
            test_bounded_containment;
        ] );
      ( "containment properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_simplify_equivalent_bounded ] );
    ]
