(* Tests for REM: conditions, the Definition 5 semantics, the register
   automaton semantics (differentially), basic REMs and Lemma 15. *)

module C = Rem_lang.Condition
module Rem = Rem_lang.Rem
module Basic = Rem_lang.Basic_rem
module RA = Rem_lang.Register_automaton
module DP = Datagraph.Data_path
module DV = Datagraph.Data_value

let dv = DV.of_int

let path values labels =
  DP.make
    ~values:(Array.of_list (List.map dv values))
    ~labels:(Array.of_list labels)

let parse s = match Rem.parse s with Ok e -> e | Error m -> failwith m

(* ---------- conditions ---------- *)

let test_condition_sat () =
  let assignment = [| Some (dv 5); None |] in
  let sat c d = C.sat c ~d:(dv d) ~assignment in
  Alcotest.(check bool) "true" true (sat C.True 0);
  Alcotest.(check bool) "eq holds" true (sat (C.Eq 0) 5);
  Alcotest.(check bool) "eq fails" false (sat (C.Eq 0) 6);
  Alcotest.(check bool) "neq" true (sat (C.Neq 0) 6);
  (* ⊥ differs from every data value (Definition 3). *)
  Alcotest.(check bool) "bottom neq" true (sat (C.Neq 1) 5);
  Alcotest.(check bool) "bottom eq" false (sat (C.Eq 1) 5);
  Alcotest.(check bool) "and" true (sat (C.And (C.Eq 0, C.Neq 1)) 5);
  Alcotest.(check bool) "or" true (sat (C.Or (C.Eq 0, C.Eq 1)) 5);
  Alcotest.(check bool) "not" false (sat (C.Not C.True) 5)

let test_condition_exactly_one_of_eq_neq () =
  (* For every register, exactly one of r=, r≠ holds — the basis of
     complete types. *)
  let assignments =
    [ [| Some (dv 1) |]; [| None |]; [| Some (dv 2) |] ]
  in
  List.iter
    (fun assignment ->
      List.iter
        (fun d ->
          let eq = C.sat (C.Eq 0) ~d:(dv d) ~assignment in
          let neq = C.sat (C.Neq 0) ~d:(dv d) ~assignment in
          Alcotest.(check bool) "exclusive" true (eq <> neq))
        [ 1; 2; 3 ])
    assignments

let test_complete_types () =
  let c = C.Or (C.Eq 0, C.Eq 1) in
  let types = C.complete_types ~k:2 c in
  Alcotest.(check int) "three of four types" 3 (List.length types);
  Alcotest.(check int) "unsat empty" 0 (List.length (C.complete_types ~k:2 C.ff));
  Alcotest.(check int) "true has all" 4 (List.length (C.complete_types ~k:2 C.True));
  (* of_complete_type round-trips through eval_type. *)
  List.iter
    (fun ty ->
      Alcotest.(check bool) "pinned" true (C.eval_type (C.of_complete_type ty) ty))
    types

let test_condition_parse () =
  let roundtrip s =
    match C.parse s with
    | Error m -> Alcotest.fail m
    | Ok c -> (
        match C.parse (C.to_string c) with
        | Ok c' -> Alcotest.(check bool) ("roundtrip " ^ s) true (C.equal c c')
        | Error m -> Alcotest.fail m)
  in
  List.iter roundtrip [ "true"; "r1="; "r2!="; "r1= & r2!="; "!(r1= | r2=)" ];
  (match C.parse "r0=" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "r0 should be rejected");
  match C.parse "r1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare register should be rejected"

(* ---------- REM semantics: the paper's Example 6 ---------- *)

let test_example6_one_register () =
  (* ↓r1·a·[r1=]: data paths d a d with equal endpoints. *)
  let e = parse "@r1 a[r1=]" in
  Alcotest.(check int) "one register" 1 (Rem.registers e);
  Alcotest.(check bool) "dad" true (Rem.matches e (path [ 7; 7 ] [ "a" ]));
  Alcotest.(check bool) "dad'" false (Rem.matches e (path [ 7; 8 ] [ "a" ]))

let test_example6_two_registers () =
  (* ↓r1·a·↓r2·b·a[r1=]·b[r2≠]: d1 a d2 b d3 a d4 b d5 with d1 = d4,
     d2 ≠ d5. *)
  let e = parse "@r1 a @r2 b a[r1=] b[r2!=]" in
  Alcotest.(check int) "two registers" 2 (Rem.registers e);
  let accept = path [ 1; 2; 3; 1; 4 ] [ "a"; "b"; "a"; "b" ] in
  let reject1 = path [ 1; 2; 3; 9; 4 ] [ "a"; "b"; "a"; "b" ] in
  let reject2 = path [ 1; 2; 3; 1; 2 ] [ "a"; "b"; "a"; "b" ] in
  Alcotest.(check bool) "accepted" true (Rem.matches e accept);
  Alcotest.(check bool) "d1<>d4" false (Rem.matches e reject1);
  Alcotest.(check bool) "d2=d5" false (Rem.matches e reject2)

let test_rem_eps_and_plus () =
  let e = parse "(@r1 a[r1=])+" in
  (* Iterated same-endpoint steps: every value equals its predecessor. *)
  Alcotest.(check bool) "d a d a d" true
    (Rem.matches e (path [ 3; 3; 3 ] [ "a"; "a" ]));
  Alcotest.(check bool) "value change" false
    (Rem.matches e (path [ 3; 3; 4 ] [ "a"; "a" ]));
  Alcotest.(check bool) "eps on single value" true
    (Rem.matches Rem.Eps (DP.singleton (dv 1)));
  Alcotest.(check bool) "eps rejects steps" false
    (Rem.matches Rem.Eps (path [ 1; 1 ] [ "a" ]))

let test_rem_binding_scope () =
  (* e2 of Example 12: ↓r1·a·↓r2·a[r1=]·a[r2=] — pattern x y x y. *)
  let e = parse "@r1 a @r2 a[r1=] a[r2=]" in
  Alcotest.(check bool) "0101" true
    (Rem.matches e (path [ 0; 1; 0; 1 ] [ "a"; "a"; "a" ]));
  Alcotest.(check bool) "0102" false
    (Rem.matches e (path [ 0; 1; 0; 2 ] [ "a"; "a"; "a" ]));
  Alcotest.(check bool) "0120" false
    (Rem.matches e (path [ 0; 1; 2; 0 ] [ "a"; "a"; "a" ]))

let test_rem_multi_bind () =
  (* ↓{r1,r2} binds two registers to the same value. *)
  let e = parse "@{r1,r2} a[r1= & r2=]" in
  Alcotest.(check bool) "same" true (Rem.matches e (path [ 5; 5 ] [ "a" ]));
  Alcotest.(check bool) "diff" false (Rem.matches e (path [ 5; 6 ] [ "a" ]))

let test_rem_automorphism_invariance () =
  (* Fact 10 on a fixed expression. *)
  let e = parse "@r1 a (a[r1=] | a[r1!=] b)" in
  let w = path [ 0; 1; 0 ] [ "a"; "a" ] in
  let w' = path [ 10; 4; 10 ] [ "a"; "a" ] in
  Alcotest.(check bool) "w in L" true (Rem.matches e w);
  Alcotest.(check bool) "automorphic copy in L" true (Rem.matches e w')

(* ---------- register automaton: differential against Definition 5 ---- *)

let arb_small_rem =
  let open QCheck.Gen in
  let gen =
    sized_size (int_bound 5) (fun n ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof
                [
                  return Rem.Eps;
                  map (fun b -> Rem.Letter (if b then "a" else "b")) bool;
                ]
            else
              frequency
                [
                  (2, map2 (fun a b -> Rem.Union (a, b)) (self (n / 2)) (self (n / 2)));
                  (3, map2 (fun a b -> Rem.Concat (a, b)) (self (n / 2)) (self (n / 2)));
                  (1, map (fun a -> Rem.Plus a) (self (n - 1)));
                  ( 2,
                    map2
                      (fun a r -> Rem.Test (a, if r then C.Eq 0 else C.Neq 1))
                      (self (n - 1)) bool );
                  (2, map2 (fun a r -> Rem.Bind ([ (if r then 0 else 1) ], a)) (self (n - 1)) bool);
                ])
          n)
  in
  QCheck.make ~print:Rem.to_string gen

let arb_small_path =
  let open QCheck.Gen in
  let gen =
    int_bound 4 >>= fun m ->
    list_repeat (m + 1) (int_bound 2) >>= fun values ->
    list_repeat m (map (fun b -> if b then "a" else "b") bool) >>= fun labels ->
    return
      (DP.make
         ~values:(Array.of_list (List.map dv values))
         ~labels:(Array.of_list labels))
  in
  QCheck.make ~print:DP.to_string gen

let prop_ra_agrees =
  QCheck.Test.make
    ~name:"register automaton agrees with Definition 5 semantics" ~count:800
    (QCheck.pair arb_small_rem arb_small_path)
    (fun (e, w) -> RA.accepts (RA.of_rem e) w = Rem.matches e w)

let prop_rem_automorphism =
  QCheck.Test.make ~name:"Fact 10: closure under automorphisms" ~count:400
    (QCheck.pair arb_small_rem arb_small_path)
    (fun (e, w) ->
      (* Apply the automorphism v ↦ v+10 (injective on the values used). *)
      let w' = DP.map_values (fun d -> dv (DV.to_int d + 10)) w in
      Rem.matches e w = Rem.matches e w')

(* ---------- basic REMs and Lemma 15 ---------- *)

let test_basic_matches () =
  let b =
    [
      { Basic.bind = [ 0 ]; label = "a"; cond = C.True };
      { Basic.bind = []; label = "a"; cond = C.Eq 0 };
    ]
  in
  Alcotest.(check bool) "xyx" true (Basic.matches b (path [ 1; 2; 1 ] [ "a"; "a" ]));
  Alcotest.(check bool) "xyz" false (Basic.matches b (path [ 1; 2; 3 ] [ "a"; "a" ]));
  Alcotest.(check bool) "wrong label" false
    (Basic.matches b (path [ 1; 2; 1 ] [ "a"; "b" ]));
  (* Agreement with the generic semantics. *)
  Alcotest.(check bool) "agrees with Rem.matches" true
    (Rem.matches (Basic.to_rem b) (path [ 1; 2; 1 ] [ "a"; "a" ]))

let test_lemma15_basic () =
  (* L(e_[w]) = [w]: w' matches iff automorphic to w. *)
  let w = path [ 0; 1; 0; 2 ] [ "a"; "b"; "a" ] in
  let e = Basic.of_data_path w in
  Alcotest.(check bool) "w itself" true (Basic.matches e w);
  Alcotest.(check bool) "automorphic copy" true
    (Basic.matches e (path [ 5; 6; 5; 7 ] [ "a"; "b"; "a" ]));
  Alcotest.(check bool) "non-automorphic (merge)" false
    (Basic.matches e (path [ 5; 6; 5; 5 ] [ "a"; "b"; "a" ]));
  Alcotest.(check bool) "non-automorphic (split)" false
    (Basic.matches e (path [ 5; 6; 7; 8 ] [ "a"; "b"; "a" ]))

let test_lemma15_freshness () =
  (* The construction printed in the paper omits freshness tests; ours
     adds them.  Without them e_[0a1] would accept 0a0. *)
  let w = path [ 0; 1 ] [ "a" ] in
  let e = Basic.of_data_path w in
  Alcotest.(check bool) "0a1 in" true (Basic.matches e (path [ 0; 1 ] [ "a" ]));
  Alcotest.(check bool) "0a0 out" false (Basic.matches e (path [ 0; 0 ] [ "a" ]))

let test_lemma15_singleton () =
  let w = DP.singleton (dv 3) in
  let e = Basic.of_data_path w in
  Alcotest.(check int) "empty block list" 0 (Basic.length e);
  Alcotest.(check bool) "any single value" true
    (Basic.matches e (DP.singleton (dv 9)))

let prop_lemma15 =
  QCheck.Test.make
    ~name:"Lemma 15: w' in L(e_[w]) iff automorphic to w" ~count:500
    (QCheck.pair arb_small_path arb_small_path)
    (fun (w, w') ->
      let e = Basic.of_data_path w in
      Basic.matches e w' = DP.automorphic w w')

let prop_simplify_preserves =
  QCheck.Test.make ~name:"simplify preserves the language" ~count:400
    (QCheck.pair arb_small_rem arb_small_path)
    (fun (e, w) -> Rem.matches (Rem.simplify e) w = Rem.matches e w)

(* ---------- pretty-printer / parser roundtrip ---------- *)

let prop_rem_roundtrip =
  QCheck.Test.make ~name:"parse (pp e) = e" ~count:300 arb_small_rem
    (fun e ->
      match Rem.parse (Rem.to_string e) with
      | Ok e' -> Rem.equal e e'
      | Error _ -> false)

(* ---------- emptiness and witnesses ---------- *)

let test_emptiness_basics () =
  let check_rem s expected_empty =
    let e = parse s in
    Alcotest.(check bool) s expected_empty (RA.is_empty (RA.of_rem e))
  in
  check_rem "a" false;
  check_rem "@r1 a[r1=]" false;
  (* d a d' with d = d' and d <> d' simultaneously: empty. *)
  check_rem "@r1 a[r1= & r1!=]" true;
  (* Binding then requiring inequality with itself at the same value. *)
  check_rem "@r1 eps[r1!=]" true;
  check_rem "@r1 eps[r1=]" false;
  (* Needs two distinct values; satisfiable. *)
  check_rem "@r1 a[r1!=]" false;
  (* eps with unsatisfiable condition — the canonical empty REM. *)
  Alcotest.(check bool) "empty rem" true
    (RA.is_empty (RA.of_rem (Rem.Test (Rem.Eps, C.ff))))

let test_shortest_accepted () =
  let e = parse "@r1 a a a[r1=]" in
  (match RA.shortest_accepted (RA.of_rem e) with
  | None -> Alcotest.fail "expected a witness"
  | Some w ->
      Alcotest.(check int) "length 3" 3 (DP.length w);
      Alcotest.(check bool) "accepted" true (RA.accepts (RA.of_rem e) w);
      Alcotest.(check bool) "endpoints equal" true
        (Datagraph.Data_value.equal (DP.first w) (DP.last w)));
  Alcotest.(check bool) "empty language" true
    (RA.shortest_accepted (RA.of_rem (Rem.Test (Rem.Eps, C.ff))) = None)

let prop_emptiness_agrees =
  QCheck.Test.make
    ~name:"is_empty agrees with shortest_accepted and with membership"
    ~count:300 arb_small_rem
    (fun e ->
      let a = RA.of_rem e in
      match RA.shortest_accepted a with
      | Some w -> (not (RA.is_empty a)) && RA.accepts a w && Rem.matches e w
      | None -> RA.is_empty a (* generated REMs have short witnesses *))

(* ---------- evaluation on graphs ---------- *)

let test_eval_on_fig1 () =
  let g = Datagraph.Graph_gen.fig1 () in
  let e2 = parse "@r1 a @r2 a[r1=] a[r2=]" in
  let r = RA.eval_on_graph g (RA.of_rem e2) in
  Alcotest.(check bool) "e2 defines S2" true
    (Datagraph.Relation.equal r (Datagraph.Graph_gen.fig1_s2 g))

let () =
  Alcotest.run "rem"
    [
      ( "conditions",
        [
          Alcotest.test_case "satisfaction" `Quick test_condition_sat;
          Alcotest.test_case "eq/neq exclusive" `Quick
            test_condition_exactly_one_of_eq_neq;
          Alcotest.test_case "complete types" `Quick test_complete_types;
          Alcotest.test_case "parse" `Quick test_condition_parse;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "example 6 (1 register)" `Quick
            test_example6_one_register;
          Alcotest.test_case "example 6 (2 registers)" `Quick
            test_example6_two_registers;
          Alcotest.test_case "eps and plus" `Quick test_rem_eps_and_plus;
          Alcotest.test_case "binding scope" `Quick test_rem_binding_scope;
          Alcotest.test_case "multi bind" `Quick test_rem_multi_bind;
          Alcotest.test_case "automorphism invariance" `Quick
            test_rem_automorphism_invariance;
        ] );
      ( "basic REMs",
        [
          Alcotest.test_case "matches" `Quick test_basic_matches;
          Alcotest.test_case "lemma 15" `Quick test_lemma15_basic;
          Alcotest.test_case "lemma15_freshness" `Quick test_lemma15_freshness;
          Alcotest.test_case "singleton path" `Quick test_lemma15_singleton;
        ] );
      ( "emptiness",
        [
          Alcotest.test_case "basics" `Quick test_emptiness_basics;
          Alcotest.test_case "shortest witness" `Quick test_shortest_accepted;
        ] );
      ( "evaluation",
        [ Alcotest.test_case "fig1 e2" `Quick test_eval_on_fig1 ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ra_agrees;
            prop_rem_automorphism;
            prop_lemma15;
            prop_rem_roundtrip;
            prop_simplify_preserves;
            prop_emptiness_agrees;
          ] );
    ]
