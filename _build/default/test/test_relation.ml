(* Tests for binary and tuple relations, including QCheck properties of
   the Definition 26 operators. *)

module Rel = Datagraph.Relation
module TRel = Datagraph.Tuple_relation
module DV = Datagraph.Data_value

let dv = DV.of_int

(* ---------- unit tests ---------- *)

let test_basics () =
  let r = Rel.of_list 4 [ (0, 1); (1, 2); (3, 3) ] in
  Alcotest.(check int) "cardinal" 3 (Rel.cardinal r);
  Alcotest.(check bool) "mem" true (Rel.mem r 1 2);
  Alcotest.(check bool) "not mem" false (Rel.mem r 2 1);
  Alcotest.(check (list (pair int int)))
    "to_list sorted" [ (0, 1); (1, 2); (3, 3) ] (Rel.to_list r);
  let r' = Rel.remove (Rel.add r 2 0) 0 1 in
  Alcotest.(check bool) "added" true (Rel.mem r' 2 0);
  Alcotest.(check bool) "removed" false (Rel.mem r' 0 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Relation: node out of range") (fun () ->
      ignore (Rel.mem r 0 4))

let test_set_ops () =
  let r1 = Rel.of_list 3 [ (0, 1); (1, 2) ] in
  let r2 = Rel.of_list 3 [ (1, 2); (2, 0) ] in
  Alcotest.(check (list (pair int int)))
    "union" [ (0, 1); (1, 2); (2, 0) ]
    (Rel.to_list (Rel.union r1 r2));
  Alcotest.(check (list (pair int int)))
    "inter" [ (1, 2) ]
    (Rel.to_list (Rel.inter r1 r2));
  Alcotest.(check (list (pair int int)))
    "diff" [ (0, 1) ]
    (Rel.to_list (Rel.diff r1 r2));
  Alcotest.(check bool) "subset" true (Rel.subset (Rel.inter r1 r2) r1);
  Alcotest.(check bool) "not subset" false (Rel.subset r1 r2)

let test_compose () =
  let r1 = Rel.of_list 4 [ (0, 1); (1, 2) ] in
  let r2 = Rel.of_list 4 [ (1, 3); (2, 0) ] in
  Alcotest.(check (list (pair int int)))
    "compose" [ (0, 3); (1, 0) ]
    (Rel.to_list (Rel.compose r1 r2));
  (* Identity is neutral. *)
  Alcotest.(check bool) "left unit" true
    (Rel.equal (Rel.compose (Rel.identity 4) r1) r1);
  Alcotest.(check bool) "right unit" true
    (Rel.equal (Rel.compose r1 (Rel.identity 4)) r1)

let test_restrict () =
  (* Values: 0 -> a, 1 -> b, 2 -> a *)
  let value = function 0 -> dv 10 | 1 -> dv 11 | _ -> dv 10 in
  let r = Rel.full 3 in
  let eq = Rel.restrict_eq ~value r in
  let neq = Rel.restrict_neq ~value r in
  Alcotest.(check int) "eq pairs" 5 (Rel.cardinal eq);
  Alcotest.(check bool) "eq mem" true (Rel.mem eq 0 2);
  Alcotest.(check bool) "eq self" true (Rel.mem eq 1 1);
  Alcotest.(check int) "partition" 9 (Rel.cardinal (Rel.union eq neq));
  Alcotest.(check bool) "disjoint" true (Rel.is_empty (Rel.inter eq neq))

let test_transitive_closure () =
  let r = Rel.of_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  let tc = Rel.transitive_closure r in
  Alcotest.(check int) "closure size" 6 (Rel.cardinal tc);
  Alcotest.(check bool) "long hop" true (Rel.mem tc 0 3);
  Alcotest.(check bool) "not reflexive" false (Rel.mem tc 0 0);
  (* Cycle: closure contains self-loops. *)
  let c = Rel.of_list 2 [ (0, 1); (1, 0) ] in
  Alcotest.(check bool) "cycle self" true
    (Rel.mem (Rel.transitive_closure c) 0 0)

let test_edge_relations () =
  let g = Datagraph.Graph_gen.fig1 () in
  let ra = Rel.edge_relation g "a" in
  Alcotest.(check int) "a edges" 12 (Rel.cardinal ra);
  Alcotest.(check bool) "absent label empty" true
    (Rel.is_empty (Rel.edge_relation g "b"));
  Alcotest.(check bool) "step = union" true
    (Rel.equal ra (Rel.step_relation g))

let test_map () =
  let r = Rel.of_list 3 [ (0, 1); (1, 2) ] in
  let m = Rel.map (fun v -> (v + 1) mod 3) r in
  Alcotest.(check (list (pair int int))) "mapped" [ (1, 2); (2, 0) ] (Rel.to_list m)

(* ---------- tuple relations ---------- *)

let test_tuple_basics () =
  let r = TRel.of_list ~universe:4 ~arity:3 [ [ 0; 1; 2 ]; [ 1; 1; 1 ] ] in
  Alcotest.(check int) "cardinal" 2 (TRel.cardinal r);
  Alcotest.(check bool) "mem" true (TRel.mem r [ 1; 1; 1 ]);
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Tuple_relation: wrong arity") (fun () ->
      ignore (TRel.mem r [ 0; 1 ]));
  let m = TRel.map (fun v -> (v + 1) mod 4) r in
  Alcotest.(check bool) "mapped" true (TRel.mem m [ 1; 2; 3 ])

let test_tuple_binary_roundtrip () =
  let b = Rel.of_list 5 [ (0, 4); (2, 2) ] in
  let t = TRel.of_binary b in
  Alcotest.(check int) "arity" 2 (TRel.arity t);
  Alcotest.(check bool) "roundtrip" true (Rel.equal b (TRel.to_binary t))

(* ---------- QCheck properties ---------- *)

let rel_gen n =
  QCheck.Gen.(
    list_size (int_bound (n * 2))
      (pair (int_bound (n - 1)) (int_bound (n - 1)))
    |> map (fun pairs -> Rel.of_list n pairs))

let arb_rel n =
  QCheck.make ~print:(fun r -> Format.asprintf "%a" Rel.pp_raw r) (rel_gen n)

let prop_compose_assoc =
  QCheck.Test.make ~name:"compose associative" ~count:200
    (QCheck.triple (arb_rel 5) (arb_rel 5) (arb_rel 5))
    (fun (a, b, c) ->
      Rel.equal
        (Rel.compose a (Rel.compose b c))
        (Rel.compose (Rel.compose a b) c))

let prop_compose_distributes =
  QCheck.Test.make ~name:"compose distributes over union" ~count:200
    (QCheck.triple (arb_rel 5) (arb_rel 5) (arb_rel 5))
    (fun (a, b, c) ->
      Rel.equal
        (Rel.compose a (Rel.union b c))
        (Rel.union (Rel.compose a b) (Rel.compose a c)))

let prop_union_commutes =
  QCheck.Test.make ~name:"union commutative" ~count:200
    (QCheck.pair (arb_rel 6) (arb_rel 6))
    (fun (a, b) -> Rel.equal (Rel.union a b) (Rel.union b a))

let prop_restrict_partition =
  QCheck.Test.make ~name:"=/≠ restrictions partition" ~count:200 (arb_rel 6)
    (fun r ->
      let value v = dv (v mod 3) in
      let eq = Rel.restrict_eq ~value r and neq = Rel.restrict_neq ~value r in
      Rel.equal (Rel.union eq neq) r && Rel.is_empty (Rel.inter eq neq))

let prop_closure_idempotent =
  QCheck.Test.make ~name:"transitive closure idempotent" ~count:100
    (arb_rel 5) (fun r ->
      let tc = Rel.transitive_closure r in
      Rel.equal tc (Rel.transitive_closure tc))

let prop_closure_transitive =
  QCheck.Test.make ~name:"closure is transitive" ~count:100 (arb_rel 5)
    (fun r ->
      let tc = Rel.transitive_closure r in
      Rel.subset (Rel.compose tc tc) tc)

let prop_hash_consistent =
  QCheck.Test.make ~name:"equal implies same hash" ~count:200
    (QCheck.pair (arb_rel 4) (arb_rel 4))
    (fun (a, b) -> (not (Rel.equal a b)) || Rel.hash a = Rel.hash b)

let () =
  Alcotest.run "relation"
    [
      ( "binary",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "set ops" `Quick test_set_ops;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "edge relations" `Quick test_edge_relations;
          Alcotest.test_case "map" `Quick test_map;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basics" `Quick test_tuple_basics;
          Alcotest.test_case "binary roundtrip" `Quick test_tuple_binary_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compose_assoc;
            prop_compose_distributes;
            prop_union_commutes;
            prop_restrict_partition;
            prop_closure_idempotent;
            prop_closure_transitive;
            prop_hash_consistent;
          ] );
    ]
