(* Tests for standard regular expressions and the NFA machinery. *)

module R = Regexp.Regex
module Nfa = Regexp.Nfa
module Rel = Datagraph.Relation

let parse s = match R.parse s with Ok e -> e | Error m -> failwith m

let test_parse () =
  Alcotest.(check bool) "letter" true (R.equal (parse "a") (R.Letter "a"));
  Alcotest.(check bool) "concat juxtaposition" true
    (R.equal (parse "a b") (R.Concat (R.Letter "a", R.Letter "b")));
  Alcotest.(check bool) "concat dot" true
    (R.equal (parse "a . b") (parse "a b"));
  Alcotest.(check bool) "union" true
    (R.equal (parse "a | b") (R.Union (R.Letter "a", R.Letter "b")));
  Alcotest.(check bool) "plus" true (R.equal (parse "a+") (R.Plus (R.Letter "a")));
  Alcotest.(check bool) "star" true (R.equal (parse "a*") (R.Star (R.Letter "a")));
  Alcotest.(check bool) "eps keyword" true (R.equal (parse "eps") R.Eps);
  Alcotest.(check bool) "empty keyword" true (R.equal (parse "empty") R.Empty);
  Alcotest.(check bool) "precedence: concat binds tighter" true
    (R.equal (parse "a b | c") (R.Union (parse "a b", R.Letter "c")));
  Alcotest.(check bool) "grouping" true
    (R.equal (parse "(a | b) c") (R.Concat (parse "a|b", R.Letter "c")));
  Alcotest.(check bool) "multichar letters" true
    (R.equal (parse "friend friend") (parse "friend . friend"));
  (match R.parse "a | | b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject");
  match R.parse "(a" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject unbalanced"

let test_pp_roundtrip () =
  let exprs =
    [ "a"; "a b"; "a | b"; "a+"; "(a | b)+"; "a (b | c) d*"; "eps | a" ]
  in
  List.iter
    (fun s ->
      let e = parse s in
      let e' = parse (R.to_string e) in
      Alcotest.(check bool) ("roundtrip " ^ s) true (R.equal e e'))
    exprs

let test_matches () =
  let e = parse "a (b | c)+ a" in
  Alcotest.(check bool) "abca" true (R.matches e [ "a"; "b"; "c"; "a" ]);
  Alcotest.(check bool) "aa" false (R.matches e [ "a"; "a" ]);
  Alcotest.(check bool) "eps matches []" true (R.matches R.Eps []);
  Alcotest.(check bool) "empty matches nothing" false (R.matches R.Empty []);
  Alcotest.(check bool) "star empty" true (R.matches (parse "a*") []);
  Alcotest.(check bool) "plus not empty" false (R.matches (parse "a+") [])

let test_nfa_agrees_with_derivatives () =
  (* Differential test on a fixed expression over all short words. *)
  let e = parse "(a b | a)+ | b*" in
  let nfa = Nfa.of_regex e in
  let alphabet = [ "a"; "b" ] in
  let rec words k =
    if k = 0 then [ [] ]
    else
      let rest = words (k - 1) in
      rest @ List.concat_map (fun w -> List.map (fun a -> a :: w) alphabet) rest
  in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (String.concat "" w)
        (R.matches e w) (Nfa.accepts nfa w))
    (words 5)

let qcheck_regex_gen =
  let open QCheck.Gen in
  sized_size (int_bound 6) (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ return R.Eps; map (fun b -> R.Letter (if b then "a" else "b")) bool ]
          else
            frequency
              [
                (2, map2 (fun a b -> R.Union (a, b)) (self (n / 2)) (self (n / 2)));
                (3, map2 (fun a b -> R.Concat (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map (fun a -> R.Plus a) (self (n - 1)));
                (1, map (fun a -> R.Star a) (self (n - 1)));
                (1, return (R.Letter "a"));
              ])
        n)

let arb_regex = QCheck.make ~print:R.to_string qcheck_regex_gen

let arb_word =
  QCheck.make
    ~print:(String.concat "")
    QCheck.Gen.(
      list_size (int_bound 6) (map (fun b -> if b then "a" else "b") bool))

let prop_nfa_matches =
  QCheck.Test.make ~name:"NFA agrees with derivative matching" ~count:500
    (QCheck.pair arb_regex arb_word)
    (fun (e, w) -> Nfa.accepts (Nfa.of_regex e) w = R.matches e w)

let prop_emptiness =
  QCheck.Test.make ~name:"emptiness agrees with bounded witness" ~count:200
    arb_regex (fun e ->
      let nfa = Nfa.of_regex e in
      let empty = Nfa.is_empty nfa in
      match Nfa.accepts_some_bounded nfa ~max_len:12 with
      | Some w -> (not empty) && Nfa.accepts nfa w
      | None -> empty (* generated regexes have short witnesses *))

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (pp e) = e" ~count:300 arb_regex (fun e ->
      match R.parse (R.to_string e) with
      | Ok e' -> R.equal e e'
      | Error _ -> false)

let test_inclusion () =
  let nfa s = Nfa.of_regex (parse s) in
  Alcotest.(check bool) "a <= a|b" true
    (Nfa.included (nfa "a") ~in_:(nfa "a | b") ~over:[]);
  Alcotest.(check bool) "a+ <= a*" true
    (Nfa.included (nfa "a+") ~in_:(nfa "a*") ~over:[]);
  Alcotest.(check bool) "a* not <= a+" false
    (Nfa.included (nfa "a*") ~in_:(nfa "a+") ~over:[]);
  (match Nfa.counterexample (nfa "a*") ~in_:(nfa "a+") ~over:[] with
  | Some [] -> () (* the empty word separates them *)
  | _ -> Alcotest.fail "expected the empty word");
  Alcotest.(check bool) "(ab)+ <= a(ba)*b" true
    (Nfa.included (nfa "(a b)+") ~in_:(nfa "a (b a)* b") ~over:[]);
  match Nfa.counterexample (nfa "a a | b") ~in_:(nfa "a a") ~over:[] with
  | Some [ "b" ] -> ()
  | _ -> Alcotest.fail "expected the word b"

let prop_inclusion_sound =
  QCheck.Test.make ~name:"counterexample is genuine" ~count:200
    (QCheck.pair arb_regex arb_regex)
    (fun (e1, e2) ->
      let a = Nfa.of_regex e1 and b = Nfa.of_regex e2 in
      match Nfa.counterexample a ~in_:b ~over:[ "a"; "b" ] with
      | Some w -> Nfa.accepts a w && not (Nfa.accepts b w)
      | None ->
          (* Spot-check inclusion on short words. *)
          List.for_all
            (fun w -> (not (Nfa.accepts a w)) || Nfa.accepts b w)
            [ []; [ "a" ]; [ "b" ]; [ "a"; "a" ]; [ "a"; "b" ]; [ "b"; "a" ] ])

let prop_union_upper_bound =
  QCheck.Test.make ~name:"e <= e|f" ~count:200
    (QCheck.pair arb_regex arb_regex)
    (fun (e1, e2) ->
      Nfa.included (Nfa.of_regex e1)
        ~in_:(Nfa.of_regex (R.Union (e1, e2)))
        ~over:[])

let test_eval_on_graph () =
  let g = Datagraph.Graph_gen.fig1 () in
  let r = Nfa.eval_on_graph g (Nfa.of_regex (parse "a a a")) in
  Alcotest.(check bool) "aaa = S1" true
    (Rel.equal r (Datagraph.Graph_gen.fig1_s1 g));
  (* a* includes the identity. *)
  let rstar = Nfa.eval_on_graph g (Nfa.of_regex (parse "a*")) in
  Alcotest.(check bool) "a* reflexive" true
    (Rel.subset (Rel.identity (Datagraph.Data_graph.size g)) rstar);
  (* a+ = transitive closure of the edge relation. *)
  let rplus = Nfa.eval_on_graph g (Nfa.of_regex (parse "a+")) in
  Alcotest.(check bool) "a+ = closure" true
    (Rel.equal rplus (Rel.transitive_closure (Rel.edge_relation g "a")))

let prop_eval_union =
  QCheck.Test.make ~name:"eval distributes over union" ~count:50
    (QCheck.pair arb_regex arb_regex)
    (fun (e1, e2) ->
      let g =
        Datagraph.Graph_gen.random ~seed:11 ~n:5 ~delta:2 ~labels:[ "a"; "b" ]
          ~density:0.3 ()
      in
      Rel.equal
        (Nfa.eval_on_graph g (Nfa.of_regex (R.Union (e1, e2))))
        (Rel.union
           (Nfa.eval_on_graph g (Nfa.of_regex e1))
           (Nfa.eval_on_graph g (Nfa.of_regex e2))))

let prop_eval_concat =
  QCheck.Test.make ~name:"eval of concat = composition" ~count:50
    (QCheck.pair arb_regex arb_regex)
    (fun (e1, e2) ->
      let g =
        Datagraph.Graph_gen.random ~seed:13 ~n:5 ~delta:2 ~labels:[ "a"; "b" ]
          ~density:0.3 ()
      in
      Rel.equal
        (Nfa.eval_on_graph g (Nfa.of_regex (R.Concat (e1, e2))))
        (Rel.compose
           (Nfa.eval_on_graph g (Nfa.of_regex e1))
           (Nfa.eval_on_graph g (Nfa.of_regex e2))))

let prop_simplify_preserves =
  QCheck.Test.make ~name:"simplify preserves the language" ~count:400
    (QCheck.pair arb_regex arb_word)
    (fun (e, w) -> R.matches (R.simplify e) w = R.matches e w)

let prop_simplify_shrinks =
  QCheck.Test.make ~name:"simplify never grows the expression" ~count:300
    arb_regex (fun e -> R.size (R.simplify e) <= R.size e)

let () =
  Alcotest.run "regex"
    [
      ( "parsing",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip;
        ] );
      ( "matching",
        [
          Alcotest.test_case "matches" `Quick test_matches;
          Alcotest.test_case "nfa vs derivatives" `Quick
            test_nfa_agrees_with_derivatives;
        ] );
      ( "inclusion",
        [ Alcotest.test_case "basics" `Quick test_inclusion ] );
      ( "graph evaluation",
        [ Alcotest.test_case "fig1" `Quick test_eval_on_graph ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_nfa_matches;
            prop_emptiness;
            prop_roundtrip;
            prop_eval_union;
            prop_eval_concat;
            prop_simplify_preserves;
            prop_simplify_shrinks;
            prop_inclusion_sound;
            prop_union_upper_bound;
          ] );
    ]
