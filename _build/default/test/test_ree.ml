(* Tests for REE: Definition 7 semantics, the paper's Examples 8 and 12,
   the REE→REM embedding (differential), and term relation semantics
   (Lemma 29). *)

module Ree = Ree_lang.Ree
module Term = Ree_lang.Ree_term
module Rem = Rem_lang.Rem
module DP = Datagraph.Data_path
module DV = Datagraph.Data_value
module Rel = Datagraph.Relation

let dv = DV.of_int

let path values labels =
  DP.make
    ~values:(Array.of_list (List.map dv values))
    ~labels:(Array.of_list labels)

let parse s = match Ree.parse s with Ok e -> e | Error m -> failwith m

let test_example8 () =
  (* ((a)≠ · (b)≠)≠ : d1 a d2 b d3 with d1≠d2, d2≠d3, d1≠d3. *)
  let e = parse "((a)!= (b)!=)!=" in
  Alcotest.(check bool) "123" true (Ree.matches e (path [ 1; 2; 3 ] [ "a"; "b" ]));
  Alcotest.(check bool) "121" false (Ree.matches e (path [ 1; 2; 1 ] [ "a"; "b" ]));
  Alcotest.(check bool) "112" false (Ree.matches e (path [ 1; 1; 2 ] [ "a"; "b" ]));
  Alcotest.(check bool) "122" false (Ree.matches e (path [ 1; 2; 2 ] [ "a"; "b" ]))

let test_example12_e3 () =
  (* e3 = (a·(a)=·a)= : d1 a d2 a d3 a d4 with d2=d3 and d1=d4. *)
  let e = parse "(a (a)= a)=" in
  Alcotest.(check bool) "0110" true
    (Ree.matches e (path [ 0; 1; 1; 0 ] [ "a"; "a"; "a" ]));
  Alcotest.(check bool) "3110" false
    (Ree.matches e (path [ 3; 1; 1; 0 ] [ "a"; "a"; "a" ]));
  Alcotest.(check bool) "1231" false
    (Ree.matches e (path [ 1; 2; 3; 1 ] [ "a"; "a"; "a" ]))

let test_semantics_basics () =
  Alcotest.(check bool) "eps single" true (Ree.matches Ree.Eps (DP.singleton (dv 1)));
  Alcotest.(check bool) "eps= single" true
    (Ree.matches (Ree.EqTest Ree.Eps) (DP.singleton (dv 1)));
  (* L(ε≠) = ∅: a single value equals itself. *)
  Alcotest.(check bool) "eps!= empty" false
    (Ree.matches (Ree.NeqTest Ree.Eps) (DP.singleton (dv 1)));
  Alcotest.(check bool) "letter any values" true
    (Ree.matches (Ree.Letter "a") (path [ 4; 9 ] [ "a" ]));
  let e = Ree.Plus (Ree.EqTest (Ree.Letter "a")) in
  Alcotest.(check bool) "plus of a=" true
    (Ree.matches e (path [ 5; 5; 5 ] [ "a"; "a" ]));
  Alcotest.(check bool) "plus of a= broken" false
    (Ree.matches e (path [ 5; 5; 6 ] [ "a"; "a" ]))

let test_parse_roundtrip () =
  List.iter
    (fun s ->
      let e = parse s in
      match Ree.parse (Ree.to_string e) with
      | Ok e' -> Alcotest.(check bool) ("roundtrip " ^ s) true (Ree.equal e e')
      | Error m -> Alcotest.fail m)
    [ "(a (a)= a)="; "((a)!= (b)!=)!="; "a+ | (b c)="; "eps= a*" ]

let arb_small_ree =
  let open QCheck.Gen in
  let gen =
    sized_size (int_bound 5) (fun n ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof
                [
                  return Ree.Eps;
                  map (fun b -> Ree.Letter (if b then "a" else "b")) bool;
                ]
            else
              frequency
                [
                  (2, map2 (fun a b -> Ree.Union (a, b)) (self (n / 2)) (self (n / 2)));
                  (3, map2 (fun a b -> Ree.Concat (a, b)) (self (n / 2)) (self (n / 2)));
                  (1, map (fun a -> Ree.Plus a) (self (n - 1)));
                  (2, map (fun a -> Ree.EqTest a) (self (n - 1)));
                  (2, map (fun a -> Ree.NeqTest a) (self (n - 1)));
                ])
          n)
  in
  QCheck.make ~print:Ree.to_string gen

let arb_small_path =
  let open QCheck.Gen in
  let gen =
    int_bound 4 >>= fun m ->
    list_repeat (m + 1) (int_bound 2) >>= fun values ->
    list_repeat m (map (fun b -> if b then "a" else "b") bool) >>= fun labels ->
    return
      (DP.make
         ~values:(Array.of_list (List.map dv values))
         ~labels:(Array.of_list labels))
  in
  QCheck.make ~print:DP.to_string gen

let prop_to_rem_agrees =
  QCheck.Test.make ~name:"REE-to-REM embedding preserves the language"
    ~count:600
    (QCheck.pair arb_small_ree arb_small_path)
    (fun (e, w) -> Ree.matches e w = Rem.matches (Ree.to_rem e) w)

let prop_ree_automorphism =
  QCheck.Test.make ~name:"Fact 10 for REE" ~count:400
    (QCheck.pair arb_small_ree arb_small_path)
    (fun (e, w) ->
      let w' = DP.map_values (fun d -> dv (DV.to_int d + 10)) w in
      Ree.matches e w = Ree.matches e w')

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (pp e) = e" ~count:300 arb_small_ree (fun e ->
      match Ree.parse (Ree.to_string e) with
      | Ok e' -> Ree.equal e e'
      | Error _ -> false)

let prop_simplify_preserves =
  QCheck.Test.make ~name:"simplify preserves the language" ~count:400
    (QCheck.pair arb_small_ree arb_small_path)
    (fun (e, w) -> Ree.matches (Ree.simplify e) w = Ree.matches e w)

let test_term_relation_fig1 () =
  let g = Datagraph.Graph_gen.fig1 () in
  let t =
    Term.EqTest
      (Term.concat_of
         [ Term.Letter "a"; Term.EqTest (Term.Letter "a"); Term.Letter "a" ])
  in
  Alcotest.(check bool) "term defines S3" true
    (Rel.equal (Term.relation g t) (Datagraph.Graph_gen.fig1_s3 g));
  Alcotest.(check int) "height" 2 (Term.height t)

let arb_small_term =
  let open QCheck.Gen in
  let gen =
    sized_size (int_bound 5) (fun n ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof
                [
                  return Term.Eps;
                  map (fun b -> Term.Letter (if b then "a" else "b")) bool;
                ]
            else
              frequency
                [
                  (3, map2 (fun a b -> Term.Concat (a, b)) (self (n / 2)) (self (n / 2)));
                  (2, map (fun a -> Term.EqTest a) (self (n - 1)));
                  (2, map (fun a -> Term.NeqTest a) (self (n - 1)));
                ])
          n)
  in
  QCheck.make ~print:Term.to_string gen

(* Lemma 29 instantiated: the compositional relation semantics of a term
   agrees with evaluating the term as an REE query via register automata. *)
let prop_term_relation_agrees_with_eval =
  QCheck.Test.make
    ~name:"term relation = REE evaluation (Lemma 29)" ~count:60
    arb_small_term
    (fun t ->
      let g =
        Datagraph.Graph_gen.random ~seed:3 ~n:5 ~delta:2 ~labels:[ "a"; "b" ]
          ~density:0.35 ()
      in
      let direct = Term.relation g t in
      let via_eval =
        Rem_lang.Register_automaton.eval_on_graph g
          (Rem_lang.Register_automaton.of_rem (Ree.to_rem (Term.to_ree t)))
      in
      Rel.equal direct via_eval)

let () =
  Alcotest.run "ree"
    [
      ( "semantics",
        [
          Alcotest.test_case "example 8" `Quick test_example8;
          Alcotest.test_case "example 12 e3" `Quick test_example12_e3;
          Alcotest.test_case "basics" `Quick test_semantics_basics;
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
        ] );
      ( "terms",
        [ Alcotest.test_case "fig1 S3" `Quick test_term_relation_fig1 ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_to_rem_agrees;
            prop_ree_automorphism;
            prop_roundtrip;
            prop_simplify_preserves;
            prop_term_relation_agrees_with_eval;
          ] );
    ]
