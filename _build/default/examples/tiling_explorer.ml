(* Theorem 25's reduction, explored: build the data graph for corridor
   tiling instances and verify its defining properties.

   For each instance we check, mechanically:
   - condition 2: the encoding of a legal tiling is a data path from p2
     to q2, and its REM (display (3)) evaluates on the graph to exactly
     {(p2, q2)};
   - condition 4 (sampled): the REM of an *illegal* tiling also connects
     p1 to q1 — the gadgets supply an automorphic copy, so no such REM
     can define {(p2, q2)};
   - the graph grows polynomially in the instance size, even though it
     represents a corridor of exponential width.

   Run with:  dune exec examples/tiling_explorer.exe  *)

module T = Reductions.Tiling
module RA = Rem_lang.Register_automaton
module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation

let explore name inst =
  let red = T.build inst in
  let g = red.T.graph in
  Format.printf "@.== %s ==  (width 2^%d = %d, %d tile types)@." name inst.T.n
    (T.width inst) inst.T.num_tiles;
  Format.printf "reduction graph: %d nodes, %d edges, %d data values@."
    (Data_graph.size g) (Data_graph.edge_count g) (Data_graph.delta g);
  match T.solve inst with
  | None -> Format.printf "no legal tiling with <= 8 rows@."
  | Some tau ->
      assert (T.is_legal inst tau);
      Format.printf "legal tiling found (%d rows):@." (Array.length tau);
      Array.iter
        (fun row ->
          Format.printf "  |%s|@."
            (String.concat ""
               (Array.to_list (Array.map string_of_int row))))
        tau;
      let w = T.encode_tiling inst tau in
      let e = T.tiling_rem inst tau in
      Format.printf "encoding: %d letters;  REM (3): %d blocks, %d registers@."
        (Datagraph.Data_path.length w)
        (Rem_lang.Basic_rem.length e)
        (Rem_lang.Basic_rem.registers e);
      assert (Rem_lang.Basic_rem.matches e w);
      let rel = RA.eval_on_graph g (RA.of_basic e) in
      Format.printf "eval(REM) = {(p2,q2)}: %b@."
        (Relation.equal rel red.T.target);
      assert (Relation.equal rel red.T.target);
      (* Now break the tiling and watch the gadgets catch it. *)
      let bad = Array.map Array.copy tau in
      bad.(0).(0) <- (bad.(0).(0) + 1) mod inst.T.num_tiles;
      if not (T.is_legal inst bad) then begin
        let eb = T.tiling_rem inst bad in
        let relb = RA.eval_on_graph g (RA.of_basic eb) in
        Format.printf
          "a broken tiling's REM also connects (p1,q1): %b — cannot define \
           {(p2,q2)}@."
          (Relation.mem relb red.T.p1 red.T.q1);
        assert (Relation.mem relb red.T.p1 red.T.q1)
      end

let () =
  explore "alternating stripes"
    {
      T.num_tiles = 2;
      horiz = [ (0, 1); (1, 0); (0, 0); (1, 1) ];
      vert = [ (0, 0); (1, 1) ];
      t_init = 0;
      t_final = 1;
      n = 1;
    };
  explore "three tiles, width 4"
    {
      T.num_tiles = 3;
      horiz = [ (0, 1); (1, 2); (2, 2); (2, 0); (1, 1) ];
      vert = [ (0, 0); (1, 1); (2, 2); (0, 2) ];
      t_init = 0;
      t_final = 2;
      n = 2;
    };
  explore "unsolvable (no vertical progress)"
    {
      T.num_tiles = 2;
      horiz = [ (0, 0); (1, 1) ];
      vert = [ (0, 0); (1, 1) ];
      t_init = 0;
      t_final = 1;
      n = 1;
    };
  (* Growth: the graph is polynomial in n although the corridor width is
     exponential. *)
  Format.printf "@.== growth in n (corridor width 2^n) ==@.";
  List.iter
    (fun n ->
      let inst =
        {
          T.num_tiles = 2;
          horiz = [ (0, 1); (1, 0); (0, 0); (1, 1) ];
          vert = [ (0, 0); (1, 1) ];
          t_init = 0;
          t_final = 1;
          n;
        }
      in
      let red = T.build inst in
      Format.printf "n=%d: width %5d, graph %5d nodes %6d edges@." n
        (T.width inst)
        (Data_graph.size red.T.graph)
        (Data_graph.edge_count red.T.graph))
    [ 1; 2; 3; 4; 5 ]
