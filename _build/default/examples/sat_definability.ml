(* Theorem 35 end-to-end: 3-CNF unsatisfiability ⟺ UCRDPQ-definability.

   For a batch of formulas — fixed ones with known status plus random
   ones — build the Figure 3 reduction graph and compare the
   definability checker's verdict against brute-force SAT.

   Run with:  dune exec examples/sat_definability.exe  *)

module Cnf = Reductions.Cnf
module Sat_reduction = Reductions.Sat_reduction

let run name f =
  let sat = Cnf.satisfiable f in
  let red = Sat_reduction.build f in
  let definable =
    Definability.Ucrdpq_definability.is_definable red.graph red.target
  in
  let ok = definable = not sat in
  Format.printf "%-12s %-34s sat=%-5b definable=%-5b %s (%d nodes)@." name
    (Cnf.to_string f) sat definable
    (if ok then "agree" else "DISAGREE")
    (Datagraph.Data_graph.size red.graph);
  assert ok;
  (* When not definable, exhibit the certificate: a homomorphism moving a
     tuple of S out of S — it encodes a satisfying assignment. *)
  if not definable then begin
    let r = Definability.Ucrdpq_definability.check red.graph red.target in
    match r.violation with
    | Some (h, tup) ->
        let g = red.graph in
        Format.printf "  certificate: h(%s) = %s;  assignment:"
          (Datagraph.Data_graph.name g (List.hd tup))
          (Datagraph.Data_graph.name g h.(List.hd tup));
        for v = 0 to f.Cnf.num_vars - 1 do
          let p = Datagraph.Data_graph.node_of_name g (Printf.sprintf "p%d" (v + 1)) in
          Format.printf " p%d=%s" (v + 1) (Datagraph.Data_graph.name g h.(p))
        done;
        Format.printf "@."
    | None -> assert false
  end

let () =
  Format.printf "F is unsatisfiable  ⟺  S is UCRDPQ-definable (Theorem 35)@.@.";
  run "taut-contra" (Cnf.make ~num_vars:1 [ (1, 1, 1); (-1, -1, -1) ]);
  run "trivial-sat" (Cnf.make ~num_vars:1 [ (1, 1, 1) ]);
  run "2var-sat" (Cnf.make ~num_vars:2 [ (1, 2, 2); (-1, -2, -2) ]);
  run "2var-unsat"
    (Cnf.make ~num_vars:2 [ (1, 2, 2); (1, -2, -2); (-1, 2, 2); (-1, -2, -2) ]);
  run "3var-sat" (Cnf.make ~num_vars:3 [ (1, -2, 3); (-1, 2, -3) ]);
  for seed = 1 to 5 do
    run
      (Printf.sprintf "random-%d" seed)
      (Cnf.random ~seed ~num_vars:3 ~num_clauses:4 ())
  done;
  Format.printf "@.All verdicts agree with brute-force SAT.@."
