examples/sat_definability.ml: Array Datagraph Definability Format List Printf Reductions
