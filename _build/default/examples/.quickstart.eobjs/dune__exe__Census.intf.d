examples/census.mli:
