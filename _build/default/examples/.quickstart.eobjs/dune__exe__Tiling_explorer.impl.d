examples/tiling_explorer.ml: Array Datagraph Format List Reductions Rem_lang String
