examples/expressivity_tour.ml: Datagraph Definability Format List Query_lang Ree_lang Regexp
