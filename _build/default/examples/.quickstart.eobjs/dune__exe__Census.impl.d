examples/census.ml: Array Datagraph Definability Format
