examples/social_network.ml: Datagraph Definability Format List Query_lang Ree_lang
