examples/quickstart.mli:
