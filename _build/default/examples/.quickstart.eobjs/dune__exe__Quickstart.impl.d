examples/quickstart.ml: Datagraph Definability Format List Query_lang Ree_lang Regexp Rem_lang
