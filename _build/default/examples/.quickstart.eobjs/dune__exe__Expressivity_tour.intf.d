examples/expressivity_tour.mli:
