examples/sat_definability.mli:
