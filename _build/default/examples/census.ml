(* Definability census: enumerate EVERY binary relation on tiny data
   graphs and count how many each query language can define — the
   expressivity hierarchy RPQ ⊆ RDPQ= ⊆ RDPQmem ⊆ UCRDPQ, quantified.

   Run with:  dune exec examples/census.exe  *)

module Gen = Datagraph.Graph_gen
module DG = Datagraph.Data_graph

let dv = Datagraph.Data_value.of_int

let census name g =
  Format.printf "@.== %s ==  (%d nodes, %d values, %d relations)@." name
    (DG.size g) (DG.delta g)
    (1 lsl (DG.size g * DG.size g));
  let c = Definability.Census.binary ~max_k:2 g in
  Format.printf "%a@." Definability.Census.pp c;
  (* The hierarchy must be monotone. *)
  assert (c.Definability.Census.rpq <= c.Definability.Census.ree);
  assert (c.Definability.Census.ree <= c.Definability.Census.rem);
  assert (c.Definability.Census.rem <= c.Definability.Census.ucrdpq);
  assert (c.Definability.Census.krem.(0) = c.Definability.Census.rpq);
  c

let () =
  Format.printf
    "How many of the 2^(n^2) binary relations can each language define?@.";

  (* A 3-node line with a repeated data value: data tests matter. *)
  let line =
    census "line 0-1-0"
      (Gen.line ~values:[ dv 0; dv 1; dv 0 ] ~label:"a")
  in

  (* The same line with all-distinct values.  One might expect equality
     tests to simulate node identity — but REM cannot distinguish
     automorphic data paths (Fact 10), so the distinct-value line defines
     exactly the same 8 relations (unions of the three distance classes).
     Data values only add power when they introduce *repetition*
     patterns, as in Figure 1. *)
  let distinct =
    census "line 0-1-2" (Gen.line ~values:[ dv 0; dv 1; dv 2 ] ~label:"a")
  in
  assert (distinct.Definability.Census.rem = line.Definability.Census.rem);

  (* A 3-cycle with equal values: rotations are homomorphisms, so even
     UCRDPQ can define only rotation-closed relations. *)
  let cyc = census "cycle 0-0-0" (Gen.cycle ~values:[ dv 0; dv 0; dv 0 ] ~label:"a") in
  assert (cyc.Definability.Census.ucrdpq < cyc.Definability.Census.relations);

  (* Two letters: the RPQ side gets richer. *)
  let g2 =
    DG.make
      ~nodes:[ ("x", dv 0); ("y", dv 0); ("z", dv 1) ]
      ~edges:[ ("x", "a", "y"); ("y", "b", "z"); ("z", "a", "x") ]
  in
  ignore (census "mixed-letter triangle" g2);

  Format.printf
    "@.Every census satisfies RPQ <= RDPQ= <= RDPQmem <= UCRDPQ.@."
