lib/definability/schema_mapping.mli: Datagraph Format Hom Query_lang Ree_lang Regexp Rem_lang
