lib/definability/rpq_definability.ml: Array Datagraph Fun List Regexp Witness_search
