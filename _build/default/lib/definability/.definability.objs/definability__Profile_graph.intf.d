lib/definability/profile_graph.mli: Datagraph Witness_search
