lib/definability/ree_definability.mli: Datagraph Ree_lang
