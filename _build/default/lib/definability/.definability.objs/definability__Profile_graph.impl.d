lib/definability/profile_graph.ml: Array Datagraph Fun Hashtbl List Printf Queue String Witness_search
