lib/definability/rem_definability.ml: Assignment_graph Datagraph List Profile_graph Rem_lang Witness_search
