lib/definability/rem_definability.mli: Datagraph Rem_lang
