lib/definability/assignment_graph.mli: Datagraph Rem_lang Witness_search
