lib/definability/synthesis.ml: Datagraph Option Query_lang Ree_definability Ree_lang Regexp Rem_definability Rem_lang Rpq_definability
