lib/definability/census.mli: Datagraph Format
