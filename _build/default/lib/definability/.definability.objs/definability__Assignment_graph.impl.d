lib/definability/assignment_graph.ml: Array Datagraph Fun Hashtbl List Rem_lang Witness_search
