lib/definability/ucrdpq_definability.ml: Array Datagraph Hom List Option Query_lang Ree_lang Regexp
