lib/definability/synthesis.mli: Datagraph Ree_lang Regexp Rem_lang
