lib/definability/hom.ml: Array Datagraph Format Fun Hashtbl List Queue
