lib/definability/rpq_definability.mli: Datagraph Regexp
