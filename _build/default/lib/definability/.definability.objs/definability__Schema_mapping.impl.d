lib/definability/schema_mapping.ml: Datagraph Format Hom List Query_lang Ree_lang Regexp Rem_lang String Synthesis Ucrdpq_definability
