lib/definability/hom.mli: Datagraph Format
