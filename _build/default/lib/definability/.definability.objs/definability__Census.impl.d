lib/definability/census.ml: Array Datagraph Format Hom List Printf Ree_definability Rem_definability Rpq_definability String
