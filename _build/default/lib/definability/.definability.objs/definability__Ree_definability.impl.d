lib/definability/ree_definability.ml: Datagraph Hashtbl List Logs Queue Ree_lang
