lib/definability/witness_search.ml: Array Bytes Datagraph Hashtbl List Logs Queue
