lib/definability/ucrdpq_definability.mli: Datagraph Hom Query_lang
