lib/definability/witness_search.mli: Datagraph
