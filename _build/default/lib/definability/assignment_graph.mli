(** The k-assignment graph [T_G] (Definition 19): states are pairs
    [(v, σ)] of a graph node and a register assignment
    [σ ∈ (D_G ∪ ⊥)^k]; a transition [(v,σ) --↓r̄.a[c]--> (v',σ')] exists
    when [(v,a,v')] is an edge, [σ' = σ[r̄ → ρ(v)]] and [ρ(v'), σ' ⊨ c].

    Runs of [T_G] correspond to memberships of data paths in basic k-REMs
    (Lemma 20), so k-REM witnesses for definability are exactly witnesses
    in the sense of {!Witness_search} over this system.

    The block alphabet ranges over all bind tuples [r̄ ⊆ {1..k}] and all
    {e complete types} as conditions.  Restricting conditions to single
    complete types loses no witnesses: refining each condition of a basic
    REM witness to the complete type realized by its accepting run keeps
    the connecting path and shrinks the language, preserving both witness
    conditions.  (The ablation benchmark [condition-alphabet] explores
    disjunctive conditions and confirms the same verdicts.) *)

type t

val create : ?all_condition_sets:bool -> Datagraph.Data_graph.t -> k:int -> t
(** Build [T_G] for [k] registers.  With [all_condition_sets] (default
    false) the block alphabet additionally includes every nonempty
    disjunction of complete types — exponentially more blocks, same
    verdicts; used by the ablation benchmark. *)

val graph : t -> Datagraph.Data_graph.t
val k : t -> int

val num_states : t -> int
(** [n · (δ+1)^k]. *)

val initial : t -> int -> int
(** [(v, ⊥^k)] for a source node [v]. *)

val node_of : t -> int -> int
(** Project a state to its graph node. *)

val assignment_of : t -> int -> Datagraph.Data_value.t option array
(** The register assignment of a state. *)

val blocks : t -> Witness_search.block array
(** All blocks [↓r̄.a[t]] as subset-successor maps. *)

val config : t -> Witness_search.config
(** The search configuration over all [n] nodes as sources. *)

val basic_block_of_name : t -> string -> Rem_lang.Basic_rem.block
(** Decode a block name (as reported in witnesses) back to a basic REM
    block, for query synthesis.
    @raise Not_found on a name not produced by this system. *)
