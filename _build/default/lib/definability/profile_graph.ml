module Data_graph = Datagraph.Data_graph
module Data_value = Datagraph.Data_value
module Data_path = Datagraph.Data_path

type state = { v : int; stored : int list }

type t = {
  g : Data_graph.t;
  states : state array;
  index : (state, int) Hashtbl.t;
  blocks : Witness_search.block array;
}

let graph t = t.g
let num_states t = Array.length t.states
let node_of t s = t.states.(s).v

(* Enumerate all states reachable from some initial state, in BFS order,
   so ids are dense. *)
let enumerate g =
  let index = Hashtbl.create 256 in
  let order = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let visit st =
    if not (Hashtbl.mem index st) then begin
      Hashtbl.add index st !count;
      incr count;
      order := st :: !order;
      Queue.add st queue
    end
  in
  List.iter
    (fun v -> visit { v; stored = [ Data_graph.value_index g v ] })
    (Data_graph.nodes g);
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    List.iter
      (fun (_, v') ->
        let dv' = Data_graph.value_index g v' in
        if List.mem dv' st.stored then visit { v = v'; stored = st.stored }
        else visit { v = v'; stored = st.stored @ [ dv' ] })
      (Data_graph.succ_all g st.v)
  done;
  (Array.of_list (List.rev !order), index)

let create g =
  let states, index = enumerate g in
  let find st = Hashtbl.find_opt index st in
  let delta = Data_graph.delta g in
  let labels = List.init (Data_graph.label_count g) Fun.id in
  let fresh_block lbl =
    let name = Printf.sprintf "%s!" (Data_graph.label_name g lbl) in
    let succ s =
      let st = states.(s) in
      List.filter_map
        (fun v' ->
          let dv' = Data_graph.value_index g v' in
          if List.mem dv' st.stored then None
          else find { v = v'; stored = st.stored @ [ dv' ] })
        (Data_graph.succ_id g st.v lbl)
    in
    { Witness_search.name; succ }
  in
  let stored_block lbl j =
    let name = Printf.sprintf "%s=%d" (Data_graph.label_name g lbl) j in
    let succ s =
      let st = states.(s) in
      match List.nth_opt st.stored j with
      | None -> []
      | Some dv ->
          List.filter_map
            (fun v' ->
              if Data_graph.value_index g v' = dv then
                find { v = v'; stored = st.stored }
              else None)
            (Data_graph.succ_id g st.v lbl)
    in
    { Witness_search.name; succ }
  in
  let blocks =
    List.concat_map
      (fun lbl ->
        fresh_block lbl :: List.init delta (fun j -> stored_block lbl j))
      labels
    |> Array.of_list
  in
  { g; states; index; blocks }

let initial t v =
  Hashtbl.find t.index { v; stored = [ Data_graph.value_index t.g v ] }

let config t =
  let n = Data_graph.size t.g in
  {
    Witness_search.num_states = num_states t;
    sources = Array.init n (fun v -> initial t v);
    node_of = (fun s -> node_of t s);
    blocks = t.blocks;
  }

(* Block names spell out a profile: "a!" appends a fresh class, "a=j"
   repeats class j.  Class 0 is the start value. *)
let path_of_witness _t names =
  let values = ref [ 0 ] in
  let labels = ref [] in
  let next_class = ref 1 in
  List.iter
    (fun name ->
      match String.index_opt name '!' with
      | Some i when i = String.length name - 1 ->
          labels := String.sub name 0 i :: !labels;
          values := !next_class :: !values;
          incr next_class
      | _ -> (
          match String.index_opt name '=' with
          | Some i ->
              labels := String.sub name 0 i :: !labels;
              let j =
                int_of_string (String.sub name (i + 1) (String.length name - i - 1))
              in
              values := j :: !values
          | None -> invalid_arg ("Profile_graph.path_of_witness: bad block " ^ name)))
    names;
  Data_path.make
    ~values:(Array.of_list (List.rev_map Data_value.of_int !values))
    ~labels:(Array.of_list (List.rev !labels))
