(** RPQ-definability — the baseline problem of reference [3], used by the
    paper both as the data-free special case and as the target of the
    G_aut reduction sketched in Section 3.

    A relation [S] is definable by a standard regular expression iff every
    pair [(u,v) ∈ S] has a witness {e word} [w] with
    [(u,v) ∈ R(w) ⊆ S], where [R(w)] is the set of pairs connected by a
    path labeled [w]; the disjunction of witness words then defines [S].
    Decided by {!Witness_search} over the graph itself (states = nodes,
    blocks = letters) — PSpace-complete in general [3]. *)

type report = {
  definable : bool option;
      (** [None] when the search was truncated (answer unknown) *)
  witnesses : ((int * int) * string list) list;
      (** per covered pair, a witness word as a label list *)
  missing : (int * int) list;  (** pairs with no witness *)
  tuples_explored : int;
}

val check :
  ?max_tuples:int -> Datagraph.Data_graph.t -> Datagraph.Relation.t -> report

val is_definable :
  ?max_tuples:int -> Datagraph.Data_graph.t -> Datagraph.Relation.t -> bool
(** @raise Failure if the search was truncated before deciding. *)

val defining_query :
  ?max_tuples:int ->
  Datagraph.Data_graph.t ->
  Datagraph.Relation.t ->
  Regexp.Regex.t option
(** A defining regular expression (the union of witness words), or [None]
    if not definable.
    @raise Failure if the search was truncated before deciding. *)
