(** Definability census: for a (tiny) data graph, count how many binary
    relations are definable in each query language — a quantitative view
    of the expressivity hierarchy

    {v RPQ ⊆ RDPQ= ⊆ RDPQ_mem ⊆ UCRDPQ v}

    that the paper's Section 2.2 establishes by examples.  With [n]
    nodes there are [2^(n²)] binary relations, so exhaustive censuses
    are for [n ≤ 3]; [sample] draws a random subset otherwise.

    Shared precomputation keeps the census affordable: the full set of
    data graph homomorphisms decides UCRDPQ-definability of every
    relation at once (Lemma 34), and the REE closure decides
    RDPQ_=-definability of every relation at once (Section 4). *)

type t = {
  relations : int;  (** how many relations were examined *)
  rpq : int;
  ree : int;
  krem : int array;  (** index k = relations definable with ≤ k registers *)
  rem : int;
  ucrdpq : int;
}

val binary :
  ?max_k:int -> ?sample:int -> ?seed:int -> Datagraph.Data_graph.t -> t
(** Census over all [2^(n²)] binary relations, or over [sample] random
    ones when given.  [max_k] bounds the per-k column (default 2).
    @raise Invalid_argument if exhaustive enumeration would exceed
    [2^20] relations and no [sample] is given. *)

val pp : Format.formatter -> t -> unit
