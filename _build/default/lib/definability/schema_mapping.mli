(** Schema-mapping extraction — the paper's motivating application
    (Introduction; see also the GAV remark after Lemma 34).

    Given a source data graph and example target relations, find for
    each target the {e least expressive} language that can define it and
    synthesize the defining query.  The result is a specification of the
    source-to-target mapping: each rule says "target [R] is the answer
    of query [q] on the source". *)

type query =
  | Rpq of Regexp.Regex.t
  | Ree of Ree_lang.Ree.t
  | Rem of Rem_lang.Rem.t
  | Ucrdpq of Query_lang.Conjunctive.t

type rule = { target : string; query : query }

type outcome =
  | Fitted of rule
  | Unfittable of {
      target : string;
      violation : (Hom.t * int list) option;
          (** the Lemma 34 certificate: a homomorphism moving an example
              tuple out of the relation — no UCRDPQ (hence no query of
              any language here) fits *)
    }

val fit :
  ?max_tuples:int ->
  ?max_size:int ->
  Datagraph.Data_graph.t ->
  (string * Datagraph.Relation.t) list ->
  outcome list
(** Fit every named target relation, trying RPQ, then RDPQ_=, then
    RDPQ_mem, then UCRDPQ.  Synthesized queries are simplified and
    verified by evaluation before being returned. *)

val verify :
  Datagraph.Data_graph.t -> rule -> Datagraph.Relation.t -> bool
(** Re-evaluate a rule's query against the graph and compare with the
    relation. *)

val lang_name : query -> string
val pp_rule : Format.formatter -> rule -> unit
val pp_outcome : Datagraph.Data_graph.t -> Format.formatter -> outcome -> unit
