module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Tuple_relation = Datagraph.Tuple_relation

type query =
  | Rpq of Regexp.Regex.t
  | Ree of Ree_lang.Ree.t
  | Rem of Rem_lang.Rem.t
  | Ucrdpq of Query_lang.Conjunctive.t

type rule = { target : string; query : query }

type outcome =
  | Fitted of rule
  | Unfittable of {
      target : string;
      violation : (Hom.t * int list) option;
    }

let lang_name = function
  | Rpq _ -> "RPQ"
  | Ree _ -> "RDPQ="
  | Rem _ -> "RDPQmem"
  | Ucrdpq _ -> "UCRDPQ"

let fit ?max_tuples ?max_size g targets =
  List.map
    (fun (target, s) ->
      let fitted q = Fitted { target; query = q } in
      match Synthesis.rpq ?max_tuples g s with
      | Some v when v.Synthesis.correct -> fitted (Rpq v.Synthesis.query)
      | _ -> (
          match Synthesis.ree ?max_size g s with
          | Some v when v.Synthesis.correct -> fitted (Ree v.Synthesis.query)
          | _ -> (
              match Synthesis.rem ?max_tuples g s with
              | Some v when v.Synthesis.correct ->
                  fitted (Rem v.Synthesis.query)
              | _ -> (
                  let ts = Tuple_relation.of_binary s in
                  match Ucrdpq_definability.defining_query g ts with
                  | Some q when q <> [] -> fitted (Ucrdpq q)
                  | Some _ ->
                      (* the empty relation: the empty union defines it *)
                      fitted (Ucrdpq [])
                  | None ->
                      let r = Ucrdpq_definability.check g ts in
                      Unfittable
                        { target; violation = r.Ucrdpq_definability.violation }))))
    targets

let verify g rule s =
  match rule.query with
  | Rpq e -> Relation.equal (Query_lang.Query.eval g (Query_lang.Query.Rpq e)) s
  | Ree e -> Relation.equal (Query_lang.Query.eval g (Query_lang.Query.Ree e)) s
  | Rem e -> Relation.equal (Query_lang.Query.eval g (Query_lang.Query.Rem e)) s
  | Ucrdpq [] -> Relation.is_empty s
  | Ucrdpq q ->
      Tuple_relation.equal
        (Query_lang.Conjunctive.eval g q)
        (Tuple_relation.of_binary s)

let pp_query ppf = function
  | Rpq e -> Regexp.Regex.pp ppf e
  | Ree e -> Ree_lang.Ree.pp ppf e
  | Rem e -> Rem_lang.Rem.pp ppf e
  | Ucrdpq [] -> Format.pp_print_string ppf "(empty union)"
  | Ucrdpq q -> Query_lang.Conjunctive.pp ppf q

let pp_rule ppf rule =
  Format.fprintf ppf "%s(x,y) <- [%s] %a" rule.target
    (lang_name rule.query) pp_query rule.query

let pp_outcome g ppf = function
  | Fitted rule -> pp_rule ppf rule
  | Unfittable { target; violation } -> (
      Format.fprintf ppf "%s: not definable in any language here" target;
      match violation with
      | Some (h, tup) ->
          Format.fprintf ppf " (homomorphism %a moves (%s) out)" (Hom.pp g) h
            (String.concat ","
               (List.map (Data_graph.name g) tup))
      | None -> ())
