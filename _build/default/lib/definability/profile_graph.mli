(** The profile automaton behind unbounded RDPQ_mem-definability
    (Lemma 23 + Lemma 15): since a definable relation always has
    [e_\[w\]]-shaped witnesses — expressions that store each first
    occurrence of a data value and compare every later occurrence against
    it — the search can track, instead of a full δ-register assignment,
    just the ordered list of distinct data values seen so far.

    States are pairs [(v, stored)] with [stored] an ordered duplicate-free
    list of data-value indices; blocks are ["a!"] (take an [a]-edge to a
    node whose value is fresh, appending it to [stored]) and ["a=j"]
    (take an [a]-edge to a node carrying exactly [stored\[j\]]).  Block
    sequences are in bijection with data-path {e profiles}
    ({!Datagraph.Data_path.profile}), so witnesses here are exactly the
    [e_\[w\]] witnesses of Lemma 23 — with [n·Σ_j δ!/(δ−j)!] states
    instead of [n·(δ+1)^δ].  The [profile-vs-full] ablation benchmark
    cross-checks the two. *)

type t

val create : Datagraph.Data_graph.t -> t
val graph : t -> Datagraph.Data_graph.t
val num_states : t -> int

val initial : t -> int -> int
(** [(v, [ρ(v)])]: the first value of any data path from [v] is stored. *)

val node_of : t -> int -> int
val config : t -> Witness_search.config

val path_of_witness : t -> string list -> Datagraph.Data_path.t
(** The canonical data path realizing a witness block sequence: values
    are the class indices of the profile the blocks spell out.  Feeding
    it to {!Rem_lang.Basic_rem.of_data_path} yields the defining
    [e_\[w\]]. *)
