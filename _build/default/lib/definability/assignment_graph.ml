module Data_graph = Datagraph.Data_graph
module Data_value = Datagraph.Data_value
module Basic_rem = Rem_lang.Basic_rem
module Condition = Rem_lang.Condition

type t = {
  g : Data_graph.t;
  k : int;
  base : int;  (** δ + 1; register code [δ] is ⊥ *)
  num_states : int;
  blocks : Witness_search.block array;
  decode : (string, Basic_rem.block) Hashtbl.t;
}

let graph t = t.g
let k t = t.k
let num_states t = t.num_states

(* State encoding: v * base^k + Σ σ_i · base^i, σ_i ∈ [0, δ] with δ = ⊥. *)
let pow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let encode t v sigma =
  let code = ref 0 in
  for i = t.k - 1 downto 0 do
    code := (!code * t.base) + sigma.(i)
  done;
  (v * pow t.base t.k) + !code

let node_of t s = s / pow t.base t.k

let sigma_of t s =
  let code = ref (s mod pow t.base t.k) in
  Array.init t.k (fun _ ->
      let c = !code mod t.base in
      code := !code / t.base;
      c)

let initial t v =
  encode t v (Array.make t.k (t.base - 1))

let assignment_of t s =
  let g = t.g in
  let dom = Array.of_list (Data_graph.domain g) in
  Array.map
    (fun c -> if c = t.base - 1 then None else Some dom.(c))
    (sigma_of t s)

let subsets k =
  (* All subsets of {0..k-1} as sorted lists. *)
  let rec go i =
    if i >= k then [ [] ]
    else
      let rest = go (i + 1) in
      rest @ List.map (fun s -> i :: s) rest
  in
  go 0

let all_types k =
  let rec go i ty acc =
    if i >= k then Array.copy ty :: acc
    else begin
      ty.(i) <- false;
      let acc = go (i + 1) ty acc in
      ty.(i) <- true;
      let acc = go (i + 1) ty acc in
      ty.(i) <- false;
      acc
    end
  in
  List.rev (go 0 (Array.make k false) [])

let nonempty_subsets l =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let r = go rest in
        r @ List.map (fun s -> x :: s) r
  in
  List.filter (fun s -> s <> []) (go l)

let block_name bind label cond =
  Basic_rem.to_string [ { Basic_rem.bind; label; cond } ]

let create ?(all_condition_sets = false) g ~k =
  let delta = Data_graph.delta g in
  let base = delta + 1 in
  let n = Data_graph.size g in
  let num_states = n * pow base k in
  let t0 = { g; k; base; num_states; blocks = [||]; decode = Hashtbl.create 16 } in
  (* Successors of one state under ↓r̄.a, partitioned by the complete type
     realized at the target: succ_by_type.(state) is a list of
     (type-as-int, state').  A type is encoded as a bit per register. *)
  let type_bits ty =
    let b = ref 0 in
    Array.iteri (fun i x -> if x then b := !b lor (1 lsl i)) ty;
    !b
  in
  let labels = List.init (Data_graph.label_count g) Fun.id in
  let binds = subsets k in
  let types = all_types k in
  (* For each (bind, label): an array state -> (type_bits * state') list. *)
  let base_succ =
    List.concat_map
      (fun bind ->
        List.map
          (fun lbl ->
            let arr = Array.make num_states [] in
            for s = 0 to num_states - 1 do
              let v = node_of t0 s in
              let sigma = sigma_of t0 s in
              let dv = Data_graph.value_index g v in
              let sigma' = Array.copy sigma in
              List.iter (fun r -> sigma'.(r) <- dv) bind;
              let out =
                List.map
                  (fun v' ->
                    let dv' = Data_graph.value_index g v' in
                    let ty =
                      Array.init k (fun i ->
                          sigma'.(i) <> delta && sigma'.(i) = dv')
                    in
                    (type_bits ty, encode t0 v' sigma'))
                  (Data_graph.succ_id g v lbl)
              in
              arr.(s) <- out
            done;
            ((bind, lbl), arr))
          labels)
      binds
  in
  let decode = Hashtbl.create 64 in
  let mk_block bind lbl tys =
    let cond =
      Condition.disj (List.map Condition.of_complete_type tys)
    in
    let label = Data_graph.label_name g lbl in
    let name = block_name bind label cond in
    let tybits = List.map type_bits tys in
    let arr = List.assoc (bind, lbl) base_succ in
    let succ s =
      List.filter_map
        (fun (tb, s') -> if List.mem tb tybits then Some s' else None)
        arr.(s)
    in
    Hashtbl.replace decode name { Basic_rem.bind; label; cond };
    { Witness_search.name; succ }
  in
  let blocks =
    List.concat_map
      (fun bind ->
        List.concat_map
          (fun lbl ->
            let type_choices =
              if all_condition_sets then nonempty_subsets types
              else List.map (fun ty -> [ ty ]) types
            in
            List.map (fun tys -> mk_block bind lbl tys) type_choices)
          labels)
      binds
    |> Array.of_list
  in
  { t0 with blocks; decode }

let blocks t = t.blocks

let config t =
  let n = Data_graph.size t.g in
  {
    Witness_search.num_states = t.num_states;
    sources = Array.init n (fun v -> initial t v);
    node_of = (fun s -> node_of t s);
    blocks = t.blocks;
  }

let basic_block_of_name t name = Hashtbl.find t.decode name
