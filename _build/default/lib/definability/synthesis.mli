(** Query synthesis (Section 6, Discussion): turn the decision procedures'
    witnesses into actual defining queries, and verify them by evaluation.

    As the paper notes, the synthesized queries are star-free unions of
    per-pair witnesses — correct but not "interesting"; their worst-case
    size is what the lower bounds dictate. *)

type 'q verified = {
  query : 'q;
  evaluated : Datagraph.Relation.t;  (** [Q(G)], for the record *)
  correct : bool;  (** [Q(G) = S] — always true unless a bug *)
}

val rpq :
  ?max_tuples:int ->
  Datagraph.Data_graph.t ->
  Datagraph.Relation.t ->
  Regexp.Regex.t verified option

val rem :
  ?max_tuples:int ->
  Datagraph.Data_graph.t ->
  Datagraph.Relation.t ->
  Rem_lang.Rem.t verified option

val rem_k :
  ?max_tuples:int ->
  Datagraph.Data_graph.t ->
  k:int ->
  Datagraph.Relation.t ->
  Rem_lang.Rem.t verified option

val ree :
  ?max_size:int ->
  Datagraph.Data_graph.t ->
  Datagraph.Relation.t ->
  Ree_lang.Ree.t verified option
