(** Data graph homomorphisms (Definition 33): mappings [h : V → V] such
    that

    + (single step compatibility) [p -a-> q] implies [h(p) -a-> h(q)], and
    + (data compatibility of reachable nodes) whenever [q] is reachable
      from [p], [ρ(p) = ρ(q) ⇔ ρ(h(p)) = ρ(h(q))].

    Lemma 34: a relation is UCRDPQ-definable iff it is preserved by every
    data graph homomorphism.

    Both conditions are binary constraints over node images, so the
    searches below run as a CSP: AC-3 arc consistency over the edge and
    data constraints, then backtracking on the smallest domain.  The
    violation search additionally prunes subtrees in which every tuple of
    the target relation can only land inside the relation — without this,
    deciding preservation would enumerate all homomorphisms, of which
    even small instances have exponentially many. *)

type t = int array
(** [h.(p)] is the image of node [p]. *)

val is_hom : Datagraph.Data_graph.t -> t -> bool

val identity : Datagraph.Data_graph.t -> t

val find_violating :
  Datagraph.Data_graph.t -> Datagraph.Tuple_relation.t -> t option
(** A homomorphism [h] with [h(p) ∉ S] for some tuple [p ∈ S], if any —
    a certificate of non-UCRDPQ-definability. *)

val count : ?limit:int -> Datagraph.Data_graph.t -> int
(** Number of data graph homomorphisms, counting at most [limit]
    (default [1_000_000]) — a statistic for the benchmarks. *)

val all : ?limit:int -> Datagraph.Data_graph.t -> t list
(** All data graph homomorphisms (at most [limit], default [100_000]).
    Shared precomputation for {!Census}: preservation of any relation can
    then be checked against the list directly. *)

val pp : Datagraph.Data_graph.t -> Format.formatter -> t -> unit
