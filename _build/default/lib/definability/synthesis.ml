module Relation = Datagraph.Relation
module Query = Query_lang.Query

type 'q verified = {
  query : 'q;
  evaluated : Relation.t;
  correct : bool;
}

let verify g s expr =
  let evaluated = Query.eval g expr in
  (evaluated, Relation.equal evaluated s)

let rpq ?max_tuples g s =
  Option.map
    (fun q ->
      let query = Regexp.Regex.simplify q in
      let evaluated, correct = verify g s (Query.Rpq query) in
      { query; evaluated; correct })
    (Rpq_definability.defining_query ?max_tuples g s)

let rem ?max_tuples g s =
  Option.map
    (fun q ->
      let query = Rem_lang.Rem.simplify q in
      let evaluated, correct = verify g s (Query.Rem query) in
      { query; evaluated; correct })
    (Rem_definability.defining_query ?max_tuples g s)

let rem_k ?max_tuples g ~k s =
  Option.map
    (fun q ->
      let query = Rem_lang.Rem.simplify q in
      let evaluated, correct = verify g s (Query.Rem query) in
      { query; evaluated; correct })
    (Rem_definability.defining_query_k ?max_tuples g ~k s)

let ree ?max_size g s =
  Option.map
    (fun q ->
      let query = Ree_lang.Ree.simplify q in
      let evaluated, correct = verify g s (Query.Ree query) in
      { query; evaluated; correct })
    (Ree_definability.defining_query ?max_size g s)
