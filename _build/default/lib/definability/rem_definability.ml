module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Basic_rem = Rem_lang.Basic_rem
module Rem = Rem_lang.Rem
module Condition = Rem_lang.Condition

type report = {
  definable : bool option;
  witnesses : ((int * int) * string list) list;
  missing : (int * int) list;
  tuples_explored : int;
}

let report_of_outcome (o : Witness_search.outcome) =
  match o.verdict with
  | Witness_search.Definable ->
      {
        definable = Some true;
        witnesses = o.witnesses;
        missing = [];
        tuples_explored = o.tuples_explored;
      }
  | Witness_search.Not_definable missing ->
      {
        definable = Some false;
        witnesses = o.witnesses;
        missing;
        tuples_explored = o.tuples_explored;
      }
  | Witness_search.Exhausted ->
      {
        definable = None;
        witnesses = o.witnesses;
        missing = [];
        tuples_explored = o.tuples_explored;
      }

let check_k ?max_tuples ?all_condition_sets g ~k s =
  let ag = Assignment_graph.create ?all_condition_sets g ~k in
  report_of_outcome
    (Witness_search.search ?max_tuples (Assignment_graph.config ag) ~target:s)

let check ?max_tuples g s =
  let pg = Profile_graph.create g in
  report_of_outcome
    (Witness_search.search ?max_tuples (Profile_graph.config pg) ~target:s)

let check_delta_registers ?max_tuples g s =
  check_k ?max_tuples g ~k:(Data_graph.delta g) s

let force_verdict r =
  match r.definable with
  | Some b -> b
  | None -> failwith "definability search truncated; raise max_tuples"

let is_definable_k ?max_tuples g ~k s = force_verdict (check_k ?max_tuples g ~k s)
let is_definable ?max_tuples g s = force_verdict (check ?max_tuples g s)

(* The REM with empty language, for defining the empty relation (the REM
   grammar has no ∅, but an unsatisfiable test provides one). *)
let empty_rem = Rem.Test (Rem.Eps, Condition.ff)

let union_rem = function
  | [] -> empty_rem
  | e :: rest -> List.fold_left (fun acc x -> Rem.Union (acc, x)) e rest

let defining_query_k ?max_tuples g ~k s =
  let ag = Assignment_graph.create g ~k in
  let o = Witness_search.search ?max_tuples (Assignment_graph.config ag) ~target:s in
  let r = report_of_outcome o in
  if not (force_verdict r) then None
  else
    let rem_of_witness names =
      Basic_rem.to_rem
        (List.map (fun nm -> Assignment_graph.basic_block_of_name ag nm) names)
    in
    let distinct =
      List.sort_uniq compare (List.map snd r.witnesses)
    in
    Some (union_rem (List.map rem_of_witness distinct))

let defining_query ?max_tuples g s =
  let pg = Profile_graph.create g in
  let o = Witness_search.search ?max_tuples (Profile_graph.config pg) ~target:s in
  let r = report_of_outcome o in
  if not (force_verdict r) then None
  else
    let rem_of_witness names =
      Basic_rem.to_rem
        (Basic_rem.of_data_path (Profile_graph.path_of_witness pg names))
    in
    let distinct =
      List.sort_uniq compare (List.map snd r.witnesses)
    in
    Some (union_rem (List.map rem_of_witness distinct))
