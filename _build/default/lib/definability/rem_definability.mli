(** RDPQ_mem-definability (Section 3): can a relation be defined by a
    regular expression with memory?

    [check_k] decides the bounded-register problem (Theorem 22,
    [NSpace(O(n²δ^k))]) by witness search over the k-assignment graph
    (Definition 19): Lemma 18 reduces definability to the existence of a
    basic k-REM witness per pair, and Lemma 20 turns those into
    reachability in [T_G].

    [check] decides the unbounded problem (Theorem 24, ExpSpace): by
    Lemma 23, [S] is definable iff it is δ-definable, and the proof shows
    [e_\[w\]]-shaped witnesses suffice — so the search runs over the
    smaller profile automaton ({!Profile_graph}) instead of the full
    δ-assignment graph. *)

type report = {
  definable : bool option;
  witnesses : ((int * int) * string list) list;
  missing : (int * int) list;
  tuples_explored : int;
}

val check_k :
  ?max_tuples:int ->
  ?all_condition_sets:bool ->
  Datagraph.Data_graph.t ->
  k:int ->
  Datagraph.Relation.t ->
  report
(** The k-RDPQ_mem-definability problem.  [all_condition_sets] switches
    the ablation block alphabet (see {!Assignment_graph.create}). *)

val check :
  ?max_tuples:int -> Datagraph.Data_graph.t -> Datagraph.Relation.t -> report
(** The unbounded RDPQ_mem-definability problem via the profile
    automaton. *)

val check_delta_registers :
  ?max_tuples:int -> Datagraph.Data_graph.t -> Datagraph.Relation.t -> report
(** The unbounded problem decided literally as Lemma 23 states it — as
    δ-RDPQ_mem-definability over the full δ-assignment graph.  Equivalent
    to {!check} and much slower; kept for the [profile-vs-full] ablation
    and cross-checking. *)

val is_definable_k :
  ?max_tuples:int -> Datagraph.Data_graph.t -> k:int -> Datagraph.Relation.t -> bool
(** @raise Failure if the search was truncated before deciding. *)

val is_definable :
  ?max_tuples:int -> Datagraph.Data_graph.t -> Datagraph.Relation.t -> bool
(** @raise Failure if the search was truncated before deciding. *)

val defining_query_k :
  ?max_tuples:int ->
  Datagraph.Data_graph.t ->
  k:int ->
  Datagraph.Relation.t ->
  Rem_lang.Rem.t option
(** A defining k-REM — the union of basic k-REM witnesses (Lemma 18) —
    or [None] if not k-definable.
    @raise Failure if the search was truncated before deciding. *)

val defining_query :
  ?max_tuples:int ->
  Datagraph.Data_graph.t ->
  Datagraph.Relation.t ->
  Rem_lang.Rem.t option
(** A defining REM — the union of [e_\[w\]] witnesses (Lemma 15) — or
    [None] if not definable.
    @raise Failure if the search was truncated before deciding. *)
