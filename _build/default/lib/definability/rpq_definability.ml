module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation

type report = {
  definable : bool option;
  witnesses : ((int * int) * string list) list;
  missing : (int * int) list;
  tuples_explored : int;
}

let config g =
  let n = Data_graph.size g in
  let labels = List.init (Data_graph.label_count g) Fun.id in
  let blocks =
    List.map
      (fun lbl ->
        {
          Witness_search.name = Data_graph.label_name g lbl;
          succ = (fun v -> Data_graph.succ_id g v lbl);
        })
      labels
    |> Array.of_list
  in
  {
    Witness_search.num_states = n;
    sources = Array.init n Fun.id;
    node_of = Fun.id;
    blocks;
  }

let report_of_outcome (o : Witness_search.outcome) =
  match o.verdict with
  | Witness_search.Definable ->
      {
        definable = Some true;
        witnesses = o.witnesses;
        missing = [];
        tuples_explored = o.tuples_explored;
      }
  | Witness_search.Not_definable missing ->
      {
        definable = Some false;
        witnesses = o.witnesses;
        missing;
        tuples_explored = o.tuples_explored;
      }
  | Witness_search.Exhausted ->
      {
        definable = None;
        witnesses = o.witnesses;
        missing = [];
        tuples_explored = o.tuples_explored;
      }

let check ?max_tuples g s =
  report_of_outcome (Witness_search.search ?max_tuples (config g) ~target:s)

let force_verdict r =
  match r.definable with
  | Some b -> b
  | None -> failwith "definability search truncated; raise max_tuples"

let is_definable ?max_tuples g s = force_verdict (check ?max_tuples g s)

let defining_query ?max_tuples g s =
  let r = check ?max_tuples g s in
  if not (force_verdict r) then None
  else
    let words = List.sort_uniq compare (List.map snd r.witnesses) in
    Some (Regexp.Regex.union_of (List.map Regexp.Regex.of_word words))
