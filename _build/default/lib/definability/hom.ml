module Data_graph = Datagraph.Data_graph
module Tuple_relation = Datagraph.Tuple_relation

type t = int array

let reach_matrix g =
  let n = Data_graph.size g in
  let m = Array.make_matrix n n false in
  for u = 0 to n - 1 do
    let r = Data_graph.reachable g u in
    for v = 0 to n - 1 do
      m.(u).(v) <- r.(v)
    done
  done;
  m

let is_hom g h =
  let n = Data_graph.size g in
  Array.length h = n
  && Array.for_all (fun x -> x >= 0 && x < n) h
  && List.for_all
       (fun (p, a, q) -> Data_graph.mem_edge g h.(p) a h.(q))
       (Data_graph.edges g)
  &&
  let reach = reach_matrix g in
  let ok = ref true in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if reach.(p).(q) then
        if Data_graph.same_value g p q <> Data_graph.same_value g h.(p) h.(q)
        then ok := false
    done
  done;
  !ok

let identity g = Array.init (Data_graph.size g) Fun.id

(* ------------------------------------------------------------------ *)
(* CSP machinery.  Domains are boolean arrays with a cardinality count;
   constraints are the edge constraints (h(u),h(v)) ∈ E_a and the data
   constraints same_value(h(p),h(q)) = same_value(p,q) for reachable
   (p,q).  Both are binary, so AC-3 applies uniformly.                  *)

type domain = { mutable card : int; bits : bool array }

let dom_full n = { card = n; bits = Array.make n true }
let dom_copy d = { card = d.card; bits = Array.copy d.bits }

let dom_remove d x =
  if d.bits.(x) then begin
    d.bits.(x) <- false;
    d.card <- d.card - 1
  end

let dom_restrict_to d x =
  Array.iteri (fun y _ -> if y <> x then dom_remove d y) d.bits

let dom_iter d f =
  Array.iteri (fun x present -> if present then f x) d.bits

let dom_first d =
  let rec go x = if d.bits.(x) then x else go (x + 1) in
  go 0

type csp = {
  g : Data_graph.t;
  n : int;
  (* Binary constraints as (u, v, allowed) with allowed.(x).(y). *)
  constraints : (int * int * bool array array) array;
  (* For each variable, indices of constraints mentioning it. *)
  incident : int list array;
}

let build_csp g =
  let n = Data_graph.size g in
  let reach = reach_matrix g in
  let constraints = ref [] in
  (* One constraint per (u, v, a) edge triple; merge edges with the same
     endpoints into a single conjunction table. *)
  let edge_tbl : (int * int, bool array array) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (u, a, v) ->
      let allowed =
        match Hashtbl.find_opt edge_tbl (u, v) with
        | Some m -> m
        | None ->
            let m = Array.make_matrix n n true in
            Hashtbl.add edge_tbl (u, v) m;
            m
      in
      let lbl = Data_graph.label_id g a in
      for x = 0 to n - 1 do
        let succs = Data_graph.succ_id g x lbl in
        for y = 0 to n - 1 do
          if not (List.mem y succs) then allowed.(x).(y) <- false
        done
      done)
    (Data_graph.edges g);
  Hashtbl.iter (fun (u, v) m -> constraints := (u, v, m) :: !constraints) edge_tbl;
  (* Data compatibility for reachable pairs (skip trivial p = q). *)
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if p <> q && reach.(p).(q) then begin
        let want = Data_graph.same_value g p q in
        let m =
          Array.init n (fun x ->
              Array.init n (fun y -> Data_graph.same_value g x y = want))
        in
        constraints := (p, q, m) :: !constraints
      end
    done
  done;
  let constraints = Array.of_list !constraints in
  let incident = Array.make n [] in
  Array.iteri
    (fun ci (u, v, _) ->
      incident.(u) <- ci :: incident.(u);
      if v <> u then incident.(v) <- ci :: incident.(v))
    constraints;
  { g; n; constraints; incident }

(* Revise both sides of constraint [ci]; returns the list of variables
   whose domain shrank, or raises [Wipeout]. *)
exception Wipeout

let revise csp doms ci =
  let u, v, allowed = csp.constraints.(ci) in
  let changed = ref [] in
  let du = doms.(u) and dv = doms.(v) in
  dom_iter (dom_copy du) (fun x ->
      let supported = ref false in
      dom_iter dv (fun y -> if allowed.(x).(y) then supported := true);
      if not !supported then begin
        dom_remove du x;
        if not (List.mem u !changed) then changed := u :: !changed
      end);
  dom_iter (dom_copy dv) (fun y ->
      let supported = ref false in
      dom_iter du (fun x -> if allowed.(x).(y) then supported := true);
      if not !supported then begin
        dom_remove dv y;
        if not (List.mem v !changed) then changed := v :: !changed
      end);
  if du.card = 0 || dv.card = 0 then raise Wipeout;
  !changed

let propagate csp doms dirty =
  let queue = Queue.create () in
  let enqueued = Array.make (Array.length csp.constraints) false in
  let push ci =
    if not enqueued.(ci) then begin
      enqueued.(ci) <- true;
      Queue.add ci queue
    end
  in
  List.iter (fun v -> List.iter push csp.incident.(v)) dirty;
  while not (Queue.is_empty queue) do
    let ci = Queue.pop queue in
    enqueued.(ci) <- false;
    let changed = revise csp doms ci in
    List.iter (fun v -> List.iter push csp.incident.(v)) changed
  done

(* Generic backtracking search.  [prune doms] may declare a subtree
   hopeless; [leaf h] is called on every complete homomorphism and
   returns [true] to stop with this solution. *)
let solve csp ~prune ~leaf =
  let exception Found of int array in
  let rec go doms =
    if not (prune doms) then begin
      let var = ref (-1) and best = ref max_int in
      Array.iteri
        (fun v d -> if d.card > 1 && d.card < !best then begin
             var := v;
             best := d.card
           end)
        doms;
      if !var = -1 then begin
        let h = Array.map dom_first doms in
        if leaf h then raise (Found h)
      end
      else
        dom_iter (dom_copy doms.(!var)) (fun x ->
            let doms' = Array.map dom_copy doms in
            dom_restrict_to doms'.(!var) x;
            try
              propagate csp doms' [ !var ];
              go doms'
            with Wipeout -> ())
    end
  in
  let doms = Array.init csp.n (fun _ -> dom_full csp.n) in
  try
    propagate csp doms (List.init csp.n Fun.id);
    go doms;
    None
  with
  | Found h -> Some h
  | Wipeout -> None

let find_violating g s =
  let csp = build_csp g in
  (* Prune when every tuple of S is forced to stay inside S: enumerate
     each tuple's image product as long as it is small; a large product
     conservatively counts as a possible violation. *)
  let cap = 4096 in
  let tuple_can_escape doms tup =
    let rec go prefix_rev = function
      | [] -> not (Tuple_relation.mem s (List.rev prefix_rev))
      | p :: rest ->
          let escaped = ref false in
          dom_iter doms.(p) (fun x ->
              if not !escaped then escaped := go (x :: prefix_rev) rest);
          !escaped
    in
    let size =
      List.fold_left (fun acc p -> acc * doms.(p).card) 1 tup
    in
    if size > cap then true else go [] tup
  in
  let prune doms = not (Tuple_relation.exists (tuple_can_escape doms) s) in
  let leaf h =
    Tuple_relation.exists
      (fun tup -> not (Tuple_relation.mem s (List.map (fun p -> h.(p)) tup)))
      s
  in
  solve csp ~prune ~leaf

let all ?(limit = 100_000) g =
  let csp = build_csp g in
  let acc = ref [] in
  let c = ref 0 in
  let (_ : int array option) =
    solve csp
      ~prune:(fun _ -> false)
      ~leaf:(fun h ->
        acc := Array.copy h :: !acc;
        incr c;
        !c >= limit)
  in
  List.rev !acc

let count ?(limit = 1_000_000) g =
  let csp = build_csp g in
  let c = ref 0 in
  let (_ : int array option) =
    solve csp
      ~prune:(fun _ -> false)
      ~leaf:(fun _ ->
        incr c;
        !c >= limit)
  in
  !c

let pp g ppf h =
  Format.fprintf ppf "{@[<hov>";
  Array.iteri
    (fun p x ->
      if p > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%s↦%s" (Data_graph.name g p) (Data_graph.name g x))
    h;
  Format.fprintf ppf "@]}"
