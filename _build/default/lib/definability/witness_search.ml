module Relation = Datagraph.Relation

let log_src =
  Logs.Src.create "definability.witness_search"
    ~doc:"tuple-of-subsets witness search"

module Log = (val Logs.src_log log_src : Logs.LOG)

type block = { name : string; succ : int -> int list }

type config = {
  num_states : int;
  sources : int array;
  node_of : int -> int;
  blocks : block array;
}

type verdict =
  | Definable
  | Not_definable of (int * int) list
  | Exhausted

type outcome = {
  verdict : verdict;
  covered : Relation.t;
  witnesses : ((int * int) * string list) list;
  tuples_explored : int;
}

(* A tuple ⟨Q_1,…,Q_n⟩ is a Bytes bit-matrix: row i holds source i's
   reachable state set. *)

let search ?(max_tuples = 2_000_000) cfg ~target =
  let n = Array.length cfg.sources in
  if Relation.universe target <> n then
    invalid_arg "Witness_search.search: target universe <> number of sources";
  let row_bytes = (cfg.num_states + 7) / 8 in
  let total = n * row_bytes in
  let get_bit t i s =
    Bytes.get_uint8 t ((i * row_bytes) + (s lsr 3)) land (1 lsl (s land 7)) <> 0
  in
  let set_bit t i s =
    let idx = (i * row_bytes) + (s lsr 3) in
    Bytes.set_uint8 t idx (Bytes.get_uint8 t idx lor (1 lsl (s land 7)))
  in
  let is_zero t = Bytes.for_all (fun c -> c = '\000') t in
  (* Initial tuple. *)
  let t0 = Bytes.make total '\000' in
  Array.iteri (fun i s -> set_bit t0 i s) cfg.sources;
  (* Visited table and BFS bookkeeping.  Parents record (parent id, block
     index) for witness reconstruction. *)
  let visited : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let parents : (int * int) option array ref = ref (Array.make 1024 None) in
  let tuples : Bytes.t array ref = ref (Array.make 1024 Bytes.empty) in
  let count = ref 0 in
  let register t parent =
    let id = !count in
    incr count;
    if id >= Array.length !parents then begin
      let parents' = Array.make (2 * id) None in
      Array.blit !parents 0 parents' 0 id;
      parents := parents';
      let tuples' = Array.make (2 * id) Bytes.empty in
      Array.blit !tuples 0 tuples' 0 id;
      tuples := tuples'
    end;
    !parents.(id) <- parent;
    !tuples.(id) <- t;
    Hashtbl.add visited (Bytes.to_string t) id;
    id
  in
  let queue = Queue.create () in
  Queue.add (register t0 None) queue;
  let covered = ref (Relation.empty n) in
  let witness_ids : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let target_card = Relation.cardinal target in
  let done_ = ref (target_card = 0) in
  let truncated = ref false in
  (* Per-block successor application on a whole tuple. *)
  let apply block t =
    let t' = Bytes.make total '\000' in
    for i = 0 to n - 1 do
      for s = 0 to cfg.num_states - 1 do
        if get_bit t i s then
          List.iter (fun s' -> set_bit t' i s') (block.succ s)
      done
    done;
    t'
  in
  while (not !done_) && not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let t = !tuples.(id) in
    (* Safety: every reachable state projects into the target. *)
    let safe = ref true in
    (try
       for i = 0 to n - 1 do
         for s = 0 to cfg.num_states - 1 do
           if get_bit t i s && not (Relation.mem target i (cfg.node_of s))
           then begin
             safe := false;
             raise Exit
           end
         done
       done
     with Exit -> ());
    if !safe then begin
      for i = 0 to n - 1 do
        for s = 0 to cfg.num_states - 1 do
          if get_bit t i s then begin
            let q = cfg.node_of s in
            if not (Relation.mem !covered i q) then begin
              covered := Relation.add !covered i q;
              Hashtbl.replace witness_ids (i, q) id
            end
          end
        done
      done;
      if Relation.cardinal !covered = target_card then done_ := true
    end;
    if not !done_ then
      Array.iteri
        (fun bi block ->
          let t' = apply block t in
          if
            (not (is_zero t'))
            && not (Hashtbl.mem visited (Bytes.to_string t'))
          then
            if !count >= max_tuples then truncated := true
            else Queue.add (register t' (Some (id, bi))) queue)
        cfg.blocks
  done;
  (* Reconstruct block sequences for covered pairs. *)
  let path_of id =
    let rec go id acc =
      match !parents.(id) with
      | None -> acc
      | Some (pid, bi) -> go pid (cfg.blocks.(bi).name :: acc)
    in
    go id []
  in
  let witnesses =
    Hashtbl.fold (fun pair id acc -> ((pair, path_of id)) :: acc) witness_ids []
    |> List.sort compare
  in
  let verdict =
    if Relation.cardinal !covered = target_card then Definable
    else if !truncated then Exhausted
    else Not_definable (Relation.to_list (Relation.diff target !covered))
  in
  Log.debug (fun m ->
      m "explored %d tuples; covered %d/%d pairs%s" !count
        (Relation.cardinal !covered)
        target_card
        (if !truncated then " (truncated)" else ""));
  { verdict; covered = !covered; witnesses; tuples_explored = !count }
