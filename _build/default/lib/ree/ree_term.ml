module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation

type t =
  | Eps
  | Letter of string
  | Concat of t * t
  | EqTest of t
  | NeqTest of t

let rec to_ree = function
  | Eps -> Ree.Eps
  | Letter a -> Ree.Letter a
  | Concat (t1, t2) -> Ree.Concat (to_ree t1, to_ree t2)
  | EqTest t -> Ree.EqTest (to_ree t)
  | NeqTest t -> Ree.NeqTest (to_ree t)

let relation g t =
  let value = Data_graph.value g in
  let rec go = function
    | Eps -> Relation.identity (Data_graph.size g)
    | Letter a -> Relation.edge_relation g a
    | Concat (t1, t2) -> Relation.compose (go t1) (go t2)
    | EqTest t -> Relation.restrict_eq ~value (go t)
    | NeqTest t -> Relation.restrict_neq ~value (go t)
  in
  go t

let rec height = function
  | Eps | Letter _ -> 0
  | Concat (t1, t2) -> max (height t1) (height t2)
  | EqTest t | NeqTest t -> 1 + height t

let rec size = function
  | Eps | Letter _ -> 1
  | Concat (t1, t2) -> 1 + size t1 + size t2
  | EqTest t | NeqTest t -> 1 + size t

let equal = ( = )

let rec pp_prec prec ppf t =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match t with
  | Eps -> Format.pp_print_string ppf "eps"
  | Letter a -> Format.pp_print_string ppf a
  | Concat (t1, t2) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a %a" (pp_prec 1) t1 (pp_prec 2) t2)
  | EqTest t1 -> paren 2 (fun ppf -> Format.fprintf ppf "%a=" (pp_prec 3) t1)
  | NeqTest t1 ->
      paren 2 (fun ppf -> Format.fprintf ppf "%a!=" (pp_prec 3) t1)

let pp = pp_prec 0
let to_string t = Format.asprintf "%a" pp t

let concat_of = function
  | [] -> Eps
  | t :: rest -> List.fold_left (fun acc x -> Concat (acc, x)) t rest

let matches t w = Ree.matches (to_ree t) w
