module Data_path = Datagraph.Data_path
module Data_value = Datagraph.Data_value

type t =
  | Eps
  | Letter of string
  | Union of t * t
  | Concat of t * t
  | Plus of t
  | EqTest of t
  | NeqTest of t

let rec size = function
  | Eps | Letter _ -> 1
  | Union (e1, e2) | Concat (e1, e2) -> 1 + size e1 + size e2
  | Plus e | EqTest e | NeqTest e -> 1 + size e

let rec alphabet_acc acc = function
  | Eps -> acc
  | Letter a -> a :: acc
  | Union (e1, e2) | Concat (e1, e2) -> alphabet_acc (alphabet_acc acc e1) e2
  | Plus e | EqTest e | NeqTest e -> alphabet_acc acc e

let alphabet e = List.sort_uniq compare (alphabet_acc [] e)
let equal = ( = )

let rec of_regex = function
  | Regexp.Regex.Empty ->
      (* No ∅ in the REE grammar: ε= ∩ ε≠ is empty, and so is (ε≠)
         alone on single-value paths... in fact L(ε≠) = ∅ already since a
         single value equals itself. *)
      NeqTest Eps
  | Regexp.Regex.Eps -> Eps
  | Regexp.Regex.Letter a -> Letter a
  | Regexp.Regex.Union (e1, e2) -> Union (of_regex e1, of_regex e2)
  | Regexp.Regex.Concat (e1, e2) -> Concat (of_regex e1, of_regex e2)
  | Regexp.Regex.Plus e -> Plus (of_regex e)
  | Regexp.Regex.Star e -> Union (Eps, Plus (of_regex e))

(* Membership by memoized recursion over subpaths [i..j].  The visiting
   set cuts cycles through zero-length Plus iterations; with no register
   state, a cyclic derivation proves nothing new, so cutting to false
   computes the least fixpoint correctly. *)
let matches e w =
  let memo = Hashtbl.create 256 in
  let visiting = Hashtbl.create 64 in
  let ids = Hashtbl.create 64 in
  let next_id = ref 0 in
  let id_of e =
    match Hashtbl.find_opt ids (Obj.repr e) with
    | Some i -> i
    | None ->
        let i = !next_id in
        incr next_id;
        Hashtbl.add ids (Obj.repr e) i;
        i
  in
  let rec mem e i j =
    let key = (id_of e, i, j) in
    match Hashtbl.find_opt memo key with
    | Some b -> b
    | None ->
        if Hashtbl.mem visiting key then false
        else begin
          Hashtbl.add visiting key ();
          let b = compute e i j in
          Hashtbl.remove visiting key;
          Hashtbl.replace memo key b;
          b
        end
  and compute e i j =
    match e with
    | Eps -> i = j
    | Letter a -> j = i + 1 && Data_path.label_at w i = a
    | Union (e1, e2) -> mem e1 i j || mem e2 i j
    | Concat (e1, e2) ->
        let rec split l = l <= j && ((mem e1 i l && mem e2 l j) || split (l + 1)) in
        split i
    | Plus e1 ->
        mem e1 i j
        ||
        let rec split l =
          l <= j && ((mem e1 i l && mem e l j) || split (l + 1))
        in
        split i
    | EqTest e1 ->
        mem e1 i j
        && Data_value.equal (Data_path.value_at w i) (Data_path.value_at w j)
    | NeqTest e1 ->
        mem e1 i j
        && not
             (Data_value.equal (Data_path.value_at w i) (Data_path.value_at w j))
  in
  mem e 0 (Data_path.length w)

(* Embedding into REM: a dedicated register per restriction node, bound at
   the node's first value and tested at its last. *)
let to_rem e =
  let next = ref 0 in
  let fresh () =
    let r = !next in
    incr next;
    r
  in
  let rec go = function
    | Eps -> Rem_lang.Rem.Eps
    | Letter a -> Rem_lang.Rem.Letter a
    | Union (e1, e2) -> Rem_lang.Rem.Union (go e1, go e2)
    | Concat (e1, e2) -> Rem_lang.Rem.Concat (go e1, go e2)
    | Plus e1 -> Rem_lang.Rem.Plus (go e1)
    | EqTest e1 ->
        let r = fresh () in
        Rem_lang.Rem.Bind
          ([ r ], Rem_lang.Rem.Test (go e1, Rem_lang.Condition.Eq r))
    | NeqTest e1 ->
        let r = fresh () in
        Rem_lang.Rem.Bind
          ([ r ], Rem_lang.Rem.Test (go e1, Rem_lang.Condition.Neq r))
  in
  go e

(* Precedence: union 0, concat 1, postfix 2, atom 3. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Eps -> Format.pp_print_string ppf "eps"
  | Letter a -> Format.pp_print_string ppf a
  | Union (e1, e2) ->
      paren 0 (fun ppf ->
          Format.fprintf ppf "%a | %a" (pp_prec 1) e1 (pp_prec 0) e2)
  | Concat (e1, e2) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a %a" (pp_prec 1) e1 (pp_prec 2) e2)
  | Plus e1 -> paren 2 (fun ppf -> Format.fprintf ppf "%a+" (pp_prec 3) e1)
  | EqTest e1 -> paren 2 (fun ppf -> Format.fprintf ppf "%a=" (pp_prec 3) e1)
  | NeqTest e1 ->
      paren 2 (fun ppf -> Format.fprintf ppf "%a!=" (pp_prec 3) e1)

let pp = pp_prec 0
let to_string e = Format.asprintf "%a" pp e

type token =
  | Tid of string
  | Tlparen
  | Trparen
  | Tbar
  | Tplus
  | Tstar
  | Tdot
  | Teq
  | Tneq

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\'' || c = '$'

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (Tlparen :: acc)
      | ')' -> go (i + 1) (Trparen :: acc)
      | '|' -> go (i + 1) (Tbar :: acc)
      | '+' -> go (i + 1) (Tplus :: acc)
      | '*' -> go (i + 1) (Tstar :: acc)
      | '.' -> go (i + 1) (Tdot :: acc)
      | '=' -> go (i + 1) (Teq :: acc)
      | '!' when i + 1 < n && s.[i + 1] = '=' -> go (i + 2) (Tneq :: acc)
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          go !j (Tid (String.sub s i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C at offset %d" c i)
  in
  go 0 []

let parse s =
  match tokenize s with
  | Error _ as e -> e
  | Ok tokens -> (
      let toks = ref tokens in
      let peek () = match !toks with [] -> None | t :: _ -> Some t in
      let advance () = match !toks with [] -> () | _ :: r -> toks := r in
      let exception Fail of string in
      let rec union () =
        let e = concat () in
        match peek () with
        | Some Tbar ->
            advance ();
            Union (e, union ())
        | _ -> e
      and concat () =
        let e = iter () in
        let rec more acc =
          match peek () with
          | Some Tdot ->
              advance ();
              more (Concat (acc, iter ()))
          | Some (Tid _ | Tlparen) -> more (Concat (acc, iter ()))
          | _ -> acc
        in
        more e
      and iter () =
        let e = atom () in
        let rec post acc =
          match peek () with
          | Some Tplus ->
              advance ();
              post (Plus acc)
          | Some Tstar ->
              advance ();
              post (Union (Eps, Plus acc))
          | Some Teq ->
              advance ();
              post (EqTest acc)
          | Some Tneq ->
              advance ();
              post (NeqTest acc)
          | _ -> acc
        in
        post e
      and atom () =
        match peek () with
        | Some (Tid "eps") ->
            advance ();
            Eps
        | Some (Tid a) ->
            advance ();
            Letter a
        | Some Tlparen -> (
            advance ();
            let e = union () in
            match peek () with
            | Some Trparen ->
                advance ();
                e
            | _ -> raise (Fail "expected )"))
        | _ -> raise (Fail "expected letter, eps or (")
      in
      try
        let e = union () in
        match !toks with
        | [] -> Ok e
        | _ -> Error "trailing tokens after expression"
      with Fail msg -> Error msg)

let rec union_branches acc = function
  | Union (e1, e2) -> union_branches (union_branches acc e1) e2
  | e -> e :: acc

let union_of = function
  | [] -> NeqTest Eps (* the empty language *)
  | e :: rest -> List.fold_left (fun acc x -> Union (acc, x)) e rest

let rec simplify e =
  match e with
  | Eps | Letter _ -> e
  | Union _ ->
      let branches =
        union_branches [] e |> List.map simplify |> List.sort_uniq compare
      in
      union_of (List.rev branches)
  | Concat (e1, e2) -> (
      match (simplify e1, simplify e2) with
      | Eps, e | e, Eps -> e
      | e1, e2 -> Concat (e1, e2))
  | Plus e1 -> (
      match simplify e1 with Plus e -> Plus e | e -> Plus e)
  | EqTest e1 -> (
      match simplify e1 with
      | Eps -> Eps (* a single value equals itself *)
      | EqTest e -> EqTest e
      | e -> EqTest e)
  | NeqTest e1 -> (
      match simplify e1 with NeqTest e -> NeqTest e | e -> NeqTest e)
