(** Regular expressions with equality — REE (Definition 7):

    {v e := ε | a | e + e | e · e | e⁺ | e= | e≠ v}

    [e=] keeps the data paths of [L(e)] whose first and last data values
    coincide; [e≠] keeps those where they differ.  REE is strictly less
    expressive than REM (Example 12) but strictly more than plain regular
    expressions. *)

type t =
  | Eps
  | Letter of string
  | Union of t * t
  | Concat of t * t
  | Plus of t
  | EqTest of t  (** [e=] *)
  | NeqTest of t  (** [e≠] *)

val size : t -> int
val alphabet : t -> string list
val equal : t -> t -> bool

val matches : t -> Datagraph.Data_path.t -> bool
(** [w ∈ L(e)] per Definition 7, by memoized recursion over subpaths. *)

val to_rem : t -> Rem_lang.Rem.t
(** The standard embedding of REE into REM ([20]): each [=]/[≠] node gets
    a dedicated register bound at its first value and tested at its last.
    [L(to_rem e) = L(e)]; the test suite checks this differentially. *)

val of_regex : Regexp.Regex.t -> t
(** Embed a standard regular expression (no equality tests). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** Concrete syntax: as {!Regexp.Regex.parse} plus postfix [=] and [!=],
    e.g. the paper's Example 8 [((a)≠ · (b)≠)≠] is ["((a)!= (b)!=)!="],
    and [e3] of Example 12 is ["(a (a)= a)="]. *)

val simplify : t -> t
(** Language-preserving cleanup: unit elements, duplicate union branches,
    idempotent restrictions ([  (e=)= = e=], [(ε)= = ε]). *)
