(** Star-free, union-free REE terms:

    {v t := ε | a | t · t | t= | t≠ v}

    These are the per-pair witnesses of the REE definability procedure
    (Section 4).  Unions and iterations distribute over [=]/[≠] and
    concatenation, and a witness data path survives unfolding of every
    [e⁺], so a relation is RDPQ_=-definable iff every pair of it is
    covered by the relation [S_t ⊆ S] of some such term — see
    {!Definability.Ree_definability}.

    The relation semantics is compositional (Lemma 29):
    [S_{t1·t2} = S_{t1} ∘ S_{t2}], [S_{t=} = (S_t)=], [S_{t≠} = (S_t)≠]. *)

type t =
  | Eps
  | Letter of string
  | Concat of t * t
  | EqTest of t
  | NeqTest of t

val to_ree : t -> Ree.t

val relation : Datagraph.Data_graph.t -> t -> Datagraph.Relation.t
(** [S_t] on the given graph, computed compositionally. *)

val height : t -> int
(** Nesting depth of [=]/[≠] restrictions — the level (Definition 27) at
    which [S_t] first appears. *)

val size : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val concat_of : t list -> t
(** n-ary concatenation; [Eps] for the empty list. *)

val matches : t -> Datagraph.Data_path.t -> bool
(** Direct membership — equivalent to [Ree.matches (to_ree t)]. *)
