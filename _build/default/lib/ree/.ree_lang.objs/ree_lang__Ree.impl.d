lib/ree/ree.ml: Datagraph Format Hashtbl List Obj Printf Regexp Rem_lang String
