lib/ree/ree_term.ml: Datagraph Format List Ree
