lib/ree/ree.mli: Datagraph Format Regexp Rem_lang
