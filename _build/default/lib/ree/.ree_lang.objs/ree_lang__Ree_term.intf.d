lib/ree/ree_term.mli: Datagraph Format Ree
