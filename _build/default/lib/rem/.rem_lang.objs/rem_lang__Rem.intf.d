lib/rem/rem.mli: Condition Datagraph Format Regexp
