lib/rem/basic_rem.ml: Array Condition Datagraph Format Hashtbl List Printf Rem String
