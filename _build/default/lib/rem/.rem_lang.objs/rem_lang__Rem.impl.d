lib/rem/rem.ml: Array Condition Datagraph Format Hashtbl List Obj Option Printf Regexp Set Stdlib String
