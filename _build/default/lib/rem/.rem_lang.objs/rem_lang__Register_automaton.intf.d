lib/rem/register_automaton.mli: Basic_rem Condition Datagraph Rem
