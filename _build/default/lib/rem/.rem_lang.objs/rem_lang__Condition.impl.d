lib/rem/condition.ml: Array Datagraph Format List Printf String
