lib/rem/condition.mli: Datagraph Format
