lib/rem/basic_rem.mli: Condition Datagraph Format Rem
