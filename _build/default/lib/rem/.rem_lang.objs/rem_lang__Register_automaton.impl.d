lib/rem/register_automaton.ml: Array Basic_rem Condition Datagraph Hashtbl List Option Queue Rem
