module Data_path = Datagraph.Data_path
module Data_value = Datagraph.Data_value
module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation

type op = Bind of int list | Test of Condition.t | Letter of string

type t = {
  k : int;
  nstates : int;
  start : int;
  final : int;
  edges : (op * int) list array;
}

let k a = a.k
let state_count a = a.nstates
let edge_count a = Array.fold_left (fun n l -> n + List.length l) 0 a.edges

let of_rem ?k e =
  let needed = Rem.registers e in
  let k = match k with None -> needed | Some k -> k in
  if k < needed then
    invalid_arg "Register_automaton.of_rem: k below registers used";
  let edges = ref [] and next = ref 0 in
  let fresh () =
    let q = !next in
    incr next;
    q
  in
  let add q op q' = edges := (q, op, q') :: !edges in
  let eps q q' = add q (Test Condition.True) q' in
  let rec build e =
    let s = fresh () and f = fresh () in
    (match e with
    | Rem.Eps -> eps s f
    | Rem.Letter a -> add s (Letter a) f
    | Rem.Union (e1, e2) ->
        let s1, f1 = build e1 and s2, f2 = build e2 in
        eps s s1;
        eps s s2;
        eps f1 f;
        eps f2 f
    | Rem.Concat (e1, e2) ->
        let s1, f1 = build e1 and s2, f2 = build e2 in
        eps s s1;
        eps f1 s2;
        eps f2 f
    | Rem.Plus e1 ->
        let s1, f1 = build e1 in
        eps s s1;
        eps f1 f;
        eps f1 s1
    | Rem.Test (e1, c) ->
        let s1, f1 = build e1 in
        eps s s1;
        add f1 (Test c) f
    | Rem.Bind (rs, e1) ->
        let s1, f1 = build e1 in
        add s (Bind rs) s1;
        eps f1 f);
    (s, f)
  in
  let start, final = build e in
  let nstates = !next in
  let arr = Array.make nstates [] in
  List.iter (fun (q, op, q') -> arr.(q) <- (op, q') :: arr.(q)) !edges;
  { k; nstates; start; final; edges = arr }

let of_basic ?k b = of_rem ?k (Basic_rem.to_rem b)

let sigma_key sigma = Array.to_list (Array.map (Option.map Data_value.to_int) sigma)

let accepts a w =
  let m = Data_path.length w in
  let seen = Hashtbl.create 256 in
  let q = Queue.create () in
  let push state pos sigma =
    let key = (state, pos, sigma_key sigma) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.add (state, pos, sigma) q
    end
  in
  push a.start 0 (Array.make a.k None);
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let state, pos, sigma = Queue.pop q in
    if state = a.final && pos = m then found := true
    else
      let d = Data_path.value_at w pos in
      List.iter
        (fun (op, q') ->
          match op with
          | Bind rs ->
              let sigma' = Array.copy sigma in
              List.iter (fun r -> sigma'.(r) <- Some d) rs;
              push q' pos sigma'
          | Test c ->
              if Condition.sat c ~d ~assignment:sigma then push q' pos sigma
          | Letter b ->
              if pos < m && Data_path.label_at w pos = b then
                push q' (pos + 1) sigma)
        a.edges.(state)
  done;
  !found

(* Product with a data graph: configurations (state, node, σ).  Bind and
   Test act on the current node's value; Letter moves along graph edges. *)
let eval_from a g u =
  let n = Data_graph.size g in
  let out = Array.make n false in
  let seen = Hashtbl.create 256 in
  let q = Queue.create () in
  let push state v sigma =
    let key = (state, v, sigma_key sigma) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.add (state, v, sigma) q
    end
  in
  push a.start u (Array.make a.k None);
  while not (Queue.is_empty q) do
    let state, v, sigma = Queue.pop q in
    if state = a.final then out.(v) <- true;
    let d = Data_graph.value g v in
    List.iter
      (fun (op, q') ->
        match op with
        | Bind rs ->
            let sigma' = Array.copy sigma in
            List.iter (fun r -> sigma'.(r) <- Some d) rs;
            push q' v sigma'
        | Test c ->
            if Condition.sat c ~d ~assignment:sigma then push q' v sigma
        | Letter b -> (
            match Data_graph.label_id_opt g b with
            | None -> ()
            | Some lbl -> List.iter (fun v' -> push q' v' sigma) (Data_graph.succ_id g v lbl)))
      a.edges.(state)
  done;
  out

let eval_on_graph g a =
  let n = Data_graph.size g in
  let r = ref (Relation.empty n) in
  for u = 0 to n - 1 do
    let out = eval_from a g u in
    for v = 0 to n - 1 do
      if out.(v) then r := Relation.add !r u v
    done
  done;
  !r

let accepts_nonempty_on_graph g a ~src ~dst = (eval_from a g src).(dst)

(* Emptiness over the bounded value pool {0..k}: a fresh value is always
   available because at most k values are stored, so every reachable
   configuration is realizable with these values (the bounded-data
   argument for register automata [16]). *)
let pool a = List.init (a.k + 1) Data_value.of_int

(* BFS over configurations (state, current value, σ) with values drawn
   from the pool, remembering the initial value and the (letter, value)
   steps so an accepted data path can be reconstructed. *)
let bounded_search a ~max_len =
  let seen = Hashtbl.create 256 in
  let q = Queue.create () in
  let push state d sigma init trace len =
    let key = (state, Data_value.to_int d, sigma_key sigma) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.add (state, d, sigma, init, trace, len) q
    end
  in
  List.iter (fun d -> push a.start d (Array.make a.k None) d [] 0) (pool a);
  let result = ref None in
  while !result = None && not (Queue.is_empty q) do
    let state, d, sigma, init, trace, len = Queue.pop q in
    if state = a.final then begin
      let steps = List.rev trace in
      let values = Array.of_list (init :: List.map snd steps) in
      let labels = Array.of_list (List.map fst steps) in
      result := Some (Data_path.make ~values ~labels)
    end
    else
      List.iter
        (fun (op, q') ->
          match op with
          | Bind rs ->
              let sigma' = Array.copy sigma in
              List.iter (fun r -> sigma'.(r) <- Some d) rs;
              push q' d sigma' init trace len
          | Test c ->
              if Condition.sat c ~d ~assignment:sigma then
                push q' d sigma init trace len
          | Letter b ->
              if len < max_len then
                List.iter
                  (fun d' -> push q' d' sigma init ((b, d') :: trace) (len + 1))
                  (pool a))
        a.edges.(state)
  done;
  !result

let is_empty a =
  (* The visited set is over configurations, so the BFS terminates
     without a length bound; max_int only silences the guard. *)
  bounded_search a ~max_len:max_int = None

let shortest_accepted ?(max_len = 64) a = bounded_search a ~max_len
