(** Conditions over [k] registers (Definition 3):

    {v c := ⊤ | r_i= | r_i≠ | c ∨ c | c ∧ c | ¬c v}

    Satisfaction is with respect to a data value [d] and an assignment
    [τ ∈ (D ∪ ⊥)^k]: [r_i=] holds iff register [i] holds exactly [d];
    [r_i≠] holds iff it does not (an empty register [⊥] differs from every
    data value).  Consequently exactly one of [r_i=], [r_i≠] holds for
    every register, so a condition is determined by its set of satisfying
    {e complete types} — the boolean vectors recording which registers
    equal the current value.  Registers are 0-indexed. *)

type t =
  | True
  | Eq of int  (** [r_i=] *)
  | Neq of int  (** [r_i≠] *)
  | And of t * t
  | Or of t * t
  | Not of t

val ff : t
(** A canonical unsatisfiable condition, [¬⊤]. *)

val conj : t list -> t
(** n-ary conjunction ([True] for the empty list). *)

val disj : t list -> t
(** n-ary disjunction ([ff] for the empty list). *)

val max_register : t -> int
(** Largest register index mentioned, or [-1] if none. *)

val sat : t -> d:Datagraph.Data_value.t -> assignment:Datagraph.Data_value.t option array -> bool
(** Satisfaction per Definition 3 ([None] is the empty register ⊥). *)

val eval_type : t -> bool array -> bool
(** Satisfaction under a complete type: [ty.(i)] is the truth of [r_i=]. *)

val complete_types : k:int -> t -> bool array list
(** All complete types over [k] registers satisfying the condition —
    [2^k] candidates.  A condition is unsatisfiable over [k] registers iff
    this is empty. *)

val of_complete_type : bool array -> t
(** The conjunction pinning every register to its value in the type. *)

val type_of_state :
  d:Datagraph.Data_value.t -> assignment:Datagraph.Data_value.t option array -> bool array
(** The unique complete type realized by a value and an assignment. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** Concrete syntax: [true], [r1=], [r1!=], [&], [|], [!c], parentheses.
    Registers are 1-indexed in the concrete syntax ([r1] is register 0). *)
