(** k-register automata over data paths — the automaton model REM is
    expressively equivalent to (Libkin & Vrgoč, reference [19] of the
    paper; originally Kaminski & Francez [16]).

    We use a Thompson-style representation: a finite graph of operation
    edges, where [Bind] and [Test] edges act on the current data value
    without advancing, and [Letter] edges consume one letter of the data
    path.  A data path [w = d0 a0 d1 ... dm] is accepted iff some walk
    from the start state (at value position 0, all registers empty) to
    the final state (at position m) performs only satisfied tests.

    This is both the efficient semantics for {!Rem} (the direct
    recursion in [Rem.matches] serves as a cross-checking oracle) and the
    evaluation engine for RDPQ_mem queries on data graphs
    (Definition 11 / reference [20]): configurations [(state, node, σ)]
    make query evaluation polynomial for fixed [k]. *)

type op =
  | Bind of int list  (** store the current data value in these registers *)
  | Test of Condition.t  (** check against the current data value *)
  | Letter of string  (** consume one letter, advance to the next value *)

type t

val of_rem : ?k:int -> Rem.t -> t
(** Compile an REM ([k] defaults to [Rem.registers e]).
    @raise Invalid_argument if [k < Rem.registers e]. *)

val of_basic : ?k:int -> Basic_rem.t -> t

val k : t -> int
val state_count : t -> int
val edge_count : t -> int

val accepts : t -> Datagraph.Data_path.t -> bool
(** BFS over configurations [(state, position, σ)]; σ ranges over the
    values of the path plus ⊥, so the search is finite. *)

val eval_on_graph : Datagraph.Data_graph.t -> t -> Datagraph.Relation.t
(** The RDPQ_mem answer [Q(G)] for [Q : x -e-> y]: all pairs [(u, v)]
    such that some data path from [u] to [v] is accepted.  Reachability
    over configurations [(state, node, σ)] with σ over [D_G ∪ ⊥]. *)

val accepts_nonempty_on_graph :
  Datagraph.Data_graph.t -> t -> src:int -> dst:int -> bool

val is_empty : t -> bool
(** Is [L(A)] empty?  Decidable because register contents can only be
    data values read earlier: along any run, what matters about the next
    data value is which registers currently hold it, so a pool of [k + 1]
    distinct values suffices to realize every reachable configuration
    (the standard bounded-data argument for register automata [16]).  The
    search explores configurations [(state, σ)] over that pool. *)

val shortest_accepted : ?max_len:int -> t -> Datagraph.Data_path.t option
(** A short accepted data path (over the [k + 1]-value pool; breadth
    first, so short but not guaranteed minimal), or [None] if the
    language is empty or no witness of length at most [max_len]
    (default 64) exists.  The test suite checks agreement with
    {!is_empty} and membership via {!accepts}. *)
