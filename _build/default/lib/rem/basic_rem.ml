module Data_path = Datagraph.Data_path
module Data_value = Datagraph.Data_value

type block = { bind : int list; label : string; cond : Condition.t }
type t = block list

let to_rem blocks =
  let rec go = function
    | [] -> Rem.Eps
    | [ b ] -> block_rem b
    | b :: rest -> Rem.Concat (block_rem b, go rest)
  and block_rem b =
    let body = Rem.Test (Rem.Letter b.label, b.cond) in
    match b.bind with [] -> body | rs -> Rem.Bind (rs, body)
  in
  go blocks

let registers blocks =
  List.fold_left
    (fun acc b ->
      let m = List.fold_left max (-1) b.bind in
      max acc (max (m + 1) (Condition.max_register b.cond + 1)))
    0 blocks

let length = List.length

let pp ppf blocks =
  match blocks with
  | [] -> Format.pp_print_string ppf "eps"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
        (fun ppf b ->
          (match b.bind with
          | [] -> ()
          | rs ->
              Format.fprintf ppf "@@{%s} "
                (String.concat ","
                   (List.map (fun r -> Printf.sprintf "r%d" (r + 1)) rs)));
          if b.cond = Condition.True then Format.fprintf ppf "%s" b.label
          else Format.fprintf ppf "%s[%s]" b.label (Condition.to_string b.cond))
        ppf blocks

let to_string b = Format.asprintf "%a" pp b

let matches blocks w =
  let k = registers blocks in
  let sigma = Array.make k None in
  let m = Data_path.length w in
  let rec go blocks i =
    match blocks with
    | [] -> i = m
    | b :: rest ->
        i < m
        && Data_path.label_at w i = b.label
        && begin
             let d_before = Data_path.value_at w i in
             List.iter (fun r -> sigma.(r) <- Some d_before) b.bind;
             let d_after = Data_path.value_at w (i + 1) in
             Condition.sat b.cond ~d:d_after ~assignment:sigma
             && go rest (i + 1)
           end
  in
  go blocks 0

let of_data_path w =
  let m = Data_path.length w in
  let prof = Data_path.profile w in
  (* Register of a value class = rank of its first-occurrence position. *)
  let class_reg = Hashtbl.create 8 in
  let reg_of_first pos =
    match Hashtbl.find_opt class_reg pos with
    | Some r -> r
    | None ->
        let r = Hashtbl.length class_reg in
        Hashtbl.add class_reg pos r;
        r
  in
  let blocks = ref [] in
  (* Ensure position 0's class gets register 0 even when m = 0 is not an
     issue: with m = 0 the expression is ε and needs no registers. *)
  if m > 0 then ignore (reg_of_first 0);
  for p = 1 to m do
    let bind =
      (* Bind the value before this letter if position p-1 is a first
         occurrence of its class. *)
      if prof.(p - 1) = p - 1 then [ reg_of_first (p - 1) ] else []
    in
    let cond =
      if prof.(p) < p then
        (* Repeat: equal to the register of its class (already bound,
           since its first occurrence is at a position < p <= before this
           block's target). *)
        Condition.Eq (Hashtbl.find class_reg prof.(p))
      else
        (* Fresh: differs from every register bound so far (the paper's
           construction omits this test; see the .mli note). *)
        Condition.conj
          (Hashtbl.fold (fun _pos r acc -> Condition.Neq r :: acc) class_reg [])
    in
    blocks := { bind; label = Data_path.label_at w (p - 1); cond } :: !blocks
  done;
  List.rev !blocks
