(** Basic k-REMs (Definition 16): expressions of the form
    [↓r̄1.a1\[c1\] · ↓r̄2.a2\[c2\] ⋯ ↓r̄m.am\[cm\]] — REMs built without
    union and iteration.  Lemma 18 shows definable relations are definable
    by unions of such witnesses, so the decision procedures search over
    them.

    A basic REM is a list of blocks; block [i]'s binding applies to the
    data value {e before} its letter and its condition to the value
    {e after} (which is also the value the next block's binding sees). *)

type block = {
  bind : int list;  (** registers set to the value before the letter *)
  label : string;
  cond : Condition.t;  (** checked against the value after the letter *)
}

type t = block list
(** The empty list denotes [ε] (a single data value, no letters). *)

val to_rem : t -> Rem.t
val registers : t -> int
val length : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val matches : t -> Datagraph.Data_path.t -> bool
(** Direct semantics — equivalent to [Rem.matches (to_rem b)] but without
    the generic machinery: a single left-to-right pass. *)

val of_data_path : Datagraph.Data_path.t -> t
(** The expression [e_\[w\]] of Lemma 15, with [L(e_\[w\]) = \[w\]] (the
    automorphism class of [w]).  The first occurrence of each data value is
    stored in a dedicated register; repeats are tested [=] against it.

    Note: the construction printed in the paper's proof of Lemma 15 omits
    a test on fresh values, under which e.g. [e_\[0a1\]] would also accept
    [0a0]; we additionally test each fresh value [≠] against all registers
    bound so far, which restores [L(e_\[w\]) = \[w\]] (the property the
    rest of the paper uses).  See test [lemma15_freshness]. *)
