module Data_value = Datagraph.Data_value

type t =
  | True
  | Eq of int
  | Neq of int
  | And of t * t
  | Or of t * t
  | Not of t

let ff = Not True

let conj = function
  | [] -> True
  | c :: rest -> List.fold_left (fun acc x -> And (acc, x)) c rest

let disj = function
  | [] -> ff
  | c :: rest -> List.fold_left (fun acc x -> Or (acc, x)) c rest

let rec max_register = function
  | True -> -1
  | Eq i | Neq i -> i
  | And (c1, c2) | Or (c1, c2) -> max (max_register c1) (max_register c2)
  | Not c -> max_register c

let rec sat c ~d ~assignment =
  match c with
  | True -> true
  | Eq i -> (
      match assignment.(i) with
      | Some e -> Data_value.equal e d
      | None -> false)
  | Neq i -> (
      match assignment.(i) with
      | Some e -> not (Data_value.equal e d)
      | None -> true)
  | And (c1, c2) -> sat c1 ~d ~assignment && sat c2 ~d ~assignment
  | Or (c1, c2) -> sat c1 ~d ~assignment || sat c2 ~d ~assignment
  | Not c -> not (sat c ~d ~assignment)

let rec eval_type c ty =
  match c with
  | True -> true
  | Eq i -> ty.(i)
  | Neq i -> not ty.(i)
  | And (c1, c2) -> eval_type c1 ty && eval_type c2 ty
  | Or (c1, c2) -> eval_type c1 ty || eval_type c2 ty
  | Not c -> not (eval_type c ty)

let complete_types ~k c =
  let rec enum i ty acc =
    if i >= k then if eval_type c ty then Array.copy ty :: acc else acc
    else begin
      ty.(i) <- false;
      let acc = enum (i + 1) ty acc in
      ty.(i) <- true;
      let acc = enum (i + 1) ty acc in
      ty.(i) <- false;
      acc
    end
  in
  List.rev (enum 0 (Array.make k false) [])

let of_complete_type ty =
  conj
    (List.init (Array.length ty) (fun i -> if ty.(i) then Eq i else Neq i))

let type_of_state ~d ~assignment =
  Array.map
    (function Some e -> Data_value.equal e d | None -> false)
    assignment

let equal = ( = )

let rec pp_prec prec ppf c =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match c with
  | True -> Format.pp_print_string ppf "true"
  | Eq i -> Format.fprintf ppf "r%d=" (i + 1)
  | Neq i -> Format.fprintf ppf "r%d!=" (i + 1)
  | Or (c1, c2) ->
      paren 0 (fun ppf ->
          Format.fprintf ppf "%a | %a" (pp_prec 0) c1 (pp_prec 0) c2)
  | And (c1, c2) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a & %a" (pp_prec 1) c1 (pp_prec 1) c2)
  | Not c1 -> paren 2 (fun ppf -> Format.fprintf ppf "!%a" (pp_prec 2) c1)

let pp = pp_prec 0
let to_string c = Format.asprintf "%a" pp c

type token = Treg of int * bool | Ttrue | Tand | Tor | Tnot | Tlparen | Trparen

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' -> go (i + 1) acc
      | '&' -> go (i + 1) (Tand :: acc)
      | '|' -> go (i + 1) (Tor :: acc)
      | '!' -> go (i + 1) (Tnot :: acc)
      | '(' -> go (i + 1) (Tlparen :: acc)
      | ')' -> go (i + 1) (Trparen :: acc)
      | 'r' when i + 1 < n && s.[i + 1] >= '0' && s.[i + 1] <= '9' ->
          let j = ref (i + 1) in
          while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
            incr j
          done;
          let idx = int_of_string (String.sub s (i + 1) (!j - i - 1)) in
          if idx < 1 then Error "register indices start at r1"
          else if !j < n && s.[!j] = '=' then
            go (!j + 1) (Treg (idx - 1, true) :: acc)
          else if !j + 1 < n && s.[!j] = '!' && s.[!j + 1] = '=' then
            go (!j + 2) (Treg (idx - 1, false) :: acc)
          else Error (Printf.sprintf "expected = or != after r%d" idx)
      | 't' when i + 3 < n && String.sub s i 4 = "true" -> go (i + 4) (Ttrue :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C in condition" c)
  in
  go 0 []

(* or ::= and ('|' and)* ; and ::= not ('&' not)* ; not ::= '!' not | atom *)
let parse s =
  match tokenize s with
  | Error _ as e -> e
  | Ok tokens -> (
      let toks = ref tokens in
      let peek () = match !toks with [] -> None | t :: _ -> Some t in
      let advance () = match !toks with [] -> () | _ :: r -> toks := r in
      let exception Fail of string in
      let rec level_or () =
        let c = level_and () in
        match peek () with
        | Some Tor ->
            advance ();
            Or (c, level_or ())
        | _ -> c
      and level_and () =
        let c = level_not () in
        match peek () with
        | Some Tand ->
            advance ();
            And (c, level_and ())
        | _ -> c
      and level_not () =
        match peek () with
        | Some Tnot ->
            advance ();
            Not (level_not ())
        | _ -> atom ()
      and atom () =
        match peek () with
        | Some Ttrue ->
            advance ();
            True
        | Some (Treg (i, eq)) ->
            advance ();
            if eq then Eq i else Neq i
        | Some Tlparen -> (
            advance ();
            let c = level_or () in
            match peek () with
            | Some Trparen ->
                advance ();
                c
            | _ -> raise (Fail "expected )"))
        | _ -> raise (Fail "expected condition atom")
      in
      try
        let c = level_or () in
        match !toks with
        | [] -> Ok c
        | _ -> Error "trailing tokens after condition"
      with Fail msg -> Error msg)
