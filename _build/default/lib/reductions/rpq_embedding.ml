let embed g = Datagraph.Data_graph.constant_values g

let agree ?max_tuples ?max_size g s =
  let rpq = Definability.Rpq_definability.is_definable ?max_tuples g s in
  let ree = Definability.Ree_definability.is_definable ?max_size (embed g) s in
  (rpq, ree)
