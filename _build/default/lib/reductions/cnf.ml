type literal = { var : int; positive : bool }
type clause = literal * literal * literal
type t = { num_vars : int; clauses : clause list }

let literal_of_int num_vars x =
  if x = 0 then invalid_arg "Cnf.make: zero literal";
  let var = abs x - 1 in
  if var >= num_vars then invalid_arg "Cnf.make: variable out of range";
  { var; positive = x > 0 }

let make ~num_vars clauses =
  if num_vars < 1 then invalid_arg "Cnf.make: num_vars < 1";
  let lit = literal_of_int num_vars in
  { num_vars; clauses = List.map (fun (a, b, c) -> (lit a, lit b, lit c)) clauses }

let eval_lit asg l = if l.positive then asg.(l.var) else not asg.(l.var)

let eval f asg =
  List.for_all (fun (a, b, c) -> eval_lit asg a || eval_lit asg b || eval_lit asg c) f.clauses

let satisfying_assignment f =
  let n = f.num_vars in
  let asg = Array.make n false in
  let rec go i =
    if i >= n then if eval f asg then Some (Array.copy asg) else None
    else begin
      asg.(i) <- false;
      match go (i + 1) with
      | Some _ as r -> r
      | None ->
          asg.(i) <- true;
          let r = go (i + 1) in
          asg.(i) <- false;
          r
    end
  in
  go 0

let satisfiable f = satisfying_assignment f <> None

let random ?(seed = 0) ~num_vars ~num_clauses () =
  if num_vars < 3 then invalid_arg "Cnf.random: need at least 3 variables";
  let state = ref (seed * 2654435761 lor 1) in
  let next () =
    let s = !state in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    state := s;
    s land max_int
  in
  let rand_var exclude =
    let rec go () =
      let v = next () mod num_vars in
      if List.mem v exclude then go () else v
    in
    go ()
  in
  let clauses =
    List.init num_clauses (fun _ ->
        let v1 = rand_var [] in
        let v2 = rand_var [ v1 ] in
        let v3 = rand_var [ v1; v2 ] in
        let lit v = { var = v; positive = next () land 1 = 0 } in
        (lit v1, lit v2, lit v3))
  in
  { num_vars; clauses }

let pp_lit ppf l =
  Format.fprintf ppf "%sp%d" (if l.positive then "" else "~") (l.var + 1)

let pp ppf f =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
    (fun ppf (a, b, c) ->
      Format.fprintf ppf "(%a|%a|%a)" pp_lit a pp_lit b pp_lit c)
    ppf f.clauses

let to_string f = Format.asprintf "%a" pp f
