module Data_graph = Datagraph.Data_graph
module Data_value = Datagraph.Data_value
module Data_path = Datagraph.Data_path
module Relation = Datagraph.Relation
module Basic_rem = Rem_lang.Basic_rem
module Condition = Rem_lang.Condition

type instance = {
  num_tiles : int;
  horiz : (int * int) list;
  vert : (int * int) list;
  t_init : int;
  t_final : int;
  n : int;
}

type reduction = {
  graph : Data_graph.t;
  p1 : int;
  q1 : int;
  p2 : int;
  q2 : int;
  target : Relation.t;
}

type tiling = int array array

let width inst = 1 lsl inst.n

let validate inst =
  if inst.n < 1 then invalid_arg "Tiling: n must be >= 1";
  if inst.num_tiles < 1 then invalid_arg "Tiling: need at least one tile type";
  let ok t = t >= 0 && t < inst.num_tiles in
  if not (ok inst.t_init && ok inst.t_final) then
    invalid_arg "Tiling: initial/final tile out of range";
  if
    not
      (List.for_all (fun (a, b) -> ok a && ok b) inst.horiz
      && List.for_all (fun (a, b) -> ok a && ok b) inst.vert)
  then invalid_arg "Tiling: compatibility pair out of range"

(* Letters: "$", "a" (the paper's α), unbarred tiles "t<i>", barred "u<i>". *)
let unbarred t = Printf.sprintf "t%d" t
let barred t = Printf.sprintf "u%d" t

let tile_letters inst =
  let ts = List.init inst.num_tiles Fun.id in
  (List.map unbarred ts, List.map barred ts)

(* Data values: d_k = 2k (bit 0 at position k), e_k = 2k+1 (bit 1). *)
let d_val k = Data_value.of_int (2 * k)
let e_val k = Data_value.of_int ((2 * k) + 1)

type spec = D | F of Data_value.t
(** One address position: a full D-box or a fixed value. *)

let is_legal inst tau =
  let w = width inst in
  let rows = Array.length tau in
  rows > 0
  && Array.for_all (fun row -> Array.length row = w) tau
  && tau.(0).(0) = inst.t_init
  && tau.(rows - 1).(w - 1) = inst.t_final
  && Array.for_all
       (fun row ->
         List.for_all
           (fun c -> List.mem (row.(c), row.(c + 1)) inst.horiz)
           (List.init (w - 1) Fun.id))
       tau
  && List.for_all
       (fun r ->
         Array.for_all
           (fun c -> List.mem (tau.(r).(c), tau.(r + 1).(c)) inst.vert)
           (Array.init w Fun.id))
       (List.init (rows - 1) Fun.id)

let solve ?(max_rows = 8) inst =
  validate inst;
  let w = width inst in
  (* Enumerate horizontally consistent rows. *)
  let rec rows_from acc c =
    if c >= w then [ Array.of_list (List.rev acc) ]
    else
      List.concat_map
        (fun t ->
          match acc with
          | prev :: _ when not (List.mem (prev, t) inst.horiz) -> []
          | _ -> rows_from (t :: acc) (c + 1))
        (List.init inst.num_tiles Fun.id)
  in
  let all_rows = rows_from [] 0 in
  let vert_ok r1 r2 =
    Array.for_all (fun c -> List.mem (r1.(c), r2.(c)) inst.vert) (Array.init w Fun.id)
  in
  (* BFS over row sequences. *)
  let starts = List.filter (fun r -> r.(0) = inst.t_init) all_rows in
  let final_row r = r.(w - 1) = inst.t_final in
  let rec bfs frontier depth =
    match List.find_opt (fun path -> final_row (List.hd path)) frontier with
    | Some path -> Some (Array.of_list (List.rev path))
    | None ->
        if depth >= max_rows then None
        else
          let next =
            List.concat_map
              (fun path ->
                let top = List.hd path in
                List.filter_map
                  (fun r -> if vert_ok top r then Some (r :: path) else None)
                  all_rows)
              frontier
          in
          if next = [] then None else bfs next (depth + 1)
  in
  bfs (List.map (fun r -> [ r ]) starts) 1

(* ------------------------------------------------------------------ *)
(* Encoding of tilings as data paths and as the REM of display (3).    *)

let p2_value = Data_value.of_int 1001
let q2_value = Data_value.of_int 1002
let p1_value = Data_value.of_int 1003
let q1_value = Data_value.of_int 1004

let cells inst tau =
  let w = width inst in
  List.concat_map
    (fun r -> List.init w (fun c -> (c, tau.(r).(c))))
    (List.init (Array.length tau) Fun.id)

let encode_tiling inst tau =
  validate inst;
  let w = width inst in
  let values = ref [ p2_value ] in
  let labels = ref [] in
  let push l v =
    labels := l :: !labels;
    values := v :: !values
  in
  let pending = ref "$" in
  List.iter
    (fun (c, t) ->
      for k = inst.n downto 1 do
        let v = if (c lsr (k - 1)) land 1 = 1 then e_val k else d_val k in
        if k = inst.n then push !pending v else push "a" v
      done;
      pending := (if c = w - 1 then barred t else unbarred t))
    (cells inst tau);
  push !pending (d_val 1);
  push "$" q2_value;
  Data_path.make
    ~values:(Array.of_list (List.rev !values))
    ~labels:(Array.of_list (List.rev !labels))

let tiling_rem inst tau =
  validate inst;
  let w = width inst in
  let cs = cells inst tau in
  let reg k = k - 1 in
  let cond_at c k =
    if (c lsr (k - 1)) land 1 = 1 then Condition.Neq (reg k)
    else Condition.Eq (reg k)
  in
  let blocks = ref [ { Basic_rem.bind = []; label = "$"; cond = Condition.True } ] in
  let push b = blocks := b :: !blocks in
  let rec go i = function
    | [] -> ()
    | (c, t) :: rest ->
        (* α-blocks inside this cell's address.  For the first cell they
           bind the registers; for later cells they test the bits.  The
           position-n value was handled by the previous block's
           bind/cond; position 1 is bound by the tile block (first cell)
           or tested by the last α-block here (later cells). *)
        if i = 0 then
          for k = inst.n downto 2 do
            push { Basic_rem.bind = [ reg k ]; label = "a"; cond = Condition.True }
          done
        else
          for k = inst.n - 1 downto 1 do
            push { Basic_rem.bind = []; label = "a"; cond = cond_at c k }
          done;
        let letter = if c = w - 1 then barred t else unbarred t in
        let cond =
          match rest with
          | [] -> Condition.True
          | (c', _) :: _ -> cond_at c' inst.n
        in
        let bind = if i = 0 then [ reg 1 ] else [] in
        push { Basic_rem.bind; label = letter; cond };
        go (i + 1) rest
  in
  go 0 cs;
  push { Basic_rem.bind = []; label = "$"; cond = Condition.True };
  List.rev !blocks

(* ------------------------------------------------------------------ *)
(* Graph construction.                                                 *)

let build inst =
  validate inst;
  let n = inst.n in
  let unb, brd = tile_letters inst in
  let all_tiles = unb @ brd in
  let nodes = ref [] in
  let edges = ref [] in
  let counter = ref 0 in
  let node name value =
    nodes := (name, value) :: !nodes;
    name
  in
  let gensym prefix =
    incr counter;
    Printf.sprintf "%s_%d" prefix !counter
  in
  let edge u l v = edges := (u, l, v) :: !edges in
  let connect srcs labels dsts =
    List.iter
      (fun u -> List.iter (fun l -> List.iter (fun v -> edge u l v) dsts) labels)
      srcs
  in
  (* A D-box: 2n nodes carrying every counter value. *)
  let box tag =
    let tag = gensym tag in
    List.concat_map
      (fun k ->
        [
          node (Printf.sprintf "%s_d%d" tag k) (d_val k);
          node (Printf.sprintf "%s_e%d" tag k) (e_val k);
        ])
      (List.init n (fun i -> i + 1))
  in
  (* A free section: a D-box with complete self-edges over [letters]. *)
  let free_box tag letters =
    let b = box tag in
    connect b letters b;
    b
  in
  (* An address block: positions n down to 1, α edges between consecutive
     position groups; returns (entry group, exit group). *)
  let addr_block tag spec =
    let tag = gensym tag in
    let groups =
      List.mapi
        (fun idx s ->
          let k = n - idx in
          match s with
          | D ->
              List.concat_map
                (fun j ->
                  [
                    node (Printf.sprintf "%s_p%d_d%d" tag k j) (d_val j);
                    node (Printf.sprintf "%s_p%d_e%d" tag k j) (e_val j);
                  ])
                (List.init n (fun i -> i + 1))
          | F v -> [ node (Printf.sprintf "%s_p%d_f" tag k) v ])
        spec
    in
    let rec link = function
      | g1 :: (g2 :: _ as rest) ->
          connect g1 [ "a" ] g2;
          link rest
      | _ -> ()
    in
    link groups;
    (List.hd groups, List.nth groups (List.length groups - 1))
  in
  let all_d = List.init n (fun i -> F (d_val (n - i))) in
  let all_e = List.init n (fun i -> F (e_val (n - i))) in
  let all_free = List.init n (fun _ -> D) in
  let pin spec_base k v =
    List.mapi (fun idx s -> if n - idx = k then F v else s) spec_base
  in
  (* Endpoints. *)
  let p2 = node "p2" p2_value and q2 = node "q2" q2_value in
  let p1 = node "p1" p1_value and q1 = node "q1" q1_value in
  (* --- p2 part: the "all tilings" ladder ---------------------------- *)
  let ladder =
    List.map
      (fun idx ->
        let k = n - idx in
        [ node (Printf.sprintf "lad_d%d" k) (d_val k);
          node (Printf.sprintf "lad_e%d" k) (e_val k) ])
      (List.init n Fun.id)
  in
  let lad_entry = List.hd ladder in
  let lad_exit = List.nth ladder (n - 1) in
  connect [ p2 ] [ "$" ] lad_entry;
  let rec link_lad = function
    | g1 :: (g2 :: _ as rest) ->
        connect g1 [ "a" ] g2;
        link_lad rest
    | _ -> ()
  in
  link_lad ladder;
  connect lad_exit all_tiles lad_entry;
  let pre = node "pre" (d_val 1) in
  connect lad_exit brd [ pre ];
  edge pre "$" q2;
  (* --- p1 part: one gadget family per error kind -------------------- *)
  let tail = free_box "tail" (all_tiles @ [ "a" ]) in
  connect tail [ "$" ] [ q1 ];
  let first_chain tag =
    let entry, exit = addr_block tag all_d in
    connect [ p1 ] [ "$" ] entry;
    exit
  in
  (* (i) address of τ(0,1) has a wrong bit k. *)
  for k = 1 to n do
    let first_exit = first_chain "g1first" in
    let wrong = if k = 1 then d_val 1 else e_val k in
    let entry, exit = addr_block "g1addr" (pin all_free k wrong) in
    connect first_exit unb entry;
    connect exit all_tiles tail
  done;
  (* (ii) successor errors; x and y are consecutive addresses. *)
  let succ_gadget xspec yspec =
    let first_exit = first_chain "g2first" in
    let fb = free_box "g2free" (all_tiles @ [ "a" ]) in
    connect first_exit all_tiles fb;
    let xe, xx = addr_block "g2x" xspec in
    connect first_exit all_tiles xe;
    connect fb all_tiles xe;
    let ye, yx = addr_block "g2y" yspec in
    connect xx all_tiles ye;
    connect yx all_tiles tail
  in
  for k = 1 to n do
    (* carry into k is 1 (bits below k all 1): *)
    let low_ones spec =
      List.fold_left (fun s j -> pin s j (e_val j)) spec (List.init (k - 1) (fun i -> i + 1))
    in
    (* (a) x_k = 1 and y_k = 1 (should flip to 0) *)
    succ_gadget (low_ones (pin all_free k (e_val k))) (pin all_free k (e_val k));
    (* (b) x_k = 0 and y_k = 0 (should flip to 1) *)
    succ_gadget (low_ones (pin all_free k (d_val k))) (pin all_free k (d_val k));
    (* (c) carry is 0 (witness bit j < k is 0) and y_k ≠ x_k *)
    for j = 1 to k - 1 do
      let base = pin all_free j (d_val j) in
      succ_gadget (pin base k (d_val k)) (pin all_free k (e_val k));
      succ_gadget (pin base k (e_val k)) (pin all_free k (d_val k))
    done
  done;
  (* (iii) a barred letter after an address with bit k = 0. *)
  for k = 1 to n do
    let first_exit = first_chain "g3first" in
    let fb = free_box "g3free" (all_tiles @ [ "a" ]) in
    connect first_exit all_tiles fb;
    connect first_exit brd tail;
    let xe, xx = addr_block "g3x" (pin all_free k (d_val k)) in
    connect first_exit all_tiles xe;
    connect fb all_tiles xe;
    connect xx brd tail
  done;
  (* (iv) an unbarred letter after the all-ones address. *)
  begin
    let first_exit = first_chain "g4first" in
    let fb = free_box "g4free" (all_tiles @ [ "a" ]) in
    connect first_exit all_tiles fb;
    let xe, xx = addr_block "g4x" all_e in
    connect first_exit all_tiles xe;
    connect fb all_tiles xe;
    connect xx unb tail
  end;
  (* (v) the tiling does not begin with t_init. *)
  begin
    let ze, zx = addr_block "g5z" all_free in
    connect [ p1 ] [ "$" ] ze;
    let wrong = List.filter (fun l -> l <> unbarred inst.t_init) all_tiles in
    connect zx wrong tail
  end;
  (* (vi) the tiling does not end with t_final. *)
  begin
    let fb = free_box "g6free" (all_tiles @ [ "a" ]) in
    connect [ p1 ] [ "$" ] fb;
    let prebox = box "g6pre" in
    let wrong = List.filter (fun l -> l <> barred inst.t_final) all_tiles in
    connect fb wrong prebox;
    connect prebox [ "$" ] [ q1 ]
  end;
  (* (vii) horizontally incompatible adjacent tiles. *)
  for t1 = 0 to inst.num_tiles - 1 do
    for t2 = 0 to inst.num_tiles - 1 do
      if not (List.mem (t1, t2) inst.horiz) then begin
        let fb = free_box "g7free" (all_tiles @ [ "a" ]) in
        connect [ p1 ] [ "$" ] fb;
        let ae, ax = addr_block "g7addr" all_free in
        connect fb [ unbarred t1 ] ae;
        connect ax [ unbarred t2; barred t2 ] tail
      end
    done
  done;
  (* (viii) vertically incompatible tiles in the last column. *)
  for t1 = 0 to inst.num_tiles - 1 do
    for t2 = 0 to inst.num_tiles - 1 do
      if not (List.mem (t1, t2) inst.vert) then begin
        let fb1 = free_box "g8free" (all_tiles @ [ "a" ]) in
        connect [ p1 ] [ "$" ] fb1;
        let e1e, e1x = addr_block "g8a" all_e in
        connect fb1 all_tiles e1e;
        let fb2 = free_box "g8mid" (unb @ [ "a" ]) in
        connect e1x [ barred t1 ] fb2;
        let e2e, e2x = addr_block "g8b" all_e in
        connect fb2 unb e2e;
        connect e2x [ barred t2 ] tail
      end
    done
  done;
  (* (ix) vertically incompatible tiles in another column. *)
  for t1 = 0 to inst.num_tiles - 1 do
    for t2 = 0 to inst.num_tiles - 1 do
      if not (List.mem (t1, t2) inst.vert) then begin
        let fb1 = free_box "g9free" (all_tiles @ [ "a" ]) in
        connect [ p1 ] [ "$" ] fb1;
        let dae, dax = addr_block "g9a" all_d in
        connect [ p1 ] [ "$" ] dae;
        connect fb1 all_tiles dae;
        let fb2 = free_box "g9mid1" (unb @ [ "a" ]) in
        connect dax [ unbarred t1 ] fb2;
        let fb3 = free_box "g9mid2" (unb @ [ "a" ]) in
        connect fb2 brd fb3;
        let dbe, dbx = addr_block "g9b" all_d in
        connect fb3 unb dbe;
        connect fb2 brd dbe;
        connect dbx [ unbarred t2 ] tail
      end
    done
  done;
  let graph = Data_graph.make ~nodes:(List.rev !nodes) ~edges:(List.rev !edges) in
  let node_of name = Data_graph.node_of_name graph name in
  let p1 = node_of p1
  and q1 = node_of q1
  and p2 = node_of p2
  and q2 = node_of q2 in
  let target = Relation.of_list (Data_graph.size graph) [ (p2, q2) ] in
  { graph; p1; q1; p2; q2; target }
