lib/reductions/rpq_embedding.mli: Datagraph
