lib/reductions/gaut.ml: Array Datagraph Definability List Printf
