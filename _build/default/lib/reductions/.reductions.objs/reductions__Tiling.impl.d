lib/reductions/tiling.ml: Array Datagraph Fun List Printf Rem_lang
