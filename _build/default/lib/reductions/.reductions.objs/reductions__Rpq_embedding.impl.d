lib/reductions/rpq_embedding.ml: Datagraph Definability
