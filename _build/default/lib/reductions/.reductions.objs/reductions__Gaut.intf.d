lib/reductions/gaut.mli: Datagraph
