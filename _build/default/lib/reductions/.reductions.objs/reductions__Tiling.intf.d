lib/reductions/tiling.mli: Datagraph Rem_lang
