lib/reductions/sat_reduction.mli: Cnf Datagraph
