lib/reductions/cnf.mli: Format
