lib/reductions/sat_reduction.ml: Array Cnf Datagraph Definability Fun List Printf
