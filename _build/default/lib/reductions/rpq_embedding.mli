(** The PSpace-hardness reduction of Theorem 32: RPQ-definability reduces
    to RDPQ_=-definability by giving every node the same data value.

    On such a graph [(e)≠] sub-expressions denote the empty relation and
    [(e)=] collapses to [e], so an REE defines [T] iff some plain regular
    expression does. *)

val embed : Datagraph.Data_graph.t -> Datagraph.Data_graph.t
(** The graph [H'] with a constant data value. *)

val agree :
  ?max_tuples:int ->
  ?max_size:int ->
  Datagraph.Data_graph.t ->
  Datagraph.Relation.t ->
  bool * bool
(** [(rpq_definable_on g, ree_definable_on (embed g))] — Theorem 32
    asserts these are equal; the test suite and the benchmark harness
    check this on random graphs. *)
