(** The coNP-hardness reduction of Theorem 35 (Figure 3): from a Boolean
    3-CNF formula [F] over variables [p1..pn] with clauses [C1..Cm],
    build a data graph [G] and a unary relation

    {v S = { ⟨C_i⟩ | 1 ≤ i ≤ m } ∪ { ⟨L^j_i⟩ | 1 ≤ i ≤ m, 0 ≤ j ≤ 7 } v}

    such that [F] is unsatisfiable iff [S] is UCRDPQ-definable.

    All nodes share one data value (the reduction is purely structural).
    The gadget, following the proof of Theorem 35:

    - nodes [1] and [0] are pinned by unique [T]/[F] self-loops;
    - each literal node carries a [γ] self-loop, [α] edges swap [p_i] and
      [¬p_i] (and [1]/[0]), and [β] chains [p_1 → p_2 → ⋯ → p_n → {0,1}]
      force every homomorphism to map the literals either into the
      literal nodes or onto a truth assignment in [{0,1}];
    - clause nodes [C_i] have [l1]/[l2]/[l3] edges to their literals and a
      [γ] chain [C_1 → ⋯ → C_m];
    - [L^j_i] (j ∈ 0..7) and [R^j_i] (j ∈ 1..7) carry [l1]/[l2]/[l3]
      edges to the bits of [j] and complete [γ] edges between consecutive
      columns within each family; [L]-nodes additionally carry an [l]
      self-loop pinning their images to the [L] family.

    A satisfying assignment yields a homomorphism sending each [C_i] to
    [R^{j_i}_i ∉ S]; when [F] is unsatisfiable, every homomorphism routes
    the clause chain through [C] or [L] nodes — all in [S]. *)

type t = {
  graph : Datagraph.Data_graph.t;
  target : Datagraph.Tuple_relation.t;  (** the unary relation [S] *)
}

val build : Cnf.t -> t

val node_count : Cnf.t -> int
(** Size of the reduction graph, without building it: [2 + 2n + 16m]. *)

val definable : Cnf.t -> bool
(** Run the UCRDPQ-definability checker on the reduction — by Theorem 35
    this equals [not (Cnf.satisfiable f)]. *)
