(** Boolean 3-CNF formulas — the source problem of the Theorem 35 coNP
    lower bound, with a brute-force satisfiability oracle for
    cross-checking the reduction. *)

type literal = { var : int; positive : bool }
(** Variables are 0-indexed. *)

type clause = literal * literal * literal

type t = { num_vars : int; clauses : clause list }

val make : num_vars:int -> (int * int * int) list -> t
(** Clauses in DIMACS style: nonzero 1-indexed integers, sign is polarity.
    [make ~num_vars:2 [ (1, -2, 2) ]] is [(p1 ∨ ¬p2 ∨ p2)].
    @raise Invalid_argument on zero or out-of-range literals. *)

val eval : t -> bool array -> bool
(** Truth value under an assignment (indexed by variable). *)

val satisfiable : t -> bool
(** Brute force over the [2^num_vars] assignments. *)

val satisfying_assignment : t -> bool array option

val random : ?seed:int -> num_vars:int -> num_clauses:int -> unit -> t
(** Random clauses over three distinct variables with random polarities;
    deterministic per seed. [num_vars >= 3] required. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
