(** The ExpSpace-hardness reduction of Theorem 25: from an instance of the
    exponential-width corridor tiling problem, build a data graph in which
    the singleton relation [{(p2, q2)}] is RDPQ_mem-definable iff a legal
    tiling exists.

    A tiling instance has tile types [T = {0..num_tiles-1}], horizontal /
    vertical compatibility relations, an initial and a final tile type,
    and a width exponent [n] — the corridor has [2^n] columns.  A tiling
    [τ : rows × 2^n → T] is {e legal} when [τ(0,0) = t_init],
    [τ(R, 2^n-1) = t_final], and all adjacencies are compatible.

    The graph is the disjoint union of
    [p2 -$-> all tilings -$-> q2] — a two-row column ladder whose data
    values encode an [n]-bit address counter — and
    [p1 -$-> illegal tilings -$-> q1] — one gadget family per error kind
    (wrong second address; counter-increment errors, split into the three
    carry cases; a barred tile at a non-final column; an unbarred tile at
    the final column; wrong first/last tile; horizontal and vertical
    incompatibilities, the latter split into final-column and
    other-column variants).  Free sections and unconstrained address
    positions are "D-boxes" of [2n] nodes carrying all the counter data
    values, so every illegal data path has an automorphic copy from [p1]
    to [q1] (the paper's key trick for keeping the graph polynomial).

    The paper sketches the increment-error checking with O(n) gadgets;
    we implement the complete case split (which is O(n²) gadgets — still
    polynomial): for the lowest erroneous bit [k], either the carry into
    [k] is 1 (all lower bits 1) and bit [k] fails to flip, or the carry
    is 0 (witnessed by a lower 0-bit [j]) and bit [k] flips. *)

type instance = {
  num_tiles : int;
  horiz : (int * int) list;  (** (left, right) compatible pairs *)
  vert : (int * int) list;  (** (below, above) compatible pairs *)
  t_init : int;
  t_final : int;
  n : int;  (** corridor width is [2^n]; [n >= 1] *)
}

type reduction = {
  graph : Datagraph.Data_graph.t;
  p1 : int;
  q1 : int;
  p2 : int;
  q2 : int;
  target : Datagraph.Relation.t;  (** [{(p2, q2)}] *)
}

val build : instance -> reduction

val width : instance -> int
(** [2^n]. *)

type tiling = int array array
(** [tiling.(row).(col)], each entry a tile type. *)

val is_legal : instance -> tiling -> bool

val solve : ?max_rows:int -> instance -> tiling option
(** Search for a legal tiling with at most [max_rows] rows (default 8) —
    the brute-force oracle the reduction is cross-checked against. *)

val encode_tiling : instance -> tiling -> Datagraph.Data_path.t
(** The data path encoding a tiling per the proof: [$], then for each
    cell (bottom row to top, left column to right) the [n]-value address
    of its column followed by its tile letter ([t<i>], barred [u<i>] in
    the last column), then [$]. *)

val tiling_rem : instance -> tiling -> Rem_lang.Basic_rem.t
(** The REM of display (3): stores the first address in registers
    [r_n..r_1] and checks every later address bit against them.  Its
    language contains exactly the automorphic copies of
    [encode_tiling τ]; evaluated on the reduction graph it connects
    [(p2, q2)], and — when [τ] is legal — nothing else. *)
