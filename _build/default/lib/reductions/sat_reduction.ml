module Data_graph = Datagraph.Data_graph
module Data_value = Datagraph.Data_value
module Tuple_relation = Datagraph.Tuple_relation

type t = {
  graph : Data_graph.t;
  target : Tuple_relation.t;
}

let node_count (f : Cnf.t) = 2 + (2 * f.num_vars) + (16 * List.length f.clauses)

let build (f : Cnf.t) =
  let n = f.num_vars in
  let clauses = Array.of_list f.clauses in
  let m = Array.length clauses in
  let dv = Data_value.of_int 0 in
  let nodes = ref [] in
  let edges = ref [] in
  let node name =
    nodes := (name, dv) :: !nodes;
    name
  in
  let edge u a v = edges := (u, a, v) :: !edges in
  let one = node "one" and zero = node "zero" in
  edge one "T" one;
  edge zero "F" zero;
  List.iter
    (fun x ->
      edge x "beta" x;
      edge x "gamma" x)
    [ one; zero ];
  edge one "alpha" zero;
  edge zero "alpha" one;
  (* β is complete on {0,1} so assignment homomorphisms can follow the
     literal chains whatever the neighbouring truth values are. *)
  edge one "beta" zero;
  edge zero "beta" one;
  let pos = Array.init n (fun i -> node (Printf.sprintf "p%d" (i + 1))) in
  let neg = Array.init n (fun i -> node (Printf.sprintf "np%d" (i + 1))) in
  let lit_node (l : Cnf.literal) = if l.positive then pos.(l.var) else neg.(l.var) in
  for i = 0 to n - 1 do
    edge pos.(i) "gamma" pos.(i);
    edge neg.(i) "gamma" neg.(i);
    edge pos.(i) "alpha" neg.(i);
    edge neg.(i) "alpha" pos.(i);
    if i < n - 1 then begin
      edge pos.(i) "beta" pos.(i + 1);
      edge neg.(i) "beta" neg.(i + 1)
    end
    else begin
      edge pos.(i) "beta" one;
      edge pos.(i) "beta" zero;
      edge neg.(i) "beta" one;
      edge neg.(i) "beta" zero
    end
  done;
  let cnode = Array.init m (fun i -> node (Printf.sprintf "C%d" (i + 1))) in
  let lnode =
    Array.init m (fun i ->
        Array.init 8 (fun j -> node (Printf.sprintf "L%d_%d" (i + 1) j)))
  in
  let rnode =
    Array.init m (fun i ->
        Array.init 8 (fun j ->
            if j = 0 then "" else node (Printf.sprintf "R%d_%d" (i + 1) j)))
  in
  let bit_node j k =
    (* Bit [k] (1-indexed, most significant first) of [j ∈ 0..7]. *)
    if (j lsr (3 - k)) land 1 = 1 then one else zero
  in
  for i = 0 to m - 1 do
    let l1, l2, l3 = clauses.(i) in
    edge cnode.(i) "l1" (lit_node l1);
    edge cnode.(i) "l2" (lit_node l2);
    edge cnode.(i) "l3" (lit_node l3);
    if i < m - 1 then edge cnode.(i) "gamma" cnode.(i + 1);
    for j = 0 to 7 do
      edge lnode.(i).(j) "l" lnode.(i).(j);
      edge lnode.(i).(j) "l1" (bit_node j 1);
      edge lnode.(i).(j) "l2" (bit_node j 2);
      edge lnode.(i).(j) "l3" (bit_node j 3);
      if i < m - 1 then
        for k = 0 to 7 do
          edge lnode.(i).(j) "gamma" lnode.(i + 1).(k)
        done;
      if j >= 1 then begin
        edge rnode.(i).(j) "l1" (bit_node j 1);
        edge rnode.(i).(j) "l2" (bit_node j 2);
        edge rnode.(i).(j) "l3" (bit_node j 3);
        if i < m - 1 then
          for k = 1 to 7 do
            edge rnode.(i).(j) "gamma" rnode.(i + 1).(k)
          done
      end
    done
  done;
  let graph = Data_graph.make ~nodes:(List.rev !nodes) ~edges:(List.rev !edges) in
  let s_names =
    Array.to_list cnode
    @ List.concat_map
        (fun i -> Array.to_list lnode.(i))
        (List.init m Fun.id)
  in
  let target =
    Tuple_relation.of_list ~universe:(Data_graph.size graph) ~arity:1
      (List.map (fun name -> [ Data_graph.node_of_name graph name ]) s_names)
  in
  { graph; target }

let definable f =
  let r = build f in
  Definability.Ucrdpq_definability.is_definable r.graph r.target
