(** Nondeterministic finite automata over string labels, with ε-moves:
    the operational side of {!Regex} (Thompson construction) and the
    evaluation engine for plain RPQs via the product with a data graph. *)

type t

val of_regex : Regex.t -> t
(** Thompson construction: linear in the size of the expression. *)

val state_count : t -> int

val accepts : t -> string list -> bool
(** Membership of a word (list of labels). *)

val is_empty : t -> bool
(** Is the accepted language empty? *)

val accepts_some_bounded : t -> max_len:int -> string list option
(** Some accepted word of length at most [max_len], if any. *)

val included : t -> in_:t -> over:string list -> bool
(** [included a ~in_:b ~over] : is [L(a) ∩ over* ⊆ L(b)]?  Decided by the
    product of [a] with the determinization of [b] over the given
    alphabet (letters of both automata are added automatically). *)

val counterexample :
  t -> in_:t -> over:string list -> string list option
(** A shortest word of [L(a) \ L(b)] over the joint alphabet, if any. *)

val eval_on_graph : Datagraph.Data_graph.t -> t -> Datagraph.Relation.t
(** The RPQ answer [Q(G)] for [Q : x -e-> y] (Definition 11, restricted to
    standard regular expressions): all pairs [(u, v)] such that the label
    word of some path from [u] to [v] is accepted.  Computed by
    reachability in the product of the graph with the automaton. *)

val intersect_graph_nonempty :
  Datagraph.Data_graph.t -> t -> src:int -> dst:int -> bool
(** Does some path from [src] to [dst] carry an accepted label word? *)
