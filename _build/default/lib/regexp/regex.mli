(** Standard regular expressions over the finite alphabet [Σ] — the query
    language of plain RPQs (Definition 11) and the baseline of [3] that the
    paper's Section 3 reduction targets.

    Edge labels are arbitrary strings, so the concrete syntax separates
    letters with whitespace or [.]; [|] is union, postfix [+] is one-or-more
    iteration (the paper's [e⁺]) and postfix [*] is zero-or-more. *)

type t =
  | Empty  (** the empty language ∅ *)
  | Eps  (** ε — on data paths, the single-value paths *)
  | Letter of string
  | Union of t * t
  | Concat of t * t
  | Plus of t  (** e⁺, one or more iterations *)
  | Star of t  (** e*, zero or more; e* ≡ ε | e⁺ *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

val parse : string -> (t, string) result
(** Parse the concrete syntax.  Letters are identifiers
    [[A-Za-z0-9_'$]+] (excluding the keywords [eps] and [empty]);
    juxtaposition or [.] concatenates; [|] unions; postfix [+]/[*]
    iterate; parentheses group. *)

val matches : t -> string list -> bool
(** Is the given word (list of labels) in the language? *)

val alphabet : t -> string list
(** Letters occurring in the expression, each once, sorted. *)

val union_of : t list -> t
(** n-ary union; [Empty] for the empty list. *)

val concat_of : t list -> t
(** n-ary concatenation; [Eps] for the empty list. *)

val of_word : string list -> t
(** The expression denoting exactly one word. *)

val size : t -> int
(** Number of AST nodes. *)

val simplify : t -> t
(** Language-preserving cleanup: unit and absorbing elements of union and
    concatenation, duplicate union branches, collapsed iterations.  The
    synthesized defining queries of {!Definability} are unions of witness
    words, so this mostly shrinks their shared structure. *)
