type t =
  | Empty
  | Eps
  | Letter of string
  | Union of t * t
  | Concat of t * t
  | Plus of t
  | Star of t

let equal = ( = )

(* Precedence for printing: union 0, concat 1, iteration 2, atom 3. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Empty -> Format.pp_print_string ppf "empty"
  | Eps -> Format.pp_print_string ppf "eps"
  | Letter a -> Format.pp_print_string ppf a
  | Union (e1, e2) ->
      paren 0 (fun ppf ->
          Format.fprintf ppf "%a | %a" (pp_prec 1) e1 (pp_prec 0) e2)
  | Concat (e1, e2) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a . %a" (pp_prec 1) e1 (pp_prec 2) e2)
  | Plus e1 -> paren 2 (fun ppf -> Format.fprintf ppf "%a+" (pp_prec 3) e1)
  | Star e1 -> paren 2 (fun ppf -> Format.fprintf ppf "%a*" (pp_prec 3) e1)

let pp = pp_prec 0
let to_string e = Format.asprintf "%a" pp e

let union_of = function
  | [] -> Empty
  | e :: rest -> List.fold_left (fun acc x -> Union (acc, x)) e rest

let concat_of = function
  | [] -> Eps
  | e :: rest -> List.fold_left (fun acc x -> Concat (acc, x)) e rest

let of_word w = concat_of (List.map (fun a -> Letter a) w)

let rec size = function
  | Empty | Eps | Letter _ -> 1
  | Union (e1, e2) | Concat (e1, e2) -> 1 + size e1 + size e2
  | Plus e | Star e -> 1 + size e

let rec alphabet_acc acc = function
  | Empty | Eps -> acc
  | Letter a -> a :: acc
  | Union (e1, e2) | Concat (e1, e2) -> alphabet_acc (alphabet_acc acc e1) e2
  | Plus e | Star e -> alphabet_acc acc e

let alphabet e = List.sort_uniq compare (alphabet_acc [] e)

(* ------------------------------------------------------------------ *)
(* Parser: tokenize, then recursive descent.                          *)

type token = Tid of string | Tlparen | Trparen | Tbar | Tplus | Tstar | Tdot

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\'' || c = '$'

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (Tlparen :: acc)
      | ')' -> go (i + 1) (Trparen :: acc)
      | '|' -> go (i + 1) (Tbar :: acc)
      | '+' -> go (i + 1) (Tplus :: acc)
      | '*' -> go (i + 1) (Tstar :: acc)
      | '.' -> go (i + 1) (Tdot :: acc)
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          go !j (Tid (String.sub s i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C at offset %d" c i)
  in
  go 0 []

(* Grammar:
     union   ::= concat ('|' concat)*
     concat  ::= iter (('.')? iter)*
     iter    ::= atom ('+' | '*')*
     atom    ::= ident | '(' union ')'                                  *)
let parse s =
  match tokenize s with
  | Error _ as e -> e
  | Ok tokens -> (
      let toks = ref tokens in
      let peek () = match !toks with [] -> None | t :: _ -> Some t in
      let advance () = match !toks with [] -> () | _ :: r -> toks := r in
      let exception Fail of string in
      let rec union () =
        let e = concat () in
        match peek () with
        | Some Tbar ->
            advance ();
            Union (e, union ())
        | _ -> e
      and concat () =
        let e = iter () in
        let rec more acc =
          match peek () with
          | Some Tdot ->
              advance ();
              more (Concat (acc, iter ()))
          | Some (Tid _ | Tlparen) -> more (Concat (acc, iter ()))
          | _ -> acc
        in
        more e
      and iter () =
        let e = atom () in
        let rec post acc =
          match peek () with
          | Some Tplus ->
              advance ();
              post (Plus acc)
          | Some Tstar ->
              advance ();
              post (Star acc)
          | _ -> acc
        in
        post e
      and atom () =
        match peek () with
        | Some (Tid "eps") ->
            advance ();
            Eps
        | Some (Tid "empty") ->
            advance ();
            Empty
        | Some (Tid a) ->
            advance ();
            Letter a
        | Some Tlparen -> (
            advance ();
            let e = union () in
            match peek () with
            | Some Trparen ->
                advance ();
                e
            | _ -> raise (Fail "expected )"))
        | _ -> raise (Fail "expected letter or (")
      in
      try
        let e = union () in
        match !toks with
        | [] -> Ok e
        | _ -> Error "trailing tokens after expression"
      with Fail msg -> Error msg)

(* Membership by expression-directed matching with memoization would be
   overkill here; a simple derivative-free recursion over splits suffices
   for the small words in tests.  [Nfa] provides the efficient path. *)
let rec nullable = function
  | Empty | Letter _ -> false
  | Eps | Star _ -> true
  | Union (e1, e2) -> nullable e1 || nullable e2
  | Concat (e1, e2) -> nullable e1 && nullable e2
  | Plus e -> nullable e

(* Brzozowski derivative with respect to one letter. *)
let rec deriv a = function
  | Empty | Eps -> Empty
  | Letter b -> if a = b then Eps else Empty
  | Union (e1, e2) -> Union (deriv a e1, deriv a e2)
  | Concat (e1, e2) ->
      let d = Concat (deriv a e1, e2) in
      if nullable e1 then Union (d, deriv a e2) else d
  | Plus e -> Concat (deriv a e, Star e)
  | Star e -> Concat (deriv a e, Star e)

let matches e word =
  nullable (List.fold_left (fun e a -> deriv a e) e word)

(* Flatten a union into its branches. *)
let rec union_branches acc = function
  | Union (e1, e2) -> union_branches (union_branches acc e1) e2
  | e -> e :: acc

let rec simplify e =
  match e with
  | Empty | Eps | Letter _ -> e
  | Union _ ->
      let branches =
        union_branches [] e |> List.map simplify
        |> List.filter (fun b -> b <> Empty)
        |> List.sort_uniq compare
      in
      union_of (List.rev branches)
  | Concat (e1, e2) -> (
      match (simplify e1, simplify e2) with
      | Empty, _ | _, Empty -> Empty
      | Eps, e | e, Eps -> e
      | e1, e2 -> Concat (e1, e2))
  | Plus e1 -> (
      match simplify e1 with
      | Empty -> Empty
      | Eps -> Eps
      | Plus e -> Plus e
      | Star e -> Star e
      | e -> Plus e)
  | Star e1 -> (
      match simplify e1 with
      | Empty | Eps -> Eps
      | (Plus e | Star e) -> Star e
      | e -> Star e)
