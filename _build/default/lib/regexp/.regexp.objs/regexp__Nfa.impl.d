lib/regexp/nfa.ml: Array Datagraph Hashtbl List Queue Regex
