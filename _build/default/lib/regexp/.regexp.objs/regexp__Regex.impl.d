lib/regexp/regex.ml: Format List Printf String
