lib/regexp/regex.mli: Format
