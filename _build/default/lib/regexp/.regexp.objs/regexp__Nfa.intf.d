lib/regexp/nfa.mli: Datagraph Regex
