type t = {
  nstates : int;
  start : int;
  final : int;
  (* trans.(q) lists (label, q'); eps.(q) lists q'. *)
  trans : (string * int) list array;
  eps : int list array;
}

let state_count a = a.nstates

(* Thompson construction with a single final state per sub-automaton. *)
let of_regex e =
  let trans = ref [] and eps = ref [] and next = ref 0 in
  let fresh () =
    let q = !next in
    incr next;
    q
  in
  let add_trans q a q' = trans := (q, a, q') :: !trans in
  let add_eps q q' = eps := (q, q') :: !eps in
  let rec build e =
    let s = fresh () and f = fresh () in
    (match e with
    | Regex.Empty -> ()
    | Regex.Eps -> add_eps s f
    | Regex.Letter a -> add_trans s a f
    | Regex.Union (e1, e2) ->
        let s1, f1 = build e1 and s2, f2 = build e2 in
        add_eps s s1;
        add_eps s s2;
        add_eps f1 f;
        add_eps f2 f
    | Regex.Concat (e1, e2) ->
        let s1, f1 = build e1 and s2, f2 = build e2 in
        add_eps s s1;
        add_eps f1 s2;
        add_eps f2 f
    | Regex.Plus e1 ->
        let s1, f1 = build e1 in
        add_eps s s1;
        add_eps f1 f;
        add_eps f1 s1
    | Regex.Star e1 ->
        let s1, f1 = build e1 in
        add_eps s s1;
        add_eps f1 f;
        add_eps f1 s1;
        add_eps s f);
    (s, f)
  in
  let start, final = build e in
  let nstates = !next in
  let trans_arr = Array.make nstates [] in
  let eps_arr = Array.make nstates [] in
  List.iter (fun (q, a, q') -> trans_arr.(q) <- (a, q') :: trans_arr.(q)) !trans;
  List.iter (fun (q, q') -> eps_arr.(q) <- q' :: eps_arr.(q)) !eps;
  { nstates; start; final; trans = trans_arr; eps = eps_arr }

let eps_closure a states =
  let seen = Array.make a.nstates false in
  let rec go q =
    if not seen.(q) then begin
      seen.(q) <- true;
      List.iter go a.eps.(q)
    end
  in
  List.iter go states;
  seen

let step a closure label =
  let out = ref [] in
  Array.iteri
    (fun q in_set ->
      if in_set then
        List.iter (fun (b, q') -> if b = label then out := q' :: !out) a.trans.(q))
    closure;
  !out

let accepts a word =
  let rec go closure = function
    | [] -> closure.(a.final)
    | x :: rest -> go (eps_closure a (step a closure x)) rest
  in
  go (eps_closure a [ a.start ]) word

let reachable_states a =
  let seen = Array.make a.nstates false in
  let rec go q =
    if not seen.(q) then begin
      seen.(q) <- true;
      List.iter go a.eps.(q);
      List.iter (fun (_, q') -> go q') a.trans.(q)
    end
  in
  go a.start;
  seen

let is_empty a = not (reachable_states a).(a.final)

let accepts_some_bounded a ~max_len =
  (* BFS over subset-construction states, producing a shortest witness. *)
  let seen = Hashtbl.create 64 in
  let q = Queue.create () in
  let start = eps_closure a [ a.start ] in
  Queue.add (start, []) q;
  Hashtbl.add seen (Array.to_list start) ();
  let labels =
    Array.to_list a.trans
    |> List.concat_map (List.map fst)
    |> List.sort_uniq compare
  in
  let result = ref None in
  (try
     while not (Queue.is_empty q) do
       let closure, word = Queue.pop q in
       if closure.(a.final) then begin
         result := Some (List.rev word);
         raise Exit
       end;
       if List.length word < max_len then
         List.iter
           (fun lbl ->
             let next = eps_closure a (step a closure lbl) in
             let key = Array.to_list next in
             if not (Hashtbl.mem seen key) then begin
               Hashtbl.add seen key ();
               Queue.add (next, lbl :: word) q
             end)
           labels
     done
   with Exit -> ());
  !result

(* Product reachability: from (u, closure-of-start), follow graph edges and
   automaton transitions in lockstep. *)
let eval_from a g u =
  let n = Datagraph.Data_graph.size g in
  let visited = Hashtbl.create 64 in
  let out = Array.make n false in
  let enqueue q (v, closure) =
    let key = (v, Array.to_list closure) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      Queue.add (v, closure) q
    end
  in
  let q = Queue.create () in
  enqueue q (u, eps_closure a [ a.start ]);
  while not (Queue.is_empty q) do
    let v, closure = Queue.pop q in
    if closure.(a.final) then out.(v) <- true;
    List.iter
      (fun (lbl_id, v') ->
        let lbl = Datagraph.Data_graph.label_name g lbl_id in
        let next = step a closure lbl in
        if next <> [] then enqueue q (v', eps_closure a next))
      (Datagraph.Data_graph.succ_all g v)
  done;
  out

let eval_on_graph g a =
  let n = Datagraph.Data_graph.size g in
  let r = ref (Datagraph.Relation.empty n) in
  for u = 0 to n - 1 do
    let out = eval_from a g u in
    for v = 0 to n - 1 do
      if out.(v) then r := Datagraph.Relation.add !r u v
    done
  done;
  !r

let intersect_graph_nonempty g a ~src ~dst = (eval_from a g src).(dst)

(* Letters appearing on transitions. *)
let letters a =
  Array.to_list a.trans |> List.concat_map (List.map fst)
  |> List.sort_uniq compare

(* Product of [a] with the complement of the determinization of [b]:
   search for a word accepted by [a] and rejected by [b].  States are
   (a-closure, b-closure) pairs; BFS yields a shortest counterexample. *)
let counterexample a ~in_:b ~over =
  let alphabet = List.sort_uniq compare (over @ letters a @ letters b) in
  let seen = Hashtbl.create 256 in
  let q = Queue.create () in
  let push ca cb word =
    let key = (Array.to_list ca, Array.to_list cb) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.add (ca, cb, word) q
    end
  in
  push (eps_closure a [ a.start ]) (eps_closure b [ b.start ]) [];
  let result = ref None in
  while !result = None && not (Queue.is_empty q) do
    let ca, cb, word = Queue.pop q in
    if ca.(a.final) && not cb.(b.final) then result := Some (List.rev word)
    else
      List.iter
        (fun lbl ->
          let na = step a ca lbl in
          (* A counterexample must be accepted by [a], so a dead [a]-side
             cannot recover; prune it. *)
          if na <> [] then
            push (eps_closure a na) (eps_closure b (step b cb lbl))
              (lbl :: word))
        alphabet
  done;
  !result

let included a ~in_ ~over = counterexample a ~in_ ~over = None
