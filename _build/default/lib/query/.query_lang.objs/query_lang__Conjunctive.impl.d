lib/query/conjunctive.ml: Array Datagraph Format Hashtbl List Query String
