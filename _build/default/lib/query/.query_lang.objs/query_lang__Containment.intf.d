lib/query/containment.mli: Datagraph Query
