lib/query/conjunctive.mli: Datagraph Format Query
