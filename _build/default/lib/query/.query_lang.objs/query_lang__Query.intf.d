lib/query/query.mli: Datagraph Format Ree_lang Regexp Rem_lang
