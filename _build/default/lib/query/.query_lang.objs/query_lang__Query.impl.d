lib/query/query.ml: Array Datagraph Format Ree_lang Regexp Rem_lang Result
