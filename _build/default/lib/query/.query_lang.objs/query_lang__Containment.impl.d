lib/query/containment.ml: Array Datagraph List Query Ree_lang Regexp Rem_lang
