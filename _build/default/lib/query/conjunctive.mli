(** Conjunctive regular data path queries and their unions
    (Definition 13):

    {v Ans(z̄) := ⋀_{1≤i≤m} x_i -e_i-> y_i v}

    where the [e_i] are all REMs or all REEs (we also allow plain RPQ
    atoms, which both subsume), and [z̄] is a tuple of variables among the
    [x_i], [y_i].  A UCRDPQ is a finite set of CRDPQs of equal arity. *)

type atom = { src : string; dst : string; expr : Query.expr }
(** One conjunct [src -expr-> dst]; [src]/[dst] are variable names. *)

type crdpq = { head : string list; atoms : atom list }
(** [head] is [z̄].  Every head variable must occur in some atom
    (checked at evaluation). *)

type t = crdpq list
(** A UCRDPQ; all members must have the same arity. *)

val variables : crdpq -> string list
(** Variables of the body, in first-occurrence order. *)

val arity : crdpq -> int

val eval_crdpq :
  Datagraph.Data_graph.t -> crdpq -> Datagraph.Tuple_relation.t
(** [Q(G)]: all [µ(z̄)] over valuations [µ] satisfying every atom —
    computed by evaluating each atom to a binary relation and joining by
    backtracking over variables.
    @raise Invalid_argument if a head variable occurs in no atom. *)

val eval : Datagraph.Data_graph.t -> t -> Datagraph.Tuple_relation.t
(** Union of the member answers.
    @raise Invalid_argument on an empty union or mixed arities. *)

val defines :
  Datagraph.Data_graph.t -> t -> Datagraph.Tuple_relation.t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
