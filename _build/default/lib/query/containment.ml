module Data_path = Datagraph.Data_path
module Data_value = Datagraph.Data_value

(* Enumerate profile-canonical data paths: values are restricted-growth
   strings (position 0 is class 0; each later position uses an existing
   class or the next fresh one), letters range over the alphabet.  Calls
   [visit] on each path of length 0..max_len; stops early when [visit]
   returns [Some _]. *)
let enumerate ~max_len ~alphabet ~visit =
  let exception Found of Data_path.t in
  let rec go values_rev labels_rev next_class len =
    let path () =
      Data_path.make
        ~values:
          (Array.of_list (List.rev_map Data_value.of_int values_rev))
        ~labels:(Array.of_list (List.rev labels_rev))
    in
    let w = path () in
    (match visit w with Some w -> raise (Found w) | None -> ());
    if len < max_len then
      List.iter
        (fun a ->
          for c = 0 to next_class do
            go (c :: values_rev) (a :: labels_rev)
              (max next_class (c + 1))
              (len + 1)
          done)
        alphabet
  in
  try
    go [ 0 ] [] 1 0;
    None
  with Found w -> Some w

let alphabet_of = function
  | Query.Rpq e -> Regexp.Regex.alphabet e
  | Query.Rem e -> Rem_lang.Rem.alphabet e
  | Query.Ree e -> Ree_lang.Ree.alphabet e

let refute ?(max_len = 5) ~alphabet e1 e2 =
  let alphabet =
    List.sort_uniq compare (alphabet @ alphabet_of e1 @ alphabet_of e2)
  in
  let alphabet = if alphabet = [] then [ "a" ] else alphabet in
  enumerate ~max_len ~alphabet ~visit:(fun w ->
      if Query.matches_path e1 w && not (Query.matches_path e2 w) then Some w
      else None)

let contained_bounded ?max_len e1 e2 =
  refute ?max_len ~alphabet:[] e1 e2 = None

let equivalent_bounded ?max_len e1 e2 =
  contained_bounded ?max_len e1 e2 && contained_bounded ?max_len e2 e1
