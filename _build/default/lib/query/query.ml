module Relation = Datagraph.Relation

type expr =
  | Rpq of Regexp.Regex.t
  | Rem of Rem_lang.Rem.t
  | Ree of Ree_lang.Ree.t

type lang = [ `Rpq | `Rem | `Ree ]

let lang_of = function Rpq _ -> `Rpq | Rem _ -> `Rem | Ree _ -> `Ree

let eval g = function
  | Rpq e -> Regexp.Nfa.eval_on_graph g (Regexp.Nfa.of_regex e)
  | Rem e ->
      Rem_lang.Register_automaton.eval_on_graph g
        (Rem_lang.Register_automaton.of_rem e)
  | Ree e ->
      Rem_lang.Register_automaton.eval_on_graph g
        (Rem_lang.Register_automaton.of_rem (Ree_lang.Ree.to_rem e))

let matches_path e w =
  match e with
  | Rpq e ->
      let labels = Array.to_list (Datagraph.Data_path.labels w) in
      Regexp.Regex.matches e labels
  | Rem e -> Rem_lang.Rem.matches e w
  | Ree e -> Ree_lang.Ree.matches e w

let defines g e s = Relation.equal (eval g e) s

let pp ppf = function
  | Rpq e -> Regexp.Regex.pp ppf e
  | Rem e -> Rem_lang.Rem.pp ppf e
  | Ree e -> Ree_lang.Ree.pp ppf e

let to_string e = Format.asprintf "%a" pp e

let parse ~lang s =
  match lang with
  | `Rpq -> Result.map (fun e -> Rpq e) (Regexp.Regex.parse s)
  | `Rem -> Result.map (fun e -> Rem e) (Rem_lang.Rem.parse s)
  | `Ree -> Result.map (fun e -> Ree e) (Ree_lang.Ree.parse s)

let simplify = function
  | Rpq e -> Rpq (Regexp.Regex.simplify e)
  | Rem e -> Rem (Rem_lang.Rem.simplify e)
  | Ree e -> Ree (Ree_lang.Ree.simplify e)

let contained_on g e1 e2 = Relation.subset (eval g e1) (eval g e2)
let equivalent_on g e1 e2 = Relation.equal (eval g e1) (eval g e2)
