module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Tuple_relation = Datagraph.Tuple_relation

type atom = { src : string; dst : string; expr : Query.expr }
type crdpq = { head : string list; atoms : atom list }
type t = crdpq list

let variables q =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  List.iter
    (fun a ->
      note a.src;
      note a.dst)
    q.atoms;
  List.rev !out

let arity q = List.length q.head

let eval_crdpq g q =
  let vars = variables q in
  List.iter
    (fun z ->
      if not (List.mem z vars) then
        invalid_arg ("Conjunctive.eval_crdpq: head variable " ^ z
                     ^ " not in body"))
    q.head;
  let n = Data_graph.size g in
  (* Evaluate each atom's expression once. *)
  let atom_rels =
    List.map (fun a -> (a.src, a.dst, Query.eval g a.expr)) q.atoms
  in
  let var_index = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.add var_index v i) vars;
  let nv = List.length vars in
  let assignment = Array.make nv (-1) in
  let results = ref (Tuple_relation.empty ~universe:n ~arity:(arity q)) in
  (* Backtracking join: assign variables in order; after each assignment
     check every atom whose endpoints are both assigned. *)
  let consistent upto =
    List.for_all
      (fun (x, y, rel) ->
        let ix = Hashtbl.find var_index x and iy = Hashtbl.find var_index y in
        if ix > upto || iy > upto then true
        else Relation.mem rel assignment.(ix) assignment.(iy))
      atom_rels
  in
  let rec assign i =
    if i >= nv then begin
      let tuple =
        List.map (fun z -> assignment.(Hashtbl.find var_index z)) q.head
      in
      results := Tuple_relation.add !results tuple
    end
    else
      for v = 0 to n - 1 do
        assignment.(i) <- v;
        if consistent i then assign (i + 1);
        assignment.(i) <- -1
      done
  in
  if nv = 0 then
    (* m = 0: the empty conjunction is satisfied by the empty valuation. *)
    results := Tuple_relation.add !results []
  else assign 0;
  !results

let eval g = function
  | [] -> invalid_arg "Conjunctive.eval: empty union"
  | q :: rest ->
      List.fold_left
        (fun acc q' ->
          if arity q' <> arity q then
            invalid_arg "Conjunctive.eval: mixed arities";
          Tuple_relation.union acc (eval_crdpq g q'))
        (eval_crdpq g q) rest

let defines g q s = Tuple_relation.equal (eval g q) s

let pp_crdpq ppf q =
  Format.fprintf ppf "Ans(%s) :- @[<hov>" (String.concat "," q.head);
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " /\\@ ")
    (fun ppf a ->
      Format.fprintf ppf "%s -[%s]-> %s" a.src (Query.to_string a.expr) a.dst)
    ppf q.atoms;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ UNION@ ")
    pp_crdpq ppf t

let to_string t = Format.asprintf "%a" pp t
