(** Regular data path queries (Definition 11): [Q = x -e-> y] where [e] is
    a standard regular expression (RPQ), a regular expression with memory
    (RDPQ_mem) or a regular expression with equality (RDPQ_=).  Evaluating
    [Q] on a data graph [G] yields the pairs of nodes connected by a data
    path in [L(e)]. *)

type expr =
  | Rpq of Regexp.Regex.t
  | Rem of Rem_lang.Rem.t
  | Ree of Ree_lang.Ree.t

type lang = [ `Rpq | `Rem | `Ree ]

val lang_of : expr -> lang

val eval : Datagraph.Data_graph.t -> expr -> Datagraph.Relation.t
(** [Q(G)] — RPQs by NFA/graph product, RDPQ_mem by register-automaton/
    graph product, RDPQ_= via the REE→REM embedding. *)

val matches_path : expr -> Datagraph.Data_path.t -> bool
(** Does a data path belong to [L(e)]?  For an RPQ only the letters are
    inspected. *)

val defines :
  Datagraph.Data_graph.t -> expr -> Datagraph.Relation.t -> bool
(** [defines g e s] iff [Q(G) = S] — the verification direction of the
    definability problem. *)

val pp : Format.formatter -> expr -> unit
val to_string : expr -> string

val parse : lang:lang -> string -> (expr, string) result
(** Parse in the concrete syntax of the respective expression language. *)

val simplify : expr -> expr
(** Apply the language-preserving simplifier of the underlying expression
    language. *)

val contained_on :
  Datagraph.Data_graph.t -> expr -> expr -> bool
(** [contained_on g e1 e2]: is [Q1(G) ⊆ Q2(G)] on this graph?  (Query
    containment over {e all} graphs is a different problem — ExpSpace /
    PSpace-complete for positive REM/REE fragments and undecidable in
    general, see the paper's related-work discussion of [17]; the
    per-graph version used here is simply evaluation + inclusion.) *)

val equivalent_on :
  Datagraph.Data_graph.t -> expr -> expr -> bool
(** [Q1(G) = Q2(G)] on this graph. *)
