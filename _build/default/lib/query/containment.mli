(** Bounded query containment over {e all} data paths.

    Containment of data path queries over all graphs is the subject of
    the paper's reference [17]: ExpSpace-complete for positive REM,
    PSpace-complete for positive REE, and {e undecidable} for full REM.
    This module provides the decidable bounded version used for testing
    and exploration: search for a data path of length at most [max_len]
    in [L(e1) \ L(e2)].

    Because REM/REE languages are closed under automorphisms (Fact 10),
    it suffices to enumerate {e profile-canonical} paths — value
    sequences that are restricted-growth strings (each value is either
    one already used or the next fresh index).  A refutation of length
    [≤ max_len] exists iff a canonical one does, so [refute] is complete
    up to the bound. *)

val refute :
  ?max_len:int ->
  alphabet:string list ->
  Query.expr ->
  Query.expr ->
  Datagraph.Data_path.t option
(** A data path in [L(e1) \ L(e2)] of length at most [max_len]
    (default 5), over the given alphabet (letters of both expressions
    are added automatically).  [None] means containment holds up to the
    bound. *)

val contained_bounded :
  ?max_len:int -> Query.expr -> Query.expr -> bool
(** [refute] with the expressions' own alphabets; [true] when no bounded
    counterexample exists. *)

val equivalent_bounded :
  ?max_len:int -> Query.expr -> Query.expr -> bool
(** Bounded containment in both directions. *)
