module Tuples = Set.Make (struct
  type t = int list

  let compare = Stdlib.compare
end)

type t = { universe : int; arity : int; tuples : Tuples.t }

let arity r = r.arity
let universe r = r.universe

let empty ~universe ~arity =
  if arity < 0 || universe < 0 then invalid_arg "Tuple_relation.empty";
  { universe; arity; tuples = Tuples.empty }

let check r tup =
  if List.length tup <> r.arity then
    invalid_arg "Tuple_relation: wrong arity";
  List.iter
    (fun v ->
      if v < 0 || v >= r.universe then
        invalid_arg "Tuple_relation: node out of range")
    tup

let add r tup =
  check r tup;
  { r with tuples = Tuples.add tup r.tuples }

let of_list ~universe ~arity tuples =
  List.fold_left add (empty ~universe ~arity) tuples

let to_list r = Tuples.elements r.tuples

let mem r tup =
  check r tup;
  Tuples.mem tup r.tuples

let cardinal r = Tuples.cardinal r.tuples
let is_empty r = Tuples.is_empty r.tuples

let equal r1 r2 =
  r1.universe = r2.universe && r1.arity = r2.arity
  && Tuples.equal r1.tuples r2.tuples

let subset r1 r2 =
  r1.universe = r2.universe && r1.arity = r2.arity
  && Tuples.subset r1.tuples r2.tuples

let map h r =
  { r with tuples = Tuples.map (List.map h) r.tuples }

let union r1 r2 =
  if r1.universe <> r2.universe || r1.arity <> r2.arity then
    invalid_arg "Tuple_relation.union: shape mismatch";
  { r1 with tuples = Tuples.union r1.tuples r2.tuples }

let iter f r = Tuples.iter f r.tuples
let fold f r init = Tuples.fold f r.tuples init
let exists p r = Tuples.exists p r.tuples

let find_opt p r =
  Tuples.fold (fun t acc -> if acc = None && p t then Some t else acc) r.tuples None

let of_binary b =
  Relation.fold
    (fun u v acc -> add acc [ u; v ])
    b
    (empty ~universe:(Relation.universe b) ~arity:2)

let to_binary r =
  if r.arity <> 2 then invalid_arg "Tuple_relation.to_binary: arity <> 2";
  fold
    (fun tup acc ->
      match tup with [ u; v ] -> Relation.add acc u v | _ -> assert false)
    r
    (Relation.empty r.universe)

let pp_with ppf r pr =
  Format.fprintf ppf "{@[<hov>";
  let first = ref true in
  iter
    (fun tup ->
      if !first then first := false else Format.fprintf ppf ",@ ";
      Format.fprintf ppf "(%s)" (String.concat "," (List.map pr tup)))
    r;
  Format.fprintf ppf "@]}"

let pp g ppf r = pp_with ppf r (Data_graph.name g)
let pp_raw ppf r = pp_with ppf r string_of_int
