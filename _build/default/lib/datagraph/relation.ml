(* Bit-matrix representation: row u occupies [row_bytes] bytes starting at
   [u * row_bytes]; bit v of the row is set iff (u, v) is in the relation. *)
type t = { n : int; bits : Bytes.t }

let row_bytes n = (n + 7) / 8
let universe r = r.n
let empty n = { n; bits = Bytes.make (n * row_bytes n) '\000' }

let check r u v =
  if u < 0 || u >= r.n || v < 0 || v >= r.n then
    invalid_arg "Relation: node out of range"

let mem r u v =
  check r u v;
  let byte = Bytes.get_uint8 r.bits ((u * row_bytes r.n) + (v lsr 3)) in
  byte land (1 lsl (v land 7)) <> 0

let set_bit bits rb u v =
  let idx = (u * rb) + (v lsr 3) in
  Bytes.set_uint8 bits idx (Bytes.get_uint8 bits idx lor (1 lsl (v land 7)))

let clear_bit bits rb u v =
  let idx = (u * rb) + (v lsr 3) in
  Bytes.set_uint8 bits idx (Bytes.get_uint8 bits idx land lnot (1 lsl (v land 7)))

let add r u v =
  check r u v;
  let bits = Bytes.copy r.bits in
  set_bit bits (row_bytes r.n) u v;
  { r with bits }

let remove r u v =
  check r u v;
  let bits = Bytes.copy r.bits in
  clear_bit bits (row_bytes r.n) u v;
  { r with bits }

let of_list n pairs =
  let bits = Bytes.make (n * row_bytes n) '\000' in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Relation.of_list: node out of range";
      set_bit bits (row_bytes n) u v)
    pairs;
  { n; bits }

let full n =
  let r = empty n in
  let rb = row_bytes n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      set_bit r.bits rb u v
    done
  done;
  r

let identity n =
  let r = empty n in
  let rb = row_bytes n in
  for u = 0 to n - 1 do
    set_bit r.bits rb u u
  done;
  r

let iter f r =
  for u = 0 to r.n - 1 do
    for v = 0 to r.n - 1 do
      if mem r u v then f u v
    done
  done

let fold f r init =
  let acc = ref init in
  iter (fun u v -> acc := f u v !acc) r;
  !acc

let to_list r = List.rev (fold (fun u v l -> (u, v) :: l) r [])
let cardinal r = fold (fun _ _ c -> c + 1) r 0
let is_empty r = Bytes.for_all (fun c -> c = '\000') r.bits
let equal r1 r2 = r1.n = r2.n && Bytes.equal r1.bits r2.bits

let compare r1 r2 =
  let c = Stdlib.compare r1.n r2.n in
  if c <> 0 then c else Bytes.compare r1.bits r2.bits

let hash r = Hashtbl.hash (r.n, Bytes.to_string r.bits)

let zip_bytes f r1 r2 =
  if r1.n <> r2.n then invalid_arg "Relation: universe mismatch";
  let bits = Bytes.copy r1.bits in
  for i = 0 to Bytes.length bits - 1 do
    Bytes.set_uint8 bits i (f (Bytes.get_uint8 r1.bits i) (Bytes.get_uint8 r2.bits i) land 0xff)
  done;
  { r1 with bits }

let union = zip_bytes (fun a b -> a lor b)
let inter = zip_bytes (fun a b -> a land b)
let diff = zip_bytes (fun a b -> a land lnot b)

let subset r1 r2 = equal (union r1 r2) r2

(* Row-oriented boolean matrix product: result row u is the OR of rows z of
   [r2] over all z in row u of [r1]. *)
let compose r1 r2 =
  if r1.n <> r2.n then invalid_arg "Relation.compose: universe mismatch";
  let n = r1.n in
  let rb = row_bytes n in
  let bits = Bytes.make (n * rb) '\000' in
  for u = 0 to n - 1 do
    for z = 0 to n - 1 do
      if mem r1 u z then
        for i = 0 to rb - 1 do
          Bytes.set_uint8 bits ((u * rb) + i)
            (Bytes.get_uint8 bits ((u * rb) + i)
            lor Bytes.get_uint8 r2.bits ((z * rb) + i))
        done
    done
  done;
  { n; bits }

let filter p r =
  let out = ref (empty r.n) in
  iter (fun u v -> if p u v then out := add !out u v) r;
  !out

let restrict_eq ~value r =
  filter (fun u v -> Data_value.equal (value u) (value v)) r

let restrict_neq ~value r =
  filter (fun u v -> not (Data_value.equal (value u) (value v))) r

let transitive_closure r =
  let rec go acc frontier =
    let next = compose frontier r in
    let acc' = union acc next in
    if equal acc acc' then acc else go acc' next
  in
  go r r

let edge_relation_id g a =
  let n = Data_graph.size g in
  let r = empty n in
  let rb = row_bytes n in
  for u = 0 to n - 1 do
    List.iter (fun v -> set_bit r.bits rb u v) (Data_graph.succ_id g u a)
  done;
  r

let edge_relation g a =
  match Data_graph.label_id_opt g a with
  | None -> empty (Data_graph.size g)
  | Some i -> edge_relation_id g i

let step_relation g =
  let n = Data_graph.size g in
  List.fold_left
    (fun acc a -> union acc (edge_relation_id g a))
    (empty n)
    (List.init (Data_graph.label_count g) Fun.id)

let connected_by g w = of_list (Data_graph.size g) (Data_graph.connects g w)

let map h r =
  let out = ref (empty r.n) in
  iter (fun u v -> out := add !out (h u) (h v)) r;
  !out

let pp g ppf r =
  Format.fprintf ppf "{@[<hov>";
  let first = ref true in
  iter
    (fun u v ->
      if !first then first := false else Format.fprintf ppf ",@ ";
      Format.fprintf ppf "(%s,%s)" (Data_graph.name g u) (Data_graph.name g v))
    r;
  Format.fprintf ppf "@]}"

let pp_raw ppf r =
  Format.fprintf ppf "{@[<hov>";
  let first = ref true in
  iter
    (fun u v ->
      if !first then first := false else Format.fprintf ppf ",@ ";
      Format.fprintf ppf "(%d,%d)" u v)
    r;
  Format.fprintf ppf "@]}"
