(** Automorphisms of the data domain (Definition 9): bijections
    [π : D → D].  Only the restriction to a finite set of values ever
    matters, so we represent an automorphism by its finite support — values
    outside the support map to themselves.

    For obstruction search (Section 3: "all such obstructions are explicit
    in G_aut, the disjoint union of G_π for all automorphisms π") only the
    automorphisms mapping a graph's active domain [D_G] into itself are
    relevant; these restrict to permutations of [D_G], which
    {!permutations} enumerates. *)

type t

val identity : t

val of_pairs : (Data_value.t * Data_value.t) list -> t option
(** [of_pairs assoc] builds the automorphism extending the finite map
    [assoc] by the identity; [None] if [assoc] is not injective or not a
    function.  Note the extension is a genuine bijection on [D] only when
    [assoc]'s domain and range coincide as sets; this holds for all
    automorphisms produced by {!permutations} and is checked here. *)

val apply : t -> Data_value.t -> Data_value.t
val inverse : t -> t
val compose : t -> t -> t
(** [compose f g] applies [g] first. *)

val support : t -> Data_value.t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val apply_path : t -> Data_path.t -> Data_path.t
(** [π(w)] of Definition 9. *)

val apply_graph : t -> Data_graph.t -> Data_graph.t
(** [G_π]: relabel every node value through [π]. *)

val permutations : Data_value.t list -> t list
(** All bijections of the given finite value set (extended by the identity
    elsewhere).  [List.length (permutations vs) = |vs|!]. *)

val matching : Data_path.t -> Data_path.t -> t option
(** [matching w1 w2] finds an automorphism [π] with [π(w1) = w2] if one
    exists — i.e. decides {!Data_path.automorphic} constructively. *)
