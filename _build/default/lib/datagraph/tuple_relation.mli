(** Relations of arbitrary arity over the nodes of a data graph — the input
    to UCRDPQ-definability (Definition 13 allows any arity) and the output
    of conjunctive query evaluation. *)

type t

val arity : t -> int
val universe : t -> int

val empty : universe:int -> arity:int -> t
(** The empty relation of the given arity over nodes [0 .. universe-1].
    @raise Invalid_argument if [arity < 0] or [universe < 0]. *)

val of_list : universe:int -> arity:int -> int list list -> t
(** @raise Invalid_argument on a tuple of the wrong arity or with an
    out-of-range node. *)

val to_list : t -> int list list
(** Tuples in lexicographic order. *)

val mem : t -> int list -> bool
val add : t -> int list -> t
val cardinal : t -> int
val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool

val map : (int -> int) -> t -> t
(** Image under a node mapping — [h(p)] for each tuple [p] (Lemma 34). *)

val union : t -> t -> t
val iter : (int list -> unit) -> t -> unit
val fold : (int list -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (int list -> bool) -> t -> bool
val find_opt : (int list -> bool) -> t -> int list option

val of_binary : Relation.t -> t
(** View a binary {!Relation.t} as an arity-2 tuple relation. *)

val to_binary : t -> Relation.t
(** @raise Invalid_argument if the arity is not 2. *)

val pp : Data_graph.t -> Format.formatter -> t -> unit
val pp_raw : Format.formatter -> t -> unit
