(** Binary relations over the nodes [0 .. n-1] of a data graph, with the
    operators of Definition 26: union [+], composition [∘], and the
    [=]/[≠]-restrictions by data value.

    Relations are dense bitsets (an [n × n] bit matrix), so composition is
    boolean matrix multiplication and relations hash cheaply — the REE
    definability procedure (Section 4) computes fixpoints over sets of
    relations and relies on this. *)

type t

val universe : t -> int
(** The [n] this relation ranges over. *)

val empty : int -> t
(** The empty relation over [n] nodes. *)

val full : int -> t
val identity : int -> t

val of_list : int -> (int * int) list -> t
(** @raise Invalid_argument on an out-of-range node. *)

val to_list : t -> (int * int) list
(** Pairs in lexicographic order. *)

val mem : t -> int -> int -> bool
val add : t -> int -> int -> t
val remove : t -> int -> int -> t
val cardinal : t -> int
val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val union : t -> t -> t
(** [S1 + S2] of Definition 26. *)

val inter : t -> t -> t
val diff : t -> t -> t

val compose : t -> t -> t
(** [S1 ∘ S2] of Definition 26: [(u,v)] with some [z] such that
    [(u,z) ∈ S1] and [(z,v) ∈ S2]. *)

val restrict_eq : value:(int -> Data_value.t) -> t -> t
(** [S=]: keep pairs whose endpoints carry equal data values. *)

val restrict_neq : value:(int -> Data_value.t) -> t -> t
(** [S≠]: keep pairs whose endpoints carry different data values. *)

val filter : (int -> int -> bool) -> t -> t
val iter : (int -> int -> unit) -> t -> unit
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val transitive_closure : t -> t
(** [S⁺]: the transitive (not reflexive) closure. *)

val edge_relation : Data_graph.t -> Data_graph.label -> t
(** [S_a]: the relation defined by the single-letter expression [a]. *)

val edge_relation_id : Data_graph.t -> int -> t
(** [edge_relation] by dense label id. *)

val step_relation : Data_graph.t -> t
(** Union of [S_a] over the whole alphabet. *)

val connected_by : Data_graph.t -> Data_path.t -> t
(** [R(w)]: all pairs connected by the data path [w] in the graph. *)

val map : (int -> int) -> t -> t
(** [(h(u), h(v))] for each [(u, v)] — the image under a node mapping. *)

val pp : Data_graph.t -> Format.formatter -> t -> unit
(** Print with node names from the graph. *)

val pp_raw : Format.formatter -> t -> unit
