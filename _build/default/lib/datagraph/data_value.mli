(** Data values from a countably infinite domain [D].

    The paper (Definition 1) labels every node of a data graph with a value
    from an infinite set [D].  Query languages never inspect the identity of
    a data value — only (in)equality between two values is observable
    (Fact 10: REM and REE languages are closed under automorphisms of [D]).
    We therefore represent data values as an abstract type backed by
    integers and expose only equality, comparison (for use in ordered
    containers), hashing and pretty-printing. *)

type t

val of_int : int -> t
(** [of_int i] is the data value canonically associated with the natural
    number [i].  Distinct integers give distinct values. *)

val to_int : t -> int
(** Inverse of {!of_int}.  Exposed for serialization and for indexing
    values in dense arrays; algorithms must not branch on the magnitude. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val fresh : unit -> t
(** [fresh ()] returns a value distinct from every value previously
    returned by [fresh] and from every [of_int i] with [i >= 0].  Used by
    generators that need values outside a graph's active domain. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
