type label = string

type t = { values : Data_value.t array; labels : label array }

let make ~values ~labels =
  if Array.length values <> Array.length labels + 1 then
    invalid_arg "Data_path.make: need one more value than labels";
  { values = Array.copy values; labels = Array.copy labels }

let singleton d = { values = [| d |]; labels = [||] }
let length w = Array.length w.labels
let values w = Array.copy w.values
let labels w = Array.copy w.labels
let value_at w i = w.values.(i)
let label_at w i = w.labels.(i)
let first w = w.values.(0)
let last w = w.values.(Array.length w.values - 1)

let concat_opt w1 w2 =
  if not (Data_value.equal (last w1) (first w2)) then None
  else
    let n1 = Array.length w1.values in
    let n2 = Array.length w2.values in
    let values = Array.make (n1 + n2 - 1) w1.values.(0) in
    Array.blit w1.values 0 values 0 n1;
    Array.blit w2.values 1 values n1 (n2 - 1);
    Some { values; labels = Array.append w1.labels w2.labels }

let concat w1 w2 =
  match concat_opt w1 w2 with
  | Some w -> w
  | None -> invalid_arg "Data_path.concat: endpoint data values differ"

let equal w1 w2 =
  Array.length w1.labels = Array.length w2.labels
  && w1.labels = w2.labels
  && Array.for_all2 (fun a b -> Data_value.equal a b) w1.values w2.values

let compare w1 w2 =
  let c = Stdlib.compare w1.labels w2.labels in
  if c <> 0 then c
  else
    let n1 = Array.length w1.values and n2 = Array.length w2.values in
    let c = Stdlib.compare n1 n2 in
    if c <> 0 then c
    else
      let rec go i =
        if i >= n1 then 0
        else
          let c = Data_value.compare w1.values.(i) w2.values.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let hash w = Hashtbl.hash (w.labels, Array.map Data_value.to_int w.values)

let pp ppf w =
  Data_value.pp ppf w.values.(0);
  Array.iteri
    (fun i a -> Format.fprintf ppf " %s %a" a Data_value.pp w.values.(i + 1))
    w.labels

let to_string w = Format.asprintf "%a" pp w
let map_values f w = { values = Array.map f w.values; labels = w.labels }

let profile w =
  let n = Array.length w.values in
  let prof = Array.make n 0 in
  for i = 0 to n - 1 do
    let rec first_occ j =
      if j >= i then i
      else if Data_value.equal w.values.(j) w.values.(i) then j
      else first_occ (j + 1)
    in
    prof.(i) <- first_occ 0
  done;
  prof

let automorphic w1 w2 = w1.labels = w2.labels && profile w1 = profile w2

let distinct_values w =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (fun d ->
      let k = Data_value.to_int d in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        acc := d :: !acc
      end)
    w.values;
  List.rev !acc
