lib/datagraph/data_graph.ml: Array Data_path Data_value Format Fun Hashtbl List
