lib/datagraph/relation.ml: Bytes Data_graph Data_value Format Fun Hashtbl List Stdlib
