lib/datagraph/automorphism.ml: Array Data_graph Data_path Data_value Format List
