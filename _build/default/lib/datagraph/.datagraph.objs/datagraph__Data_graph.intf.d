lib/datagraph/data_graph.mli: Data_path Data_value Format
