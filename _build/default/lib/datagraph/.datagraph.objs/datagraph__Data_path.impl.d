lib/datagraph/data_path.ml: Array Data_value Format Hashtbl List Stdlib
