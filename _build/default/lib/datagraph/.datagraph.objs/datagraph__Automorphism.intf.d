lib/datagraph/automorphism.mli: Data_graph Data_path Data_value Format
