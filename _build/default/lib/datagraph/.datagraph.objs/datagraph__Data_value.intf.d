lib/datagraph/data_value.mli: Format Map Set
