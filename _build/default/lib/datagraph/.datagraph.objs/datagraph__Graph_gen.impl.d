lib/datagraph/graph_gen.ml: Array Data_graph Data_value Fun Int64 List Relation
