lib/datagraph/graph_io.mli: Data_graph Relation Tuple_relation
