lib/datagraph/graph_io.ml: Buffer Data_graph Data_value List Printf String Tuple_relation
