lib/datagraph/relation.mli: Data_graph Data_path Data_value Format
