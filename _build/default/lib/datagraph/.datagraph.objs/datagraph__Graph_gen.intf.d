lib/datagraph/graph_gen.mli: Data_graph Data_value Relation
