lib/datagraph/tuple_relation.ml: Data_graph Format List Relation Set Stdlib String
