lib/datagraph/data_value.ml: Format Hashtbl Map Set Stdlib
