lib/datagraph/data_path.mli: Data_value Format
