lib/datagraph/tuple_relation.mli: Data_graph Format Relation
