(* Finite-support representation: a map with bindings only where π differs
   from the identity... except that we also keep identity bindings produced
   by constructors, which is harmless.  Injectivity and domain/range
   agreement are enforced at construction. *)
type t = Data_value.t Data_value.Map.t

let identity = Data_value.Map.empty

let apply pi d =
  match Data_value.Map.find_opt d pi with Some d' -> d' | None -> d

let of_pairs assoc =
  let exception Bad in
  try
    let pi =
      List.fold_left
        (fun m (d, d') ->
          match Data_value.Map.find_opt d m with
          | Some existing when not (Data_value.equal existing d') -> raise Bad
          | _ -> Data_value.Map.add d d' m)
        Data_value.Map.empty assoc
    in
    (* Injectivity. *)
    let range =
      Data_value.Map.fold (fun _ d' s -> Data_value.Set.add d' s) pi Data_value.Set.empty
    in
    if Data_value.Set.cardinal range <> Data_value.Map.cardinal pi then raise Bad;
    (* Domain and range must coincide as sets for the identity extension to
       be a bijection on D. *)
    let dom =
      Data_value.Map.fold (fun d _ s -> Data_value.Set.add d s) pi Data_value.Set.empty
    in
    if not (Data_value.Set.equal dom range) then raise Bad;
    Some pi
  with Bad -> None

let inverse pi =
  Data_value.Map.fold (fun d d' m -> Data_value.Map.add d' d m) pi Data_value.Map.empty

let compose f g =
  (* Support of the composite is contained in support f ∪ support g. *)
  let support =
    Data_value.Map.fold (fun d _ s -> Data_value.Set.add d s) f
      (Data_value.Map.fold (fun d _ s -> Data_value.Set.add d s) g Data_value.Set.empty)
  in
  Data_value.Set.fold
    (fun d m ->
      let d' = apply f (apply g d) in
      if Data_value.equal d d' then m else Data_value.Map.add d d' m)
    support Data_value.Map.empty

let support pi =
  Data_value.Map.fold
    (fun d d' acc -> if Data_value.equal d d' then acc else d :: acc)
    pi []
  |> List.rev

let equal pi1 pi2 =
  let sup = support pi1 @ support pi2 in
  List.for_all (fun d -> Data_value.equal (apply pi1 d) (apply pi2 d)) sup

let pp ppf pi =
  Format.fprintf ppf "{@[<hov>";
  let first = ref true in
  Data_value.Map.iter
    (fun d d' ->
      if not (Data_value.equal d d') then begin
        if !first then first := false else Format.fprintf ppf ",@ ";
        Format.fprintf ppf "%a↦%a" Data_value.pp d Data_value.pp d'
      end)
    pi;
  Format.fprintf ppf "@]}"

let apply_path pi w = Data_path.map_values (apply pi) w
let apply_graph pi g = Data_graph.map_values (apply pi) g

let permutations vs =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> not (Data_value.equal x y)) l in
            List.map (fun p -> x :: p) (perms rest))
          l
  in
  List.map
    (fun image ->
      match of_pairs (List.combine vs image) with
      | Some pi -> pi
      | None -> assert false)
    (perms vs)

let matching w1 w2 =
  if Data_path.length w1 <> Data_path.length w2 then None
  else if Data_path.labels w1 <> Data_path.labels w2 then None
  else
    let v1 = Data_path.values w1 and v2 = Data_path.values w2 in
    let pairs = Array.to_list (Array.map2 (fun a b -> (a, b)) v1 v2) in
    (* The pointwise map must be a function and injective; then extend to a
       bijection by completing with a matching on the symmetric difference
       of domain and range. *)
    let exception Bad in
    try
      let fwd =
        List.fold_left
          (fun m (d, d') ->
            match Data_value.Map.find_opt d m with
            | Some e when not (Data_value.equal e d') -> raise Bad
            | _ -> Data_value.Map.add d d' m)
          Data_value.Map.empty pairs
      in
      let dom =
        Data_value.Map.fold (fun d _ s -> Data_value.Set.add d s) fwd Data_value.Set.empty
      in
      let range =
        Data_value.Map.fold (fun _ d s -> Data_value.Set.add d s) fwd Data_value.Set.empty
      in
      if Data_value.Set.cardinal range <> Data_value.Map.cardinal fwd then raise Bad;
      (* Complete: values in range \ dom must map somewhere; send them to
         dom \ range in some order so domain = range as sets. *)
      let extra_dom = Data_value.Set.elements (Data_value.Set.diff range dom) in
      let extra_rng = Data_value.Set.elements (Data_value.Set.diff dom range) in
      let fwd =
        List.fold_left2
          (fun m d d' -> Data_value.Map.add d d' m)
          fwd extra_dom extra_rng
      in
      Some fwd
    with Bad -> None
