type t = int

let of_int i = i
let to_int d = d
let equal (a : int) b = a = b
let compare (a : int) b = Stdlib.compare a b
let hash (d : int) = Hashtbl.hash d
let pp ppf d = Format.fprintf ppf "%d" d
let to_string = string_of_int

(* Fresh values live in the negatives so they can never collide with
   [of_int i] for natural [i]. *)
let fresh_counter = ref 0

let fresh () =
  decr fresh_counter;
  !fresh_counter

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
