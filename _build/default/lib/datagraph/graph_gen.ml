let dv = Data_value.of_int

let fig1 () =
  Data_graph.make
    ~nodes:
      [
        ("v1", dv 0);
        ("v2", dv 1);
        ("v3", dv 0);
        ("v4", dv 1);
        ("z1", dv 3);
        ("z2", dv 1);
        ("v1'", dv 2);
        ("v2'", dv 3);
        ("v3'", dv 2);
        ("v4'", dv 3);
      ]
    ~edges:
      [
        ("v1", "a", "v2");
        ("v2", "a", "v3");
        ("v3", "a", "v4");
        ("v1", "a", "z2");
        ("z1", "a", "z2");
        ("z2", "a", "v2");
        ("z2", "a", "v1'");
        ("v3", "a", "v3'");
        ("v1'", "a", "v2'");
        ("v2'", "a", "v3'");
        ("v3'", "a", "v4'");
        ("v2'", "a", "v4");
      ]

let pairs_of g names =
  Relation.of_list (Data_graph.size g)
    (List.map
       (fun (u, v) -> (Data_graph.node_of_name g u, Data_graph.node_of_name g v))
       names)

let fig1_s1 g =
  pairs_of g
    [
      ("v1", "v4");
      ("v1", "v3'");
      ("v1", "v3");
      ("v1", "v2'");
      ("v2", "v4'");
      ("z1", "v3");
      ("z1", "v2'");
      ("z2", "v4");
      ("z2", "v3'");
      ("v1'", "v4'");
    ]

let fig1_s2 g = pairs_of g [ ("v1", "v4"); ("v1'", "v4'") ]
let fig1_s3 g = pairs_of g [ ("v1", "v3") ]

let line ~values ~label =
  let values = Array.of_list values in
  let n = Array.length values in
  let edges = List.init (max 0 (n - 1)) (fun i -> (i, label, i + 1)) in
  Data_graph.build ~values ~edges

let cycle ~values ~label =
  let values = Array.of_list values in
  let n = Array.length values in
  if n = 0 then invalid_arg "Graph_gen.cycle: empty";
  let edges = List.init n (fun i -> (i, label, (i + 1) mod n)) in
  Data_graph.build ~values ~edges

let complete ~n ~labels ~value =
  let values = Array.init n value in
  let edges =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun u -> List.init n (fun v -> (u, a, v)))
          (List.init n Fun.id))
      labels
  in
  Data_graph.build ~values ~edges

(* A small deterministic PRNG (xorshift-ish over a 64-bit state) so that
   generated instances are stable across OCaml versions. *)
module Prng = struct
  type t = { mutable s : int64 }

  let create seed = { s = Int64.of_int ((seed * 2654435761) lor 1) }

  let next t =
    let s = t.s in
    let s = Int64.logxor s (Int64.shift_left s 13) in
    let s = Int64.logxor s (Int64.shift_right_logical s 7) in
    let s = Int64.logxor s (Int64.shift_left s 17) in
    t.s <- s;
    Int64.to_int (Int64.logand s 0x3FFFFFFFFFFFFFL)

  let int t bound = next t mod bound
  let float t = float_of_int (next t land 0xFFFFFF) /. float_of_int 0x1000000
end

let random ?(seed = 0) ~n ~delta ~labels ~density () =
  if n < 1 then invalid_arg "Graph_gen.random: n < 1";
  if delta < 1 then invalid_arg "Graph_gen.random: delta < 1";
  if not (0. <= density && density <= 1.) then
    invalid_arg "Graph_gen.random: density out of [0,1]";
  let rng = Prng.create seed in
  let values =
    Array.init n (fun i ->
        (* Force each pool value to appear at least once when possible. *)
        if i < delta && delta <= n then dv i else dv (Prng.int rng delta))
  in
  let edges = ref [] in
  List.iter
    (fun a ->
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Prng.float rng < density then edges := (u, a, v) :: !edges
        done
      done)
    labels;
  Data_graph.build ~values ~edges:!edges

let random_relation ?(seed = 0) g ~density =
  let rng = Prng.create (seed + 7919) in
  let n = Data_graph.size g in
  let r = ref (Relation.empty n) in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if Prng.float rng < density then r := Relation.add !r u v
    done
  done;
  !r

let random_reachable_relation ?(seed = 0) g ~count =
  let rng = Prng.create (seed + 104729) in
  let n = Data_graph.size g in
  let reach = Array.init n (fun u -> Data_graph.reachable g u) in
  let candidates = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if reach.(u).(v) && u <> v then candidates := (u, v) :: !candidates
    done
  done;
  let candidates = Array.of_list !candidates in
  let r = ref (Relation.empty n) in
  let m = Array.length candidates in
  if m > 0 then
    for _ = 1 to count do
      let u, v = candidates.(Prng.int rng m) in
      r := Relation.add !r u v
    done;
  !r
