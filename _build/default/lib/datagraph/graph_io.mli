(** A small line-oriented textual format for data graphs and relations, used
    by the CLI and the test fixtures.

    {v
    # comment (also after '#' on any line)
    node v1 0          # node <name> <integer data value>
    edge v1 a v2       # edge <source> <label> <target>
    pair v1 v4         # a pair of the relation (binary relations)
    tuple v1 v2 z2     # a tuple of the relation (any arity)
    v}

    [pair u v] is shorthand for [tuple u v].  All tuples in one instance
    must have the same arity. *)

val graph_to_string : Data_graph.t -> string
val relation_to_string : Data_graph.t -> Relation.t -> string
val tuples_to_string : Data_graph.t -> Tuple_relation.t -> string

val instance_to_string : Data_graph.t -> Tuple_relation.t -> string
(** Graph and relation in one document. *)

val graph_of_string : string -> (Data_graph.t, string) result
(** Parses [node]/[edge] lines; [pair]/[tuple] lines are rejected. *)

val instance_of_string :
  string -> (Data_graph.t * Tuple_relation.t, string) result
(** Parses a whole instance.  An instance without [pair]/[tuple] lines has
    an empty binary relation. *)

val relation_of_string :
  Data_graph.t -> string -> (Relation.t, string) result
(** Parses [pair] lines against an existing graph's node names. *)

val to_dot : ?relation:Tuple_relation.t -> Data_graph.t -> string
(** A Graphviz rendering of the graph: nodes labeled [name:value], edge
    labels as-is; nodes of a unary [relation] are doubled, pairs of a
    binary one become dashed red edges. *)
