(** Data graph generators: the paper's running example and the synthetic
    families used by the test suite and the benchmark harness. *)

val fig1 : unit -> Data_graph.t
(** The running example of Figure 1: alphabet [{a}], data values
    [{0,1,2,3}], nodes [v1..v4], [z1], [z2], [v1'..v4'].  The edge set is
    reconstructed from the figure and verified against Examples 2, 12 and
    14 (see the test suite): evaluating [x -aaa-> y] yields exactly the
    relation S1 listed in Example 12. *)

val fig1_s1 : Data_graph.t -> Relation.t
(** S1 of Example 12 — all pairs connected by [aaa]. *)

val fig1_s2 : Data_graph.t -> Relation.t
(** S2 = {(v1,v4), (v1',v4')} — 2-REM-definable, not 1-REM-definable. *)

val fig1_s3 : Data_graph.t -> Relation.t
(** S3 = {(v1,v3)} — REE-definable, not 1-REM-definable. *)

val line : values:Data_value.t list -> label:string -> Data_graph.t
(** A simple path [v0 -a-> v1 -a-> ... ] with the given node values. *)

val cycle : values:Data_value.t list -> label:string -> Data_graph.t
(** A directed cycle with the given node values.
    @raise Invalid_argument on an empty value list. *)

val complete : n:int -> labels:string list -> value:(int -> Data_value.t) -> Data_graph.t
(** Complete directed graph (with self-loops) on [n] nodes, every ordered
    pair connected by every label. *)

val random :
  ?seed:int ->
  n:int ->
  delta:int ->
  labels:string list ->
  density:float ->
  unit ->
  Data_graph.t
(** A random data graph: [n] nodes with values drawn uniformly from a pool
    of [delta] values (each pool value is forced to appear when
    [delta <= n]), and each of the [n * n * |labels|] possible edges
    present independently with probability [density].  Deterministic for a
    given [seed] (default 0).
    @raise Invalid_argument if [delta < 1], [n < 1] or
    [not (0. <= density <= 1.)]. *)

val random_relation : ?seed:int -> Data_graph.t -> density:float -> Relation.t
(** A random binary relation over the nodes of [g]. *)

val random_reachable_relation :
  ?seed:int -> Data_graph.t -> count:int -> Relation.t
(** A random relation of up to [count] pairs, each drawn from the pairs
    [(u, v)] with [v] reachable from [u] — more interesting inputs for
    definability checks than uniform noise. *)
