let graph_to_string g =
  let buf = Buffer.create 256 in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "node %s %d\n" (Data_graph.name g v)
           (Data_value.to_int (Data_graph.value g v))))
    (Data_graph.nodes g);
  List.iter
    (fun (u, a, v) ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s %s\n" (Data_graph.name g u) a
           (Data_graph.name g v)))
    (Data_graph.edges g);
  Buffer.contents buf

let tuples_to_string g r =
  let buf = Buffer.create 256 in
  Tuple_relation.iter
    (fun tup ->
      Buffer.add_string buf
        ("tuple "
        ^ String.concat " " (List.map (Data_graph.name g) tup)
        ^ "\n"))
    r;
  Buffer.contents buf

let relation_to_string g r = tuples_to_string g (Tuple_relation.of_binary r)
let instance_to_string g r = graph_to_string g ^ tuples_to_string g r

type line =
  | Node of string * int
  | Edge of string * string * string
  | Tuple of string list

let parse_lines text =
  let lines = String.split_on_char '\n' text in
  let parse lineno raw =
    let raw =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    let words =
      String.split_on_char ' ' raw
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun w -> w <> "")
    in
    let err msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
    match words with
    | [] -> Ok None
    | [ "node"; name; value ] -> (
        match int_of_string_opt value with
        | Some d -> Ok (Some (Node (name, d)))
        | None -> err ("bad data value " ^ value))
    | "node" :: _ -> err "expected: node <name> <value>"
    | [ "edge"; u; a; v ] -> Ok (Some (Edge (u, a, v)))
    | "edge" :: _ -> err "expected: edge <src> <label> <dst>"
    | [ "pair"; u; v ] -> Ok (Some (Tuple [ u; v ]))
    | "pair" :: _ -> err "expected: pair <u> <v>"
    | "tuple" :: (_ :: _ as names) -> Ok (Some (Tuple names))
    | "tuple" :: _ -> err "expected: tuple <n1> ... <nk>"
    | kw :: _ -> err ("unknown directive " ^ kw)
  in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match parse i l with
        | Error _ as e -> e
        | Ok None -> go (i + 1) acc rest
        | Ok (Some item) -> go (i + 1) (item :: acc) rest)
  in
  go 1 [] lines

let split_items items =
  List.fold_left
    (fun (ns, es, ts) -> function
      | Node (n, d) -> ((n, Data_value.of_int d) :: ns, es, ts)
      | Edge (u, a, v) -> (ns, (u, a, v) :: es, ts)
      | Tuple t -> (ns, es, t :: ts))
    ([], [], []) items
  |> fun (ns, es, ts) -> (List.rev ns, List.rev es, List.rev ts)

let build_graph nodes edges =
  try Ok (Data_graph.make ~nodes ~edges)
  with Invalid_argument msg -> Error msg

let resolve_tuples g tuples =
  let exception Bad of string in
  try
    let arity =
      match tuples with [] -> 2 | t :: _ -> List.length t
    in
    let rel =
      List.fold_left
        (fun acc t ->
          if List.length t <> List.length (List.hd tuples) then
            raise (Bad "tuples of mixed arity");
          let idx =
            List.map
              (fun name ->
                match
                  try Some (Data_graph.node_of_name g name)
                  with Not_found -> None
                with
                | Some i -> i
                | None -> raise (Bad ("unknown node in relation: " ^ name)))
              t
          in
          Tuple_relation.add acc idx)
        (Tuple_relation.empty ~universe:(Data_graph.size g) ~arity)
        tuples
    in
    Ok rel
  with Bad msg -> Error msg

let instance_of_string text =
  match parse_lines text with
  | Error _ as e -> e
  | Ok items -> (
      let nodes, edges, tuples = split_items items in
      match build_graph nodes edges with
      | Error _ as e -> e
      | Ok g -> (
          match resolve_tuples g tuples with
          | Error _ as e -> e
          | Ok rel -> Ok (g, rel)))

let graph_of_string text =
  match parse_lines text with
  | Error _ as e -> e
  | Ok items -> (
      let nodes, edges, tuples = split_items items in
      if tuples <> [] then Error "unexpected pair/tuple line in graph"
      else build_graph nodes edges)

let relation_of_string g text =
  match parse_lines text with
  | Error _ as e -> e
  | Ok items -> (
      let nodes, edges, tuples = split_items items in
      if nodes <> [] || edges <> [] then
        Error "unexpected node/edge line in relation"
      else
        match resolve_tuples g tuples with
        | Error _ as e -> e
        | Ok rel ->
            if Tuple_relation.arity rel <> 2 then Error "relation is not binary"
            else Ok (Tuple_relation.to_binary rel))

let to_dot ?relation g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph G {\n  rankdir=LR;\n";
  let highlighted v =
    match relation with
    | Some r when Tuple_relation.arity r = 1 -> Tuple_relation.mem r [ v ]
    | _ -> false
  in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s:%s\"%s];\n" v (Data_graph.name g v)
           (Data_value.to_string (Data_graph.value g v))
           (if highlighted v then ", peripheries=2" else "")))
    (Data_graph.nodes g);
  List.iter
    (fun (u, a, v) ->
      Buffer.add_string buf (Printf.sprintf "  %d -> %d [label=\"%s\"];\n" u v a))
    (Data_graph.edges g);
  (match relation with
  | Some r when Tuple_relation.arity r = 2 ->
      Tuple_relation.iter
        (function
          | [ u; v ] ->
              Buffer.add_string buf
                (Printf.sprintf
                   "  %d -> %d [style=dashed, color=red, constraint=false];\n" u v)
          | _ -> ())
        r
  | _ -> ());
  Buffer.add_string buf "}\n";
  Buffer.contents buf
