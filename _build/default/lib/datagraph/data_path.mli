(** Data paths: sequences [d0 a0 d1 a1 ... a(m-1) dm] of data values
    alternating with letters of the finite alphabet, starting and ending
    with a data value (paper, Section 2).

    A data path is independent of any particular graph; {!Data_graph}
    provides the functions relating data paths to paths in a graph. *)

type label = string
(** Letters of the finite alphabet [Σ]. *)

type t
(** A data path with [m >= 0] letters and [m + 1] data values.  The data
    path consisting of a single data value (denoted [d] in the paper, the
    member of [L(ε)]) has [m = 0]. *)

val make : values:Data_value.t array -> labels:label array -> t
(** [make ~values ~labels] builds a data path.
    @raise Invalid_argument
      if [Array.length values <> Array.length labels + 1]. *)

val singleton : Data_value.t -> t
(** The one-value data path [d]. *)

val length : t -> int
(** Number of letters [m] (one less than the number of data values). *)

val values : t -> Data_value.t array
(** The [m + 1] data values, in order.  Fresh copy: safe to mutate. *)

val labels : t -> label array
(** The [m] letters, in order.  Fresh copy: safe to mutate. *)

val value_at : t -> int -> Data_value.t
(** [value_at w i] is [d_i], for [0 <= i <= length w]. *)

val label_at : t -> int -> label
(** [label_at w i] is [a_i], for [0 <= i < length w]. *)

val first : t -> Data_value.t
val last : t -> Data_value.t

val concat : t -> t -> t
(** [concat w1 w2] is the concatenation [w1 · w2] of the paper: defined only
    when the last value of [w1] equals the first value of [w2]; the shared
    value appears once in the result.
    @raise Invalid_argument if the endpoint values differ. *)

val concat_opt : t -> t -> t option
(** Like {!concat} but returns [None] on an endpoint mismatch. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val map_values : (Data_value.t -> Data_value.t) -> t -> t
(** [map_values pi w] is [π(w)] (Definition 9): apply a renaming of data
    values pointwise, keeping the letters. *)

val profile : t -> int array
(** The equality profile of the data values: [profile w] has one entry per
    data value position; position [i] holds the index of the first position
    carrying the same data value as position [i].  Two data paths are
    automorphic iff they have the same labels and the same profile. *)

val automorphic : t -> t -> bool
(** [automorphic w1 w2] is true iff some automorphism [π] of [D] has
    [π(w1) = w2], i.e. the paths agree on letters and on the (in)equality
    pattern of their data values (Definition 9, Fact 10). *)

val distinct_values : t -> Data_value.t list
(** Distinct data values in order of first occurrence. *)
