(* defcheck — definability checking on data graphs from the command line.

   Subcommands:
     info   <instance>                 graph statistics
     eval   <graph> -l LANG -e EXPR    evaluate a query
     check  <instance> -l LANG [...]   decide definability, synthesize
     fig1                              print the paper's running example *)

module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Tuple_relation = Datagraph.Tuple_relation

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_instance path =
  match Datagraph.Graph_io.instance_of_string (read_file path) with
  | Ok (g, s) -> (g, s)
  | Error msg ->
      Printf.eprintf "error: %s: %s\n" path msg;
      exit 2

let binary_of g s =
  if Tuple_relation.arity s <> 2 then begin
    Printf.eprintf "error: relation must be binary for this language\n";
    exit 2
  end
  else begin
    ignore g;
    Tuple_relation.to_binary s
  end

open Cmdliner

let instance_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"INSTANCE" ~doc:"Instance file (node/edge/pair lines).")

let lang_enum =
  [ ("rpq", `Rpq); ("ree", `Ree); ("rem", `Rem); ("krem", `Krem); ("ucrdpq", `Ucrdpq) ]

let lang_arg =
  Arg.(
    value
    & opt (enum lang_enum) `Rem
    & info [ "l"; "lang" ] ~docv:"LANG"
        ~doc:
          "Query language: $(b,rpq) (regular expressions), $(b,ree) \
           (regular expressions with equality), $(b,rem) (regular \
           expressions with memory), $(b,krem) (REM with at most $(b,--k) \
           registers), $(b,ucrdpq) (unions of conjunctive queries).")

let k_arg =
  Arg.(
    value & opt int 1
    & info [ "k" ] ~docv:"K" ~doc:"Register bound for $(b,krem).")

let synth_arg =
  Arg.(
    value & flag
    & info [ "s"; "synthesize" ]
        ~doc:"Print a defining query when the relation is definable.")

let info_cmd =
  let run path =
    let g, s = load_instance path in
    Format.printf "nodes: %d@." (Data_graph.size g);
    Format.printf "edges: %d@." (Data_graph.edge_count g);
    Format.printf "alphabet: %s@." (String.concat " " (Data_graph.alphabet g));
    Format.printf "distinct data values (delta): %d@." (Data_graph.delta g);
    Format.printf "relation arity: %d, tuples: %d@."
      (Tuple_relation.arity s) (Tuple_relation.cardinal s)
  in
  Cmd.v (Cmd.info "info" ~doc:"Print statistics of an instance file.")
    Term.(const run $ instance_arg)

let expr_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Query expression.")

let eval_cmd =
  let run path lang expr =
    let g, _ = load_instance path in
    let lang =
      match lang with
      | `Rpq -> `Rpq
      | `Ree -> `Ree
      | `Rem | `Krem -> `Rem
      | `Ucrdpq ->
          Printf.eprintf "error: eval supports rpq/ree/rem expressions\n";
          exit 2
    in
    match Query_lang.Query.parse ~lang expr with
    | Error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 2
    | Ok q ->
        let r = Query_lang.Query.eval g q in
        Format.printf "%a@." (Relation.pp g) r
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a query expression on a data graph.")
    Term.(const run $ instance_arg $ lang_arg $ expr_arg)

let print_verdict = function
  | Some true -> Format.printf "definable: yes@."
  | Some false -> Format.printf "definable: no@."
  | None ->
      Format.printf "definable: unknown (search truncated)@.";
      exit 3

let check_cmd =
  let run path lang k synth =
    let g, s = load_instance path in
    match lang with
    | `Ucrdpq ->
        let r = Definability.Ucrdpq_definability.check g s in
        Format.printf "definable: %s@." (if r.definable then "yes" else "no");
        (match r.violation with
        | Some (h, tup) ->
            Format.printf "violating homomorphism: %a@."
              (Definability.Hom.pp g) h;
            Format.printf "tuple leaving the relation: (%s)@."
              (String.concat ","
                 (List.map (Data_graph.name g) tup))
        | None -> ());
        if synth && r.definable then begin
          match Definability.Ucrdpq_definability.defining_query g s with
          | Some q when q <> [] ->
              Format.printf "query:@.%s@." (Query_lang.Conjunctive.to_string q)
          | _ -> Format.printf "query: (empty union)@."
        end
    | (`Rpq | `Ree | `Rem | `Krem) as lang ->
        let s = binary_of g s in
        let missing, verdict, query =
          match lang with
          | `Rpq ->
              let r = Definability.Rpq_definability.check g s in
              ( r.missing,
                r.definable,
                if synth && r.definable = Some true then
                  Option.map
                    (fun (v : _ Definability.Synthesis.verified) ->
                      assert v.correct;
                      Regexp.Regex.to_string v.query)
                    (Definability.Synthesis.rpq g s)
                else None )
          | `Ree ->
              let r = Definability.Ree_definability.check g s in
              Format.printf "closure size: %d, max height: %d@."
                r.closure_size r.max_height;
              ( r.missing,
                r.definable,
                if synth && r.definable = Some true then
                  Option.map
                    (fun (v : _ Definability.Synthesis.verified) ->
                      assert v.correct;
                      Ree_lang.Ree.to_string v.query)
                    (Definability.Synthesis.ree g s)
                else None )
          | `Rem ->
              let r = Definability.Rem_definability.check g s in
              ( r.missing,
                r.definable,
                if synth && r.definable = Some true then
                  Option.map
                    (fun (v : _ Definability.Synthesis.verified) ->
                      assert v.correct;
                      Rem_lang.Rem.to_string v.query)
                    (Definability.Synthesis.rem g s)
                else None )
          | `Krem ->
              let r = Definability.Rem_definability.check_k g ~k s in
              ( r.missing,
                r.definable,
                if synth && r.definable = Some true then
                  Option.map
                    (fun (v : _ Definability.Synthesis.verified) ->
                      assert v.correct;
                      Rem_lang.Rem.to_string v.query)
                    (Definability.Synthesis.rem_k g ~k s)
                else None )
        in
        print_verdict verdict;
        if missing <> [] then begin
          Format.printf "pairs with no witness:";
          List.iter
            (fun (u, v) ->
              Format.printf " (%s,%s)" (Data_graph.name g u)
                (Data_graph.name g v))
            missing;
          Format.printf "@."
        end;
        Option.iter (fun q -> Format.printf "query: %s@." q) query
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Decide whether the instance's relation is definable in a query \
          language.")
    Term.(const run $ instance_arg $ lang_arg $ k_arg $ synth_arg)

let census_cmd =
  let run path max_k sample =
    let g, _ = load_instance path in
    let c = Definability.Census.binary ~max_k ?sample g in
    Format.printf "%a@." Definability.Census.pp c
  in
  let max_k_arg =
    Arg.(value & opt int 1 & info [ "max-k" ] ~docv:"K"
           ~doc:"Largest register bound column.")
  in
  let sample_arg =
    Arg.(value & opt (some int) None
         & info [ "sample" ] ~docv:"N"
             ~doc:"Sample N random relations instead of enumerating all.")
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:
         "Count how many binary relations of the graph each query language           can define.")
    Term.(const run $ instance_arg $ max_k_arg $ sample_arg)

let fit_cmd =
  let run path =
    let g, s = load_instance path in
    let s = binary_of g s in
    let outcomes = Definability.Schema_mapping.fit g [ ("target", s) ] in
    List.iter
      (fun o ->
        Format.printf "%a@." (Definability.Schema_mapping.pp_outcome g) o)
      outcomes
  in
  Cmd.v
    (Cmd.info "fit"
       ~doc:
         "Fit the instance's relation with the least expressive language           that defines it and print the mapping rule.")
    Term.(const run $ instance_arg)

let dot_cmd =
  let run path =
    let g, s = load_instance path in
    print_string (Datagraph.Graph_io.to_dot ~relation:s g)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the instance as a Graphviz digraph.")
    Term.(const run $ instance_arg)

let fig1_cmd =
  let run () =
    let g = Datagraph.Graph_gen.fig1 () in
    let s = Datagraph.Graph_gen.fig1_s2 g in
    print_string
      (Datagraph.Graph_io.instance_to_string g (Tuple_relation.of_binary s))
  in
  Cmd.v
    (Cmd.info "fig1"
       ~doc:
         "Print the paper's Figure 1 graph with relation S2 as an instance \
          file.")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "defcheck" ~version:"1.0.0"
       ~doc:"Definability of relations on data graphs (PODS 2015).")
    [ info_cmd; eval_cmd; check_cmd; census_cmd; fit_cmd; dot_cmd; fig1_cmd ]

let () = exit (Cmd.eval main)
