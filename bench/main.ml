(* Benchmark harness.

   The paper is pure theory — it has no measurement tables or experiment
   figures (its three figures are an example graph, an algorithm sketch
   and a reduction gadget).  Per EXPERIMENTS.md, the harness therefore
   regenerates (a) every worked example as a verdict table and (b) one
   scaling series per complexity theorem, whose *shape* (what explodes in
   which parameter, who is cheaper) is the paper's claim.

   Two kinds of output:
   - plain-text tables T1..T8 and ablations A1/A2 (single-run wall-clock
     measurements, printed unconditionally);
   - Bechamel micro-benchmarks, one Test per experiment, printed last
     (pass "tables" as argv to skip them).                                 *)

open Bechamel

module Rel = Datagraph.Relation
module DG = Datagraph.Data_graph
module Gen = Datagraph.Graph_gen
module Rpq = Definability.Rpq_definability
module Remd = Definability.Rem_definability
module Reed = Definability.Ree_definability
module Ucd = Definability.Ucrdpq_definability
module Cnf = Reductions.Cnf
module Sat = Reductions.Sat_reduction
module T = Reductions.Tiling

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The three-valued verdict of a witness search, for the tables. *)
let ws_verdict (o : Definability.Witness_search.outcome) =
  match o.verdict with
  | Definability.Witness_search.Definable -> Some true
  | Definability.Witness_search.Not_definable _ -> Some false
  | Definability.Witness_search.Exhausted -> None

let ws_def o =
  match ws_verdict o with
  | Some b -> b
  | None -> failwith "search truncated"

let rpq_def g s = ws_def (Rpq.search g s)
let rem_def g s = ws_def (Remd.search g s)
let krem_def g ~k s = ws_def (Remd.search_k g ~k s)

let ree_def g s =
  match Reed.verdict (Reed.search g s) with
  | Some b -> b
  | None -> failwith "REE closure truncated"

(* Repeat [f] often enough that the total runtime is measurable and
   report seconds per call; used for the acceptance metrics recorded in
   the BENCH_*.json series.  The reported figure is the best of three
   measurement rounds: these numbers are compared across PRs, and the
   minimum is far more stable under scheduler and cache noise than any
   single round. *)
let time_per_call f =
  (* Start from a compacted heap so timings do not depend on garbage
     left behind by whatever ran before this metric. *)
  Gc.compact ();
  ignore (f ());
  let _, t1 = wall f in
  let reps = max 1 (min 100_000 (int_of_float (0.25 /. Float.max t1 1e-7))) in
  let round () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let best = ref (round ()) in
  for _ = 2 to 3 do
    let t = round () in
    if t < !best then best := t
  done;
  (!best, reps)

let header title =
  Printf.printf "\n=== %s ===\n%!" title

(* ------------------------------------------------------------------ *)
(* T1: the Figure 1 / Example 12 verdict table.                        *)

let table1 () =
  header "T1: Figure 1 definability matrix (Examples 2, 12, 14)";
  let g = Gen.fig1 () in
  let v = DG.node_of_name g in
  let q4rel = Rel.of_list (DG.size g) [ (v "v1", v "v2") ] in
  let relations =
    [
      ("S1", Gen.fig1_s1 g); ("S2", Gen.fig1_s2 g); ("S3", Gen.fig1_s3 g);
      ("Q4(G)", q4rel);
    ]
  in
  Printf.printf "%-8s %-6s %-6s %-8s %-8s %-6s %-8s\n" "relation" "RPQ"
    "RDPQ=" "1-REM" "2-REM" "REM" "UCRDPQ";
  List.iter
    (fun (name, s) ->
      let b f = if f then "yes" else "no" in
      Printf.printf "%-8s %-6s %-6s %-8s %-8s %-6s %-8s\n%!" name
        (b (rpq_def g s))
        (b (ree_def g s))
        (b (krem_def g ~k:1 s))
        (b (krem_def g ~k:2 s))
        (b (rem_def g s))
        (b (Ucd.is_definable_binary g s)))
    relations;
  print_endline
    "expected (paper): S1 all yes; S2 only >=2 registers/REM/UCRDPQ;\n\
    \                  S3 no RPQ, no 1-REM, yes RDPQ=/2-REM/REM/UCRDPQ;\n\
    \                  Q4(G) only UCRDPQ."

(* ------------------------------------------------------------------ *)
(* T2: Theorem 22 — k-REM definability cost vs n, delta, k.            *)

let krem_instance ~seed ~n ~delta =
  let g = Gen.random ~seed ~n ~delta ~labels:[ "a" ] ~density:0.45 () in
  (g, Gen.random_reachable_relation ~seed g ~count:2)

let table2 () =
  header "T2: Theorem 22 scaling — k-RDPQmem definability, NSpace(O(n^2 d^k))";
  Printf.printf "%-4s %-6s %-4s %-10s %-10s %-10s\n" "n" "delta" "k"
    "tuples" "time(s)" "definable";
  List.iter
    (fun (n, delta, k) ->
      let g, s = krem_instance ~seed:(n + delta) ~n ~delta in
      let r, dt = wall (fun () -> Remd.search_k ~max_tuples:200_000 g ~k s) in
      Printf.printf "%-4d %-6d %-4d %-10d %-10.4f %-10s\n%!" n delta k
        r.Definability.Witness_search.tuples_explored dt
        (match ws_verdict r with
        | Some true -> "yes"
        | Some false -> "no"
        | None -> "unknown")
    )
    [
      (3, 2, 0); (3, 2, 1); (3, 2, 2);
      (4, 2, 0); (4, 2, 1); (4, 2, 2);
      (5, 2, 0); (5, 2, 1); (5, 2, 2);
      (4, 3, 1); (4, 3, 2);
      (5, 3, 1); (5, 3, 2);
      (6, 2, 1); (6, 2, 2);
    ];
  print_endline "expected shape: cost grows with each of n, delta and k;\n\
                 the k-dependence dominates (delta^k states per node)."

(* ------------------------------------------------------------------ *)
(* T3: Theorem 24 vs Theorem 32 — ExpSpace (REM) vs PSpace (REE).      *)

let table3 () =
  header "T3: REM (ExpSpace) vs REE (PSpace) checker cost on shared instances";
  Printf.printf "%-4s %-6s %-12s %-12s %-8s %-8s\n" "n" "delta" "rem-time"
    "ree-time" "rem?" "ree?";
  List.iter
    (fun (n, delta) ->
      let g, s = krem_instance ~seed:(7 * n) ~n ~delta in
      let rem, trem =
        wall (fun () -> ws_verdict (Remd.search ~max_tuples:200_000 g s))
      in
      let ree, tree =
        wall (fun () -> Reed.verdict (Reed.search ~max_size:2_000 g s))
      in
      let show = function
        | Some true -> "yes"
        | Some false -> "no"
        | None -> "n/a"
      in
      Printf.printf "%-4d %-6d %-12.4f %-12.4f %-8s %-8s\n%!" n delta trem
        tree (show rem) (show ree))
    [ (3, 2); (4, 2); (5, 2); (6, 2); (4, 3); (5, 3) ];
  print_endline
    "expected shape: REE-definable implies REM-definable (never yes/no);\n\
     the REM checker's cost explodes faster as delta grows."

(* ------------------------------------------------------------------ *)
(* T4: Lemma 28 — REE closure size and level heights vs n.             *)

let table4 () =
  header "T4: REE closure statistics (levels stabilize by n^2, Lemma 28)";
  Printf.printf "%-4s %-6s %-10s %-10s %-8s %-10s\n" "n" "delta" "closure"
    "maxheight" "n^2" "truncated";
  List.iter
    (fun (n, delta) ->
      let g, _ = krem_instance ~seed:(3 * n) ~n ~delta in
      let elements, truncated = Reed.closure ~max_size:2_000 g in
      let max_height =
        List.fold_left
          (fun acc (_, t) -> max acc (Ree_lang.Ree_term.height t))
          0 elements
      in
      Printf.printf "%-4d %-6d %-10d %-10d %-8d %-10b\n%!" n delta
        (List.length elements) max_height (n * n) truncated)
    [ (2, 2); (3, 2); (4, 2); (5, 2); (4, 3) ];
  print_endline
    "expected shape: max witness height well below the n^2 bound; the\n\
     closure (which the PSpace algorithm never materializes) can explode."

(* ------------------------------------------------------------------ *)
(* T5: Theorem 35 — SAT reduction: verdicts agree, coNP cost growth.   *)

let table5 () =
  header "T5: Theorem 35 — UCRDPQ-definability = UNSAT on Figure 3 graphs";
  Printf.printf "%-6s %-8s %-8s %-8s %-8s %-10s %-8s\n" "vars" "clauses"
    "nodes" "sat" "defin." "agree" "time(s)";
  let run f =
    let sat = Cnf.satisfiable f in
    let (def, dt) = wall (fun () -> Sat.definable f) in
    Printf.printf "%-6d %-8d %-8d %-8b %-8b %-10b %-8.3f\n%!" f.Cnf.num_vars
      (List.length f.Cnf.clauses)
      (Sat.node_count f) sat def (def = not sat) dt
  in
  run (Cnf.make ~num_vars:1 [ (1, 1, 1) ]);
  run (Cnf.make ~num_vars:1 [ (1, 1, 1); (-1, -1, -1) ]);
  run (Cnf.make ~num_vars:2 [ (1, 2, 2); (1, -2, -2); (-1, 2, 2); (-1, -2, -2) ]);
  List.iter
    (fun (seed, num_vars, num_clauses) ->
      run (Cnf.random ~seed ~num_vars ~num_clauses ()))
    [ (1, 3, 3); (2, 3, 5); (3, 4, 5); (4, 4, 7); (5, 5, 7) ];
  print_endline "expected shape: every row agrees; cost grows with formula size\n\
                 (the certificate search is the coNP part)."

(* ------------------------------------------------------------------ *)
(* T6: Theorem 25 — tiling reduction graphs grow polynomially in n.    *)

let stripes n =
  {
    T.num_tiles = 2;
    horiz = [ (0, 1); (1, 0); (0, 0); (1, 1) ];
    vert = [ (0, 0); (1, 1) ];
    t_init = 0;
    t_final = 1;
    n;
  }

let table6 () =
  header "T6: Theorem 25 — reduction graph size vs corridor width 2^n";
  Printf.printf "%-4s %-8s %-8s %-10s %-10s\n" "n" "width" "nodes" "edges"
    "build(s)";
  List.iter
    (fun n ->
      let inst = stripes n in
      let red, dt = wall (fun () -> T.build inst) in
      Printf.printf "%-4d %-8d %-8d %-10d %-10.4f\n%!" n (T.width inst)
        (DG.size red.T.graph)
        (DG.edge_count red.T.graph)
        dt)
    [ 1; 2; 3; 4; 5; 6 ];
  (* Also: tile-count dependence. *)
  Printf.printf "%-6s %-8s %-8s\n" "tiles" "nodes" "edges";
  List.iter
    (fun num_tiles ->
      let all t = List.concat_map (fun a -> List.init t (fun b -> (a, b))) (List.init t Fun.id) in
      let inst =
        {
          (stripes 2) with
          T.num_tiles;
          horiz = all num_tiles;
          vert = all num_tiles;
          t_init = 0;
          t_final = num_tiles - 1;
        }
      in
      let red = T.build inst in
      Printf.printf "%-6d %-8d %-8d\n%!" num_tiles
        (DG.size red.T.graph)
        (DG.edge_count red.T.graph))
    [ 1; 2; 3; 4 ];
  print_endline
    "expected shape: polynomial in n (and quadratic-ish in tile count)\n\
     while the encoded corridor width doubles with each n."

(* ------------------------------------------------------------------ *)
(* T7: query evaluation (the [20] substrate): REM eval cost vs k.      *)

let table7 () =
  header "T7: query evaluation — RDPQmem cost grows with register count k";
  let g = Gen.random ~seed:17 ~n:10 ~delta:4 ~labels:[ "a" ] ~density:0.4 () in
  (* e_k = @r1 a ... @rk a (a[r1=] ... a[rk=]) — a k-register query. *)
  let expr k =
    let rec binds i =
      if i > k then tests 1
      else Rem_lang.Rem.Bind ([ i - 1 ], Rem_lang.Rem.Concat (Rem_lang.Rem.Letter "a", binds (i + 1)))
    and tests i =
      if i > k then Rem_lang.Rem.Eps
      else
        Rem_lang.Rem.Concat
          ( Rem_lang.Rem.Test (Rem_lang.Rem.Letter "a", Rem_lang.Condition.Eq (i - 1)),
            tests (i + 1) )
    in
    binds 1
  in
  Printf.printf "%-4s %-12s %-10s\n" "k" "time(s)" "answer";
  List.iter
    (fun k ->
      let e = expr k in
      let r, dt =
        wall (fun () ->
            Rem_lang.Register_automaton.eval_on_graph g
              (Rem_lang.Register_automaton.of_rem e))
      in
      Printf.printf "%-4d %-12.5f %-10d\n%!" k dt (Rel.cardinal r))
    [ 1; 2; 3; 4; 5 ];
  print_endline "expected shape: evaluation cost grows exponentially in k\n\
                 ((delta+1)^k register assignments per node), matching [20]."

(* ------------------------------------------------------------------ *)
(* T8: Theorem 32 — the RPQ -> RDPQ= embedding agrees.                 *)

let table8 () =
  header "T8: Theorem 32 embedding — RPQ-definability = RDPQ=-definability";
  Printf.printf "%-6s %-6s %-8s %-8s %-8s\n" "seed" "n" "rpq" "ree" "agree";
  List.iter
    (fun seed ->
      let g =
        Gen.random ~seed ~n:4 ~delta:2 ~labels:[ "a"; "b" ] ~density:0.35 ()
      in
      let s =
        if seed mod 2 = 0 then
          (* Definable by construction: the answer of a fixed RPQ. *)
          Regexp.Nfa.eval_on_graph g
            (Regexp.Nfa.of_regex
               Regexp.Regex.(Concat (Letter "a", Star (Letter "b"))))
        else Gen.random_reachable_relation ~seed g ~count:2
      in
      let rpq, ree = Reductions.Rpq_embedding.agree g s in
      Printf.printf "%-6d %-6d %-8b %-8b %-8b\n%!" seed (DG.size g) rpq ree
        (rpq = ree))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  print_endline "expected shape: every row agrees (the reduction is exact)."

(* ------------------------------------------------------------------ *)
(* T9: definability census — the hierarchy, quantified.                *)

let census_graphs () =
  let dv = Datagraph.Data_value.of_int in
  [
    ("line 0-1-0", Gen.line ~values:[ dv 0; dv 1; dv 0 ] ~label:"a");
    ("cycle 0-0-0", Gen.cycle ~values:[ dv 0; dv 0; dv 0 ] ~label:"a");
    ("cycle 0-1-0", Gen.cycle ~values:[ dv 0; dv 1; dv 0 ] ~label:"a");
    ("fork", Datagraph.Data_graph.build
               ~values:[| dv 0; dv 1; dv 1 |]
               ~edges:[ (0, "a", 1); (0, "a", 2) ]);
  ]

let table9 () =
  header "T9: definability census over all 2^(n^2) binary relations";
  Printf.printf "%-16s %-6s %-6s %-6s %-8s %-8s\n" "graph" "RPQ" "RDPQ="
    "REM" "UCRDPQ" "total";
  List.iter
    (fun (name, g) ->
      let c = Definability.Census.binary ~max_k:0 g in
      Printf.printf "%-16s %-6d %-6d %-6d %-8d %-8d\n%!" name
        c.Definability.Census.rpq c.Definability.Census.ree
        c.Definability.Census.rem c.Definability.Census.ucrdpq
        c.Definability.Census.relations)
    (census_graphs ());
  print_endline "expected shape: counts monotone along the hierarchy;\n\
                 symmetric graphs cap even UCRDPQ below the total."

(* ------------------------------------------------------------------ *)
(* Ablations.                                                          *)

let ablation_condition_alphabet () =
  header "A1 ablation: single complete types vs all condition disjunctions";
  Printf.printf "%-4s %-4s %-12s %-12s %-8s\n" "n" "k" "single(s)" "alldisj(s)"
    "agree";
  List.iter
    (fun (n, k) ->
      let g, s = krem_instance ~seed:(11 * n) ~n ~delta:2 in
      let r1, t1 = wall (fun () -> Remd.search_k ~max_tuples:200_000 g ~k s) in
      let r2, t2 =
        wall (fun () ->
            Remd.search_k ~max_tuples:200_000 ~all_condition_sets:true g ~k s)
      in
      Printf.printf "%-4d %-4d %-12.4f %-12.4f %-8b\n%!" n k t1 t2
        (ws_verdict r1 = ws_verdict r2))
    [ (3, 1); (4, 1); (5, 1); (3, 2); (4, 2) ];
  print_endline "expected shape: identical verdicts; the disjunctive alphabet\n\
                 costs strictly more (more blocks per BFS step)."

let ablation_profile_vs_full () =
  header "A2 ablation: profile automaton vs full delta-register assignment graph";
  Printf.printf "%-4s %-6s %-12s %-12s %-8s\n" "n" "delta" "profile(s)"
    "full(s)" "agree";
  List.iter
    (fun (n, delta) ->
      let g, s = krem_instance ~seed:(13 * n) ~n ~delta in
      let r1, t1 = wall (fun () -> Remd.search ~max_tuples:200_000 g s) in
      let r2, t2 =
        wall (fun () -> Remd.search_delta_registers ~max_tuples:200_000 g s)
      in
      Printf.printf "%-4d %-6d %-12.4f %-12.4f %-8b\n%!" n delta t1 t2
        (ws_verdict r1 = ws_verdict r2))
    [ (3, 2); (4, 2); (5, 2); (3, 3) ];
  print_endline "expected shape: identical verdicts (Lemma 23); the profile\n\
                 search is cheaper (ordered stores vs arbitrary assignments)."

let ablation_gaut () =
  header "A3 ablation: direct REM checker vs the Section 3 G_aut reduction";
  Printf.printf "%-6s %-8s %-12s %-12s %-8s\n" "seed" "G_aut-n" "direct(s)"
    "via-rpq(s)" "agree";
  List.iter
    (fun seed ->
      let g =
        Gen.random ~seed ~n:3 ~delta:2 ~labels:[ "a" ] ~density:0.5 ()
      in
      let s = Gen.random_reachable_relation ~seed g ~count:2 in
      let d, t1 = wall (fun () -> rem_def g s) in
      let v, t2 = wall (fun () -> Reductions.Gaut.rem_definable_via_rpq g s) in
      let aut = Reductions.Gaut.build g in
      Printf.printf "%-6d %-8d %-12.4f %-12.4f %-8b\n%!" seed
        (DG.size aut.Reductions.Gaut.graph)
        t1 t2 (d = v))
    [ 1; 2; 3; 4; 5 ];
  print_endline "expected shape: identical verdicts; the reduction pays the\n\
                 delta! blow-up the paper's Section 3 anticipates."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test per experiment.                 *)

let bechamel_tests () =
  let g = Gen.fig1 () in
  let s2 = Gen.fig1_s2 g in
  let s3 = Gen.fig1_s3 g in
  let g4, s4 = krem_instance ~seed:21 ~n:4 ~delta:2 in
  let f = Cnf.make ~num_vars:2 [ (1, 2, 2); (-1, -2, -2) ] in
  let red5 = Sat.build f in
  let inst6 = stripes 2 in
  let e7 =
    Rem_lang.Rem.Bind
      ( [ 0 ],
        Rem_lang.Rem.Concat
          ( Rem_lang.Rem.Letter "a",
            Rem_lang.Rem.Test (Rem_lang.Rem.Letter "a", Rem_lang.Condition.Eq 0) ) )
  in
  Test.make_grouped ~name:"definability"
    [
      Test.make ~name:"T1/fig1-rpq-s1" (Staged.stage (fun () ->
          rpq_def g (Gen.fig1_s1 g)));
      Test.make ~name:"T2/krem-k1-n4" (Staged.stage (fun () ->
          krem_def g4 ~k:1 s4));
      Test.make ~name:"T2/krem-k2-fig1-s2" (Staged.stage (fun () ->
          krem_def g ~k:2 s2));
      Test.make ~name:"T3/rem-profile-fig1-s2" (Staged.stage (fun () ->
          rem_def g s2));
      Test.make ~name:"T3+T4/ree-fig1-s3" (Staged.stage (fun () ->
          ree_def g s3));
      Test.make ~name:"T5/ucrdpq-sat-2var" (Staged.stage (fun () ->
          Ucd.is_definable red5.Sat.graph red5.Sat.target));
      Test.make ~name:"T6/tiling-build-n2" (Staged.stage (fun () ->
          T.build inst6));
      Test.make ~name:"T7/eval-rem-k1" (Staged.stage (fun () ->
          Rem_lang.Register_automaton.eval_on_graph g4
            (Rem_lang.Register_automaton.of_rem e7)));
      Test.make ~name:"T8/embedding-agree" (Staged.stage (fun () ->
          Reductions.Rpq_embedding.agree g4 s4));
      Test.make ~name:"T9/census-cycle3"
        (Staged.stage (fun () ->
             Definability.Census.binary ~max_k:0
               (Gen.cycle
                  ~values:
                    [
                      Datagraph.Data_value.of_int 0;
                      Datagraph.Data_value.of_int 0;
                      Datagraph.Data_value.of_int 0;
                    ]
                  ~label:"a")));
    ]

(* Returns (name, estimated ns/run) rows for the JSON record. *)
let run_bechamel () =
  header "Bechamel micro-benchmarks (median ns/run via OLS)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols (Toolkit.Instance.monotonic_clock :> Measure.witness) raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  Printf.printf "%-40s %-16s\n" "benchmark" "time/run";
  List.filter_map
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%.3f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%.3f us" (est /. 1e3)
            else Printf.sprintf "%.0f ns" est
          in
          Printf.printf "%-40s %-16s\n%!" name pretty;
          Some (name, est)
      | _ ->
          Printf.printf "%-40s (no estimate)\n%!" name;
          None)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* JSON benchmark record (--json): per-table wall times, bechamel
   estimates, and the acceptance metrics tracked across PRs (Hom.count
   on the T9 census graphs, k=2 REM definability on the Fig. 1 / S2
   instance).  With --baseline FILE, the acceptance numbers of an
   earlier record are embedded and per-metric speedups computed.        *)

(* A row either runs (timed thunk) or is skipped with a note recorded
   in its place — a measurement that would be dishonest on this host
   (par-* scaling on one core) shows up as an explicit null, not as
   coordination overhead masquerading as data. *)
type case = Run of (unit -> unit) | Skip of string

(* One named thunk per acceptance row.  The same thunks serve two
   passes: the timing pass (telemetry disabled, the numbers tracked
   across PRs) and one instrumented run per row for the per-phase time
   and counter breakdown recorded alongside them. *)
let acceptance_cases () =
  let g = Gen.fig1 () in
  let s2 = Gen.fig1_s2 g in
  let homs =
    List.map
      (fun (name, cg) ->
        let id =
          "hom-count-" ^ String.map (fun c -> if c = ' ' then '-' else c) name
        in
        (id, Run (fun () -> ignore (Definability.Hom.count cg))))
      (census_graphs ())
  in
  (* End-to-end dispatch through the engine (instance validation, budget
     bookkeeping, certificate synthesis included), one row per decider.
     A fresh fuel budget per call keeps the measurement honest about the
     per-dispatch budget overhead. *)
  let engine_rows =
    Definability.Deciders.init ();
    let inst = Engine.Instance.of_binary g s2 in
    List.map
      (fun lang ->
        ( "engine-" ^ lang ^ "-fig1-s2",
          Run
            (fun () ->
              let budget = Engine.Budget.create ~fuel:200_000 () in
              match
                Engine.Registry.decide ~budget
                  ~params:{ Engine.Registry.k = 2 } ~lang inst
              with
              | Ok _ -> ()
              | Error msg -> failwith msg) ))
      [ "rpq"; "krem"; "rem"; "ree"; "ucrdpq" ]
  in
  (* Pool-size scaling rows: the three parallel kernels plus batched
     dispatch, each timed at pool sizes 1/2/4 on instances heavy enough
     for the round/subtree fan-out to engage.  Each thunk pins the pool
     size itself (set_size is idempotent and cheap once the workers
     exist), so the rows are self-contained and their order in the list
     does not matter.  On a single-core host every par-* row would
     measure coordination overhead masquerading as a scaling number, so
     the whole block is skipped there: the record shows an explicit
     null with a note instead of misleading data. *)
  let par_names = [
    "par-witness-rem-n6"; "par-ree-closure-n5";
    "par-hom-violating-n7"; "par-batch-rem-12x";
  ]
  in
  let par_rows =
    if Domain.recommended_domain_count () = 1 then
      List.concat_map
        (fun size ->
          List.map
            (fun id ->
              (Printf.sprintf "%s-d%d" id size, Skip "single-core host"))
            par_names)
        [ 1; 2; 4 ]
    else
      let gw, sw = krem_instance ~seed:8 ~n:6 ~delta:2 in
      let gr, sr = krem_instance ~seed:15 ~n:5 ~delta:2 in
      let gh =
        Gen.random ~seed:23 ~n:7 ~delta:3 ~labels:[ "a"; "b" ] ~density:0.35 ()
      in
      let sh =
        Datagraph.Tuple_relation.of_binary
          (Gen.random_reachable_relation ~seed:23 gh ~count:3)
      in
      let batch_insts =
        List.map
          (fun seed ->
            let bg, bs = krem_instance ~seed ~n:4 ~delta:2 in
            Engine.Instance.of_binary bg bs)
          [ 31; 32; 33; 34; 35; 36; 37; 38; 39; 40; 41; 42 ]
      in
      List.concat_map
        (fun size ->
          let at id f =
            ( Printf.sprintf "%s-d%d" id size,
              Run
                (fun () ->
                  Par.Pool.set_size size;
                  f ()) )
          in
          [
            at "par-witness-rem-n6" (fun () ->
                ignore (Remd.search ~max_tuples:200_000 gw sw));
            at "par-ree-closure-n5" (fun () ->
                ignore (Reed.search ~max_size:2_000 gr sr));
            at "par-hom-violating-n7" (fun () ->
                ignore (Definability.Hom.search_violating gh sh));
            at "par-batch-rem-12x" (fun () ->
                List.iter
                  (function Ok _ -> () | Error msg -> failwith msg)
                  (Engine.Registry.decide_batch ~lang:"rem" batch_insts));
          ])
        [ 1; 2; 4 ]
  in
  (* Service rows: the content-addressed cache in isolation (hash cost,
     cold decide, warm hit — the warm/cold ratio is the acceptance
     criterion for the verdict cache) and the full socket round-trip
     against an in-process server.  The server thread and its client
     connection start lazily on first use and live until process exit;
     the warm rows fail loudly if the cache ever answers a miss, so a
     keying regression cannot silently devalue the measurement into a
     cold one. *)
  let service_rows =
    let s2t = Datagraph.Tuple_relation.of_binary s2 in
    let warm = Service.Cache.create () in
    let expect = function Ok _ -> () | Error msg -> failwith msg in
    expect (Service.Cache.decide warm ~lang:"ree" g s2t);
    expect (Service.Cache.decide warm ~lang:"rem" g s2t);
    let warm_hit ~lang s () =
      match Service.Cache.decide warm ~lang g s with
      | Ok (_, `Hit) -> ()
      | Ok (_, `Miss) -> failwith "expected a warm cache hit"
      | Error msg -> failwith msg
    in
    let conn =
      lazy
        (let path = Filename.temp_file "defsvc-bench" ".sock" in
         let srv = Service.Server.create (Service.Wire.Unix_sock path) in
         ignore (Thread.create Service.Server.run srv);
         Service.Client.connect (Service.Wire.Unix_sock path))
    in
    let exchange line () =
      match Service.Client.request_raw (Lazy.force conn) line with
      | Ok _ -> ()
      | Error msg -> failwith msg
    in
    let decide_line =
      Service.Wire.request_to_string
        (Service.Wire.Decide
           {
             lang = "rem";
             k = None;
             fuel = None;
             timeout_s = None;
             instance = Datagraph.Graph_io.instance_to_string g s2t;
           })
    in
    [
      ( "service-hash-fig1-s2",
        Run
          (fun () ->
            ignore (Service.Content_hash.instance_key ~lang:"rem" ~k:1 g s2t))
      );
      ( "service-decide-cold-ree-s2",
        Run
          (fun () ->
            expect
              (Service.Cache.decide (Service.Cache.create ()) ~lang:"ree" g s2t))
      );
      ("service-decide-warm-ree-s2", Run (warm_hit ~lang:"ree" s2t));
      ("service-decide-warm-rem-s2", Run (warm_hit ~lang:"rem" s2t));
      ( "service-socket-ping",
        Run (exchange (Service.Wire.request_to_string Service.Wire.Ping)) );
      ("service-socket-decide-warm-rem-s2", Run (exchange decide_line));
    ]
  in
  homs
  @ [ ("krem-k2-fig1-s2", Run (fun () -> ignore (krem_def g ~k:2 s2))) ]
  @ engine_rows @ par_rows @ service_rows

(* ------------------------------------------------------------------ *)
(* Pool-size scaling curve: the three stealable kernels plus batched
   dispatch, each measured at pool sizes 1/2/4/8 with per-row round
   statistics (min/median/max over [scaling_rounds] rounds) — the
   acceptance criterion for the work-stealing pool is the shape of this
   curve, and a single best-of number cannot show whether d4 beat d1 by
   scaling or by noise.  On a single-core host the whole family is
   skipped (explicit nulls, not coordination overhead posing as data);
   [host_domains] rides along in every row so a reader never has to
   guess which kind of host produced it.                                *)

type scaling_row = {
  p_id : string;
  p_rounds : int;
  p_stats : (float * float * float) option;  (* min/median/max secs *)
  p_speedup_vs_d1 : float option;  (* of medians; None when skipped *)
  p_note : string option;
}

let scaling_rounds = 5
let scaling_sizes = [ 1; 2; 4; 8 ]

let par_scaling_kernels () =
  let gw, sw = krem_instance ~seed:8 ~n:6 ~delta:2 in
  let gr, sr = krem_instance ~seed:15 ~n:5 ~delta:2 in
  let gh =
    Gen.random ~seed:23 ~n:7 ~delta:3 ~labels:[ "a"; "b" ] ~density:0.35 ()
  in
  let sh =
    Datagraph.Tuple_relation.of_binary
      (Gen.random_reachable_relation ~seed:23 gh ~count:3)
  in
  let batch_insts =
    List.map
      (fun seed ->
        let bg, bs = krem_instance ~seed ~n:4 ~delta:2 in
        Engine.Instance.of_binary bg bs)
      [ 31; 32; 33; 34; 35; 36; 37; 38; 39; 40; 41; 42 ]
  in
  [
    ("witness", fun () -> ignore (Remd.search ~max_tuples:200_000 gw sw));
    ("ree-closure", fun () -> ignore (Reed.search ~max_size:2_000 gr sr));
    ( "hom-violating",
      fun () -> ignore (Definability.Hom.search_violating gh sh) );
    ( "batch",
      fun () ->
        List.iter
          (function Ok _ -> () | Error msg -> failwith msg)
          (Engine.Registry.decide_batch ~lang:"rem" batch_insts) );
  ]

(* Per-round seconds per call, [scaling_rounds] rounds sorted so the
   caller can read off min/median/max.  Reps per round are sized once
   from a warm-up call so every round runs the same work. *)
let scaling_round_stats f =
  Gc.compact ();
  ignore (f ());
  let _, t1 = wall f in
  let reps = max 1 (min 10_000 (int_of_float (0.1 /. Float.max t1 1e-7))) in
  let round () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let xs = Array.init scaling_rounds (fun _ -> round ()) in
  Array.sort compare xs;
  (xs.(0), xs.(scaling_rounds / 2), xs.(scaling_rounds - 1))

let par_scaling_rows () =
  if Domain.recommended_domain_count () = 1 then
    List.concat_map
      (fun (kernel, _) ->
        List.map
          (fun d ->
            {
              p_id = Printf.sprintf "par-scaling-%s-d%d" kernel d;
              p_rounds = 0;
              p_stats = None;
              p_speedup_vs_d1 = None;
              p_note = Some "single-core host";
            })
          scaling_sizes)
      (par_scaling_kernels ())
  else begin
    let restore = Par.Pool.size () in
    let rows =
      List.concat_map
        (fun (kernel, f) ->
          let d1_median = ref nan in
          List.map
            (fun d ->
              Par.Pool.set_size d;
              let mn, md, mx = scaling_round_stats f in
              if d = 1 then d1_median := md;
              {
                p_id = Printf.sprintf "par-scaling-%s-d%d" kernel d;
                p_rounds = scaling_rounds;
                p_stats = Some (mn, md, mx);
                p_speedup_vs_d1 =
                  (if Float.is_nan !d1_median || md <= 0. then None
                   else Some (!d1_median /. md));
              p_note = None;
              })
            scaling_sizes)
        (par_scaling_kernels ())
    in
    Par.Pool.set_size restore;
    rows
  end

let acceptance_metrics cases =
  List.map
    (fun (id, case) ->
      match case with
      | Run f ->
          let secs, reps = time_per_call f in
          (id, `Time (secs, reps))
      | Skip note -> (id, `Skipped note))
    cases

(* One instrumented run per row: per-phase call counts and wall time
   from the aggregator sink, plus the full counter catalogue.  Runs
   after the timing pass so the timings are taken with telemetry
   disabled (the acceptance criterion) while the breakdown sees the
   warm caches the timing pass left behind.  Skipped rows have nothing
   to instrument and are omitted. *)
let phase_breakdowns cases =
  List.filter_map
    (fun (id, case) ->
      match case with
      | Skip _ -> None
      | Run f ->
          let agg = Obs.Sink.Agg.create () in
          Obs.enable [ Obs.Sink.Agg.sink agg ];
          f ();
          Obs.disable ();
          Some (id, Obs.Sink.Agg.phases agg, Obs.Counter.all ()))
    cases

(* ------------------------------------------------------------------ *)
(* Delta rows: the certificate-repair fast path on edit streams.

   Each family is a fixed instance plus a deterministic edit trace,
   measured two ways over the whole stream: through
   [Engine.Delta.decide_delta] (repair first, budgeted fallback on a
   miss) and cold ([apply_edit] followed by a full [Registry.decide]
   per step).  The per-family record keeps the repair hit rate next to
   the two per-edit times — the acceptance criterion is the ratio, and
   a family whose hit rate silently collapsed would otherwise still
   look fast on the misses' fallback decide.

   The churn families keep the target relation definable by
   construction and edit only a label the certificate cannot mention
   (the graphs are built over the single label "a"; the churn inserts
   and removes "b"-edges), so repair is expected on every step.  The
   retuple family exercises the other repair shape: a [ucrdpq]
   violating homomorphism surviving a relation toggle that keeps the
   witness tuple in and its image out (Lemma 34 is exact, so the
   repaired refutation is sound).                                      *)

type delta_row = {
  d_id : string;
  d_edits : int;
  d_hits : int;
  d_misses : int;
  d_repair_per_edit : float;
  d_cold_per_edit : float;
}

let delta_families () =
  Definability.Deciders.init ();
  (* Alternate insert/remove of [label]-edges over the pair list; every
     pair is inserted before it is removed, so the trace stays valid. *)
  let churn pairs label steps =
    List.init steps (fun i ->
        let u, v = List.nth pairs (i / 2 mod List.length pairs) in
        if i mod 2 = 0 then Engine.Delta.Add_edge (u, label, v)
        else Engine.Delta.Remove_edge (u, label, v))
  in
  (* The three churn families share the Figure 1 graph: its verdicts are
     the paper's worked example, its searches are expensive enough to be
     worth skipping (the certificate check is orders cheaper), and each
     target is definable in its family's language per Table 1 — S2 for
     REM and 2-REM, S3 for RDPQ= — so there is a certificate to repair.
     Every certificate speaks only the original alphabet {a}, which the
     "b"-churn cannot invalidate.  The cold decide pays the alphabet
     growth the edits cause (one more letter in every profile/closure
     step); that asymmetry is precisely what the fast path sells. *)
  let g = Gen.fig1 () in
  let pairs =
    let v = DG.node_of_name g in
    [ (v "v1", v "v3"); (v "v2", v "v4"); (v "z1", v "z2") ]
  in
  let fig1 =
    let inst = Engine.Instance.of_binary g (Gen.fig1_s2 g) in
    ("delta-fig1-rem-bchurn", "rem", 1, inst, churn pairs "b" 24)
  in
  let ree =
    let inst = Engine.Instance.of_binary g (Gen.fig1_s3 g) in
    ("delta-fig1-ree-bchurn", "ree", 1, inst, churn pairs "b" 24)
  in
  let krem =
    let inst = Engine.Instance.of_binary g (Gen.fig1_s2 g) in
    ("delta-fig1-krem-bchurn", "krem", 2, inst, churn pairs "b" 24)
  in
  let ucr =
    (* Satisfiable by construction (every clause contains literal 1), so
       the Theorem 35 instance is not definable and the refutation is a
       violating homomorphism.  Six variables keep the violating-hom
       search (what the cold path pays per step) well above the single
       homomorphism re-check the repair performs. *)
    let f =
      Cnf.make ~num_vars:6
        [
          (1, 2, 3); (1, -2, -3); (1, 4, 5); (1, -4, -5);
          (1, 5, 6); (1, -5, -6); (1, 2, -6);
        ]
    in
    let red = Sat.build f in
    let inst = Engine.Instance.create_exn red.Sat.graph red.Sat.target in
    let prev =
      match
        Engine.Registry.decide ~params:{ Engine.Registry.k = 1 }
          ~lang:"ucrdpq" inst
      with
      | Ok o -> o
      | Error msg -> failwith ("delta bench: " ^ msg)
    in
    match prev.Engine.Outcome.verdict with
    | Engine.Outcome.Not_definable (Engine.Outcome.Violating_hom { hom; tuple })
      ->
        let base = Datagraph.Tuple_relation.to_list red.Sat.target in
        let image = List.map (fun p -> hom.(p)) tuple in
        let arity = Datagraph.Tuple_relation.arity red.Sat.target in
        (* An extra tuple whose presence keeps the witness valid — the
           violating tuple stays in the relation, its image stays out —
           so toggling it in and out repairs on every step. *)
        let x =
          let n = DG.size red.Sat.graph in
          let rec find i =
            if i >= n then failwith "delta bench: no free node to retuple"
            else
              let cand = List.init arity (fun _ -> i) in
              if List.mem cand base || cand = image then find (i + 1) else cand
          in
          find 0
        in
        let edits =
          List.init 24 (fun i ->
              Engine.Delta.Set_relation
                (if i mod 2 = 0 then base @ [ x ] else base))
        in
        ("delta-sat6-ucrdpq-retuple", "ucrdpq", 1, inst, edits)
    | _ -> failwith "delta bench: expected a violating-hom refutation"
  in
  [ fig1; ree; krem; ucr ]

let delta_rows () =
  List.map
    (fun (id, lang, k, inst0, edits) ->
      let params = { Engine.Registry.k } in
      let decide inst =
        match Engine.Registry.decide ~params ~lang inst with
        | Ok o -> o
        | Error msg -> failwith (id ^ ": " ^ msg)
      in
      let prev0 = decide inst0 in
      let hits = ref 0 and misses = ref 0 in
      let counting = ref true in
      let repair_replay () =
        let prev = ref prev0 and cur = ref inst0 in
        List.iter
          (fun e ->
            match
              Engine.Delta.decide_delta ~params ~lang ~prev:!prev !cur e
            with
            | Ok { Engine.Delta.inst; outcome; repaired } ->
                if !counting then incr (if repaired then hits else misses);
                prev := outcome;
                cur := inst
            | Error msg -> failwith (id ^ ": " ^ msg))
          edits
      in
      (* One counted replay up front (the hit rate is replay-invariant:
         the trace and start state are fixed), then untimed counters off
         for the measurement rounds. *)
      repair_replay ();
      counting := false;
      let cold_replay () =
        let cur = ref inst0 in
        List.iter
          (fun e ->
            match Engine.Delta.apply_edit !cur e with
            | Ok inst ->
                cur := inst;
                ignore (decide inst)
            | Error msg -> failwith (id ^ ": " ^ msg))
          edits
      in
      let n_edits = List.length edits in
      let repair_secs, _ = time_per_call repair_replay in
      let cold_secs, _ = time_per_call cold_replay in
      {
        d_id = id;
        d_edits = n_edits;
        d_hits = !hits;
        d_misses = !misses;
        d_repair_per_edit = repair_secs /. float_of_int n_edits;
        d_cold_per_edit = cold_secs /. float_of_int n_edits;
      })
    (delta_families ())

(* ------------------------------------------------------------------ *)
(* Trace replay: a Zipf-skewed stream of decide requests over a pool of
   Graph_gen instances, replayed through a two-shard router in front of
   durable stores — the serving path measured end to end, hot keys and
   all.  The trace is deterministic (fixed pool seeds, fixed PRNG), so
   hit rate is a property of the configuration, not of the run.

   The full budget is 10^6 requests; TRACE_REQUESTS cuts it in CI,
   and a cut budget records null latency metrics with a "skipped" note
   (the PR 6 convention) — structural facts (fsync policy, store sizes
   around compaction) are kept either way.                              *)

type trace_result = {
  t_requests : int;
  t_reduced : bool;
  t_pool : int;
  t_zipf_s : float;
  t_fsync : string;
  t_hit_rate : float;
  t_p50_us : float;
  t_p99_us : float;
  t_server_p50_us : float;  (** op.decide histogram via the metrics op *)
  t_server_p99_us : float;
  t_store_bytes_before : int;
  t_store_bytes_after : int;
}

let trace_default_requests = 1_000_000

let rm_rf_dir dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let trace_replay () =
  let requests =
    match Sys.getenv_opt "TRACE_REQUESTS" with
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> n
        | _ -> trace_default_requests)
    | None -> trace_default_requests
  in
  let pool_size = 256 and zipf_s = 1.1 in
  let fsync = Store.Log.Every 64 in
  (* One pre-rendered request line per pool instance: parsing and
     rendering stay out of the timed loop. *)
  let lines =
    Array.init pool_size (fun seed ->
        let g =
          Gen.random ~seed ~n:4 ~delta:2 ~labels:[ "a" ] ~density:0.4 ()
        in
        let s =
          Datagraph.Tuple_relation.of_binary
            (Gen.random_reachable_relation ~seed g ~count:2)
        in
        Service.Wire.request_to_string
          (Service.Wire.Decide
             {
               lang = "rem";
               k = None;
               fuel = None;
               timeout_s = None;
               instance = Datagraph.Graph_io.instance_to_string g s;
             }))
  in
  (* Zipf CDF over ranks 1..pool_size; rank r gets weight 1/r^s. *)
  let cdf =
    let w =
      Array.init pool_size (fun i ->
          1.0 /. Float.pow (float_of_int (i + 1)) zipf_s)
    in
    let total = Array.fold_left ( +. ) 0.0 w in
    let acc = ref 0.0 in
    Array.map
      (fun x ->
        acc := !acc +. (x /. total);
        !acc)
      w
  in
  let sample =
    (* Deterministic xorshift: the same trace on every host. *)
    let state = ref 0x13579BDF2468ACE in
    fun () ->
      state := !state lxor (!state lsl 13);
      state := !state lxor (!state lsr 7);
      state := !state lxor (!state lsl 17);
      let u =
        float_of_int ((!state lsr 11) land 0xFFFFFFFFFFF)
        /. float_of_int (1 lsl 44)
      in
      let rec bs lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if cdf.(mid) < u then bs (mid + 1) hi else bs lo mid
      in
      bs 0 (pool_size - 1)
  in
  (* Two shards over fresh durable stores, one router in front. *)
  let mk_shard i =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "defbench-shard%d-%d" i (Unix.getpid ()))
    in
    rm_rf_dir dir;
    let path = Filename.temp_file "defbench-shard" ".sock" in
    let config =
      {
        Service.Server.default_config with
        Service.Server.store_dir = Some dir;
        fsync;
        shard = Some (i, 2);
      }
    in
    let srv = Service.Server.create ~config (Service.Wire.Unix_sock path) in
    (srv, Thread.create Service.Server.run srv)
  in
  let s0, th0 = mk_shard 0 and s1, th1 = mk_shard 1 in
  let rpath = Filename.temp_file "defbench-route" ".sock" in
  let router =
    Service.Router.create
      ~shards:
        [
          ("shard0", Service.Server.address s0);
          ("shard1", Service.Server.address s1);
        ]
      (Service.Wire.Unix_sock rpath)
  in
  let rth = Thread.create Service.Router.run router in
  let conn =
    Service.Client.connect ~retries:50 ~backoff_s:0.02
      (Service.Wire.Unix_sock rpath)
  in
  (* The metrics plane stays on for the whole replay so the op.decide
     histogram sees every request — the server-side percentiles below
     measure the serving path as production would run it (plane on,
     spans to a null sink). *)
  Obs.enable [ Obs.Sink.null ];
  let lat = Array.make requests 0.0 in
  for i = 0 to requests - 1 do
    let line = lines.(sample ()) in
    let t0 = Unix.gettimeofday () in
    (match Service.Client.request_raw conn line with
    | Ok _ -> ()
    | Error msg -> failwith ("trace replay: " ^ msg));
    lat.(i) <- Unix.gettimeofday () -. t0
  done;
  (* Scrape the router-aggregated histograms over the wire — the same
     path an operator's Prometheus scrape takes. *)
  let server_pct =
    match
      Service.Client.request_raw conn
        (Service.Wire.request_to_string Service.Wire.Metrics)
    with
    | Error msg -> failwith ("trace replay metrics: " ^ msg)
    | Ok reply -> (
        match
          Result.to_option (Service.Json.parse reply)
          |> Fun.flip Option.bind (Service.Json.member "data")
          |> Fun.flip Option.bind (fun d ->
                 Result.to_option (Service.Metrics.of_json d))
        with
        | None -> failwith "trace replay metrics: unparsable snapshot"
        | Some snap ->
            fun p ->
              Option.value ~default:0.
                (Service.Metrics.percentile_us snap ~histogram:"op.decide" p))
  in
  let server_p50 = server_pct 50. and server_p99 = server_pct 99. in
  Obs.disable ();
  let shard_stat name =
    let get srv =
      Option.value ~default:0
        (List.assoc_opt name (Service.Server.stats srv))
    in
    get s0 + get s1
  in
  let hits = shard_stat "cache_verdict_hits"
  and misses = shard_stat "cache_verdict_misses" in
  let store_bytes () =
    shard_stat "cache_store_log_bytes"
    + shard_stat "cache_store_snapshot_bytes"
  in
  let before = store_bytes () in
  (match
     Service.Client.request_raw conn
       (Service.Wire.request_to_string Service.Wire.Compact)
   with
  | Ok _ -> ()
  | Error msg -> failwith ("trace replay compact: " ^ msg));
  let after = store_bytes () in
  Service.Client.close conn;
  Service.Router.shutdown router;
  Service.Server.shutdown s0;
  Service.Server.shutdown s1;
  Thread.join rth;
  Thread.join th0;
  Thread.join th1;
  Array.sort compare lat;
  let pct p =
    lat.(min (requests - 1) (int_of_float (p *. float_of_int requests)))
    *. 1e6
  in
  {
    t_requests = requests;
    t_reduced = requests < trace_default_requests;
    t_pool = pool_size;
    t_zipf_s = zipf_s;
    t_fsync = Store.Log.fsync_policy_to_string fsync;
    t_hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses));
    t_p50_us = pct 0.50;
    t_p99_us = pct 0.99;
    t_server_p50_us = server_p50;
    t_server_p99_us = server_p99;
    t_store_bytes_before = before;
    t_store_bytes_after = after;
  }

(* ------------------------------------------------------------------ *)
(* Adversarial load rows: the seeded workload generator driven through
   the 2-shard router — closed loop, open loop, and closed loop again
   through a zero-fault chaos proxy (the proxy's pure relay overhead).
   Latency numbers come from the runner's own [load.op.decide]
   histogram; a row whose decide count is zero records explicit nulls
   (the honest-null convention), never a made-up number.               *)

type load_row = {
  l_id : string;
  l_requests : int;  (* wire requests actually sent *)
  l_wall_s : float;
  l_rps : float;
  l_decide_p50_us : int option;
  l_decide_p99_us : int option;
  l_errors : (string * int) list;
}

let load_default_requests = 2_000

let load_rows () =
  let requests =
    match Sys.getenv_opt "LOAD_REQUESTS" with
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> n
        | _ -> load_default_requests)
    | None -> load_default_requests
  in
  (* In-memory shards: these rows measure the serving and transport
     path, not fsync latency (the trace replay covers durable stores). *)
  let mk_shard i =
    let path = Filename.temp_file "defload-shard" ".sock" in
    let config =
      { Service.Server.default_config with Service.Server.shard = Some (i, 2) }
    in
    let srv = Service.Server.create ~config (Service.Wire.Unix_sock path) in
    (srv, Thread.create Service.Server.run srv)
  in
  let s0, th0 = mk_shard 0 and s1, th1 = mk_shard 1 in
  let rpath = Filename.temp_file "defload-route" ".sock" in
  let router =
    Service.Router.create
      ~shards:
        [
          ("shard0", Service.Server.address s0);
          ("shard1", Service.Server.address s1);
        ]
      (Service.Wire.Unix_sock rpath)
  in
  let rth = Thread.create Service.Router.run router in
  let profile =
    {
      Load.Workload.default_profile with
      Load.Workload.requests;
      (* random + fig1 only: millisecond decides, so the rows measure
         the serving path rather than solver time. *)
      families = [ ("random", 6); ("fig1", 2) ];
      fuel = 1_000;
      deadline_s = Some 10.;
    }
  in
  let run_one l_id mode addr =
    let profile = { profile with Load.Workload.mode } in
    match Load.Workload.build ~seed:42 profile with
    | Error e -> failwith ("load rows: " ^ e)
    | Ok wl -> (
        match Load.Runner.run ~seed:42 ~addr wl with
        | Error e -> failwith ("load rows: " ^ e)
        | Ok r ->
            let p50, p99 =
              match List.assoc_opt "decide" r.Load.Runner.latency_us with
              | Some (count, p50, p99, _) when count > 0 ->
                  (Some p50, Some p99)
              | _ -> (None, None)
            in
            {
              l_id;
              l_requests = r.Load.Runner.requests;
              l_wall_s = r.Load.Runner.wall_s;
              l_rps =
                float_of_int r.Load.Runner.requests
                /. Float.max 1e-9 r.Load.Runner.wall_s;
              l_decide_p50_us = p50;
              l_decide_p99_us = p99;
              l_errors = r.Load.Runner.errors;
            })
  in
  let router_addr = Service.Wire.Unix_sock rpath in
  let closed = run_one "load-closed-router" (Load.Workload.Closed 4) router_addr in
  let open_ =
    run_one "load-open-router"
      (Load.Workload.Open { rate = 500.; max_outstanding = 8 })
      router_addr
  in
  (* The same closed-loop workload through a transparent (zero-fault)
     proxy: the delta against [load-closed-router] is the proxy's own
     relay cost, the overhead every chaos run pays before any fault
     fires. *)
  let ppath = Filename.temp_file "defload-proxy" ".sock" in
  let proxy =
    Fault.Proxy.create
      ~listen:(Unix.ADDR_UNIX ppath)
      ~upstream:(Service.Wire.sockaddr_of router_addr)
      []
  in
  let pth = Thread.create Fault.Proxy.run proxy in
  let proxied =
    run_one "load-closed-proxy-clean" (Load.Workload.Closed 4)
      (Service.Wire.Unix_sock ppath)
  in
  Fault.Proxy.shutdown proxy;
  Service.Router.shutdown router;
  Service.Server.shutdown s0;
  Service.Server.shutdown s1;
  Thread.join pth;
  Thread.join rth;
  Thread.join th0;
  Thread.join th1;
  [ closed; open_; proxied ]

(* Minimal scanner for the acceptance section of an earlier --json
   record: the writer puts one entry per line, so a line-based scan
   suffices (no JSON dependency in the package).                        *)
let read_baseline path =
  let contains_from line i sub =
    let n = String.length sub in
    String.length line - i >= n && String.sub line i n = sub
  in
  let find_sub line sub =
    let rec go i =
      if i + String.length sub > String.length line then None
      else if contains_from line i sub then Some i
      else go (i + 1)
    in
    go 0
  in
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "bench: cannot read baseline: %s\n%!" msg;
      exit 2
  in
  let rec go acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line -> (
        let line = String.trim line in
        match find_sub line "\"secs_per_call\":" with
        | Some j when String.length line > 0 && line.[0] = '"' -> (
            match String.index_from_opt line 1 '"' with
            | Some close ->
                let key = String.sub line 1 (close - 1) in
                let rest =
                  String.sub line
                    (j + String.length "\"secs_per_call\":")
                    (String.length line - j - String.length "\"secs_per_call\":")
                in
                let num =
                  String.trim rest |> String.split_on_char ','
                  |> List.hd |> String.trim
                in
                (match float_of_string_opt num with
                | Some f -> go ((key, f) :: acc)
                | None -> go acc)
            | None -> go acc)
        | _ -> go acc)
  in
  go []

let write_json ~path ~table_times ~acceptance ~scaling ~delta ~trace ~load
    ~breakdown ~bechamel ~baseline =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"definability-bench-10\",\n";
  p
    "  \"command\": \"dune exec bench/main.exe -- tables --json --out \
     bench/BENCH_10.json --baseline bench/BENCH_9.json\",\n";
  (* How many hardware threads the host offers: the context needed to
     read the par-* scaling rows (d2/d4 cannot beat d1 on one core). *)
  p "  \"host_domains\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"tables_wall_secs\": {\n";
  let rec commas f = function
    | [] -> ()
    | [ x ] -> f x; p "\n"
    | x :: rest -> f x; p ",\n"; commas f rest
  in
  commas (fun (name, dt) -> p "    \"%s\": %.6f" name dt) table_times;
  p "  },\n";
  p "  \"acceptance\": {\n";
  commas
    (fun (name, m) ->
      match m with
      | `Time (secs, reps) ->
          p "    \"%s\": { \"secs_per_call\": %.9e, \"calls\": %d }" name secs
            reps
      | `Skipped note ->
          p "    \"%s\": { \"secs_per_call\": null, \"skipped\": %S }" name
            note)
    acceptance;
  p "  },\n";
  p "  \"par_scaling\": {\n";
  let host = Domain.recommended_domain_count () in
  commas
    (fun r ->
      match (r.p_stats, r.p_note) with
      | Some (mn, md, mx), _ ->
          p
            "    \"%s\": { \"rounds\": %d, \"min_s\": %.9e, \"median_s\": \
             %.9e, \"max_s\": %.9e, \"host_domains\": %d, \
             \"speedup_vs_d1\": %s }"
            r.p_id r.p_rounds mn md mx host
            (match r.p_speedup_vs_d1 with
            | Some s -> Printf.sprintf "%.2f" s
            | None -> "null")
      | None, note ->
          p
            "    \"%s\": { \"rounds\": 0, \"min_s\": null, \"median_s\": \
             null, \"max_s\": null, \"host_domains\": %d, \
             \"speedup_vs_d1\": null, \"skipped\": %S }"
            r.p_id host
            (Option.value ~default:"skipped" note))
    scaling;
  p "  },\n";
  p "  \"delta\": {\n";
  commas
    (fun r ->
      p
        "    \"%s\": { \"edits\": %d, \"repair_hits\": %d, \
         \"repair_misses\": %d, \"hit_rate\": %.3f, \
         \"repair_secs_per_edit\": %.9e, \"cold_secs_per_edit\": %.9e, \
         \"speedup\": %.1f }"
        r.d_id r.d_edits r.d_hits r.d_misses
        (float_of_int r.d_hits /. float_of_int r.d_edits)
        r.d_repair_per_edit r.d_cold_per_edit
        (r.d_cold_per_edit /. r.d_repair_per_edit))
    delta;
  p "  },\n";
  p "  \"trace\": {\n";
  p "    \"requests\": %d,\n" trace.t_requests;
  p "    \"pool_instances\": %d,\n" trace.t_pool;
  p "    \"zipf_s\": %.2f,\n" trace.t_zipf_s;
  p "    \"shards\": 2,\n";
  p "    \"fsync\": %S,\n" trace.t_fsync;
  p "    \"store_bytes_before_compaction\": %d,\n" trace.t_store_bytes_before;
  p "    \"store_bytes_after_compaction\": %d,\n" trace.t_store_bytes_after;
  if trace.t_reduced then begin
    (* A cut budget would report latencies dominated by the cold pool
       fill and a hit rate that depends on the cut — null them, per the
       skipped-row convention. *)
    p "    \"hit_rate\": null,\n";
    p "    \"p50_us\": null,\n";
    p "    \"p99_us\": null,\n";
    p "    \"server_p50_us\": null,\n";
    p "    \"server_p99_us\": null,\n";
    p "    \"skipped\": \"reduced trace budget (TRACE_REQUESTS=%d)\"\n"
      trace.t_requests
  end
  else begin
    p "    \"hit_rate\": %.4f,\n" trace.t_hit_rate;
    p "    \"p50_us\": %.1f,\n" trace.t_p50_us;
    p "    \"p99_us\": %.1f,\n" trace.t_p99_us;
    p "    \"server_p50_us\": %.1f,\n" trace.t_server_p50_us;
    p "    \"server_p99_us\": %.1f\n" trace.t_server_p99_us
  end;
  p "  },\n";
  p "  \"load\": {\n";
  let opt = function Some n -> string_of_int n | None -> "null" in
  commas
    (fun r ->
      p
        "    \"%s\": { \"requests\": %d, \"wall_s\": %.3f, \"rps\": %.1f, \
         \"decide_p50_us\": %s, \"decide_p99_us\": %s, \"errors\": {%s} }"
        r.l_id r.l_requests r.l_wall_s r.l_rps (opt r.l_decide_p50_us)
        (opt r.l_decide_p99_us)
        (String.concat ", "
           (List.map
              (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v)
              r.l_errors)))
    load;
  p "  },\n";
  p "  \"phase_breakdown\": {\n";
  commas
    (fun (name, phases, counters) ->
      p "    \"%s\": {\n" name;
      p "      \"phases\": {\n";
      commas
        (fun (ph, calls, total_s) ->
          p "        \"%s\": { \"calls\": %d, \"wall_s\": %.9e }" ph calls
            total_s)
        phases;
      p "      },\n";
      p "      \"counters\": {\n";
      commas (fun (c, v) -> p "        \"%s\": %d" c v) counters;
      p "      }\n";
      p "    }")
    breakdown;
  p "  },\n";
  (match baseline with
  | None -> ()
  | Some base ->
      p "  \"baseline_acceptance_secs_per_call\": {\n";
      commas (fun (name, secs) -> p "    \"%s\": %.9e" name secs) base;
      p "  },\n";
      p "  \"speedup_vs_baseline\": {\n";
      (* Every acceptance row appears here: rows the baseline file does
         not know get an explicit null instead of being dropped, so a
         missing baseline is visible in the record rather than silently
         shrinking the speedup table. *)
      let speedups =
        List.map
          (fun (name, m) ->
            ( name,
              match (m, List.assoc_opt name base) with
              | `Time (secs, _), Some b when secs > 0. -> Some (b /. secs)
              | _ -> None ))
          acceptance
      in
      commas
        (fun (name, s) ->
          match s with
          | Some s -> p "    \"%s\": %.2f" name s
          | None -> p "    \"%s\": null" name)
        speedups;
      p "  },\n");
  p "  \"bechamel_ns_per_run\": {\n";
  commas (fun (name, est) -> p "    \"%s\": %.1f" name est) bechamel;
  p "  }\n";
  p "}\n";
  close_out oc

let () =
  let argv = Array.to_list Sys.argv in
  let tables_only = List.mem "tables" argv in
  let json = List.mem "--json" argv in
  let rec opt_after key = function
    | [ a ] when a = key ->
        Printf.eprintf "bench: %s requires a value\n%!" key;
        exit 2
    | a :: b :: _ when a = key -> Some b
    | _ :: rest -> opt_after key rest
    | [] -> None
  in
  let out = Option.value ~default:"BENCH_9.json" (opt_after "--out" argv) in
  let baseline = Option.map read_baseline (opt_after "--baseline" argv) in
  (match opt_after "--domains" argv with
  | None -> ()
  | Some n -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Par.Pool.set_size n
      | _ ->
          Printf.eprintf "bench: --domains requires a positive integer\n%!";
          exit 2));
  let tabs =
    [
      ("T1", table1); ("T2", table2); ("T3", table3); ("T4", table4);
      ("T5", table5); ("T6", table6); ("T7", table7); ("T8", table8);
      ("T9", table9);
      ("A1", ablation_condition_alphabet);
      ("A2", ablation_profile_vs_full);
      ("A3", ablation_gaut);
    ]
  in
  let table_times =
    List.map
      (fun (name, f) ->
        let (), dt = wall f in
        (name, dt))
      tabs
  in
  let bechamel = if tables_only then [] else run_bechamel () in
  if json then begin
    header "acceptance metrics (secs/call)";
    let cases = acceptance_cases () in
    let acceptance = acceptance_metrics cases in
    List.iter
      (fun (name, m) ->
        match m with
        | `Time (secs, reps) ->
            Printf.printf "%-32s %.3e s/call  (%d calls)\n%!" name secs reps
        | `Skipped note -> Printf.printf "%-32s skipped (%s)\n%!" name note)
      acceptance;
    let breakdown = phase_breakdowns cases in
    header "pool-size scaling curve (min/median/max secs per call)";
    let scaling = par_scaling_rows () in
    List.iter
      (fun r ->
        match r.p_stats with
        | Some (mn, md, mx) ->
            Printf.printf "%-32s rounds %d  min %.3e  med %.3e  max %.3e%s\n%!"
              r.p_id r.p_rounds mn md mx
              (match r.p_speedup_vs_d1 with
              | Some s -> Printf.sprintf "  (%.2fx vs d1)" s
              | None -> "")
        | None ->
            Printf.printf "%-32s skipped (%s)\n%!" r.p_id
              (Option.value ~default:"skipped" r.p_note))
      scaling;
    header "delta edit streams (secs/edit, repair vs cold)";
    let delta = delta_rows () in
    List.iter
      (fun r ->
        Printf.printf
          "%-32s hits %d/%d  repair %.3e  cold %.3e  (%.0fx)\n%!" r.d_id
          r.d_hits r.d_edits r.d_repair_per_edit r.d_cold_per_edit
          (r.d_cold_per_edit /. r.d_repair_per_edit))
      delta;
    (* The per-edit times also join the acceptance series so the next
       PR's record can baseline against them. *)
    let acceptance =
      acceptance
      @ List.concat_map
          (fun r ->
            [
              (r.d_id ^ "-repair-edit", `Time (r.d_repair_per_edit, r.d_edits));
              (r.d_id ^ "-cold-edit", `Time (r.d_cold_per_edit, r.d_edits));
            ])
          delta
    in
    header "trace replay (2-shard router, Zipf stream)";
    let trace = trace_replay () in
    Printf.printf
      "%d requests over %d instances (zipf s=%.2f, fsync %s)\n%!"
      trace.t_requests trace.t_pool trace.t_zipf_s trace.t_fsync;
    if trace.t_reduced then
      Printf.printf
        "reduced budget (TRACE_REQUESTS): latency metrics recorded as null\n%!"
    else begin
      Printf.printf "hit rate %.4f  p50 %.1fus  p99 %.1fus\n%!"
        trace.t_hit_rate trace.t_p50_us trace.t_p99_us;
      Printf.printf "server-side op.decide p50 %.1fus  p99 %.1fus\n%!"
        trace.t_server_p50_us trace.t_server_p99_us
    end;
    Printf.printf "store bytes %d -> %d across compaction\n%!"
      trace.t_store_bytes_before trace.t_store_bytes_after;
    header "adversarial load (2-shard router; closed / open / proxied)";
    let load = load_rows () in
    List.iter
      (fun r ->
        Printf.printf "%-32s %d req  %.2fs  %.0f req/s  p50 %s  p99 %s%s\n%!"
          r.l_id r.l_requests r.l_wall_s r.l_rps
          (match r.l_decide_p50_us with
          | Some n -> Printf.sprintf "%dus" n
          | None -> "null")
          (match r.l_decide_p99_us with
          | Some n -> Printf.sprintf "%dus" n
          | None -> "null")
          (match r.l_errors with
          | [] -> ""
          | e ->
              "  errors "
              ^ String.concat ","
                  (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) e)))
      load;
    write_json ~path:out ~table_times ~acceptance ~scaling ~delta ~trace ~load
      ~breakdown ~bechamel ~baseline;
    Printf.printf "\nwrote %s\n%!" out
  end;
  print_endline "\nbench: done."
