(* The paper's introductory motivation: schema mapping extraction on a
   social network.

   Members are nodes, [friend] edges connect them, and each node's data
   value is its member's favourite movie.  The target relation
   [movieLink] relates members connected by a chain of friends who share
   the same favourite movie — the paper specifies it as the query
   [(friend⁺)=].

   Given only the graph and the relation, we algorithmically check that
   the relation *is* RDPQ_=-definable (the definability problem) and
   synthesize a defining query — the "extraction of schema mappings" the
   introduction describes.  We also show a relation that is *not*
   definable, where extraction must fail.

   Run with:  dune exec examples/social_network.exe  *)

module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Query = Query_lang.Query

let movie = Datagraph.Data_value.of_int

let network =
  Data_graph.make
    ~nodes:
      [
        (* name, favourite movie *)
        ("alice", movie 0);
        ("bob", movie 1);
        ("carol", movie 0);
        ("dave", movie 2);
        ("erin", movie 0);
        ("frank", movie 1);
      ]
    ~edges:
      [
        ("alice", "friend", "bob");
        ("bob", "friend", "carol");
        ("carol", "friend", "dave");
        ("dave", "friend", "erin");
        ("bob", "friend", "frank");
        ("frank", "friend", "alice");
      ]

let () =
  let g = network in
  Format.printf "Social network:@.%a@." Data_graph.pp g;

  (* The source-side specification: movieLink = (friend⁺)=. *)
  let movie_link_query =
    Query.Ree Ree_lang.Ree.(EqTest (Plus (Letter "friend")))
  in
  let movie_link = Query.eval g movie_link_query in
  Format.printf "@.movieLink = (friend+)= evaluates to %a@."
    (Relation.pp g) movie_link;

  (* The definability problem: given only (g, movieLink), can the
     relation be expressed as an RDPQ=?  (Yes — and we can extract a
     defining query.) *)
  let report = Definability.Ree_definability.search g movie_link in
  Format.printf "@.movieLink RDPQ=-definable: %b (closure: %d relations)@."
    (Definability.Ree_definability.verdict report = Some true)
    report.closure_size;
  (match Definability.Synthesis.ree g movie_link with
  | Some v ->
      assert v.correct;
      Format.printf "extracted schema mapping: movieLink(x,y) <- x -[%s]-> y@."
        (Ree_lang.Ree.to_string v.query)
  | None -> assert false);

  (* A relation where extraction must fail: the only data path from carol
     to erin (movies 0,2,0 along carol-dave-erin) is automorphic to the
     path 0,1,0 from alice to carol, so every REM containing the one
     contains the other (Fact 10) and {(carol,erin)} is not definable by
     any single-path query. *)
  let c = Data_graph.node_of_name g "carol"
  and e = Data_graph.node_of_name g "erin" in
  let single = Relation.of_list (Data_graph.size g) [ (c, e) ] in
  let ree_ok =
    Definability.Ree_definability.(verdict (search g single)) = Some true
  in
  let rem_ok =
    (Definability.Rem_definability.search g single)
      .Definability.Witness_search.verdict = Definability.Witness_search.Definable
  in
  Format.printf "@.{(carol,erin)} RDPQ=-definable:   %b@." ree_ok;
  Format.printf "{(carol,erin)} RDPQmem-definable: %b@." rem_ok;
  assert ((not ree_ok) && not rem_ok);
  Format.printf "{(carol,erin)} UCRDPQ-definable:  %b@."
    (Definability.Ucrdpq_definability.is_definable_binary g single);

  (* The whole workflow in one call: fit a schema mapping for several
     target relations at once, each in the least expressive language
     that can define it. *)
  Format.printf "@.Schema mapping fitted from examples:@.";
  let friend = Relation.transitive_closure (Relation.edge_relation g "friend") in
  let value = Data_graph.value g in
  let targets =
    [
      ("reachable", friend);
      ("movieLink", movie_link);
      ("otherMovie", Relation.restrict_neq ~value friend);
      ("carolErin", single);
    ]
  in
  List.iter
    (fun o ->
      Format.printf "  %a@." (Definability.Schema_mapping.pp_outcome g) o;
      match o with
      | Definability.Schema_mapping.Fitted rule ->
          let s = List.assoc rule.Definability.Schema_mapping.target targets in
          assert (Definability.Schema_mapping.verify g rule s)
      | Definability.Schema_mapping.Unfittable _ -> ())
    (Definability.Schema_mapping.fit g targets)
