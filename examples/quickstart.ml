(* Quickstart: the paper's running example (Figure 1, Examples 2 and 12).

   Builds the Figure 1 data graph, evaluates the three queries of
   Example 12, and mechanically re-derives every definability claim the
   example makes.  Run with:  dune exec examples/quickstart.exe  *)

module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Gen = Datagraph.Graph_gen
module Query = Query_lang.Query

let show g name r =
  Format.printf "%-6s = %a@." name (Relation.pp g) r

let parse_rem s =
  match Rem_lang.Rem.parse s with Ok e -> e | Error m -> failwith m

let parse_ree s =
  match Ree_lang.Ree.parse s with Ok e -> e | Error m -> failwith m

let decided (o : Definability.Witness_search.outcome) =
  match o.verdict with
  | Definability.Witness_search.Definable -> true
  | Definability.Witness_search.Not_definable _ -> false
  | Definability.Witness_search.Exhausted -> failwith "search truncated"

let rpq_def g s = decided (Definability.Rpq_definability.search g s)
let krem_def g ~k s = decided (Definability.Rem_definability.search_k g ~k s)

let ree_def g s =
  match
    Definability.Ree_definability.(verdict (search g s))
  with
  | Some b -> b
  | None -> failwith "REE closure truncated"

let () =
  let g = Gen.fig1 () in
  Format.printf "The Figure 1 data graph:@.%a@." Data_graph.pp g;

  (* Example 12: Q1 = x -aaa-> y. *)
  let aaa = Regexp.Regex.(concat_of [ Letter "a"; Letter "a"; Letter "a" ]) in
  let s1 = Query.eval g (Query.Rpq aaa) in
  show g "S1" s1;
  assert (Relation.equal s1 (Gen.fig1_s1 g));

  (* S2 is defined by the 2-REM e2 = ↓r1.a.↓r2.a[r1=].a[r2=]. *)
  let e2 = parse_rem "@r1 a @r2 a[r1=] a[r2=]" in
  let s2 = Query.eval g (Query.Rem e2) in
  show g "S2" s2;
  assert (Relation.equal s2 (Gen.fig1_s2 g));

  (* S3 is defined by the REE e3 = (a·(a)=·a)=. *)
  let e3 = parse_ree "(a (a)= a)=" in
  let s3 = Query.eval g (Query.Ree e3) in
  show g "S3" s3;
  assert (Relation.equal s3 (Gen.fig1_s3 g));

  (* Now re-derive the definability claims of Example 12 mechanically. *)
  let claims =
    [
      ("S1 definable by an RPQ", rpq_def g s1, true);
      ("S2 definable by an RPQ", rpq_def g s2, false);
      ("S2 definable by an RDPQ=", ree_def g s2, false);
      ("S2 definable by a 1-REM", krem_def g ~k:1 s2, false);
      ("S2 definable by a 2-REM", krem_def g ~k:2 s2, true);
      ("S3 definable by an RDPQ=", ree_def g s3, true);
      ("S3 definable by a 1-REM", krem_def g ~k:1 s3, false);
      ("S3 definable by a 2-REM", krem_def g ~k:2 s3, true);
    ]
  in
  Format.printf "@.Example 12, checked mechanically:@.";
  List.iter
    (fun (what, got, expected) ->
      assert (got = expected);
      Format.printf "  %-28s %b@." what got)
    claims;

  (* Synthesize defining queries back from the relations alone. *)
  Format.printf "@.Synthesized defining queries:@.";
  (match Definability.Synthesis.rem_k g ~k:2 s2 with
  | Some v ->
      assert v.correct;
      Format.printf "  S2 by 2-REM: %s@." (Rem_lang.Rem.to_string v.query)
  | None -> assert false);
  (match Definability.Synthesis.ree g s3 with
  | Some v ->
      assert v.correct;
      Format.printf "  S3 by REE:   %s@." (Ree_lang.Ree.to_string v.query)
  | None -> assert false);
  Format.printf "@.All Example 12 claims reproduced.@."
