(* A tour of the expressivity hierarchy the paper's Section 2.2 sketches:

     RPQ  ⊊  RDPQ=  ⊊  RDPQ_mem  ⊊  UCRDPQ        (on definable relations)

   with each strict inclusion witnessed on a concrete graph by a concrete
   relation, plus Example 14's conjunctive queries Q4 and Q5.

   Run with:  dune exec examples/expressivity_tour.exe  *)

module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Tuple_relation = Datagraph.Tuple_relation
module Gen = Datagraph.Graph_gen
module Conj = Query_lang.Conjunctive
module Query = Query_lang.Query

let header title = Format.printf "@.== %s ==@." title

let decided (o : Definability.Witness_search.outcome) =
  match o.verdict with
  | Definability.Witness_search.Definable -> true
  | Definability.Witness_search.Not_definable _ -> false
  | Definability.Witness_search.Exhausted -> failwith "search truncated"

let krem_def g ~k s = decided (Definability.Rem_definability.search_k g ~k s)

let ree_def g s =
  match Definability.Ree_definability.(verdict (search g s)) with
  | Some b -> b
  | None -> failwith "REE closure truncated"

let check g name s =
  let rpq = decided (Definability.Rpq_definability.search g s) in
  let ree = ree_def g s in
  let rem = decided (Definability.Rem_definability.search g s) in
  let uc = Definability.Ucrdpq_definability.is_definable_binary g s in
  Format.printf "%-14s RPQ:%-5b RDPQ=:%-5b RDPQmem:%-5b UCRDPQ:%-5b@." name
    rpq ree rem uc;
  (rpq, ree, rem, uc)

let () =
  let g = Gen.fig1 () in

  header "Separating RPQ from RDPQ= (Figure 1, S3)";
  (* S3 = {(v1,v3)} needs a data-value test: the word aaa also connects
     many other pairs. *)
  let s3 = Gen.fig1_s3 g in
  let r = check g "S3" s3 in
  assert (r = (false, true, true, true));

  header "Separating RDPQ= from RDPQ_mem (Figure 1, S2)";
  (* S2 = {(v1,v4),(v1',v4')} needs the interleaved two-register check of
     Example 12, out of reach for REE. *)
  let s2 = Gen.fig1_s2 g in
  let r = check g "S2" s2 in
  assert (r = (false, false, true, true));

  header "Separating RDPQ_mem from UCRDPQ (Example 14, Q4)";
  (* Q4: Ans(x1,y1) := x1 -a-> y1 ∧ x1 -a-> y2 ∧ y2 -a-> y1.  Its answer
     {(v1,v2)} is a genuine conjunctive pattern: no single-path query
     defines it. *)
  let q4 =
    [
      {
        Conj.head = [ "x1"; "y1" ];
        atoms =
          [
            { Conj.src = "x1"; dst = "y1"; expr = Query.Rpq (Regexp.Regex.Letter "a") };
            { Conj.src = "x1"; dst = "y2"; expr = Query.Rpq (Regexp.Regex.Letter "a") };
            { Conj.src = "y2"; dst = "y1"; expr = Query.Rpq (Regexp.Regex.Letter "a") };
          ];
      };
    ]
  in
  let q4_answer = Conj.eval g q4 in
  Format.printf "Q4(G) = %a@." (Tuple_relation.pp g) q4_answer;
  let q4_rel = Tuple_relation.to_binary q4_answer in
  let r = check g "Q4(G)" q4_rel in
  assert (r = (false, false, false, true));

  header "Example 14, Q5: converging (a)!= paths";
  (* Q5: Ans(x1,y1,x2) := x1 -(a)≠-> y1 ∧ x2 -(a)≠-> y1.  The paper lists
     the order-canonical tuples with x1 ≠ x2; the full answer under the
     standard semantics also contains the symmetric and diagonal
     valuations, which we print. *)
  let a_neq = Query.Ree Ree_lang.Ree.(NeqTest (Letter "a")) in
  let q5 =
    [
      {
        Conj.head = [ "x1"; "y1"; "x2" ];
        atoms =
          [
            { Conj.src = "x1"; dst = "y1"; expr = a_neq };
            { Conj.src = "x2"; dst = "y1"; expr = a_neq };
          ];
      };
    ]
  in
  let q5_answer = Conj.eval g q5 in
  Format.printf "Q5(G) = %a@." (Tuple_relation.pp g) q5_answer;
  (* The three tuples the paper lists are among the answers. *)
  List.iter
    (fun names ->
      let tup = List.map (Data_graph.node_of_name g) names in
      assert (Tuple_relation.mem q5_answer tup))
    [ [ "v1"; "z2"; "z1" ]; [ "v3"; "v4"; "v2'" ]; [ "v3"; "v3'"; "v2'" ] ];
  (* Q5's answer is UCRDPQ-definable (it is a UCRDPQ answer!) — check the
     homomorphism criterion agrees (Lemma 34). *)
  assert (Definability.Ucrdpq_definability.is_definable g q5_answer);

  header "Register hierarchy (k vs k+1 registers)";
  (* S2 again: 1 register is not enough, 2 are (Example 12's discussion). *)
  Format.printf "S2 with k=0: %b, k=1: %b, k=2: %b@."
    (krem_def g ~k:0 s2) (krem_def g ~k:1 s2) (krem_def g ~k:2 s2);

  Format.printf "@.The hierarchy RPQ ⊊ RDPQ= ⊊ RDPQmem ⊊ UCRDPQ is strict.@."
