(* defcheck — definability checking on data graphs from the command line.

   Subcommands:
     info   <instance>                 graph statistics
     eval   <graph> -l LANG -e EXPR    evaluate a query
     check  <instance> -l LANG [...]   decide definability, synthesize
     batch  <instances...> -l LANG     decide many instances, one JSON
                                       line each (Registry.decide_batch)
     watch  <instance> --edits FILE    replay a JSON edit stream through
                                       the certificate-repair fast path
     fig1                              print the paper's running example

   [check] exit codes: 0 definable, 1 not definable, 2 usage/load errors,
   4 unknown (budget exhausted).

   [--domains N] sizes the worker-domain pool (Par.Pool); verdicts,
   certificates and counterexamples are identical at any pool size. *)

module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Tuple_relation = Datagraph.Tuple_relation
module Budget = Engine.Budget
module Instance = Engine.Instance
module Outcome = Engine.Outcome
module Registry = Engine.Registry

let () = Definability.Deciders.init ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_instance path =
  match Datagraph.Graph_io.instance_of_string (read_file path) with
  | Ok (g, s) -> (g, s)
  | Error msg ->
      Printf.eprintf "error: %s: %s\n" path msg;
      exit 2

let binary_of s =
  if Tuple_relation.arity s <> 2 then begin
    Printf.eprintf "error: relation must be binary for this language\n";
    exit 2
  end
  else Tuple_relation.to_binary s

(* JSON emission and the verdict block live in [Service.Wire] now,
   shared with the server so a service [decide] response, a cache hit,
   [check --json] and [batch] all render byte-identical verdicts. *)
let json_string = Service.Wire.json_string
let json_obj = Service.Wire.json_obj
let json_verdict_fields = Service.Wire.verdict_fields

let json_of_outcome g ~lang ~budget ~phases (o : Outcome.t) =
  let stats =
    (* Telemetry renders here: the budget's fuel accounting, per-phase
       wall time from the in-memory aggregator, and the full counter
       catalogue (zeros included, so the key set is stable across
       languages). *)
    let budget_json =
      json_obj
        [
          ("used", string_of_int (Budget.used budget));
          ( "fuel",
            match Budget.fuel_limit budget with
            | Some f -> string_of_int f
            | None -> "null" );
          ("exhausted", if Budget.exhausted budget then "true" else "false");
        ]
    in
    let phases_json =
      json_obj
        (List.map
           (fun (name, calls, total_s) ->
             ( name,
               json_obj
                 [
                   ("calls", string_of_int calls);
                   ("wall_s", Printf.sprintf "%.6f" total_s);
                 ] ))
           phases)
    in
    let counters_json =
      json_obj
        (List.map (fun (name, v) -> (name, string_of_int v)) (Obs.Counter.all ()))
    in
    json_obj
      (("steps", string_of_int o.stats.steps)
      :: ("elapsed_s", Printf.sprintf "%.6f" o.stats.elapsed_s)
      :: List.map (fun (k, v) -> (k, string_of_int v)) o.stats.extras
      @ [
          ("budget", budget_json);
          ("phases", phases_json);
          ("counters", counters_json);
        ])
  in
  json_obj (json_verdict_fields g ~lang o @ [ ("stats", stats) ])

open Cmdliner

let instance_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"INSTANCE" ~doc:"Instance file (node/edge/pair lines).")

let lang_arg =
  Arg.(
    value & opt string "rem"
    & info [ "l"; "lang" ] ~docv:"LANG"
        ~doc:
          "Query language: $(b,rpq) (regular expressions), $(b,ree) \
           (regular expressions with equality), $(b,rem) (regular \
           expressions with memory), $(b,krem) (REM with at most $(b,--k) \
           registers), $(b,ucrdpq) (unions of conjunctive queries).")

let k_arg =
  Arg.(
    value & opt int 1
    & info [ "k" ] ~docv:"K" ~doc:"Register bound for $(b,krem).")

let synth_arg =
  Arg.(
    value & flag
    & info [ "s"; "synthesize" ]
        ~doc:"Print a defining query when the relation is definable.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Print the outcome as a JSON object on one line.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Abort with an unknown verdict after $(docv) search steps \
           (explored tuples / closure elements / CSP nodes).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Abort with an unknown verdict after $(docv) seconds.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the decision's phases \
           and counters to $(docv), loadable in chrome://tracing or \
           Perfetto.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Size of the worker-domain pool used by the parallel search \
           kernels and $(b,batch) (default: the $(b,PAR_DOMAINS) \
           environment variable, else 1 = fully sequential).  Verdicts, \
           certificates and counterexamples are identical at any pool \
           size.")

let set_domains = function
  | None -> ()
  | Some n ->
      if n < 1 then begin
        Printf.eprintf "error: --domains must be at least 1\n";
        exit 2
      end;
      Par.Pool.set_size n

let info_cmd =
  let run path =
    let g, s = load_instance path in
    Format.printf "nodes: %d@." (Data_graph.size g);
    Format.printf "edges: %d@." (Data_graph.edge_count g);
    Format.printf "alphabet: %s@." (String.concat " " (Data_graph.alphabet g));
    Format.printf "distinct data values (delta): %d@." (Data_graph.delta g);
    Format.printf "relation arity: %d, tuples: %d@."
      (Tuple_relation.arity s) (Tuple_relation.cardinal s)
  in
  Cmd.v (Cmd.info "info" ~doc:"Print statistics of an instance file.")
    Term.(const run $ instance_arg)

let expr_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Query expression.")

let eval_cmd =
  let run path lang expr =
    let g, _ = load_instance path in
    let lang =
      match lang with
      | "rpq" -> `Rpq
      | "ree" -> `Ree
      | "rem" | "krem" -> `Rem
      | other ->
          Printf.eprintf
            "error: eval supports rpq/ree/rem expressions, not %s\n" other;
          exit 2
    in
    match Query_lang.Query.parse ~lang expr with
    | Error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 2
    | Ok q ->
        let r = Query_lang.Query.eval g q in
        Format.printf "%a@." (Relation.pp g) r
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a query expression on a data graph.")
    Term.(const run $ instance_arg $ lang_arg $ expr_arg)

let check_cmd =
  let run path lang k synth json fuel timeout trace domains =
    set_domains domains;
    let g, s = load_instance path in
    (* Telemetry is always on for a check: the aggregator feeds the
       [stats] block of --json, and --trace additionally collects the
       raw spans.  One decision's worth of observation is far below the
       cost of the decision itself. *)
    let agg = Obs.Sink.Agg.create () in
    (* The trace streams to the file as spans complete, and closing the
       JSON array is registered with [at_exit] — which also runs on
       [exit 2] paths and uncaught exceptions — so an aborted check
       still leaves a Perfetto-loadable trace, never a truncated one. *)
    let tracer =
      Option.map
        (fun path ->
          let oc = open_out path in
          let stream = Obs.Sink.Trace.stream oc in
          at_exit (fun () ->
              Obs.Sink.Trace.close_stream ~counters:(Obs.Counter.all ()) stream;
              close_out_noerr oc);
          stream)
        trace
    in
    Obs.enable
      (Obs.Sink.Agg.sink agg
      ::
      (match tracer with
      | Some t -> [ Obs.Sink.Trace.stream_sink t ]
      | None -> []));
    let write_trace () =
      Obs.disable ();
      match tracer with
      | Some t -> Obs.Sink.Trace.close_stream ~counters:(Obs.Counter.all ()) t
      | None -> ()
    in
    let inst =
      match Instance.create g s with
      | Ok inst -> inst
      | Error msg ->
          Printf.eprintf "error: %s: %s\n" path msg;
          exit 2
    in
    (* Always run under a budget (unlimited when no flag is given) so
       fuel accounting is reportable in the stats block. *)
    let budget = Budget.create ?fuel ?deadline_s:timeout () in
    let outcome =
      match
        Registry.decide ~budget ~params:{ Registry.k } ~lang inst
      with
      | Ok o -> o
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2
    in
    (match outcome.verdict with
    | Outcome.Unknown (Outcome.Unsupported msg) when not json ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | _ -> ());
    if json then
      print_endline
        (json_of_outcome g ~lang ~budget
           ~phases:(Obs.Sink.Agg.phases agg)
           outcome)
    else begin
      List.iter
        (fun (key, v) -> Format.printf "%s: %d@." key v)
        outcome.stats.extras;
      match outcome.verdict with
      | Outcome.Definable cert ->
          Format.printf "definable: yes@.";
          if synth then begin
            match Outcome.check_certificate inst cert with
            | Ok () ->
                Format.printf "query: %s@." (Outcome.certificate_to_string cert)
            | Error msg ->
                Printf.eprintf "error: synthesized query failed checking: %s\n"
                  msg;
                exit 2
          end
      | Outcome.Not_definable (Outcome.Missing_pairs pairs) ->
          Format.printf "definable: no@.";
          Format.printf "pairs with no witness:";
          List.iter
            (fun (u, v) ->
              Format.printf " (%s,%s)" (Data_graph.name g u)
                (Data_graph.name g v))
            pairs;
          Format.printf "@."
      | Outcome.Not_definable (Outcome.Violating_hom { hom; tuple }) ->
          Format.printf "definable: no@.";
          Format.printf "violating homomorphism: %a@."
            (Definability.Hom.pp g) hom;
          Format.printf "tuple leaving the relation: (%s)@."
            (String.concat "," (List.map (Data_graph.name g) tuple))
      | Outcome.Unknown Outcome.Budget_exhausted ->
          Format.printf "definable: unknown (budget exhausted after %d tuples)@."
            outcome.stats.steps
      | Outcome.Unknown (Outcome.Unsupported _) -> assert false
    end;
    write_trace ();
    match outcome.verdict with
    | Outcome.Definable _ -> exit 0
    | Outcome.Not_definable _ -> exit 1
    | Outcome.Unknown Outcome.Budget_exhausted -> exit 4
    | Outcome.Unknown (Outcome.Unsupported _) -> exit 2
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Decide whether the instance's relation is definable in a query \
          language.")
    Term.(
      const run $ instance_arg $ lang_arg $ k_arg $ synth_arg $ json_arg
      $ fuel_arg $ timeout_arg $ trace_arg $ domains_arg)

let batch_cmd =
  let run paths lang k fuel timeout domains =
    set_domains domains;
    (* A missing or unparsable instance file yields one JSON error line
       (and exit-code contribution 2) instead of aborting the batch: the
       other instances still get their verdicts, in input order. *)
    let loaded =
      List.map
        (fun path ->
          match (try Ok (read_file path) with Sys_error msg -> Error msg) with
          | Error msg -> (path, Error msg)
          | Ok text -> (
              match Datagraph.Graph_io.instance_of_string text with
              | Error msg -> (path, Error msg)
              | Ok (g, s) -> (
                  match Instance.create g s with
                  | Ok inst -> (path, Ok (g, inst))
                  | Error msg -> (path, Error msg))))
        paths
    in
    let make_budget () = Budget.create ?fuel ?deadline_s:timeout () in
    let results =
      Registry.decide_batch ~make_budget ~params:{ Registry.k } ~lang
        (List.filter_map
           (fun (_, r) -> Result.to_option (Result.map snd r))
           loaded)
    in
    (* One JSON line per instance, in input order (decide_batch
       preserves it regardless of pool size); decided results re-align
       with the loadable subset of the inputs. *)
    let worst = ref 0 in
    let error_line path msg =
      print_endline
        (json_obj [ ("file", json_string path); ("error", json_string msg) ]);
      worst := max !worst 2
    in
    let rec emit loaded results =
      match (loaded, results) with
      | [], [] -> ()
      | (path, Error msg) :: loaded, results ->
          error_line path msg;
          emit loaded results
      | (path, Ok (g, _)) :: loaded, result :: results ->
          (match result with
          | Error msg -> error_line path msg
          | Ok (o : Outcome.t) ->
              print_endline
                (json_obj
                   (("file", json_string path) :: json_verdict_fields g ~lang o));
              let code =
                match o.verdict with
                | Outcome.Definable _ -> 0
                | Outcome.Not_definable _ -> 1
                | Outcome.Unknown Outcome.Budget_exhausted -> 4
                | Outcome.Unknown (Outcome.Unsupported _) -> 2
              in
              worst := max !worst code);
          emit loaded results
      | (_, Ok _) :: _, [] | [], _ :: _ -> assert false
    in
    emit loaded results;
    exit !worst
  in
  let instances_arg =
    (* [string], not [file]: existence is checked at load time so a
       missing file becomes a per-line error object, not a usage error. *)
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"INSTANCE" ~doc:"Instance files to decide.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Decide many instances in one run, fanned out over the domain \
          pool; prints one JSON verdict object per line, in input order. \
          Exit code is the worst per-instance check exit code.")
    Term.(
      const run $ instances_arg $ lang_arg $ k_arg $ fuel_arg $ timeout_arg
      $ domains_arg)

let census_cmd =
  let run path max_k sample =
    let g, _ = load_instance path in
    let c = Definability.Census.binary ~max_k ?sample g in
    Format.printf "%a@." Definability.Census.pp c
  in
  let max_k_arg =
    Arg.(value & opt int 1 & info [ "max-k" ] ~docv:"K"
           ~doc:"Largest register bound column.")
  in
  let sample_arg =
    Arg.(value & opt (some int) None
         & info [ "sample" ] ~docv:"N"
             ~doc:"Sample N random relations instead of enumerating all.")
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:
         "Count how many binary relations of the graph each query language           can define.")
    Term.(const run $ instance_arg $ max_k_arg $ sample_arg)

let fit_cmd =
  let run path =
    let g, s = load_instance path in
    let s = binary_of s in
    let outcomes = Definability.Schema_mapping.fit g [ ("target", s) ] in
    List.iter
      (fun o ->
        Format.printf "%a@." (Definability.Schema_mapping.pp_outcome g) o)
      outcomes
  in
  Cmd.v
    (Cmd.info "fit"
       ~doc:
         "Fit the instance's relation with the least expressive language           that defines it and print the mapping rule.")
    Term.(const run $ instance_arg)

let dot_cmd =
  let run path =
    let g, s = load_instance path in
    print_string (Datagraph.Graph_io.to_dot ~relation:s g)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the instance as a Graphviz digraph.")
    Term.(const run $ instance_arg)

let fig1_cmd =
  let run () =
    let g = Datagraph.Graph_gen.fig1 () in
    let s = Datagraph.Graph_gen.fig1_s2 g in
    print_string
      (Datagraph.Graph_io.instance_to_string g (Tuple_relation.of_binary s))
  in
  Cmd.v
    (Cmd.info "fig1"
       ~doc:
         "Print the paper's Figure 1 graph with relation S2 as an instance \
          file.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* Incremental mode: [watch] replays a JSON edit stream against an
   instance, deciding each step through the certificate-repair fast
   path (Engine.Delta) and reporting per-step repair hits/misses. *)

let read_lines = function
  | "-" ->
      let rec go acc =
        match input_line stdin with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go []
  | path ->
      String.split_on_char '\n' (read_file path)

let watch_cmd =
  let run path edits_path lang k fuel timeout domains =
    set_domains domains;
    let g, s = load_instance path in
    let inst =
      match Instance.create g s with
      | Ok inst -> inst
      | Error msg ->
          Printf.eprintf "error: %s: %s\n" path msg;
          exit 2
    in
    (* Budgets are single-use; each step (and the cold start) gets a
       fresh one from the same flags. *)
    let budget () = Budget.create ?fuel ?deadline_s:timeout () in
    let prev =
      match
        Registry.decide ~budget:(budget ()) ~params:{ Registry.k } ~lang inst
      with
      | Ok o -> o
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2
    in
    let emit step ?edit ?repair (inst : Instance.t) (o : Outcome.t) =
      print_endline
        (json_obj
           ([ ("step", string_of_int step) ]
           @ (match edit with None -> [] | Some e -> [ ("edit", e) ])
           @ (match repair with
             | None -> []
             | Some r -> [ ("repair", json_string r) ])
           @ [
               ( "result",
                 Service.Wire.verdict_to_string (Instance.graph inst) ~lang o );
             ]))
    in
    emit 0 inst prev;
    let hits = ref 0 and misses = ref 0 in
    let rec go step prev inst = function
      | [] -> ()
      | line :: rest when String.trim line = "" -> go step prev inst rest
      | line :: rest -> (
          let fail msg =
            Printf.eprintf "error: edit %d: %s\n" step msg;
            exit 2
          in
          match Service.Wire.edit_of_string line with
          | Error msg -> fail msg
          | Ok edit -> (
              match Service.Wire.resolve_edit (Instance.graph inst) edit with
              | Error msg -> fail msg
              | Ok gedit -> (
                  match
                    Engine.Delta.decide_delta ~budget:(budget ())
                      ~params:{ Registry.k } ~lang ~prev inst gedit
                  with
                  | Error msg -> fail msg
                  | Ok { Engine.Delta.inst = inst'; outcome; repaired } ->
                      incr (if repaired then hits else misses);
                      emit step
                        ~edit:(Service.Wire.edit_to_json_string edit)
                        ~repair:(if repaired then "hit" else "miss")
                        inst' outcome;
                      go (step + 1) outcome inst' rest)))
    in
    go 1 prev inst (read_lines edits_path);
    print_endline
      (json_obj
         [
           ("edits", string_of_int (!hits + !misses));
           ("repair_hits", string_of_int !hits);
           ("repair_misses", string_of_int !misses);
         ])
  in
  let edits_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "edits" ] ~docv:"FILE"
          ~doc:
            "Edit stream: one JSON edit object per line (as in the wire \
             protocol's $(b,delta) op), e.g. \
             {\"edit\":\"add_edge\",\"u\":\"v0\",\"label\":\"a\",\"v\":\"v3\"}. \
             Use $(b,-) for stdin.")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Replay a JSON edit stream against an instance: decide the \
          initial instance cold, then decide each edited instance through \
          the certificate-repair fast path, printing one JSON line per \
          step ($(b,repair) = hit/miss) and a trailing summary with the \
          repair hit counts.")
    Term.(
      const run $ instance_arg $ edits_arg $ lang_arg $ k_arg $ fuel_arg
      $ timeout_arg $ domains_arg)

(* ------------------------------------------------------------------ *)
(* Definability as a service: [serve] runs the long-lived server with
   the cross-request cache; [client] speaks the Wire protocol to it. *)

let parse_address s =
  let prefix p =
    String.length s > String.length p && String.sub s 0 (String.length p) = p
  in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefix "unix:" then Ok (Service.Wire.Unix_sock (after "unix:"))
  else if prefix "tcp:" then
    let rest = after "tcp:" in
    match String.rindex_opt rest ':' with
    | None -> Error "tcp address must be tcp:HOST:PORT"
    | Some i -> (
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Ok (Service.Wire.Tcp (host, p))
        | _ -> Error "tcp port must be in 1..65535")
  else Ok (Service.Wire.Unix_sock s)

let address_of s =
  match parse_address s with
  | Ok a -> a
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2

let address_arg =
  Arg.(
    value
    & opt string "unix:/tmp/defcheck.sock"
    & info [ "a"; "address" ] ~docv:"ADDR"
        ~doc:
          "Server address: $(b,unix:PATH), $(b,tcp:HOST:PORT), or a bare \
           path (taken as a Unix-domain socket).")

let parse_shard s =
  match String.index_opt s '/' with
  | None -> Error "shard must be I/N (e.g. 0/2)"
  | Some i -> (
      match
        ( int_of_string_opt (String.sub s 0 i),
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some idx, Some n when n >= 1 && idx >= 0 && idx < n -> Ok (idx, n)
      | _ -> Error "shard must be I/N with 0 <= I < N")

(* The long-running processes (serve, route) share one observability
   setup: the aggregator sink is always live, [--trace] adds a
   streaming Chrome trace tagged with the process name, and — when
   tracing — SIGTERM/SIGINT are rerouted through [exit] so the at_exit
   close writes the closing bracket: a killed server still leaves a
   loadable trace. *)
let enable_service_plane ~process trace =
  let tracer =
    Option.map
      (fun path ->
        let oc = open_out path in
        let stream = Obs.Sink.Trace.stream ~process oc in
        at_exit (fun () ->
            Obs.Sink.Trace.close_stream ~counters:(Obs.Counter.all ()) stream;
            close_out_noerr oc);
        List.iter
          (fun s ->
            try Sys.set_signal s (Sys.Signal_handle (fun _ -> exit 0))
            with Invalid_argument _ | Sys_error _ -> ())
          [ Sys.sigterm; Sys.sigint ];
        stream)
      trace
  in
  Obs.enable
    (Obs.Sink.Agg.sink (Obs.Sink.Agg.create ())
    ::
    (match tracer with
    | Some t -> [ Obs.Sink.Trace.stream_sink t ]
    | None -> []))

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Slow-request log: every work request whose wall time is at \
           least $(docv) milliseconds emits one JSON line on stderr with \
           its trace id, op, digest and phase breakdown.")

let serve_cmd =
  let run addr domains fuel timeout max_inflight queue_depth pool_queue
      cache_size store fsync auto_compact shard trace slow_ms idle_timeout
      failpoints fault_seed =
    set_domains domains;
    let addr = address_of addr in
    (match Fault.Failpoint.arm ~seed:fault_seed failpoints with
    | Ok () -> ()
    | Error msg ->
        Printf.eprintf "error: --failpoints: %s\n" msg;
        exit 2);
    if max_inflight < 1 || queue_depth < 0 || pool_queue < 0 || cache_size < 1
    then begin
      Printf.eprintf
        "error: need --max-inflight >= 1, --queue-depth >= 0, --pool-queue \
         >= 0, --cache-size >= 1\n";
      exit 2
    end;
    let fsync =
      match Store.Log.fsync_policy_of_string fsync with
      | Ok p -> p
      | Error msg ->
          Printf.eprintf "error: --fsync: %s\n" msg;
          exit 2
    in
    let shard =
      Option.map
        (fun s ->
          match parse_shard s with
          | Ok sh -> sh
          | Error msg ->
              Printf.eprintf "error: --shard: %s\n" msg;
              exit 2)
        shard
    in
    let config =
      {
        Service.Server.max_inflight;
        queue_depth;
        pool_queue_depth = pool_queue;
        default_fuel = fuel;
        default_deadline_s = timeout;
        cache =
          {
            Service.Server.default_config.cache with
            Service.Cache.verdict_capacity = cache_size;
          };
        store_dir = store;
        fsync;
        auto_compact_bytes = auto_compact;
        shard;
        export_limit = Service.Server.default_config.export_limit;
        slow_ms;
        slow_log = Service.Server.default_config.slow_log;
        idle_timeout_s = idle_timeout;
      }
    in
    (* Enable telemetry for the server's lifetime so the service.*
       counters and op histograms accumulate (served back by the
       [metrics] op); --trace streams every span to a Chrome trace. *)
    enable_service_plane
      ~process:
        (match shard with
        | Some (i, n) -> Printf.sprintf "defcheck serve %d/%d" i n
        | None -> "defcheck serve")
      trace;
    match Service.Server.create ~config addr with
    | exception Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "error: cannot listen on %s: %s (%s)\n"
          (Service.Wire.address_to_string addr)
          (Unix.error_message e) arg;
        exit 2
    | server ->
        Printf.eprintf
          "defcheck: serving on %s (domains %d, inflight <= %d, queue <= %d, \
           pool-queue <= %d%s%s)\n%!"
          (Service.Wire.address_to_string addr)
          (Par.Pool.size ()) max_inflight queue_depth pool_queue
          (match config.store_dir with
          | Some dir -> Printf.sprintf ", store %s" dir
          | None -> "")
          (match config.shard with
          | Some (i, n) -> Printf.sprintf ", shard %d/%d" i n
          | None -> "");
        Service.Server.run server
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 4
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Concurrent work requests (decide/batch) executing at once.")
  in
  let queue_depth_arg =
    Arg.(
      value & opt int 16
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Work requests allowed to wait for a slot; beyond this the \
             server answers $(b,overloaded) immediately.")
  in
  let pool_queue_arg =
    Arg.(
      value & opt int 32
      & info [ "pool-queue" ] ~docv:"N"
          ~doc:
            "Backlog bound for work bodies submitted to the domain pool \
             ($(b,--domains) > 1); an admitted request whose body cannot \
             even be queued is answered $(b,overloaded).")
  in
  let cache_size_arg =
    Arg.(
      value & opt int 1024
      & info [ "cache-size" ] ~docv:"N"
          ~doc:"Verdict-cache capacity (LRU entries).")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Durable verdict store directory (created if missing).  The \
             store is recovered on startup — every record's certificate is \
             re-checked — and verdicts survive restarts.")
  in
  let fsync_arg =
    Arg.(
      value & opt string "every:64"
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "Store durability: $(b,never), $(b,always), or $(b,every:N) \
             (sync after every N appends).")
  in
  let auto_compact_arg =
    Arg.(
      value & opt int 0
      & info [ "auto-compact-bytes" ] ~docv:"BYTES"
          ~doc:
            "Compact the store automatically when its log outgrows this \
             many bytes (0 = only on the $(b,compact) op).")
  in
  let shard_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard" ] ~docv:"I/N"
          ~doc:
            "This process's shard identity in a sharded deployment (e.g. \
             $(b,0/2)); informational, reported in $(b,stats).")
  in
  let idle_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-timeout-s" ] ~docv:"SECONDS"
          ~doc:
            "Close a keep-alive connection whose next request does not \
             arrive within $(docv) seconds, so idle clients stop holding \
             a handler thread each (default: wait forever).")
  in
  let failpoints_arg =
    Arg.(
      value & opt string ""
      & info [ "failpoints" ] ~docv:"SPEC"
          ~doc:
            "Arm deterministic failpoints for chaos testing: \
             comma-separated $(i,NAME=TRIGGER) with triggers $(b,once), \
             $(b,after:K) or $(b,1-in:N) — e.g. \
             $(b,store.append.corrupt=1-in:50).  Sites: \
             $(b,store.append.corrupt), $(b,store.append.torn), \
             $(b,store.fsync.skip), $(b,server.admit.overload), \
             $(b,server.pool.reject).")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:"Seed for the failpoint trigger schedule (deterministic).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the definability server: newline-delimited JSON requests \
          over a Unix or TCP socket, verdicts answered from a \
          content-addressed cache when the same instance was decided \
          before.  $(b,--store) adds a durable tier under the in-memory \
          cache.  $(b,--fuel)/$(b,--timeout) set default budgets for \
          requests that carry none.")
    Term.(
      const run $ address_arg $ domains_arg $ fuel_arg $ timeout_arg
      $ max_inflight_arg $ queue_depth_arg $ pool_queue_arg $ cache_size_arg
      $ store_arg $ fsync_arg $ auto_compact_arg $ shard_arg $ trace_arg
      $ slow_ms_arg $ idle_timeout_arg $ failpoints_arg $ fault_seed_arg)

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "connect-retries" ] ~docv:"N"
        ~doc:
          "Retry a refused connect up to $(docv) times with exponential \
           backoff — covers a server that is milliseconds from binding.")

let backoff_arg =
  Arg.(
    value & opt float 0.05
    & info [ "retry-backoff" ] ~docv:"SECONDS"
        ~doc:"Initial backoff between connect retries (doubles each try).")

let client_cmd =
  let run addr op paths lang k fuel timeout ms digest edit retries backoff
      trace_id progress =
    let addr = address_of addr in
    let conn =
      match Service.Client.connect ~retries ~backoff_s:backoff addr with
      | conn -> conn
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "error: cannot connect to %s: %s\n"
            (Service.Wire.address_to_string addr)
            (Unix.error_message e);
          exit 2
    in
    Fun.protect
      ~finally:(fun () -> Service.Client.close conn)
      (fun () ->
        let worst = ref 0 in
        (* The envelope rides on every request of the session: a trace
           id joins the server's spans to this invocation, [--progress]
           asks for interim frames (rendered on stderr so stdout stays
           one verbatim response line per request, as before). *)
        let envelope =
          { Service.Wire.trace_id; parent_span = None; stream = progress }
        in
        let exchange req =
          let line = Service.Wire.request_line ~envelope req in
          match
            if progress then
              Service.Client.request_stream conn
                ~on_progress:(fun frame -> Printf.eprintf "%s\n%!" frame)
                line
            else Service.Client.request_raw conn line
          with
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              exit 2
          | Ok line -> (
              (* The response line is printed verbatim — scripts parse it
                 with jq; the exit code summarizes the status field. *)
              print_endline line;
              let status =
                Result.to_option (Service.Json.parse line)
                |> fun j ->
                Option.bind j (Service.Json.member "status")
                |> fun s -> Option.bind s Service.Json.to_str
              in
              match status with
              | Some "ok" -> ()
              (* Retryable conditions (back off and try again) share an
                 exit code distinct from hard errors. *)
              | Some "overloaded" | Some "unavailable" ->
                  worst := max !worst 3
              | Some _ | None -> worst := max !worst 2)
        in
        let need_files what =
          if paths = [] then begin
            Printf.eprintf "error: %s needs at least one instance file\n" what;
            exit 2
          end
        in
        let read path =
          match read_file path with
          | text -> Ok text
          | exception Sys_error msg -> Error msg
        in
        (match op with
        | "ping" -> exchange Service.Wire.Ping
        | "stats" -> exchange Service.Wire.Stats
        | "metrics" -> exchange Service.Wire.Metrics
        | "shutdown" -> exchange Service.Wire.Shutdown
        | "compact" -> exchange Service.Wire.Compact
        | "sleep" -> exchange (Service.Wire.Sleep { ms })
        | "decide" ->
            need_files "decide";
            List.iter
              (fun path ->
                match read path with
                | Error msg ->
                    Printf.eprintf "error: %s\n" msg;
                    worst := max !worst 2
                | Ok instance ->
                    exchange
                      (Service.Wire.Decide
                         { lang; k = Some k; fuel; timeout_s = timeout; instance }))
              paths
        | "batch" -> (
            need_files "batch";
            let instances =
              List.fold_right
                (fun path acc ->
                  Result.bind acc (fun acc ->
                      Result.map (fun text -> text :: acc) (read path)))
                paths (Ok [])
            in
            match instances with
            | Error msg ->
                Printf.eprintf "error: %s\n" msg;
                exit 2
            | Ok instances ->
                exchange
                  (Service.Wire.Batch
                     { lang; k = Some k; fuel; timeout_s = timeout; instances }))
        | "delta" -> (
            match (digest, edit) with
            | Some digest, Some edit_text -> (
                match Service.Wire.edit_of_string edit_text with
                | Error msg ->
                    Printf.eprintf "error: --edit: %s\n" msg;
                    exit 2
                | Ok edit ->
                    exchange
                      (Service.Wire.Delta
                         { lang; k = Some k; fuel; timeout_s = timeout; digest; edit }))
            | _ ->
                Printf.eprintf "error: delta needs --digest and --edit\n";
                exit 2)
        | other ->
            Printf.eprintf
              "error: unknown op %S \
               (ping|stats|metrics|shutdown|compact|sleep|decide|batch|delta)\n"
              other;
            exit 2);
        exit !worst)
  in
  let op_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:
            "One of $(b,ping), $(b,stats), $(b,metrics), $(b,shutdown), \
             $(b,compact), $(b,sleep), $(b,decide), $(b,batch), \
             $(b,delta).")
  in
  let trace_id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-id" ] ~docv:"ID"
          ~doc:
            "Tag every request of this invocation with a distributed \
             trace id; the server's (and, through a router, the owning \
             shard's) spans carry it, so $(b,trace-merge) and Perfetto \
             queries can follow one request across processes.")
  in
  let progress_arg =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Ask the server to stream interim progress frames (phase \
             enter/exit, counter deltas) while it works; frames are \
             printed to stderr as they arrive, the final response to \
             stdout exactly as without the flag.")
  in
  let files_arg =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"INSTANCE"
          ~doc:"Instance files (for $(b,decide) and $(b,batch)).")
  in
  let ms_arg =
    Arg.(
      value & opt int 100
      & info [ "ms" ] ~docv:"MS"
          ~doc:"Duration for the $(b,sleep) diagnostic op.")
  in
  let digest_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "digest" ] ~docv:"HEX"
          ~doc:
            "For $(b,delta): the instance digest a previous $(b,decide) or \
             $(b,delta) response carried.")
  in
  let edit_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "edit" ] ~docv:"JSON"
          ~doc:
            "For $(b,delta): one JSON edit object, e.g. \
             {\"edit\":\"add_edge\",\"u\":\"v0\",\"label\":\"a\",\"v\":\"v3\"}.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one operation to a running definability server and print \
          each response line verbatim.  Exit code: 0 ok, 2 error, 3 \
          overloaded.")
    Term.(
      const run $ address_arg $ op_arg $ files_arg $ lang_arg $ k_arg
      $ fuel_arg $ timeout_arg $ ms_arg $ digest_arg $ edit_arg $ retries_arg
      $ backoff_arg $ trace_id_arg $ progress_arg)

let route_cmd =
  let run addr shards vnodes warm retries backoff trace shard_timeout_ms
      unhealthy_after health_cooldown =
    let addr = address_of addr in
    if shards = [] then begin
      Printf.eprintf "error: route needs at least one shard address\n";
      exit 2
    end;
    (* Shard names are positional ([shard0], [shard1], …): what feeds
       the ring, so the order of the addresses is the placement. *)
    let shards =
      List.mapi (fun i a -> (Printf.sprintf "shard%d" i, address_of a)) shards
    in
    let config =
      {
        Service.Router.default_config with
        Service.Router.vnodes;
        connect_retries = retries;
        retry_backoff_s = backoff;
        shard_timeout_s =
          Option.map (fun ms -> float_of_int ms /. 1000.) shard_timeout_ms;
        unhealthy_after;
        health_cooldown_s = health_cooldown;
      }
    in
    enable_service_plane ~process:"defcheck route" trace;
    match Service.Router.create ~config ~shards addr with
    | exception Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "error: cannot listen on %s: %s (%s)\n"
          (Service.Wire.address_to_string addr)
          (Unix.error_message e) arg;
        exit 2
    | router ->
        Printf.eprintf "defcheck: routing %s over %s\n%!"
          (Service.Wire.address_to_string addr)
          (String.concat ", "
             (List.map
                (fun (n, a) ->
                  Printf.sprintf "%s=%s" n (Service.Wire.address_to_string a))
                shards));
        if warm > 0 then
          (match Service.Router.rebalance router ~limit:warm () with
          | Ok moved ->
              Printf.eprintf "defcheck: warm transfer moved %d entries\n%!" moved
          | Error msg ->
              Printf.eprintf "warning: warm transfer failed: %s\n%!" msg);
        Service.Router.run router
  in
  let shards_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SHARD_ADDR"
          ~doc:
            "Shard server addresses, in ring order (same syntax as \
             $(b,--address)).")
  in
  let vnodes_arg =
    Arg.(
      value & opt int 64
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Virtual ring points per shard.")
  in
  let warm_arg =
    Arg.(
      value & opt int 0
      & info [ "warm" ] ~docv:"N"
          ~doc:
            "On startup, warm-transfer up to $(docv) hot entries per shard \
             onto the shard the ring says owns them (0 = off) — the join \
             path for a shard that starts empty.")
  in
  let shard_timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline on shard connections: a shard that does \
             not answer within $(docv) milliseconds yields a typed \
             $(b,shard_unavailable) response instead of stalling the \
             client forever (default: wait forever).")
  in
  let unhealthy_after_arg =
    Arg.(
      value & opt int 3
      & info [ "unhealthy-after" ] ~docv:"K"
          ~doc:
            "Mark a shard unhealthy after $(docv) consecutive forward \
             failures; requests to it then fail fast until the cooldown \
             lapses.")
  in
  let health_cooldown_arg =
    Arg.(
      value & opt float 1.0
      & info [ "health-cooldown-s" ] ~docv:"SECONDS"
          ~doc:
            "How long an unhealthy mark lasts before the next routed \
             request probes the shard again.")
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run the shard router: consistent-hashes $(b,decide)/$(b,delta)/\
          $(b,batch) requests over N running $(b,serve --shard) processes \
          by instance digest, aggregates $(b,stats), fans out \
          $(b,compact) and $(b,shutdown).  Responses relay the owning \
          shard's bytes verbatim.")
    Term.(
      const run $ address_arg $ shards_arg $ vnodes_arg $ warm_arg
      $ retries_arg $ backoff_arg $ trace_arg $ shard_timeout_arg
      $ unhealthy_after_arg $ health_cooldown_arg)

(* Stitch per-process Chrome trace files (each traced relative to its
   own start) onto one shared timeline: every stream opens with a
   clock_sync metadata event carrying its absolute origin in unix epoch
   microseconds; shifting each file's timestamps by its origin minus
   the earliest origin lines all processes up, and giving each file its
   own pid renders them as separate process tracks in Perfetto.  Spans
   tagged with a shared trace_id then read as one distributed request
   crossing process lanes. *)
let trace_merge_cmd =
  let run inputs output =
    let module J = Service.Json in
    if inputs = [] then begin
      Printf.eprintf "error: trace-merge needs at least one trace file\n";
      exit 2
    end;
    let die fmt =
      Printf.ksprintf
        (fun m ->
          Printf.eprintf "error: %s\n" m;
          exit 2)
        fmt
    in
    let events_of path =
      match read_file path with
      | exception Sys_error msg -> die "%s" msg
      | text -> (
          match J.parse text with
          | Error msg -> die "%s: %s" path msg
          | Ok (J.List events) -> events
          | Ok _ -> die "%s: not a Chrome trace array" path)
    in
    let str_field name ev = Option.bind (J.member name ev) J.to_str in
    let epoch_of path events =
      match
        List.find_map
          (fun ev ->
            if str_field "name" ev = Some "clock_sync" then
              Option.bind (J.member "args" ev) (fun a ->
                  Option.bind (J.member "unix_epoch_us" a) J.to_float)
            else None)
          events
      with
      | Some e -> e
      | None ->
          die "%s: no clock_sync event (is this a --trace streamed file?)" path
    in
    let files = List.map (fun p -> (p, events_of p)) inputs in
    let epochs = List.map (fun (p, evs) -> epoch_of p evs) files in
    let origin = List.fold_left Float.min infinity epochs in
    let set k v fields =
      if List.mem_assoc k fields then
        List.map
          (fun (k', v') -> if String.equal k' k then (k, v) else (k', v'))
          fields
      else fields @ [ (k, v) ]
    in
    (* Per file: drop the clock_sync (consumed here), give every event
       the file's pid, shift non-metadata timestamps onto the shared
       origin, and make sure a process_name survives so Perfetto labels
       the track (synthesized from the filename when absent). *)
    let merge_file index ((path, events), epoch) =
      let pid = index + 1 in
      let shift_us = epoch -. origin in
      let named = ref false in
      let events =
        List.filter_map
          (fun ev ->
            match ev with
            | J.Obj fields -> (
                let name = str_field "name" ev in
                if name = Some "clock_sync" then None
                else begin
                  if name = Some "process_name" then named := true;
                  let is_meta = str_field "ph" ev = Some "M" in
                  let fields = set "pid" (J.Number (float_of_int pid)) fields in
                  let fields =
                    match
                      Option.bind (List.assoc_opt "ts" fields) J.to_float
                    with
                    | Some ts when not is_meta ->
                        set "ts" (J.Number (ts +. shift_us)) fields
                    | _ -> fields
                  in
                  Some (J.Obj fields)
                end)
            | _ -> die "%s: non-object trace event" path)
          events
      in
      if !named then events
      else
        J.Obj
          [
            ("name", J.String "process_name");
            ("cat", J.String "__metadata");
            ("ph", J.String "M");
            ("ts", J.Number 0.);
            ("pid", J.Number (float_of_int pid));
            ("tid", J.Number 0.);
            ("args", J.Obj [ ("name", J.String (Filename.basename path)) ]);
          ]
        :: events
    in
    let merged =
      List.concat (List.mapi merge_file (List.combine files epochs))
    in
    (* Metadata first, then slices/counters by shifted timestamp, so
       the merged file reads chronologically. *)
    let ts_of ev = Option.bind (J.member "ts" ev) J.to_float in
    let key ev =
      if str_field "ph" ev = Some "M" then neg_infinity
      else Option.value (ts_of ev) ~default:0.
    in
    let merged =
      List.stable_sort (fun a b -> Float.compare (key a) (key b)) merged
    in
    let oc = match output with None -> stdout | Some p -> open_out p in
    output_string oc "[";
    List.iteri
      (fun i ev ->
        output_string oc (if i = 0 then "\n" else ",\n");
        output_string oc (J.to_string ev))
      merged;
    output_string oc "\n]\n";
    if output <> None then close_out oc else flush oc;
    (match output with
    | Some p ->
        Printf.eprintf "defcheck: merged %d trace files (%d events) into %s\n%!"
          (List.length inputs) (List.length merged) p
    | None -> ())
  in
  let inputs_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TRACE"
          ~doc:
            "Chrome trace-event files as written by $(b,--trace) \
             (router, shards, checks), one per process.")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Merged trace destination (default: stdout).")
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:
         "Merge per-process Chrome trace files onto one timeline: each \
          file's $(b,clock_sync) origin aligns its timestamps, each file \
          becomes its own pid/track, and spans sharing a $(b,trace_id) \
          read as one distributed request across processes.  The output \
          loads in Perfetto or chrome://tracing.")
    Term.(const run $ inputs_arg $ output_arg)

let load_cmd =
  let run addr seed profile_file report_file compare_file requests quiet =
    let addr = address_of addr in
    let profile =
      match profile_file with
      | None -> Load.Workload.default_profile
      | Some path -> (
          match
            try Load.Workload.profile_of_string (read_file path)
            with Sys_error msg -> Error msg
          with
          | Ok p -> p
          | Error msg ->
              Printf.eprintf "error: %s: %s\n" path msg;
              exit 2)
    in
    let profile =
      match requests with
      | Some n -> { profile with Load.Workload.requests = n }
      | None -> profile
    in
    match Load.Workload.build ~seed profile with
    | Error msg ->
        Printf.eprintf "error: workload: %s\n" msg;
        exit 2
    | Ok wl -> (
        Printf.eprintf
          "defcheck: load seed=%d entries=%d ops=%d schedule_crc=%s -> %s\n%!"
          seed
          (Array.length wl.Load.Workload.entries)
          (Array.length wl.Load.Workload.ops)
          wl.Load.Workload.schedule_crc
          (Service.Wire.address_to_string addr);
        let progress =
          if quiet then fun _ -> ()
          else fun n ->
            Printf.eprintf "defcheck: %d/%d ops done\n%!" n
              profile.Load.Workload.requests
        in
        match Load.Runner.run ~progress ~seed ~addr wl with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 2
        | Ok report -> (
            let text = Load.Runner.report_to_string report in
            (match report_file with
            | Some path ->
                let oc = open_out_bin path in
                output_string oc text;
                output_char oc '\n';
                close_out oc
            | None -> print_endline text);
            Printf.eprintf
              "defcheck: %d requests, %d ok, %d verdict digests, %.2fs\n%!"
              report.Load.Runner.requests report.Load.Runner.ok
              (List.length report.Load.Runner.verdicts)
              report.Load.Runner.wall_s;
            List.iter
              (fun (cls, n) -> Printf.eprintf "defcheck:   %s: %d\n%!" cls n)
              report.Load.Runner.errors;
            match compare_file with
            | None -> if report.Load.Runner.disallowed <> [] then exit 1
            | Some path -> (
                match
                  try Load.Runner.report_of_string (read_file path)
                  with Sys_error msg -> Error msg
                with
                | Error msg ->
                    Printf.eprintf "error: %s: %s\n" path msg;
                    exit 2
                | Ok clean -> (
                    match Load.Runner.check ~clean ~chaos:report with
                    | Ok compared ->
                        Printf.eprintf
                          "defcheck: safety invariant holds (%d digests \
                           compared against %s)\n\
                           %!"
                          compared path
                    | Error violations ->
                        List.iter
                          (fun v ->
                            Printf.eprintf "defcheck: VIOLATION: %s\n%!" v)
                          violations;
                        exit 1))))
  in
  let addr_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:"Server or router address (same syntax as $(b,--address)).")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Workload seed.  The whole schedule — instances, op mix, key \
             popularity, delta chains — is a pure function of \
             $(b,--seed) and the profile, so the same seed replays \
             byte-identical requests anywhere.")
  in
  let profile_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Workload profile (JSON); absent fields take their defaults. \
             Omit for the built-in default profile.")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write the JSON report (latencies, error taxonomy, verdict \
             map) to $(docv) instead of stdout.")
  in
  let compare_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"FILE"
          ~doc:
            "Check the safety invariant against a clean run's report: \
             same schedule CRC, byte-identical verdicts per digest, no \
             disallowed events.  Exit 1 on any violation.")
  in
  let requests_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "requests" ] ~docv:"N"
          ~doc:"Override the profile's request count.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No per-1000-ops progress lines.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive a deterministic adversarial workload (seeded instance \
          families, Zipf/uniform/shifting-hot key popularity, \
          decide/batch/delta op mix, closed- or open-loop arrival) \
          against a running $(b,serve) or $(b,route) process; record \
          latencies, a typed error taxonomy and the digest->verdict map; \
          optionally $(b,--compare) against a clean run to assert the \
          chaos safety invariant.")
    Term.(
      const run $ addr_pos $ seed_arg $ profile_arg $ report_arg
      $ compare_arg $ requests_arg $ quiet_arg)

let chaos_proxy_cmd =
  let run listen upstream faults seed =
    let listen = address_of listen and upstream = address_of upstream in
    match Fault.Proxy.rules_of_string faults with
    | Error msg ->
        Printf.eprintf "error: --faults: %s\n" msg;
        exit 2
    | Ok rules -> (
        match
          Fault.Proxy.create ~seed
            ~listen:(Service.Wire.sockaddr_of listen)
            ~upstream:(Service.Wire.sockaddr_of upstream)
            rules
        with
        | exception Unix.Unix_error (e, _, arg) ->
            Printf.eprintf "error: cannot listen on %s: %s (%s)\n"
              (Service.Wire.address_to_string listen)
              (Unix.error_message e) arg;
            exit 2
        | proxy ->
            Printf.eprintf
              "defcheck: chaos proxy %s -> %s, seed=%d, faults=%s\n%!"
              (Service.Wire.address_to_string listen)
              (Service.Wire.address_to_string upstream)
              seed
              (match rules with
              | [] -> "(none)"
              | rs -> Fault.Proxy.rules_to_string rs);
            at_exit (fun () ->
                List.iter
                  (fun (k, v) ->
                    Printf.eprintf "defcheck: proxy %s=%d\n%!" k v)
                  (Fault.Proxy.stats proxy));
            Fault.Proxy.run proxy)
  in
  let listen_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LISTEN"
          ~doc:"Address to listen on (same syntax as $(b,--address)).")
  in
  let upstream_pos =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"UPSTREAM"
          ~doc:"Address of the real server/shard to forward to.")
  in
  let faults_arg =
    Arg.(
      value & opt string ""
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated $(i,ACTION@TRIGGER) rules; actions \
             $(b,delay-ms:N), $(b,reset), $(b,truncate), $(b,corrupt); \
             triggers $(b,once), $(b,after:K), $(b,1-in:N).  Example: \
             $(b,delay-ms:20@1-in:11,reset@1-in:211,corrupt@1-in:97).  \
             Empty: a transparent proxy (the overhead baseline).")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S"
          ~doc:"Fault-schedule seed (deterministic per line ordinal).")
  in
  Cmd.v
    (Cmd.info "chaos-proxy"
       ~doc:
         "Byte-level fault-injecting proxy for the newline-JSON \
          protocol: sit between a router and a shard (or a client and a \
          server) and inject delays, connection resets, line truncation \
          and byte corruption on a deterministic seeded schedule.  \
          Sealed responses make corruption downstream-detectable: the \
          receiver rejects the line, it never becomes a wrong verdict.")
    Term.(const run $ listen_pos $ upstream_pos $ faults_arg $ seed_arg)

let main =
  Cmd.group
    (Cmd.info "defcheck" ~version:"1.0.0"
       ~doc:"Definability of relations on data graphs (PODS 2015).")
    [
      info_cmd;
      eval_cmd;
      check_cmd;
      batch_cmd;
      watch_cmd;
      census_cmd;
      fit_cmd;
      dot_cmd;
      fig1_cmd;
      serve_cmd;
      route_cmd;
      client_cmd;
      load_cmd;
      chaos_proxy_cmd;
      trace_merge_cmd;
    ]

let () = exit (Cmd.eval main)
