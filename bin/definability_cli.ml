(* defcheck — definability checking on data graphs from the command line.

   Subcommands:
     info   <instance>                 graph statistics
     eval   <graph> -l LANG -e EXPR    evaluate a query
     check  <instance> -l LANG [...]   decide definability, synthesize
     batch  <instances...> -l LANG     decide many instances, one JSON
                                       line each (Registry.decide_batch)
     fig1                              print the paper's running example

   [check] exit codes: 0 definable, 1 not definable, 2 usage/load errors,
   4 unknown (budget exhausted).

   [--domains N] sizes the worker-domain pool (Par.Pool); verdicts,
   certificates and counterexamples are identical at any pool size. *)

module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Tuple_relation = Datagraph.Tuple_relation
module Budget = Engine.Budget
module Instance = Engine.Instance
module Outcome = Engine.Outcome
module Registry = Engine.Registry

let () = Definability.Deciders.init ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_instance path =
  match Datagraph.Graph_io.instance_of_string (read_file path) with
  | Ok (g, s) -> (g, s)
  | Error msg ->
      Printf.eprintf "error: %s: %s\n" path msg;
      exit 2

let binary_of s =
  if Tuple_relation.arity s <> 2 then begin
    Printf.eprintf "error: relation must be binary for this language\n";
    exit 2
  end
  else Tuple_relation.to_binary s

(* Minimal JSON emission — the output grammar is flat enough that a
   string escaper and a few combinators beat a dependency. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let json_list xs = "[" ^ String.concat "," xs ^ "]"

(* The verdict block: everything that must be byte-identical at any
   domain-pool size (the stats block below it may legitimately vary —
   timings, node counts under parallel cancellation).  [check --json]
   and [batch] both render it through this one function. *)
let json_verdict_fields g ~lang (o : Outcome.t) =
  let certificate =
    match Outcome.certificate o with
    | None -> "null"
    | Some c ->
        json_obj
          [
            ("lang", json_string (Outcome.certificate_lang c));
            ("query", json_string (Outcome.certificate_to_string c));
          ]
  in
  let name u = json_string (Data_graph.name g u) in
  let counterexample =
    match o.verdict with
    | Outcome.Not_definable (Outcome.Missing_pairs pairs) ->
        json_obj
          [
            ( "missing_pairs",
              json_list
                (List.map (fun (u, v) -> json_list [ name u; name v ]) pairs) );
          ]
    | Outcome.Not_definable (Outcome.Violating_hom { hom; tuple }) ->
        json_obj
          [
            ("hom", json_list (Array.to_list (Array.map name hom)));
            ("tuple", json_list (List.map name tuple));
          ]
    | Outcome.Definable _ | Outcome.Unknown _ -> "null"
  in
  let reason =
    match o.verdict with
    | Outcome.Unknown r -> json_string (Outcome.reason_to_string r)
    | Outcome.Definable _ | Outcome.Not_definable _ -> "null"
  in
  [
    ("lang", json_string lang);
    ("verdict", json_string (Outcome.verdict_name o.verdict));
    ("reason", reason);
    ("certificate", certificate);
    ("counterexample", counterexample);
  ]

let json_of_outcome g ~lang ~budget ~phases (o : Outcome.t) =
  let stats =
    (* Telemetry renders here: the budget's fuel accounting, per-phase
       wall time from the in-memory aggregator, and the full counter
       catalogue (zeros included, so the key set is stable across
       languages). *)
    let budget_json =
      json_obj
        [
          ("used", string_of_int (Budget.used budget));
          ( "fuel",
            match Budget.fuel_limit budget with
            | Some f -> string_of_int f
            | None -> "null" );
          ("exhausted", if Budget.exhausted budget then "true" else "false");
        ]
    in
    let phases_json =
      json_obj
        (List.map
           (fun (name, calls, total_s) ->
             ( name,
               json_obj
                 [
                   ("calls", string_of_int calls);
                   ("wall_s", Printf.sprintf "%.6f" total_s);
                 ] ))
           phases)
    in
    let counters_json =
      json_obj
        (List.map (fun (name, v) -> (name, string_of_int v)) (Obs.Counter.all ()))
    in
    json_obj
      (("steps", string_of_int o.stats.steps)
      :: ("elapsed_s", Printf.sprintf "%.6f" o.stats.elapsed_s)
      :: List.map (fun (k, v) -> (k, string_of_int v)) o.stats.extras
      @ [
          ("budget", budget_json);
          ("phases", phases_json);
          ("counters", counters_json);
        ])
  in
  json_obj (json_verdict_fields g ~lang o @ [ ("stats", stats) ])

open Cmdliner

let instance_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"INSTANCE" ~doc:"Instance file (node/edge/pair lines).")

let lang_arg =
  Arg.(
    value & opt string "rem"
    & info [ "l"; "lang" ] ~docv:"LANG"
        ~doc:
          "Query language: $(b,rpq) (regular expressions), $(b,ree) \
           (regular expressions with equality), $(b,rem) (regular \
           expressions with memory), $(b,krem) (REM with at most $(b,--k) \
           registers), $(b,ucrdpq) (unions of conjunctive queries).")

let k_arg =
  Arg.(
    value & opt int 1
    & info [ "k" ] ~docv:"K" ~doc:"Register bound for $(b,krem).")

let synth_arg =
  Arg.(
    value & flag
    & info [ "s"; "synthesize" ]
        ~doc:"Print a defining query when the relation is definable.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Print the outcome as a JSON object on one line.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Abort with an unknown verdict after $(docv) search steps \
           (explored tuples / closure elements / CSP nodes).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Abort with an unknown verdict after $(docv) seconds.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the decision's phases \
           and counters to $(docv), loadable in chrome://tracing or \
           Perfetto.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Size of the worker-domain pool used by the parallel search \
           kernels and $(b,batch) (default: the $(b,PAR_DOMAINS) \
           environment variable, else 1 = fully sequential).  Verdicts, \
           certificates and counterexamples are identical at any pool \
           size.")

let set_domains = function
  | None -> ()
  | Some n ->
      if n < 1 then begin
        Printf.eprintf "error: --domains must be at least 1\n";
        exit 2
      end;
      Par.Pool.set_size n

let info_cmd =
  let run path =
    let g, s = load_instance path in
    Format.printf "nodes: %d@." (Data_graph.size g);
    Format.printf "edges: %d@." (Data_graph.edge_count g);
    Format.printf "alphabet: %s@." (String.concat " " (Data_graph.alphabet g));
    Format.printf "distinct data values (delta): %d@." (Data_graph.delta g);
    Format.printf "relation arity: %d, tuples: %d@."
      (Tuple_relation.arity s) (Tuple_relation.cardinal s)
  in
  Cmd.v (Cmd.info "info" ~doc:"Print statistics of an instance file.")
    Term.(const run $ instance_arg)

let expr_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Query expression.")

let eval_cmd =
  let run path lang expr =
    let g, _ = load_instance path in
    let lang =
      match lang with
      | "rpq" -> `Rpq
      | "ree" -> `Ree
      | "rem" | "krem" -> `Rem
      | other ->
          Printf.eprintf
            "error: eval supports rpq/ree/rem expressions, not %s\n" other;
          exit 2
    in
    match Query_lang.Query.parse ~lang expr with
    | Error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 2
    | Ok q ->
        let r = Query_lang.Query.eval g q in
        Format.printf "%a@." (Relation.pp g) r
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a query expression on a data graph.")
    Term.(const run $ instance_arg $ lang_arg $ expr_arg)

let check_cmd =
  let run path lang k synth json fuel timeout trace domains =
    set_domains domains;
    let g, s = load_instance path in
    (* Telemetry is always on for a check: the aggregator feeds the
       [stats] block of --json, and --trace additionally collects the
       raw spans.  One decision's worth of observation is far below the
       cost of the decision itself. *)
    let agg = Obs.Sink.Agg.create () in
    let tracer = Option.map (fun _ -> Obs.Sink.Trace.create ()) trace in
    Obs.enable
      (Obs.Sink.Agg.sink agg
      ::
      (match tracer with Some t -> [ Obs.Sink.Trace.sink t ] | None -> []));
    let write_trace () =
      Obs.disable ();
      match (trace, tracer) with
      | Some path, Some t ->
          let oc = open_out path in
          Obs.Sink.Trace.write ~counters:(Obs.Counter.all ()) t oc;
          close_out oc
      | _ -> ()
    in
    let inst =
      match Instance.create g s with
      | Ok inst -> inst
      | Error msg ->
          Printf.eprintf "error: %s: %s\n" path msg;
          exit 2
    in
    (* Always run under a budget (unlimited when no flag is given) so
       fuel accounting is reportable in the stats block. *)
    let budget = Budget.create ?fuel ?deadline_s:timeout () in
    let outcome =
      match
        Registry.decide ~budget ~params:{ Registry.k } ~lang inst
      with
      | Ok o -> o
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2
    in
    (match outcome.verdict with
    | Outcome.Unknown (Outcome.Unsupported msg) when not json ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | _ -> ());
    if json then
      print_endline
        (json_of_outcome g ~lang ~budget
           ~phases:(Obs.Sink.Agg.phases agg)
           outcome)
    else begin
      List.iter
        (fun (key, v) -> Format.printf "%s: %d@." key v)
        outcome.stats.extras;
      match outcome.verdict with
      | Outcome.Definable cert ->
          Format.printf "definable: yes@.";
          if synth then begin
            match Outcome.check_certificate inst cert with
            | Ok () ->
                Format.printf "query: %s@." (Outcome.certificate_to_string cert)
            | Error msg ->
                Printf.eprintf "error: synthesized query failed checking: %s\n"
                  msg;
                exit 2
          end
      | Outcome.Not_definable (Outcome.Missing_pairs pairs) ->
          Format.printf "definable: no@.";
          Format.printf "pairs with no witness:";
          List.iter
            (fun (u, v) ->
              Format.printf " (%s,%s)" (Data_graph.name g u)
                (Data_graph.name g v))
            pairs;
          Format.printf "@."
      | Outcome.Not_definable (Outcome.Violating_hom { hom; tuple }) ->
          Format.printf "definable: no@.";
          Format.printf "violating homomorphism: %a@."
            (Definability.Hom.pp g) hom;
          Format.printf "tuple leaving the relation: (%s)@."
            (String.concat "," (List.map (Data_graph.name g) tuple))
      | Outcome.Unknown Outcome.Budget_exhausted ->
          Format.printf "definable: unknown (budget exhausted after %d tuples)@."
            outcome.stats.steps
      | Outcome.Unknown (Outcome.Unsupported _) -> assert false
    end;
    write_trace ();
    match outcome.verdict with
    | Outcome.Definable _ -> exit 0
    | Outcome.Not_definable _ -> exit 1
    | Outcome.Unknown Outcome.Budget_exhausted -> exit 4
    | Outcome.Unknown (Outcome.Unsupported _) -> exit 2
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Decide whether the instance's relation is definable in a query \
          language.")
    Term.(
      const run $ instance_arg $ lang_arg $ k_arg $ synth_arg $ json_arg
      $ fuel_arg $ timeout_arg $ trace_arg $ domains_arg)

let batch_cmd =
  let run paths lang k fuel timeout domains =
    set_domains domains;
    let loaded =
      List.map
        (fun path ->
          let g, s = load_instance path in
          match Instance.create g s with
          | Ok inst -> (path, g, inst)
          | Error msg ->
              Printf.eprintf "error: %s: %s\n" path msg;
              exit 2)
        paths
    in
    let make_budget () = Budget.create ?fuel ?deadline_s:timeout () in
    let results =
      Registry.decide_batch ~make_budget ~params:{ Registry.k } ~lang
        (List.map (fun (_, _, inst) -> inst) loaded)
    in
    (* One JSON line per instance, in input order (decide_batch
       preserves it regardless of pool size). *)
    let worst = ref 0 in
    List.iter2
      (fun (path, g, _) result ->
        match result with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 2
        | Ok (o : Outcome.t) ->
            print_endline
              (json_obj
                 (("file", json_string path) :: json_verdict_fields g ~lang o));
            let code =
              match o.verdict with
              | Outcome.Definable _ -> 0
              | Outcome.Not_definable _ -> 1
              | Outcome.Unknown Outcome.Budget_exhausted -> 4
              | Outcome.Unknown (Outcome.Unsupported _) -> 2
            in
            worst := max !worst code)
      loaded results;
    exit !worst
  in
  let instances_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"INSTANCE" ~doc:"Instance files to decide.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Decide many instances in one run, fanned out over the domain \
          pool; prints one JSON verdict object per line, in input order. \
          Exit code is the worst per-instance check exit code.")
    Term.(
      const run $ instances_arg $ lang_arg $ k_arg $ fuel_arg $ timeout_arg
      $ domains_arg)

let census_cmd =
  let run path max_k sample =
    let g, _ = load_instance path in
    let c = Definability.Census.binary ~max_k ?sample g in
    Format.printf "%a@." Definability.Census.pp c
  in
  let max_k_arg =
    Arg.(value & opt int 1 & info [ "max-k" ] ~docv:"K"
           ~doc:"Largest register bound column.")
  in
  let sample_arg =
    Arg.(value & opt (some int) None
         & info [ "sample" ] ~docv:"N"
             ~doc:"Sample N random relations instead of enumerating all.")
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:
         "Count how many binary relations of the graph each query language           can define.")
    Term.(const run $ instance_arg $ max_k_arg $ sample_arg)

let fit_cmd =
  let run path =
    let g, s = load_instance path in
    let s = binary_of s in
    let outcomes = Definability.Schema_mapping.fit g [ ("target", s) ] in
    List.iter
      (fun o ->
        Format.printf "%a@." (Definability.Schema_mapping.pp_outcome g) o)
      outcomes
  in
  Cmd.v
    (Cmd.info "fit"
       ~doc:
         "Fit the instance's relation with the least expressive language           that defines it and print the mapping rule.")
    Term.(const run $ instance_arg)

let dot_cmd =
  let run path =
    let g, s = load_instance path in
    print_string (Datagraph.Graph_io.to_dot ~relation:s g)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the instance as a Graphviz digraph.")
    Term.(const run $ instance_arg)

let fig1_cmd =
  let run () =
    let g = Datagraph.Graph_gen.fig1 () in
    let s = Datagraph.Graph_gen.fig1_s2 g in
    print_string
      (Datagraph.Graph_io.instance_to_string g (Tuple_relation.of_binary s))
  in
  Cmd.v
    (Cmd.info "fig1"
       ~doc:
         "Print the paper's Figure 1 graph with relation S2 as an instance \
          file.")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "defcheck" ~version:"1.0.0"
       ~doc:"Definability of relations on data graphs (PODS 2015).")
    [
      info_cmd;
      eval_cmd;
      check_cmd;
      batch_cmd;
      census_cmd;
      fit_cmd;
      dot_cmd;
      fig1_cmd;
    ]

let () = exit (Cmd.eval main)
