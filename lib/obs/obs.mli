(** Zero-dependency telemetry for the decision engine.

    The library has four pieces: {!Span} (timed, nested phases of a
    decision — CSP construction, witness search, REE closure, …),
    {!Counter} (monotone event counts — cache hits and misses, budget
    takes, reachability-matrix builds), {!Histogram} (log-bucketed
    latency distributions with mergeable snapshots and percentile
    extraction), and {!Sink} (where span records go: an in-memory
    per-phase aggregator, a Chrome trace-event collector, or nothing).

    {b Overhead policy.}  Telemetry is globally disabled by default.
    Every observation point — {!Span.with_}, {!Counter.incr},
    {!Histogram.record_ns} — is guarded by a single branch on one atomic
    flag, so the instrumented hot paths ([Hom] cache probes, [Rem] memo
    lookups, [Budget.take], [Store.Log] appends) pay one predictable
    branch and nothing else when disabled; in particular no clock
    syscalls, no allocation, and no sink dispatch.  Enabling is scoped
    and explicit: {!enable} installs sinks and zeroes all counters and
    histograms, {!disable} uninstalls them.

    {b Domain safety.}  Counters and histogram buckets are atomic
    (increments from worker domains never lose updates), span nesting
    depth is tracked per-domain, each span records the domain and thread
    that produced it, and sink dispatch is serialized by one lock taken
    only while telemetry is enabled — so the engine's parallel kernels
    and [decide_batch] can run instrumented.  The Chrome trace sink
    emits one thread track per (domain, thread) lane, keeping concurrent
    span trees properly nested and the trace Perfetto-valid.
    [enable]/[disable] themselves are management operations: call them
    from one domain, outside parallel regions.

    {b Distributed traces.}  {!Ctx.with_trace} tags every span recorded
    by the current (domain, thread) lane with a trace id; the service
    layer carries that id across socket hops, so per-process Chrome
    traces can be stitched into one timeline ([defcheck trace-merge]). *)

type span = {
  name : string;  (** phase name, e.g. ["witness.search"] *)
  start_s : float;  (** [Unix.gettimeofday] at entry *)
  stop_s : float;  (** … and at exit (including exceptional exit) *)
  depth : int;  (** nesting depth at entry; 0 = root span *)
  dom : int;  (** id of the domain that recorded the span *)
  tid : int;  (** thread id within the domain (0 unless a hook is set) *)
  trace : string option;  (** distributed-trace id, when recorded under one *)
}

val set_thread_id_fn : (unit -> int) -> unit
(** Install the thread-identity hook.  This library does not depend on
    the [threads] library, so a threaded linker (the service layer)
    installs [fun () -> Thread.id (Thread.self ())] once at startup;
    everyone else keeps the default [fun () -> 0]. *)

val thread_id : unit -> int
(** The current thread id as reported by the installed hook. *)

(** Per-lane distributed-trace context. *)
module Ctx : sig
  val with_trace : string option -> (unit -> 'a) -> 'a
  (** [with_trace (Some id) f] runs [f] with every span recorded by this
      (domain, thread) lane tagged [trace = Some id]; [with_trace None f]
      clears the tag for the extent of [f].  Restores the previous
      context on exit, including exceptional exit. *)

  val current : unit -> string option
  (** The trace id of the current lane, if any. *)
end

module Counter : sig
  type t

  val make : string -> t
  (** Create and register a named counter (module-initialization time;
      the registry is global and append-only). *)

  val incr : t -> unit
  (** Add one.  No-op (one branch) while telemetry is disabled. *)

  val add : t -> int -> unit
  (** Add [n].  No-op while disabled. *)

  val value : t -> int
  val name : t -> string

  val all : unit -> (string * int) list
  (** Every registered counter with its current value, sorted by name.
      Counters register themselves at module-initialization time, so
      the catalogue always lists every instrumented subsystem that is
      linked in — zeros included. *)

  val reset_all : unit -> unit
  (** Zero every counter ({!enable} does this automatically). *)
end

(** Log-bucketed latency histograms.

    Fixed-size bucket array: 16 exact one-nanosecond buckets below 16ns,
    then 4 sub-buckets per power of two up to [2^60]ns, then one
    overflow bucket — 241 buckets total, each an [int Atomic.t], so
    recording from any domain is lock-free and allocation-free.
    Relative bucket width is ≤ 1/4 of the value, which bounds the error
    of any reported percentile.  Snapshots are plain int arrays and
    merge by pointwise addition, so the router can aggregate shard
    histograms and extract cluster-wide percentiles exactly. *)
module Histogram : sig
  type t

  val make : string -> t
  (** Create and register a named histogram (module-initialization time;
      the registry is global and append-only). *)

  val name : t -> string

  val record_ns : t -> int -> unit
  (** Record one sample, in nanoseconds.  No-op (one branch) while
      telemetry is disabled; negative samples clamp to 0. *)

  val record_s : t -> float -> unit
  (** Record one sample, in seconds (converted to ns, rounded). *)

  val time : t -> (unit -> 'a) -> 'a
  (** [time h f] runs [f], recording its wall time — also on exceptional
      exit.  While disabled this is exactly [f ()] after one branch: no
      clock syscall is made. *)

  val n_buckets : int

  val bucket_index : int -> int
  (** The bucket a sample of [v] ns lands in. *)

  val bucket_upper_ns : int -> int
  (** Inclusive upper bound of bucket [i] in ns ([max_int] for the
      overflow bucket).  [bucket_index (bucket_upper_ns i) = i] for all
      non-overflow buckets. *)

  (** A point-in-time copy of the bucket array; plain data, safe to
      serialize and merge. *)
  type snapshot = { counts : int array; sum_ns : int }

  val snapshot : t -> snapshot
  val zero_snapshot : unit -> snapshot

  val merge : snapshot -> snapshot -> snapshot
  (** Pointwise sum.  Tolerates snapshots of differing lengths (shorter
      arrays are zero-padded), so wire peers of different builds merge
      safely. *)

  val total : snapshot -> int
  (** Total sample count. *)

  val percentile_of : snapshot -> float -> int
  (** [percentile_of s p] (p in [0,100]) returns the inclusive upper
      bound, in ns, of the bucket holding the [ceil (p/100 * n)]-th
      smallest sample — i.e. the value a sorted reference array would
      report, rounded up to its bucket boundary.  0 when empty. *)

  val percentile_ns : t -> float -> int
  val count : t -> int
  val sum_ns : t -> int

  val reset : t -> unit
  val reset_all : unit -> unit
  (** Zero every histogram ({!enable} does this automatically). *)

  val all : unit -> t list
  (** Every registered histogram, sorted by name. *)
end

module Sink : sig
  type t
  (** A span consumer.  Sinks receive each completed span exactly once,
      at span exit (innermost first); sinks built with {!make_full} are
      additionally notified at span entry. *)

  val make : (span -> unit) -> t

  val make_full : enter:(span -> unit) -> (span -> unit) -> t
  (** [make_full ~enter record]: [enter] fires at span entry with a span
      whose [stop_s] equals [start_s] (the duration is not yet known);
      [record] fires at exit with the completed span.  Both run under
      the sink dispatch lock — they must not raise (an exception
      propagates to the instrumented code) and must not re-enter
      {!Span.with_}. *)

  val null : t
  (** Drops everything — observation with no record. *)

  (** In-memory per-phase aggregation: call counts and total wall time
      keyed by span name.  This is what renders as the [stats] block of
      [check --json] and the per-phase bench breakdowns. *)
  module Agg : sig
    type agg

    val create : unit -> agg
    val sink : agg -> t

    val phases : agg -> (string * int * float) list
    (** [(name, calls, total wall seconds)] per distinct span name,
        sorted by name. *)
  end

  (** Chrome [trace_event] collection: keeps every span and serializes
      the lot as a JSON array of complete ("ph":"X") events, plus one
      counter ("ph":"C") event per registered counter, loadable in
      [chrome://tracing] and Perfetto.  Timestamps are microseconds
      relative to the earliest recorded span.  Spans recorded under a
      {!Ctx} trace context carry ["trace_id"] in their args. *)
  module Trace : sig
    type trace

    val create : unit -> trace
    val sink : trace -> t

    val to_string : ?counters:(string * int) list -> trace -> string
    val write : ?counters:(string * int) list -> trace -> out_channel -> unit

    (** {2 Streaming}

        The in-memory collector above loses everything when the traced
        computation raises before [write] runs.  A [stream] writes each
        span to the channel the moment it completes (one flush per
        event), so the file always holds every finished span; and
        {!close_stream} — idempotent, safe from [at_exit] — terminates
        the JSON array on both normal and exceptional exits, keeping the
        file loadable in Perfetto either way. *)

    type stream

    val stream : ?process:string -> out_channel -> stream
    (** Write the array opener, a ["clock_sync"] metadata event carrying
        the stream's absolute time origin (unix epoch µs — what
        [trace-merge] aligns per-process files with), and, when
        [?process] is given, a ["process_name"] metadata event; spans
        are stamped relative to this call.  The channel stays owned by
        the caller; {!close_stream} flushes but does not close it. *)

    val stream_sink : stream -> t
    (** Records each span as one flushed trace event.  Safe from any
        domain; events after {!close_stream} are dropped. *)

    val close_stream : ?counters:(string * int) list -> stream -> unit
    (** Emit one counter event per entry, close the JSON array and
        flush.  Idempotent — later calls (and later recorded spans) are
        no-ops, so registering it with [at_exit] {e and} calling it on
        the success path is fine. *)
  end
end

val enabled : unit -> bool

val enable : Sink.t list -> unit
(** Install the sinks, zero all counters and histograms, and turn
    observation on. *)

val disable : unit -> unit
(** Turn observation off and drop the sinks.  Counter and histogram
    values survive until the next {!enable}, so they can be read after
    the observed region. *)

val add_sink : Sink.t -> unit
(** Install an additional sink without disturbing the ones already
    registered.  Used for request-scoped sinks (streaming progress);
    pair with {!remove_sink}. *)

val remove_sink : Sink.t -> unit
(** Remove a sink previously added (physical equality). *)

module Span : sig
  val with_ : string -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f], recording one {!span} around it to every
      installed sink — also when [f] raises.  While telemetry is
      disabled this is exactly [f ()] after one branch. *)
end
