(** Zero-dependency telemetry for the decision engine.

    The library has three pieces: {!Span} (timed, nested phases of a
    decision — CSP construction, witness search, REE closure, …),
    {!Counter} (monotone event counts — cache hits and misses, budget
    takes, reachability-matrix builds), and {!Sink} (where span records
    go: an in-memory per-phase aggregator, a Chrome trace-event
    collector, or nothing).

    {b Overhead policy.}  Telemetry is globally disabled by default.
    Every observation point — {!Span.with_}, {!Counter.incr} — is
    guarded by a single branch on one atomic flag, so the instrumented
    hot paths ([Hom] cache probes, [Rem] memo lookups, [Budget.take])
    pay one predictable branch and nothing else when disabled; in
    particular no clock syscalls, no allocation, and no sink dispatch.
    Enabling is scoped and explicit: {!enable} installs sinks and zeroes
    all counters, {!disable} uninstalls them.

    {b Domain safety.}  Counters are atomic (increments from worker
    domains never lose updates), span nesting depth is tracked
    per-domain, each span records the domain that produced it, and sink
    dispatch is serialized by one lock taken only while telemetry is
    enabled — so the engine's parallel kernels and [decide_batch] can
    run instrumented.  The Chrome trace sink emits one thread track per
    domain, keeping concurrent span trees properly nested and the trace
    Perfetto-valid.  [enable]/[disable] themselves are management
    operations: call them from one domain, outside parallel regions.   *)

type span = {
  name : string;  (** phase name, e.g. ["witness.search"] *)
  start_s : float;  (** [Unix.gettimeofday] at entry *)
  stop_s : float;  (** … and at exit (including exceptional exit) *)
  depth : int;  (** nesting depth at entry; 0 = root span *)
  dom : int;  (** id of the domain that recorded the span *)
}

module Counter : sig
  type t

  val make : string -> t
  (** Create and register a named counter (module-initialization time;
      the registry is global and append-only). *)

  val incr : t -> unit
  (** Add one.  No-op (one branch) while telemetry is disabled. *)

  val add : t -> int -> unit
  (** Add [n].  No-op while disabled. *)

  val value : t -> int
  val name : t -> string

  val all : unit -> (string * int) list
  (** Every registered counter with its current value, sorted by name.
      Counters register themselves at module-initialization time, so
      the catalogue always lists every instrumented subsystem that is
      linked in — zeros included. *)

  val reset_all : unit -> unit
  (** Zero every counter ({!enable} does this automatically). *)
end

module Sink : sig
  type t
  (** A span consumer.  Sinks receive each completed span exactly once,
      at span exit (innermost first). *)

  val make : (span -> unit) -> t
  val null : t
  (** Drops everything — observation with no record. *)

  (** In-memory per-phase aggregation: call counts and total wall time
      keyed by span name.  This is what renders as the [stats] block of
      [check --json] and the per-phase bench breakdowns. *)
  module Agg : sig
    type agg

    val create : unit -> agg
    val sink : agg -> t

    val phases : agg -> (string * int * float) list
    (** [(name, calls, total wall seconds)] per distinct span name,
        sorted by name. *)
  end

  (** Chrome [trace_event] collection: keeps every span and serializes
      the lot as a JSON array of complete ("ph":"X") events, plus one
      counter ("ph":"C") event per registered counter, loadable in
      [chrome://tracing] and Perfetto.  Timestamps are microseconds
      relative to the earliest recorded span. *)
  module Trace : sig
    type trace

    val create : unit -> trace
    val sink : trace -> t

    val to_string : ?counters:(string * int) list -> trace -> string
    val write : ?counters:(string * int) list -> trace -> out_channel -> unit

    (** {2 Streaming}

        The in-memory collector above loses everything when the traced
        computation raises before [write] runs.  A [stream] writes each
        span to the channel the moment it completes (one flush per
        event), so the file always holds every finished span; and
        {!close_stream} — idempotent, safe from [at_exit] — terminates
        the JSON array on both normal and exceptional exits, keeping the
        file loadable in Perfetto either way. *)

    type stream

    val stream : out_channel -> stream
    (** Write the array opener and fix the trace's time origin (spans
        are stamped relative to this call).  The channel stays owned by
        the caller; {!close_stream} flushes but does not close it. *)

    val stream_sink : stream -> t
    (** Records each span as one flushed trace event.  Safe from any
        domain; events after {!close_stream} are dropped. *)

    val close_stream : ?counters:(string * int) list -> stream -> unit
    (** Emit one counter event per entry, close the JSON array and
        flush.  Idempotent — later calls (and later recorded spans) are
        no-ops, so registering it with [at_exit] {e and} calling it on
        the success path is fine. *)
  end
end

val enabled : unit -> bool

val enable : Sink.t list -> unit
(** Install the sinks, zero all counters, and turn observation on. *)

val disable : unit -> unit
(** Turn observation off and drop the sinks.  Counter values survive
    until the next {!enable} (or {!Counter.reset_all}), so they can be
    read after the observed region. *)

module Span : sig
  val with_ : string -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f], recording one {!span} around it to every
      installed sink — also when [f] raises.  While telemetry is
      disabled this is exactly [f ()] after one branch. *)
end
