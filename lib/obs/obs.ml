(* One global on/off flag guards every observation point; see the
   overhead policy in the interface.  The flag is atomic so domains that
   race an [enable]/[disable] read a well-defined value; the read is a
   single load either way. *)
let on = Atomic.make false

let now = Unix.gettimeofday

(* [dom] is the recording domain's id: span trees from different domains
   interleave in wall time, so sinks that render nesting (the Chrome
   trace) key rows by domain — one thread track per domain keeps every
   track properly nested and the trace Perfetto-valid. *)
type span = { name : string; start_s : float; stop_s : float; depth : int; dom : int }

module Counter = struct
  (* Counts are atomic: subsystems increment from worker domains (cache
     builds, budget flushes of batched dispatches), and a plain mutable
     field would lose updates.  Disabled cost is unchanged — one flag
     load and a branch. *)
  type t = { name : string; n : int Atomic.t }

  let registry : t list ref = ref []

  let make name =
    let c = { name; n = Atomic.make 0 } in
    registry := c :: !registry;
    c

  let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c.n 1)
  let add c k = if Atomic.get on then ignore (Atomic.fetch_and_add c.n k)
  let value c = Atomic.get c.n
  let name c = c.name

  let all () =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map (fun c -> (c.name, Atomic.get c.n)) !registry)

  let reset_all () = List.iter (fun c -> Atomic.set c.n 0) !registry
end

module Sink = struct
  type t = { record : span -> unit }

  let make record = { record }
  let null = { record = (fun _ -> ()) }

  module Agg = struct
    type cell = { mutable calls : int; mutable total_s : float }
    type agg = (string, cell) Hashtbl.t

    let create () : agg = Hashtbl.create 16

    let sink (t : agg) =
      {
        record =
          (fun s ->
            let cell =
              match Hashtbl.find_opt t s.name with
              | Some c -> c
              | None ->
                  let c = { calls = 0; total_s = 0. } in
                  Hashtbl.add t s.name c;
                  c
            in
            cell.calls <- cell.calls + 1;
            cell.total_s <- cell.total_s +. (s.stop_s -. s.start_s));
      }

    let phases (t : agg) =
      Hashtbl.fold (fun name c acc -> (name, c.calls, c.total_s) :: acc) t []
      |> List.sort compare
  end

  module Trace = struct
    type trace = { mutable spans : span list (* reverse record order *) }

    let create () = { spans = [] }
    let sink t = { record = (fun s -> t.spans <- s :: t.spans) }

    let escape s =
      let b = Buffer.create (String.length s + 2) in
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string b "\\\""
          | '\\' -> Buffer.add_string b "\\\\"
          | '\n' -> Buffer.add_string b "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char b c)
        s;
      Buffer.contents b

    (* Chrome trace-event JSON ("JSON Array Format"): complete events
       carry ts+dur so begin/end pairing is never needed; counters are
       emitted once, at the trace's end timestamp.  Each recording
       domain gets its own tid, so spans recorded concurrently render as
       parallel tracks instead of impossibly-overlapping slices. *)
    let span_event ~t0 s =
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"depth\":%d}}"
        (escape s.name)
        ((s.start_s -. t0) *. 1e6)
        ((s.stop_s -. s.start_s) *. 1e6)
        (s.dom + 1) s.depth

    let counter_event ~ts name v =
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"counters\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"args\":{\"value\":%d}}"
        (escape name) ts v

    let to_string ?(counters = []) t =
      let spans = List.rev t.spans in
      let t0 =
        List.fold_left (fun acc s -> Float.min acc s.start_s) infinity spans
      in
      let t1 =
        List.fold_left (fun acc s -> Float.max acc s.stop_s) 0. spans
      in
      let b = Buffer.create 4096 in
      let sep = ref "" in
      Buffer.add_string b "[";
      List.iter
        (fun s ->
          Buffer.add_string b !sep;
          Buffer.add_char b '\n';
          Buffer.add_string b (span_event ~t0 s);
          sep := ",")
        spans;
      let counter_ts = if spans = [] then 0. else (t1 -. t0) *. 1e6 in
      List.iter
        (fun (name, v) ->
          Buffer.add_string b !sep;
          Buffer.add_char b '\n';
          Buffer.add_string b (counter_event ~ts:counter_ts name v);
          sep := ",")
        counters;
      Buffer.add_string b "\n]\n";
      Buffer.contents b

    let write ?counters t oc = output_string oc (to_string ?counters t)

    (* Streaming variant: events go to the channel as they complete, one
       flush per event, so a trace is loadable even when the traced
       computation raises or the process dies — Perfetto tolerates a
       missing closing bracket, and [close_stream] (typically registered
       with [at_exit]) writes it on every exit path anyway.  The time
       origin is fixed at stream creation since the earliest span is not
       known up front. *)
    type stream = {
      soc : out_channel;
      st0 : float;
      mutable first : bool;
      mutable closed : bool;
      slock : Mutex.t;
    }

    let stream oc =
      output_string oc "[";
      flush oc;
      {
        soc = oc;
        st0 = now ();
        first = true;
        closed = false;
        slock = Mutex.create ();
      }

    let stream_locked t f =
      Mutex.lock t.slock;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.slock) f

    let stream_emit t event =
      output_string t.soc (if t.first then "\n" else ",\n");
      t.first <- false;
      output_string t.soc event

    let stream_sink t =
      {
        record =
          (fun s ->
            stream_locked t (fun () ->
                if not t.closed then begin
                  stream_emit t (span_event ~t0:t.st0 s);
                  flush t.soc
                end));
      }

    let close_stream ?(counters = []) t =
      stream_locked t (fun () ->
          if not t.closed then begin
            t.closed <- true;
            let ts = (now () -. t.st0) *. 1e6 in
            List.iter (fun (name, v) -> stream_emit t (counter_event ~ts name v))
              counters;
            output_string t.soc "\n]\n";
            flush t.soc
          end)
  end
end

let sinks : Sink.t list ref = ref []

(* Sink implementations are plain mutable structures (hashtable cells,
   a cons list); one lock around dispatch makes them domain-safe.  Span
   ends are per-phase, not per-step, so the lock is far off the hot
   path — and it is only ever touched while telemetry is enabled. *)
let sink_lock = Mutex.create ()

let enabled () = Atomic.get on

let enable ss =
  Counter.reset_all ();
  sinks := ss;
  Atomic.set on true

let disable () =
  Atomic.set on false;
  sinks := []

module Span = struct
  (* Nesting depth is tracked per domain: concurrent spans from worker
     domains would otherwise corrupt each other's depth. *)
  let depth = Domain.DLS.new_key (fun () -> ref 0)

  let with_ name f =
    if not (Atomic.get on) then f ()
    else begin
      let depth = Domain.DLS.get depth in
      let d = !depth in
      depth := d + 1;
      let start_s = now () in
      let finish () =
        let stop_s = now () in
        depth := d;
        let s =
          { name; start_s; stop_s; depth = d;
            dom = (Domain.self () :> int) }
        in
        Mutex.lock sink_lock;
        List.iter (fun (k : Sink.t) -> k.record s) !sinks;
        Mutex.unlock sink_lock
      in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e
    end
end
