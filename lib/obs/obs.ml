(* One global on/off flag guards every observation point; see the
   overhead policy in the interface.  The flag is atomic so domains that
   race an [enable]/[disable] read a well-defined value; the read is a
   single load either way. *)
let on = Atomic.make false

let now = Unix.gettimeofday

(* Domains are first-class in OCaml 5, but the service layer is
   thread-per-connection on one domain — [Domain.self] alone cannot tell
   two concurrent requests apart.  The identity of the "execution lane"
   is therefore (domain id, thread id), where the thread id comes from a
   settable hook: this library must not depend on the [threads] library,
   so whoever links it (the service) installs [Thread.id (Thread.self)].
   The default constant 0 keeps single-threaded users unchanged. *)
let thread_id_fn : (unit -> int) ref = ref (fun () -> 0)
let set_thread_id_fn f = thread_id_fn := f
let thread_id () = !thread_id_fn ()

(* [dom] is the recording domain's id: span trees from different domains
   interleave in wall time, so sinks that render nesting (the Chrome
   trace) key rows by domain — one thread track per (domain, thread)
   lane keeps every track properly nested and the trace Perfetto-valid.
   [trace] is the distributed-trace id the span was recorded under, if
   any (see {!Ctx}): it crosses process boundaries over the wire, so a
   request can be followed from router to shard. *)
type span = {
  name : string;
  start_s : float;
  stop_s : float;
  depth : int;
  dom : int;
  tid : int;
  trace : string option;
}

module Ctx = struct
  (* Trace context is keyed by execution lane, not stored in DLS: the
     service runs many request threads on one domain, and DLS would
     smear one request's trace id over its neighbours.  The table is
     touched only at span entry and at request start/end, never inside
     kernels, so one mutex is plenty. *)
  let table : (int * int, string) Hashtbl.t = Hashtbl.create 16
  let lock = Mutex.create ()
  let key () = ((Domain.self () :> int), !thread_id_fn ())

  let current () =
    Mutex.lock lock;
    let r = Hashtbl.find_opt table (key ()) in
    Mutex.unlock lock;
    r

  let with_trace id f =
    let k = key () in
    Mutex.lock lock;
    let prev = Hashtbl.find_opt table k in
    (match id with
    | Some id -> Hashtbl.replace table k id
    | None -> Hashtbl.remove table k);
    Mutex.unlock lock;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock lock;
        (match prev with
        | Some p -> Hashtbl.replace table k p
        | None -> Hashtbl.remove table k);
        Mutex.unlock lock)
      f
end

module Counter = struct
  (* Counts are atomic: subsystems increment from worker domains (cache
     builds, budget flushes of batched dispatches), and a plain mutable
     field would lose updates.  Disabled cost is unchanged — one flag
     load and a branch. *)
  type t = { name : string; n : int Atomic.t }

  let registry : t list ref = ref []

  let make name =
    let c = { name; n = Atomic.make 0 } in
    registry := c :: !registry;
    c

  let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c.n 1)
  let add c k = if Atomic.get on then ignore (Atomic.fetch_and_add c.n k)
  let value c = Atomic.get c.n
  let name c = c.name

  let all () =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map (fun c -> (c.name, Atomic.get c.n)) !registry)

  let reset_all () = List.iter (fun c -> Atomic.set c.n 0) !registry
end

module Histogram = struct
  (* Log-bucketed latency histogram, HDR-style: 16 exact buckets for
     values below 16ns, then 4 sub-buckets per power of two up to 2^60,
     then one overflow bucket.  Every bucket is an [int Atomic.t], so
     recording from any domain is one index computation plus one
     fetch-and-add — no locks, no allocation, and bounded relative
     error (≤ 1/4 of the value) for percentile extraction. *)
  let sub_bits = 2
  let sub = 1 lsl sub_bits
  let linear = 16
  let min_octave = 4 (* 2^4 = first non-linear bucket *)
  let max_octave = 59
  let n_buckets = linear + ((max_octave - min_octave + 1) * sub) + 1

  type t = { name : string; counts : int Atomic.t array; sum_ns : int Atomic.t }

  let registry : t list ref = ref []

  let make name =
    let h =
      { name; counts = Array.init n_buckets (fun _ -> Atomic.make 0);
        sum_ns = Atomic.make 0 }
    in
    registry := h :: !registry;
    h

  let name h = h.name

  (* Index of the most significant set bit; v >= 1. *)
  let msb v =
    let r = ref 0 and x = ref v in
    List.iter
      (fun k ->
        if !x lsr k <> 0 then begin
          x := !x lsr k;
          r := !r + k
        end)
      [ 32; 16; 8; 4; 2; 1 ];
    !r

  let bucket_index v =
    if v < linear then if v < 0 then 0 else v
    else
      let o = msb v in
      if o > max_octave then n_buckets - 1
      else linear + ((o - min_octave) * sub) + ((v lsr (o - sub_bits)) land (sub - 1))

  (* Inclusive upper bound of bucket [i], in ns.  Percentiles report
     this bound, so they never under-state a latency. *)
  let bucket_upper_ns i =
    if i <= 0 then 0
    else if i < linear then i
    else if i >= n_buckets - 1 then max_int
    else
      let j = i - linear in
      let o = min_octave + (j / sub) and s = j mod sub in
      (1 lsl o) + ((s + 1) lsl (o - sub_bits)) - 1

  let record_ns h v =
    if Atomic.get on then begin
      let v = if v < 0 then 0 else v in
      ignore (Atomic.fetch_and_add h.counts.(bucket_index v) 1);
      ignore (Atomic.fetch_and_add h.sum_ns v)
    end

  let record_s h s = record_ns h (int_of_float ((s *. 1e9) +. 0.5))

  (* [time h f] runs [f] and records its wall time — without even a
     clock syscall while telemetry is disabled. *)
  let time h f =
    if Atomic.get on then begin
      let t0 = now () in
      match f () with
      | v ->
          record_s h (now () -. t0);
          v
      | exception e ->
          record_s h (now () -. t0);
          raise e
    end
    else f ()

  type snapshot = { counts : int array; sum_ns : int }

  let snapshot (h : t) =
    { counts = Array.map Atomic.get h.counts; sum_ns = Atomic.get h.sum_ns }

  let zero_snapshot () = { counts = Array.make n_buckets 0; sum_ns = 0 }

  let merge a b =
    let counts =
      Array.init n_buckets (fun i ->
          let ca = if i < Array.length a.counts then a.counts.(i) else 0 in
          let cb = if i < Array.length b.counts then b.counts.(i) else 0 in
          ca + cb)
    in
    { counts; sum_ns = a.sum_ns + b.sum_ns }

  let total s = Array.fold_left ( + ) 0 s.counts

  (* Exact-count percentile: the value returned is the upper bound of
     the bucket holding the ceil(p/100 * n)-th smallest sample, i.e.
     exactly what a sorted reference array would report, rounded up to
     the bucket boundary. *)
  let percentile_of s p =
    let n = total s in
    if n = 0 then 0
    else begin
      let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
      let rank = min rank n in
      let i = ref 0 and cum = ref 0 in
      while !cum < rank && !i < Array.length s.counts do
        cum := !cum + s.counts.(!i);
        incr i
      done;
      bucket_upper_ns (!i - 1)
    end

  let percentile_ns h p = percentile_of (snapshot h) p
  let count h = total (snapshot h)
  let sum_ns (h : t) = Atomic.get h.sum_ns

  let reset (h : t) =
    Array.iter (fun c -> Atomic.set c 0) h.counts;
    Atomic.set h.sum_ns 0

  let reset_all () = List.iter reset !registry

  let all () =
    List.sort (fun a b -> String.compare a.name b.name) !registry
end

module Sink = struct
  (* [enter] fires at span entry (with [stop_s = start_s], the duration
     not yet known); [record] at exit with the completed span.  Most
     sinks only care about completed spans, so [make] leaves [enter] a
     no-op; the streaming-progress sink uses both. *)
  type t = { record : span -> unit; enter : span -> unit }

  let make record = { record; enter = (fun _ -> ()) }
  let make_full ~enter record = { record; enter }
  let null = { record = (fun _ -> ()); enter = (fun _ -> ()) }

  module Agg = struct
    type cell = { mutable calls : int; mutable total_s : float }
    type agg = (string, cell) Hashtbl.t

    let create () : agg = Hashtbl.create 16

    let sink (t : agg) =
      make (fun s ->
          let cell =
            match Hashtbl.find_opt t s.name with
            | Some c -> c
            | None ->
                let c = { calls = 0; total_s = 0. } in
                Hashtbl.add t s.name c;
                c
          in
          cell.calls <- cell.calls + 1;
          cell.total_s <- cell.total_s +. (s.stop_s -. s.start_s))

    let phases (t : agg) =
      Hashtbl.fold (fun name c acc -> (name, c.calls, c.total_s) :: acc) t []
      |> List.sort compare
  end

  module Trace = struct
    type trace = { mutable spans : span list (* reverse record order *) }

    let create () = { spans = [] }
    let sink t = make (fun s -> t.spans <- s :: t.spans)

    let escape s =
      let b = Buffer.create (String.length s + 2) in
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string b "\\\""
          | '\\' -> Buffer.add_string b "\\\\"
          | '\n' -> Buffer.add_string b "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char b c)
        s;
      Buffer.contents b

    (* Chrome trace-event JSON ("JSON Array Format"): complete events
       carry ts+dur so begin/end pairing is never needed; counters are
       emitted once, at the trace's end timestamp.  Each recording
       (domain, thread) lane gets its own tid, so spans recorded
       concurrently render as parallel tracks instead of
       impossibly-overlapping slices.  Spans recorded under a trace
       context carry the trace_id in args, which is what [trace-merge]
       and Perfetto queries key on. *)
    let lane_tid s = (s.dom * 4096) + s.tid + 1

    let span_event ~t0 s =
      let trace_arg =
        match s.trace with
        | None -> ""
        | Some id -> Printf.sprintf ",\"trace_id\":\"%s\"" (escape id)
      in
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"depth\":%d%s}}"
        (escape s.name)
        ((s.start_s -. t0) *. 1e6)
        ((s.stop_s -. s.start_s) *. 1e6)
        (lane_tid s) s.depth trace_arg

    let counter_event ~ts name v =
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"counters\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"args\":{\"value\":%d}}"
        (escape name) ts v

    (* Metadata (ph "M") events.  [clock_sync] carries the stream's
       absolute time origin as unix epoch microseconds: each process
       traces relative to its own origin, and [trace-merge] uses these
       to shift every file onto one shared timeline. *)
    let clock_sync_event ~epoch_us =
      Printf.sprintf
        "{\"name\":\"clock_sync\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"unix_epoch_us\":%.0f}}"
        epoch_us

    let process_name_event name =
      Printf.sprintf
        "{\"name\":\"process_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
        (escape name)

    let to_string ?(counters = []) t =
      let spans = List.rev t.spans in
      let t0 =
        List.fold_left (fun acc s -> Float.min acc s.start_s) infinity spans
      in
      let t1 =
        List.fold_left (fun acc s -> Float.max acc s.stop_s) 0. spans
      in
      let b = Buffer.create 4096 in
      let sep = ref "" in
      Buffer.add_string b "[";
      List.iter
        (fun s ->
          Buffer.add_string b !sep;
          Buffer.add_char b '\n';
          Buffer.add_string b (span_event ~t0 s);
          sep := ",")
        spans;
      let counter_ts = if spans = [] then 0. else (t1 -. t0) *. 1e6 in
      List.iter
        (fun (name, v) ->
          Buffer.add_string b !sep;
          Buffer.add_char b '\n';
          Buffer.add_string b (counter_event ~ts:counter_ts name v);
          sep := ",")
        counters;
      Buffer.add_string b "\n]\n";
      Buffer.contents b

    let write ?counters t oc = output_string oc (to_string ?counters t)

    (* Streaming variant: events go to the channel as they complete, one
       flush per event, so a trace is loadable even when the traced
       computation raises or the process dies — Perfetto tolerates a
       missing closing bracket, and [close_stream] (typically registered
       with [at_exit]) writes it on every exit path anyway.  The time
       origin is fixed at stream creation since the earliest span is not
       known up front. *)
    type stream = {
      soc : out_channel;
      st0 : float;
      mutable first : bool;
      mutable closed : bool;
      slock : Mutex.t;
    }

    let stream_emit t event =
      output_string t.soc (if t.first then "\n" else ",\n");
      t.first <- false;
      output_string t.soc event

    let stream ?process oc =
      output_string oc "[";
      let t =
        { soc = oc; st0 = now (); first = true; closed = false;
          slock = Mutex.create () }
      in
      stream_emit t (clock_sync_event ~epoch_us:(t.st0 *. 1e6));
      (match process with
      | Some name -> stream_emit t (process_name_event name)
      | None -> ());
      flush oc;
      t

    let stream_locked t f =
      Mutex.lock t.slock;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.slock) f

    let stream_sink t =
      make (fun s ->
          stream_locked t (fun () ->
              if not t.closed then begin
                stream_emit t (span_event ~t0:t.st0 s);
                flush t.soc
              end))

    let close_stream ?(counters = []) t =
      stream_locked t (fun () ->
          if not t.closed then begin
            t.closed <- true;
            let ts = (now () -. t.st0) *. 1e6 in
            List.iter (fun (name, v) -> stream_emit t (counter_event ~ts name v))
              counters;
            output_string t.soc "\n]\n";
            flush t.soc
          end)
  end
end

let sinks : Sink.t list ref = ref []

(* Sink implementations are plain mutable structures (hashtable cells,
   a cons list); one lock around dispatch makes them domain-safe.  Span
   ends are per-phase, not per-step, so the lock is far off the hot
   path — and it is only ever touched while telemetry is enabled.
   Dispatch is exception-safe: a raising sink must not leave the lock
   held (it would deadlock every later span in the process), so the
   exception propagates only after the unlock. *)
let sink_lock = Mutex.create ()

let dispatch f =
  Mutex.lock sink_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink_lock)
    (fun () -> List.iter f !sinks)

let enabled () = Atomic.get on

let enable ss =
  Counter.reset_all ();
  Histogram.reset_all ();
  Mutex.lock sink_lock;
  sinks := ss;
  Mutex.unlock sink_lock;
  Atomic.set on true

let disable () =
  Atomic.set on false;
  Mutex.lock sink_lock;
  sinks := [];
  Mutex.unlock sink_lock

let add_sink s =
  Mutex.lock sink_lock;
  sinks := s :: !sinks;
  Mutex.unlock sink_lock

let remove_sink s =
  Mutex.lock sink_lock;
  sinks := List.filter (fun x -> x != s) !sinks;
  Mutex.unlock sink_lock

module Span = struct
  (* Nesting depth is tracked per domain: concurrent spans from worker
     domains would otherwise corrupt each other's depth. *)
  let depth = Domain.DLS.new_key (fun () -> ref 0)

  let with_ name f =
    if not (Atomic.get on) then f ()
    else begin
      let depth = Domain.DLS.get depth in
      let d = !depth in
      depth := d + 1;
      let dom = (Domain.self () :> int) in
      let tid = !thread_id_fn () in
      let trace = Ctx.current () in
      let start_s = now () in
      dispatch (fun (k : Sink.t) ->
          k.enter { name; start_s; stop_s = start_s; depth = d; dom; tid; trace });
      let finish () =
        let stop_s = now () in
        depth := d;
        let s = { name; start_s; stop_s; depth = d; dom; tid; trace } in
        dispatch (fun (k : Sink.t) -> k.record s)
      in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e
    end
end
