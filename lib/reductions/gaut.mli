(** The G_aut construction sketched at the start of Section 3: reduce
    RDPQ_mem-definability on a data graph [G] to plain RPQ-definability
    on a graph where data values have become ordinary letters.

    The construction, following the sketch:

    - [G_aut] is the disjoint union of one copy [G_π] of [G] per
      automorphism [π] of the active domain [D_G] (a permutation of the
      δ data values — δ! copies);
    - each edge [(u, a, v)] of a copy is relabeled [a@d] where [d] is the
      copy's value of [v], so the label word of a path spells the data
      path's values (except the first);
    - every node [u] gets an entry node [û] with an edge [û -val@d-> u]
      spelling the first data value.

    A word from an entry node then determines a data path [w], and its
    relation on [G_aut] collects, over all [π], the pairs connected by
    [π(w)] in [G] — exactly the obstruction set that a basic REM witness
    must avoid.  Hence [S] is RDPQ_mem-definable on [G] iff
    [Ŝ = {(û_π, v_π) | (u,v) ∈ S, π}] is RPQ-definable on [G_aut],
    giving the paper's ExpSpace upper bound via the PSpace-complete
    RPQ-definability of [3] (the graph blows up by the δ! factor).

    This module is a cross-check: the test suite compares the verdict of
    this reduction against the direct profile-automaton checker on small
    graphs. *)

type t = {
  graph : Datagraph.Data_graph.t;  (** [G_aut] with entry nodes *)
  copies : int;  (** δ! *)
  node : copy:int -> int -> int;  (** node [v] in copy [π_i] *)
  entry : copy:int -> int -> int;  (** entry node [û] in copy [π_i] *)
}

val build : Datagraph.Data_graph.t -> t

val lift_relation : t -> Datagraph.Relation.t -> Datagraph.Relation.t
(** [Ŝ]: one [(û_π, v_π)] pair per pair of [S] and copy [π]. *)

val rem_definable_via_rpq :
  ?max_tuples:int -> Datagraph.Data_graph.t -> Datagraph.Relation.t -> bool
(** Decide RDPQ_mem-definability of [S] on [G] by RPQ-definability of
    [Ŝ] on [G_aut] — Theorem 24's bound by way of [3].  Equivalent to
    {!Definability.Rem_definability.search}; exponentially larger
    input, so only sensible for tiny δ. *)
