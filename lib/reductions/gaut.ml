module Data_graph = Datagraph.Data_graph
module Data_value = Datagraph.Data_value
module Relation = Datagraph.Relation
module Automorphism = Datagraph.Automorphism

type t = {
  graph : Data_graph.t;
  copies : int;
  node : copy:int -> int -> int;
  entry : copy:int -> int -> int;
}

let build g =
  let n = Data_graph.size g in
  let perms = Automorphism.permutations (Data_graph.domain g) in
  let copies = List.length perms in
  (* Layout: copy c occupies [c * 2n, (c+1) * 2n): first the n plain
     nodes, then the n entry nodes. *)
  let node ~copy v = (copy * 2 * n) + v in
  let entry ~copy v = (copy * 2 * n) + n + v in
  let value_label pi v =
    Data_value.to_string (Automorphism.apply pi (Data_graph.value g v))
  in
  let nodes = ref [] in
  let edges = ref [] in
  List.iteri
    (fun c pi ->
      List.iter
        (fun v ->
          nodes :=
            (Printf.sprintf "%s@%d" (Data_graph.name g v) c, Data_value.of_int 0)
            :: !nodes)
        (Data_graph.nodes g);
      List.iter
        (fun v ->
          nodes :=
            (Printf.sprintf "%s^@%d" (Data_graph.name g v) c, Data_value.of_int 0)
            :: !nodes)
        (Data_graph.nodes g);
      List.iter
        (fun (u, a, v) ->
          edges :=
            ( node ~copy:c u,
              Printf.sprintf "%s@%s" a (value_label pi v),
              node ~copy:c v )
            :: !edges)
        (Data_graph.edges g);
      List.iter
        (fun v ->
          edges :=
            ( entry ~copy:c v,
              Printf.sprintf "val@%s" (value_label pi v),
              node ~copy:c v )
            :: !edges)
        (Data_graph.nodes g))
    perms;
  let values = Array.make (copies * 2 * n) (Data_value.of_int 0) in
  let names = List.rev_map fst !nodes in
  ignore names;
  let graph =
    Data_graph.build ~values
      ~edges:(List.rev !edges)
  in
  { graph; copies; node; entry }

let lift_relation t s =
  let out = ref (Relation.empty (Data_graph.size t.graph)) in
  for c = 0 to t.copies - 1 do
    Relation.iter
      (fun u v -> out := Relation.add !out (t.entry ~copy:c u) (t.node ~copy:c v))
      s
  done;
  !out

let rem_definable_via_rpq ?max_tuples g s =
  let t = build g in
  let o =
    Definability.Rpq_definability.search ?max_tuples t.graph
      (lift_relation t s)
  in
  match o.Definability.Witness_search.verdict with
  | Definability.Witness_search.Definable -> true
  | Definability.Witness_search.Not_definable _ -> false
  | Definability.Witness_search.Exhausted ->
      failwith "definability search truncated; raise max_tuples"
