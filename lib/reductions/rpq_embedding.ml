let embed g = Datagraph.Data_graph.constant_values g

let agree ?max_tuples ?max_size g s =
  let rpq =
    match
      (Definability.Rpq_definability.search ?max_tuples g s)
        .Definability.Witness_search.verdict
    with
    | Definability.Witness_search.Definable -> true
    | Definability.Witness_search.Not_definable _ -> false
    | Definability.Witness_search.Exhausted ->
        failwith "definability search truncated; raise max_tuples"
  in
  let ree =
    let r = Definability.Ree_definability.search ?max_size (embed g) s in
    match Definability.Ree_definability.verdict r with
    | Some b -> b
    | None -> failwith "REE closure truncated; raise max_size"
  in
  (rpq, ree)
