module Data_path = Datagraph.Data_path
module Data_value = Datagraph.Data_value

type t =
  | Eps
  | Letter of string
  | Union of t * t
  | Concat of t * t
  | Plus of t
  | Test of t * Condition.t
  | Bind of int list * t

let star e = Union (Eps, Plus e)

let rec registers_max = function
  | Eps | Letter _ -> -1
  | Union (e1, e2) | Concat (e1, e2) -> max (registers_max e1) (registers_max e2)
  | Plus e -> registers_max e
  | Test (e, c) -> max (registers_max e) (Condition.max_register c)
  | Bind (rs, e) ->
      List.fold_left max (registers_max e) rs

let registers e = registers_max e + 1

let rec size = function
  | Eps | Letter _ -> 1
  | Union (e1, e2) | Concat (e1, e2) -> 1 + size e1 + size e2
  | Plus e | Test (e, _) | Bind (_, e) -> 1 + size e

let rec alphabet_acc acc = function
  | Eps -> acc
  | Letter a -> a :: acc
  | Union (e1, e2) | Concat (e1, e2) -> alphabet_acc (alphabet_acc acc e1) e2
  | Plus e | Test (e, _) | Bind (_, e) -> alphabet_acc acc e

let alphabet e = List.sort_uniq compare (alphabet_acc [] e)
let equal = ( = )

let rec of_regex = function
  | Regexp.Regex.Empty ->
      (* The REM grammar has no ∅; an unsatisfiable test is equivalent. *)
      Test (Eps, Condition.ff)
  | Regexp.Regex.Eps -> Eps
  | Regexp.Regex.Letter a -> Letter a
  | Regexp.Regex.Union (e1, e2) -> Union (of_regex e1, of_regex e2)
  | Regexp.Regex.Concat (e1, e2) -> Concat (of_regex e1, of_regex e2)
  | Regexp.Regex.Plus e -> Plus (of_regex e)
  | Regexp.Regex.Star e -> star (of_regex e)

(* ------------------------------------------------------------------ *)
(* Semantics (Definition 5), by memoized recursion over subpaths.
   [outcomes e i j sigma] is the set of σ' with (e, w[i..j], σ) ⊢ σ'.
   Recursion through Plus on a zero-length subpath can revisit a
   configuration; since binds at a fixed position only move registers
   towards the value at that position, revisits contribute nothing new
   and are cut off (least fixpoint). *)

(* Memo keys need a node identity for subexpressions.  Annotate the
   expression with explicit structural numbers in one pass: a pre-order
   id per node.  (The previous [Obj.repr]-keyed physical identity was a
   correctness hazard: value sharing — hash-consing, flambda-style
   lifting of equal subterms — would merge distinct occurrences.) *)
type ann = { id : int; desc : desc }

and desc =
  | AEps
  | ALetter of string
  | AUnion of ann * ann
  | AConcat of ann * ann
  | APlus of ann
  | ATest of ann * Condition.t
  | ABind of int list * ann

let annotate e =
  let next = ref 0 in
  let rec go e =
    let id = !next in
    incr next;
    let desc =
      match e with
      | Eps -> AEps
      | Letter a -> ALetter a
      | Union (e1, e2) ->
          let a1 = go e1 in
          AUnion (a1, go e2)
      | Concat (e1, e2) ->
          let a1 = go e1 in
          AConcat (a1, go e2)
      | Plus e1 -> APlus (go e1)
      | Test (e1, c) -> ATest (go e1, c)
      | Bind (rs, e1) -> ABind (rs, go e1)
    in
    { id; desc }
  in
  let a = go e in
  (a, !next)

module Assignments = Set.Make (struct
  type t = int option list

  let compare = Stdlib.compare
end)

let key_of_assignment sigma =
  Array.to_list (Array.map (Option.map Data_value.to_int) sigma)

let assignment_of_key key =
  Array.of_list (List.map (Option.map Data_value.of_int) key)

(* Memo-table telemetry for both evaluators below.  The lookups are on
   the hot path of REM evaluation, so the counters cost one branch when
   telemetry is off (see the [Obs] overhead policy). *)
let c_memo_hits = Obs.Counter.make "rem.memo_hits"
let c_memo_misses = Obs.Counter.make "rem.memo_misses"

let check_args ~k e sigma =
  if Array.length sigma <> k then
    invalid_arg "Rem.final_assignments: assignment length <> k";
  if registers e > k then
    invalid_arg "Rem.final_assignments: expression uses more registers than k"

(* Reference implementation: assignment-list memo keys, value sets of
   assignment lists.  Kept as the semantic baseline the packed fast path
   below is tested against, and as the fallback when packing does not
   fit in a word. *)
let final_assignments_generic ~k e w sigma =
  check_args ~k e sigma;
  let ae, _count = annotate e in
  let memo : (int * int * int * int option list, Assignments.t) Hashtbl.t =
    Hashtbl.create 256
  in
  let visiting = Hashtbl.create 64 in
  let rec outcomes ae i j sigma =
    let key = (ae.id, i, j, key_of_assignment sigma) in
    match Hashtbl.find_opt memo key with
    | Some s ->
        Obs.Counter.incr c_memo_hits;
        s
    | None ->
        Obs.Counter.incr c_memo_misses;
        if Hashtbl.mem visiting key then Assignments.empty
        else begin
          Hashtbl.add visiting key ();
          let result = compute ae i j sigma in
          Hashtbl.remove visiting key;
          Hashtbl.replace memo key result;
          result
        end
  and compute ae i j sigma =
    match ae.desc with
    | AEps ->
        if i = j then Assignments.singleton (key_of_assignment sigma)
        else Assignments.empty
    | ALetter a ->
        if j = i + 1 && Data_path.label_at w i = a then
          Assignments.singleton (key_of_assignment sigma)
        else Assignments.empty
    | AUnion (e1, e2) ->
        Assignments.union (outcomes e1 i j sigma) (outcomes e2 i j sigma)
    | AConcat (e1, e2) ->
        let acc = ref Assignments.empty in
        for l = i to j do
          Assignments.iter
            (fun s1 ->
              acc :=
                Assignments.union !acc
                  (outcomes e2 l j (assignment_of_key s1)))
            (outcomes e1 i l sigma)
        done;
        !acc
    | APlus e1 ->
        (* (e⁺,i,j,σ) ⊢ σ' iff (e,i,j,σ) ⊢ σ', or one iteration of e up to
           some split l followed by e⁺ on the rest.  Cycles through
           zero-length iterations revisit the same memo key and are cut off
           by the visiting set; they contribute no new assignments because
           binds at a fixed position only move registers towards that
           position's value. *)
        let acc = ref (outcomes e1 i j sigma) in
        for l = i to j do
          Assignments.iter
            (fun s1 ->
              acc :=
                Assignments.union !acc (outcomes ae l j (assignment_of_key s1)))
            (outcomes e1 i l sigma)
        done;
        !acc
    | ATest (e1, c) ->
        let d = Data_path.value_at w j in
        Assignments.filter
          (fun s -> Condition.sat c ~d ~assignment:(assignment_of_key s))
          (outcomes e1 i j sigma)
    | ABind (rs, e1) ->
        let d = Data_path.value_at w i in
        let sigma' = Array.copy sigma in
        List.iter (fun r -> sigma'.(r) <- Some d) rs;
        outcomes e1 i j sigma'
  in
  let result = outcomes ae 0 (Data_path.length w) sigma in
  List.map assignment_of_key (Assignments.elements result)

(* Packed fast path: the data values in play are exactly those of [w]
   and of the initial assignment, so a register holds one of at most
   [V + 1] states (⊥ or one of [V] values).  Give each value a small
   code (⊥ = 0) and pack the whole assignment into one int, [vbits]
   bits per register.  Memo keys become an int pair and outcome sets
   become sets of ints — no per-lookup list allocation, no polymorphic
   compare over options. *)

module IntSet = Set.Make (Int)

let final_assignments_packed ~k ~vals ~code_of ~vbits e w sigma =
  let m = Data_path.length w in
  let mask = (1 lsl vbits) - 1 in
  let get p r = (p lsr (r * vbits)) land mask in
  let pack sigma =
    let p = ref 0 in
    Array.iteri
      (fun r d ->
        match d with
        | None -> ()
        | Some d -> p := !p lor (code_of d lsl (r * vbits)))
      sigma;
    !p
  in
  let unpack p =
    Array.init k (fun r ->
        let c = get p r in
        if c = 0 then None else Some (Data_value.of_int vals.(c - 1)))
  in
  let rec sat_packed c dc p =
    match c with
    | Condition.True -> true
    | Condition.Eq r -> get p r = dc
    | Condition.Neq r ->
        let g = get p r in
        g = 0 || g <> dc
    | Condition.And (c1, c2) -> sat_packed c1 dc p && sat_packed c2 dc p
    | Condition.Or (c1, c2) -> sat_packed c1 dc p || sat_packed c2 dc p
    | Condition.Not c1 -> not (sat_packed c1 dc p)
  in
  let ae, _count = annotate e in
  let stride = m + 2 in
  let memo : (int * int, IntSet.t) Hashtbl.t = Hashtbl.create 256 in
  let visiting : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec outcomes ae i j p =
    let key = (((ae.id * stride) + i) * stride + j, p) in
    match Hashtbl.find_opt memo key with
    | Some s ->
        Obs.Counter.incr c_memo_hits;
        s
    | None ->
        Obs.Counter.incr c_memo_misses;
        if Hashtbl.mem visiting key then IntSet.empty
        else begin
          Hashtbl.add visiting key ();
          let result = compute ae i j p in
          Hashtbl.remove visiting key;
          Hashtbl.replace memo key result;
          result
        end
  and compute ae i j p =
    match ae.desc with
    | AEps -> if i = j then IntSet.singleton p else IntSet.empty
    | ALetter a ->
        if j = i + 1 && Data_path.label_at w i = a then IntSet.singleton p
        else IntSet.empty
    | AUnion (e1, e2) -> IntSet.union (outcomes e1 i j p) (outcomes e2 i j p)
    | AConcat (e1, e2) ->
        let acc = ref IntSet.empty in
        for l = i to j do
          IntSet.iter
            (fun p1 -> acc := IntSet.union !acc (outcomes e2 l j p1))
            (outcomes e1 i l p)
        done;
        !acc
    | APlus e1 ->
        (* Same least-fixpoint cutoff as the generic implementation. *)
        let acc = ref (outcomes e1 i j p) in
        for l = i to j do
          IntSet.iter
            (fun p1 -> acc := IntSet.union !acc (outcomes ae l j p1))
            (outcomes e1 i l p)
        done;
        !acc
    | ATest (e1, c) ->
        let dc = code_of (Data_path.value_at w j) in
        IntSet.filter (fun p -> sat_packed c dc p) (outcomes e1 i j p)
    | ABind (rs, e1) ->
        let dc = code_of (Data_path.value_at w i) in
        let p' =
          List.fold_left
            (fun p r ->
              (p land lnot (mask lsl (r * vbits))) lor (dc lsl (r * vbits)))
            p rs
        in
        outcomes e1 i j p'
  in
  let result = outcomes ae 0 m (pack sigma) in
  IntSet.elements result
  |> List.map unpack
  |> List.sort (fun a b ->
         Stdlib.compare (key_of_assignment a) (key_of_assignment b))

let final_assignments ~k e w sigma =
  Obs.Span.with_ "rem.eval" @@ fun () ->
  check_args ~k e sigma;
  (* Code table for the values of [w] and [sigma]; ⊥ is code 0. *)
  let codes : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let enter d =
    let v = Data_value.to_int d in
    if not (Hashtbl.mem codes v) then Hashtbl.add codes v (Hashtbl.length codes + 1)
  in
  Array.iter enter (Data_path.values w);
  Array.iter (function Some d -> enter d | None -> ()) sigma;
  let nvals = Hashtbl.length codes in
  let rec bits_for n = if n <= 1 then 1 else 1 + bits_for (n / 2) in
  let vbits = bits_for nvals in
  if k * vbits > Sys.int_size - 2 then
    (* Assignments too wide to pack into one word — delegate. *)
    final_assignments_generic ~k e w sigma
  else begin
    let vals = Array.make nvals 0 in
    Hashtbl.iter (fun v c -> vals.(c - 1) <- v) codes;
    let code_of d = Hashtbl.find codes (Data_value.to_int d) in
    final_assignments_packed ~k ~vals ~code_of ~vbits e w sigma
  end

let matches e w =
  let k = registers e in
  final_assignments ~k e w (Array.make k None) <> []

(* ------------------------------------------------------------------ *)
(* Pretty-printing.  Precedence: union 0, concat 1, postfix 2, atom 3. *)

let pp_registers ppf rs =
  match rs with
  | [ r ] -> Format.fprintf ppf "@@r%d" (r + 1)
  | _ ->
      Format.fprintf ppf "@@{%s}"
        (String.concat "," (List.map (fun r -> Printf.sprintf "r%d" (r + 1)) rs))

let rec pp_prec prec ppf e =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Eps -> Format.pp_print_string ppf "eps"
  | Letter a -> Format.pp_print_string ppf a
  | Union (e1, e2) ->
      paren 0 (fun ppf ->
          Format.fprintf ppf "%a | %a" (pp_prec 1) e1 (pp_prec 0) e2)
  | Concat (e1, e2) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a %a" (pp_prec 1) e1 (pp_prec 2) e2)
  | Plus e1 -> paren 2 (fun ppf -> Format.fprintf ppf "%a+" (pp_prec 3) e1)
  | Test (e1, c) ->
      paren 2 (fun ppf ->
          Format.fprintf ppf "%a[%s]" (pp_prec 3) e1 (Condition.to_string c))
  | Bind (rs, e1) ->
      (* A bind scopes over everything to its right in a concatenation, so
         it must be parenthesized whenever anything follows it. *)
      paren 0 (fun ppf ->
          Format.fprintf ppf "%a %a" pp_registers rs (pp_prec 1) e1)

let pp = pp_prec 0
let to_string e = Format.asprintf "%a" pp e

(* ------------------------------------------------------------------ *)
(* Parser. *)

type token =
  | Tid of string
  | Tlparen
  | Trparen
  | Tbar
  | Tplus
  | Tstar
  | Tdot
  | Tbind of int list
  | Tcond of Condition.t

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\'' || c = '$'

let parse_register_list s =
  (* "r1,r2,r3" -> [0;1;2] *)
  let parts = String.split_on_char ',' s in
  let parse_one p =
    let p = String.trim p in
    if String.length p >= 2 && p.[0] = 'r' then
      match int_of_string_opt (String.sub p 1 (String.length p - 1)) with
      | Some i when i >= 1 -> Some (i - 1)
      | _ -> None
    else None
  in
  let regs = List.map parse_one parts in
  if List.exists (fun r -> r = None) regs then None
  else Some (List.map Option.get regs)

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (Tlparen :: acc)
      | ')' -> go (i + 1) (Trparen :: acc)
      | '|' -> go (i + 1) (Tbar :: acc)
      | '+' -> go (i + 1) (Tplus :: acc)
      | '*' -> go (i + 1) (Tstar :: acc)
      | '.' -> go (i + 1) (Tdot :: acc)
      | '[' -> (
          match String.index_from_opt s i ']' with
          | None -> Error "unterminated condition ["
          | Some j -> (
              match Condition.parse (String.sub s (i + 1) (j - i - 1)) with
              | Ok c -> go (j + 1) (Tcond c :: acc)
              | Error msg -> Error ("in condition: " ^ msg)))
      | '@' ->
          if i + 1 < n && s.[i + 1] = '{' then
            match String.index_from_opt s i '}' with
            | None -> Error "unterminated register tuple @{"
            | Some j -> (
                match parse_register_list (String.sub s (i + 2) (j - i - 2)) with
                | Some rs -> go (j + 1) (Tbind rs :: acc)
                | None -> Error "bad register tuple")
          else begin
            let j = ref (i + 1) in
            while !j < n && is_ident_char s.[!j] do
              incr j
            done;
            match parse_register_list (String.sub s (i + 1) (!j - i - 1)) with
            | Some rs -> go !j (Tbind rs :: acc)
            | None -> Error "bad register after @"
          end
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          go !j (Tid (String.sub s i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C at offset %d" c i)
  in
  go 0 []

let parse s =
  match tokenize s with
  | Error _ as e -> e
  | Ok tokens -> (
      let toks = ref tokens in
      let peek () = match !toks with [] -> None | t :: _ -> Some t in
      let advance () = match !toks with [] -> () | _ :: r -> toks := r in
      let exception Fail of string in
      let rec union () =
        let e = concat () in
        match peek () with
        | Some Tbar ->
            advance ();
            Union (e, union ())
        | _ -> e
      and concat () =
        match peek () with
        | Some (Tbind rs) ->
            advance ();
            Bind (rs, concat ())
        | _ ->
            let e = iter () in
            let rec more acc =
              match peek () with
              | Some Tdot ->
                  advance ();
                  continue acc
              | Some (Tid _ | Tlparen | Tbind _) -> continue acc
              | _ -> acc
            and continue acc =
              match peek () with
              | Some (Tbind rs) ->
                  advance ();
                  (* A mid-expression bind scopes over the rest of the
                     concatenation: e1 @r e2 = e1 · (↓r.e2). *)
                  Concat (acc, Bind (rs, concat ()))
              | _ -> more (Concat (acc, iter ()))
            in
            more e
      and iter () =
        let e = atom () in
        let rec post acc =
          match peek () with
          | Some Tplus ->
              advance ();
              post (Plus acc)
          | Some Tstar ->
              advance ();
              post (star acc)
          | Some (Tcond c) ->
              advance ();
              post (Test (acc, c))
          | _ -> acc
        in
        post e
      and atom () =
        match peek () with
        | Some (Tid "eps") ->
            advance ();
            Eps
        | Some (Tid a) ->
            advance ();
            Letter a
        | Some Tlparen -> (
            advance ();
            let e = union () in
            match peek () with
            | Some Trparen ->
                advance ();
                e
            | _ -> raise (Fail "expected )"))
        | _ -> raise (Fail "expected letter, eps or (")
      in
      try
        let e = union () in
        match !toks with
        | [] -> Ok e
        | _ -> Error "trailing tokens after expression"
      with Fail msg -> Error msg)

let rec union_branches acc = function
  | Union (e1, e2) -> union_branches (union_branches acc e1) e2
  | e -> e :: acc

let union_of = function
  | [] -> Test (Eps, Condition.ff) (* the empty language *)
  | e :: rest -> List.fold_left (fun acc x -> Union (acc, x)) e rest

let rec simplify e =
  match e with
  | Eps | Letter _ -> e
  | Union _ ->
      let branches =
        union_branches [] e |> List.map simplify |> List.sort_uniq compare
      in
      union_of (List.rev branches)
  | Concat (e1, e2) -> (
      match (simplify e1, simplify e2) with
      | Eps, e | e, Eps -> e
      | e1, e2 -> Concat (e1, e2))
  | Plus e1 -> (
      match simplify e1 with Plus e -> Plus e | e -> Plus e)
  | Test (e1, c) -> (
      match (simplify e1, c) with
      | e, Condition.True -> e
      | Test (e, c'), c -> Test (e, Condition.And (c', c))
      | e, c -> Test (e, c))
  | Bind (rs, e1) -> (
      match (List.sort_uniq compare rs, simplify e1) with
      | [], e -> e
      | rs, Bind (rs', e) -> Bind (List.sort_uniq compare (rs @ rs'), e)
      | rs, e -> Bind (rs, e))
