(** Regular expressions with memory — REM (Definition 4):

    {v e := ε | a | e + e | e · e | e⁺ | e[c] | ↓r̄.e v}

    with [a ∈ Σ], [c] a condition over registers and [r̄] a tuple of
    registers.  [↓r̄.e] stores the {e first} data value of the path in the
    registers [r̄] and runs [e]; [e[c]] runs [e] and then checks [c]
    against the {e last} data value (Definition 5).  Registers are
    0-indexed; [registers e] gives the number [k] of registers needed.

    [matches] implements Definition 5 directly (a memoized least-fixpoint
    recursion over subpaths); {!Register_automaton} gives the equivalent
    automaton-based semantics, and the test suite cross-checks the two. *)

type t =
  | Eps
  | Letter of string
  | Union of t * t
  | Concat of t * t
  | Plus of t
  | Test of t * Condition.t  (** [e\[c\]] *)
  | Bind of int list * t  (** [↓r̄.e] *)

val registers : t -> int
(** [k]: one more than the largest register index mentioned (0 if none). *)

val size : t -> int
val alphabet : t -> string list
val equal : t -> t -> bool

val matches : t -> Datagraph.Data_path.t -> bool
(** [w ∈ L(e)]: is there [σ] with [(e, w, ⊥^k) ⊢ σ]? *)

val final_assignments :
  k:int -> t -> Datagraph.Data_path.t -> Datagraph.Data_value.t option array ->
  Datagraph.Data_value.t option array list
(** All [σ'] with [(e, w, σ) ⊢ σ']; the fully general form of
    Definition 5.  [k] must be at least [registers e].

    Runs a packed evaluator: assignments are encoded as small value
    indices packed into one [int], so memo lookups allocate no lists.
    When [k × bits-per-value] exceeds a word the evaluator falls back to
    {!final_assignments_generic}. *)

val final_assignments_generic :
  k:int -> t -> Datagraph.Data_path.t -> Datagraph.Data_value.t option array ->
  Datagraph.Data_value.t option array list
(** Reference implementation of {!final_assignments} with unpacked memo
    keys — the semantic baseline the packed evaluator is tested against,
    and its fallback for very wide assignments.  Same results, slower. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** Concrete syntax, e.g. the paper's Example 6
    [↓r1·a·↓r2·b·a\[r1=\]·b\[r2≠\]] is written
    ["@r1 a @r2 b a[r1=] b[r2!=]"]: [@ri] (or [@{r1,r2}]) binds the value
    reached at that point into registers, a bracketed condition tests the
    value reached at that point, letters/(...)/[|]/[+]/[*]/[.] are as in
    {!Regex.parse}.  A prefix [@r̄] binds the first value (↓r̄ applies to
    everything that follows within the current group); [e\[c\]] attaches to
    the preceding atom. *)

val star : t -> t
(** [e* ≡ ε + e⁺] — a convenience; the paper's grammar has only [e⁺]. *)

val of_regex : Regexp.Regex.t -> t
(** Embed a standard regular expression (no registers). *)

val simplify : t -> t
(** Language-preserving cleanup: unit elements, duplicate union branches,
    merged adjacent binds ([↓r̄.↓r̄'.e = ↓(r̄∪r̄').e]), merged tests
    ([e[c][c'] = e[c ∧ c']]), dropped trivial tests and empty binds. *)
