module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Tuple_relation = Datagraph.Tuple_relation

(* Per-instance memoization uses the extensible-exception universal type:
   each key carries its own injection/projection pair, so the cache can
   hold heterogeneous values without Obj. *)
type binding = { key_id : int; value : exn }

type 'a key = { id : int; inj : 'a -> exn; proj : exn -> 'a option }

type t = {
  graph : Data_graph.t;
  relation : Tuple_relation.t;
  binary : Relation.t option;
  (* Atomic so one instance can be decided from several domains at once
     (batched dispatch over a list with duplicates): bindings are
     published with a CAS prepend, so a racing domain either sees the
     binding or recomputes the same pure value and prepends its own —
     [memo] tolerates duplicate bindings for a key (lookup takes the
     first), it only must never lose or tear one. *)
  caches : binding list Atomic.t;
}

let create g s =
  Obs.Span.with_ "instance.validate" @@ fun () ->
  let n = Data_graph.size g in
  if Tuple_relation.universe s <> n then
    Error
      (Printf.sprintf
         "relation universe %d does not match the graph's %d nodes"
         (Tuple_relation.universe s) n)
  else if Tuple_relation.arity s < 1 then
    Error "relation arity must be at least 1"
  else
    let bad = ref None in
    Tuple_relation.iter
      (fun tup ->
        List.iter
          (fun v -> if v < 0 || v >= n then bad := Some v)
          tup)
      s;
    match !bad with
    | Some v ->
        Error
          (Printf.sprintf "relation mentions out-of-range node id %d (graph has %d nodes)" v n)
    | None ->
        let binary =
          if Tuple_relation.arity s = 2 then Some (Tuple_relation.to_binary s)
          else None
        in
        Ok { graph = g; relation = s; binary; caches = Atomic.make [] }

let create_exn g s =
  match create g s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Engine.Instance.create: " ^ msg)

let of_binary g r = create_exn g (Tuple_relation.of_binary r)

let graph t = t.graph
let relation t = t.relation
let arity t = Tuple_relation.arity t.relation
let binary t = t.binary

let key_counter = ref 0

let new_key (type a) () : a key =
  incr key_counter;
  let module M = struct
    exception E of a
  end in
  {
    id = !key_counter;
    inj = (fun x -> M.E x);
    proj = (function M.E x -> Some x | _ -> None);
  }

let memo t key f =
  let rec lookup = function
    | [] -> None
    | b :: rest ->
        if b.key_id = key.id then key.proj b.value else lookup rest
  in
  match lookup (Atomic.get t.caches) with
  | Some v -> v
  | None ->
      let v = f t in
      let b = { key_id = key.id; value = key.inj v } in
      let rec publish () =
        let cur = Atomic.get t.caches in
        if not (Atomic.compare_and_set t.caches cur (b :: cur)) then publish ()
      in
      publish ();
      v
