module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Tuple_relation = Datagraph.Tuple_relation
module Query = Query_lang.Query
module Conjunctive = Query_lang.Conjunctive

type certificate =
  | Rpq of Regexp.Regex.t
  | Rem of Rem_lang.Rem.t
  | Ree of Ree_lang.Ree.t
  | Ucrdpq of Conjunctive.t

type counterexample =
  | Missing_pairs of (int * int) list
  | Violating_hom of { hom : int array; tuple : int list }

type reason = Budget_exhausted | Unsupported of string

type verdict =
  | Definable of certificate
  | Not_definable of counterexample
  | Unknown of reason

type stats = {
  steps : int;
  elapsed_s : float;
  extras : (string * int) list;
}

type t = { verdict : verdict; stats : stats }

let make ?(extras = []) ~steps ~elapsed_s verdict =
  { verdict; stats = { steps; elapsed_s; extras } }

let definable o =
  match o.verdict with
  | Definable _ -> Some true
  | Not_definable _ -> Some false
  | Unknown _ -> None

let certificate o =
  match o.verdict with Definable c -> Some c | _ -> None

let certificate_lang = function
  | Rpq _ -> "rpq"
  | Rem _ -> "rem"
  | Ree _ -> "ree"
  | Ucrdpq _ -> "ucrdpq"

let certificate_to_string = function
  | Rpq e -> Regexp.Regex.to_string e
  | Rem e -> Rem_lang.Rem.to_string e
  | Ree e -> Ree_lang.Ree.to_string e
  | Ucrdpq [] -> "(empty union)"
  | Ucrdpq q -> Conjunctive.to_string q

let reason_to_string = function
  | Budget_exhausted -> "budget_exhausted"
  | Unsupported msg -> "unsupported: " ^ msg

let verdict_name = function
  | Definable _ -> "definable"
  | Not_definable _ -> "not_definable"
  | Unknown _ -> "unknown"

let check_certificate inst cert =
  Obs.Span.with_ "certificate.check" @@ fun () ->
  let g = Instance.graph inst in
  let s = Instance.relation inst in
  match cert with
  | Ucrdpq [] ->
      if Tuple_relation.is_empty s then Ok ()
      else Error "certificate is the empty union but the relation is nonempty"
  | Ucrdpq q -> (
      match Conjunctive.eval g q with
      | exception Invalid_argument msg ->
          Error ("certificate does not evaluate: " ^ msg)
      | r ->
          if Tuple_relation.equal r s then Ok ()
          else Error "certificate evaluates to a different relation")
  | (Rpq _ | Rem _ | Ree _) as c -> (
      match Instance.binary inst with
      | None ->
          Error
            (Printf.sprintf
               "%s certificate for a relation of arity %d (binary required)"
               (certificate_lang c) (Instance.arity inst))
      | Some sb ->
          let expr =
            match c with
            | Rpq e -> Query.Rpq e
            | Rem e -> Query.Rem e
            | Ree e -> Query.Ree e
            | Ucrdpq _ -> assert false
          in
          let r = Query.eval g expr in
          if Relation.equal r sb then Ok ()
          else
            let extra = Relation.cardinal (Relation.diff r sb) in
            let missing = Relation.cardinal (Relation.diff sb r) in
            Error
              (Printf.sprintf
                 "certificate evaluates to a different relation (%d extra, %d \
                  missing pairs)"
                 extra missing))

let pp g ppf o =
  (match o.verdict with
  | Definable c ->
      Format.fprintf ppf "definable (%s certificate: %s)" (certificate_lang c)
        (certificate_to_string c)
  | Not_definable (Missing_pairs ps) ->
      Format.fprintf ppf "not definable; pairs with no witness:";
      List.iter
        (fun (u, v) ->
          Format.fprintf ppf " (%s,%s)" (Data_graph.name g u)
            (Data_graph.name g v))
        ps
  | Not_definable (Violating_hom { hom; tuple }) ->
      Format.fprintf ppf "not definable; homomorphism {";
      Array.iteri
        (fun p x ->
          if p > 0 then Format.fprintf ppf ", ";
          Format.fprintf ppf "%s->%s" (Data_graph.name g p)
            (Data_graph.name g x))
        hom;
      Format.fprintf ppf "} moves (%s) out"
        (String.concat "," (List.map (Data_graph.name g) tuple))
  | Unknown r -> Format.fprintf ppf "unknown (%s)" (reason_to_string r));
  Format.fprintf ppf " [%d steps, %.4fs]" o.stats.steps o.stats.elapsed_s
