(** The language registry: each query language registers one {!decider}
    implementing the uniform signature, and the CLI, benchmarks and tests
    dispatch by name instead of pattern-matching hand-wired code paths.

    Registration is explicit (call {!register} from an [init]-style
    function the application invokes once) so deciders are never dropped
    by the linker; {!Definability.Deciders.init} registers the five
    languages of the paper. *)

type params = { k : int  (** register bound, used by [krem] only *) }

val default_params : params
(** [{ k = 1 }]. *)

type decide =
  ?budget:Budget.t -> ?params:params -> Instance.t -> Outcome.t
(** The one decider signature.  [budget] defaults to unlimited; a decider
    must return [Unknown Budget_exhausted] (never raise, never hang) when
    the budget runs out, and [Unknown (Unsupported _)] on instances
    outside its scope (e.g. non-binary relations for path queries). *)

type decider = { lang : string; doc : string; decide : decide }

val register : decider -> unit
(** Idempotent: re-registering a language replaces its decider. *)

val find : string -> decider option
val names : unit -> string list
(** Registered language names, sorted. *)

val decide :
  ?budget:Budget.t ->
  ?params:params ->
  lang:string ->
  Instance.t ->
  (Outcome.t, string) result
(** Dispatch by name; [Error] names the unknown language and lists the
    registered ones. *)

val decide_batch :
  ?make_budget:(unit -> Budget.t) ->
  ?params:params ->
  lang:string ->
  Instance.t list ->
  (Outcome.t, string) result list
(** Decide every instance, fanned out across the domain pool
    ([Par.Pool]); the result list is in input order regardless of pool
    size, and each outcome is identical to what {!decide} returns for
    that instance.  [make_budget] is called once per instance — budgets
    are mutable and single-use, so the batch needs a factory, not a
    shared budget.  An unknown language yields one [Error] per
    instance. *)
