(* The whole hot-path state lives in one atomic word:

       state = (attempts lsl 1) lor dead_bit

   [take] is a single [Atomic.fetch_and_add] on that word — domain-safe
   by construction, and on the sequential path (pool size 1) still just
   one read-modify-write with no lock.  [attempts] counts every [take]
   call; while the budget is alive every attempt is a successful step, so
   the step count needs no second field.  The domain that kills the
   budget records the final step count in [final_used] before setting the
   dead bit's sticky state, so [used] stays exact after exhaustion even
   though racing attempts keep bumping [attempts].

   Telemetry stays out of the hot path exactly as in PR 3: the takes
   tally IS the attempts half of the state word, and deadline polls are
   tallied on the (1-in-32) probe path only; [flush_telemetry] publishes
   both once per dispatch. *)

type t = {
  fuel : int;  (** max steps; [max_int] = unbounded *)
  deadline : float;  (** absolute time; [infinity] = none *)
  state : int Atomic.t;
  (* Written once, by the CAS winner in [kill]; read only after the dead
     bit is visible. *)
  mutable final_used : int;
  (* Deadline-poll tally; only ever touched on the probe path, and only
     approximate under concurrent probing (telemetry, not semantics). *)
  mutable polls : int;
}

(* Steps between deadline probes: cheap enough that a 1ms deadline is
   honoured mid-search, rare enough that [take] stays syscall-free on the
   hot path.  The probe cadence is derived from the attempt count —
   attempt 0 probes (so an already-expired deadline kills the budget
   before any work), then every [poll_interval] attempts. *)
let poll_interval = 32

(* Fuel telemetry: how many steps the searches attempt to consume and
   how often the wall clock is actually read. *)
let c_takes = Obs.Counter.make "budget.takes"
let c_polls = Obs.Counter.make "budget.deadline_polls"

let unlimited () =
  { fuel = max_int; deadline = infinity; state = Atomic.make 0; final_used = 0; polls = 0 }

let create ?fuel ?deadline_s () =
  let fuel =
    match fuel with
    | None -> max_int
    | Some f when f < 0 -> invalid_arg "Engine.Budget.create: negative fuel"
    | Some f -> f
  in
  let deadline =
    match deadline_s with
    | None -> infinity
    | Some s when s < 0. -> invalid_arg "Engine.Budget.create: negative deadline"
    | Some s -> Unix.gettimeofday () +. s
  in
  { fuel; deadline; state = Atomic.make 0; final_used = 0; polls = 0 }

let is_dead b = Atomic.get b.state land 1 = 1

(* Sticky death: set the dead bit with a CAS loop; the winning domain
   records the exact step count at death.  [used] is the number of
   *successful* takes, which equals the attempt count observed by the
   killing call (racing attempts after the bit is set fail and do not
   count as steps). *)
let kill b ~used =
  let rec go () =
    let s = Atomic.get b.state in
    if s land 1 = 0 then
      if Atomic.compare_and_set b.state s (s lor 1) then b.final_used <- used
      else go ()
  in
  go ()

let probe_deadline b ~used =
  b.polls <- b.polls + 1;
  if b.deadline < infinity && Unix.gettimeofday () > b.deadline then
    kill b ~used

let take b =
  let s = Atomic.fetch_and_add b.state 2 in
  if s land 1 = 1 then false
  else
    let prior = s asr 1 in
    if prior >= b.fuel then begin
      kill b ~used:b.fuel;
      false
    end
    else if b.deadline < infinity && prior mod poll_interval = 0 then begin
      probe_deadline b ~used:prior;
      not (is_dead b)
    end
    else true

let used b =
  if is_dead b then b.final_used
  else min (Atomic.get b.state asr 1) b.fuel

let exhausted b =
  if not (is_dead b) then probe_deadline b ~used:(used b);
  is_dead b || Atomic.get b.state asr 1 >= b.fuel

let fuel_limit b = if b.fuel = max_int then None else Some b.fuel
let has_fuel_limit b = b.fuel <> max_int

(* Budgets are fresh per dispatch (see the interface), so publishing the
   whole tallies once — from [Registry.decide], after the decider
   returns — cannot double-count. *)
let flush_telemetry b =
  Obs.Counter.add c_takes (Atomic.get b.state asr 1);
  Obs.Counter.add c_polls b.polls

(* ------------------------------------------------------------------ *)
(* Per-domain chunked views.

   Under a shared budget, a parallel search calling [take] per node pays
   one contended fetch-and-add per step.  A [local] view amortizes this
   for the *unbounded-fuel* case (the only case the parallel kernels
   run in — finite fuel forces the deterministic sequential paths): it
   claims [chunk] attempts from the shared word at once and hands them
   out locally, probing the deadline once per claim so a deadline is
   still honoured within ~[chunk] steps per domain.  With finite fuel
   the view degrades to plain [take], keeping step accounting exact. *)

type local = { b : t; mutable credit : int }

let chunk = poll_interval

let local b = { b; credit = 0 }

let take_local l =
  if l.credit > 0 then begin
    l.credit <- l.credit - 1;
    true
  end
  else if has_fuel_limit l.b then take l.b
  else begin
    let s = Atomic.fetch_and_add l.b.state (2 * chunk) in
    if s land 1 = 1 then false
    else begin
      if l.b.deadline < infinity then probe_deadline l.b ~used:(s asr 1);
      if is_dead l.b then false
      else begin
        l.credit <- chunk - 1;
        true
      end
    end
  end
