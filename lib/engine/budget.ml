type t = {
  fuel : int;  (** max steps; [max_int] = unbounded *)
  deadline : float;  (** absolute time; [infinity] = none *)
  mutable used : int;
  mutable dead : bool;
  mutable tick : int;
  (* Telemetry tallies, kept as plain fields so the hot path never
     leaves this module: [take] is called per search step, and even a
     branch-guarded cross-library call there is measurable on the
     microsecond-scale deciders.  [flush_telemetry] publishes both
     tallies to the [Obs] counters once per dispatch. *)
  mutable takes : int;
  mutable polls : int;
}

(* Steps between deadline probes: cheap enough that a 1ms deadline is
   honoured mid-search, rare enough that [take] stays syscall-free on the
   hot path. *)
let poll_interval = 32

(* Fuel telemetry: how many steps the searches attempt to consume and
   how often the wall clock is actually read. *)
let c_takes = Obs.Counter.make "budget.takes"
let c_polls = Obs.Counter.make "budget.deadline_polls"

(* [tick] starts one step short of the poll interval so the very first
   [take] probes the deadline — an already-expired deadline (e.g.
   [deadline_s:0.]) then kills the budget before any work happens. *)
let unlimited () =
  {
    fuel = max_int;
    deadline = infinity;
    used = 0;
    dead = false;
    tick = poll_interval - 1;
    takes = 0;
    polls = 0;
  }

let create ?fuel ?deadline_s () =
  let fuel =
    match fuel with
    | None -> max_int
    | Some f when f < 0 -> invalid_arg "Engine.Budget.create: negative fuel"
    | Some f -> f
  in
  let deadline =
    match deadline_s with
    | None -> infinity
    | Some s when s < 0. -> invalid_arg "Engine.Budget.create: negative deadline"
    | Some s -> Unix.gettimeofday () +. s
  in
  {
    fuel;
    deadline;
    used = 0;
    dead = false;
    tick = poll_interval - 1;
    takes = 0;
    polls = 0;
  }

let probe_deadline b =
  b.polls <- b.polls + 1;
  if b.deadline < infinity && Unix.gettimeofday () > b.deadline then
    b.dead <- true

let take b =
  b.takes <- b.takes + 1;
  if b.dead then false
  else begin
    if b.deadline < infinity then begin
      b.tick <- b.tick + 1;
      if b.tick >= poll_interval then begin
        b.tick <- 0;
        probe_deadline b
      end
    end;
    if b.dead || b.used >= b.fuel then begin
      b.dead <- true;
      false
    end
    else begin
      b.used <- b.used + 1;
      true
    end
  end

let exhausted b =
  if not b.dead then probe_deadline b;
  b.dead || b.used >= b.fuel

let used b = b.used
let fuel_limit b = if b.fuel = max_int then None else Some b.fuel

(* Budgets are fresh per dispatch (see the interface), so publishing the
   whole tallies once — from [Registry.decide], after the decider
   returns — cannot double-count. *)
let flush_telemetry b =
  Obs.Counter.add c_takes b.takes;
  Obs.Counter.add c_polls b.polls
