(** Resource budgets for the decision procedures.

    A budget combines {e step fuel} (a deterministic bound on the number of
    search steps — explored tuples, closure elements, backtracking nodes)
    with a {e wall-clock deadline}.  Searches consume the budget via
    {!take}; once either resource runs out the budget is {e sticky}: every
    further {!take} fails, so a search unwinds promptly and uniformly
    reports [Unknown Budget_exhausted] instead of a verdict.

    Fuel exhaustion is fully deterministic (the same instance and fuel
    always stop at the same step), which the budget tests rely on;
    deadlines are polled only every few steps to keep [take] off the
    clock-syscall path. *)

type t

val unlimited : unit -> t
(** No fuel bound, no deadline. *)

val create : ?fuel:int -> ?deadline_s:float -> unit -> t
(** [create ?fuel ?deadline_s ()] allows at most [fuel] steps (default
    unbounded) and expires [deadline_s] seconds from now (default never).
    A fresh budget must be created per [decide] call — budgets are
    mutable and not reusable.
    @raise Invalid_argument on negative [fuel] or [deadline_s]. *)

val take : t -> bool
(** Consume one step.  [false] once the budget is exhausted (and forever
    after). *)

val exhausted : t -> bool
(** Non-consuming check; probes the deadline immediately (not throttled). *)

val used : t -> int
(** Steps consumed so far (successful {!take}s). *)

val fuel_limit : t -> int option
(** The fuel bound, if any. *)

val flush_telemetry : t -> unit
(** Publish the budget's step and deadline-poll tallies to the
    [budget.takes] / [budget.deadline_polls] {!Obs.Counter}s (a no-op
    while telemetry is disabled).  Called by [Registry.decide] after the
    decider returns; budgets are fresh per dispatch, so the one flush
    counts each attempt exactly once.  The tallies themselves are plain
    record fields — [take] stays free of observation calls, keeping the
    hottest engine entry point at its uninstrumented cost. *)
