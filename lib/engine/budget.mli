(** Resource budgets for the decision procedures.

    A budget combines {e step fuel} (a deterministic bound on the number of
    search steps — explored tuples, closure elements, backtracking nodes)
    with a {e wall-clock deadline}.  Searches consume the budget via
    {!take}; once either resource runs out the budget is {e sticky}: every
    further {!take} fails, so a search unwinds promptly and uniformly
    reports [Unknown Budget_exhausted] instead of a verdict.

    Fuel exhaustion is fully deterministic (the same instance and fuel
    always stop at the same step), which the budget tests rely on;
    deadlines are polled only every few steps to keep [take] off the
    clock-syscall path.

    Budgets are {e domain-safe}: the fuel counter and the sticky dead
    flag live in a single atomic state word, so concurrent {!take}s from
    several domains never lose steps, never resurrect a dead budget, and
    grant exactly [fuel] steps in total.  Parallel searches sharing one
    unbounded-fuel budget should take through a per-domain {!local} view,
    which claims steps in chunks to keep the shared word uncontended. *)

type t

val unlimited : unit -> t
(** No fuel bound, no deadline. *)

val create : ?fuel:int -> ?deadline_s:float -> unit -> t
(** [create ?fuel ?deadline_s ()] allows at most [fuel] steps (default
    unbounded) and expires [deadline_s] seconds from now (default never).
    A fresh budget must be created per [decide] call — budgets are
    mutable and not reusable.
    @raise Invalid_argument on negative [fuel] or [deadline_s]. *)

val take : t -> bool
(** Consume one step.  [false] once the budget is exhausted (and forever
    after). *)

val exhausted : t -> bool
(** Non-consuming check; probes the deadline immediately (not throttled). *)

val used : t -> int
(** Steps consumed so far (successful {!take}s). *)

val fuel_limit : t -> int option
(** The fuel bound, if any. *)

val has_fuel_limit : t -> bool
(** Whether the budget bounds steps at all.  The parallel kernels check
    this to pick a strategy: finite fuel forces the deterministic
    sequential search order (so exhaustion hits the same step at any
    pool size), unbounded fuel admits parallel exploration. *)

(** {2 Per-domain views}

    A {!local} view amortizes contention on a budget shared by several
    domains: for unbounded-fuel budgets it claims {e chunks} of steps
    from the shared atomic word and hands them out locally, probing the
    deadline once per chunk (so a deadline is honoured within one chunk
    per domain).  With finite fuel, {!take_local} falls through to plain
    {!take} — chunk claiming would over-commit steps and break the
    deterministic exhaustion point.  A view belongs to one domain; make
    one per parallel task. *)

type local

val local : t -> local
val take_local : local -> bool

val flush_telemetry : t -> unit
(** Publish the budget's step and deadline-poll tallies to the
    [budget.takes] / [budget.deadline_polls] {!Obs.Counter}s (a no-op
    while telemetry is disabled).  Called by [Registry.decide] after the
    decider returns; budgets are fresh per dispatch, so the one flush
    counts each attempt exactly once.  The takes tally is read straight
    out of the atomic state word and the poll tally off the (throttled)
    probe path — [take] stays free of observation calls, keeping the
    hottest engine entry point at its uninstrumented cost. *)
