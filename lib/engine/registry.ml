type params = { k : int }

let default_params = { k = 1 }

type decide = ?budget:Budget.t -> ?params:params -> Instance.t -> Outcome.t
type decider = { lang : string; doc : string; decide : decide }

let table : (string, decider) Hashtbl.t = Hashtbl.create 8

let register d = Hashtbl.replace table d.lang d
let find lang = Hashtbl.find_opt table lang

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) table []
  |> List.sort String.compare

(* Telemetry is plumbed in exactly once, here: every registered language
   gets a root span around its decide call, and the budget's step/poll
   tallies are published after it returns — so the per-phase breakdowns
   and counter catalogue need no per-decider boilerplate. *)
let decide ?budget ?params ~lang inst =
  match find lang with
  | Some d ->
      Ok
        (Obs.Span.with_ ("decide." ^ lang) (fun () ->
             let o = d.decide ?budget ?params inst in
             Option.iter Budget.flush_telemetry budget;
             o))
  | None ->
      Error
        (Printf.sprintf "unknown language %S; registered: %s" lang
           (String.concat ", " (names ())))
