type params = { k : int }

let default_params = { k = 1 }

type decide = ?budget:Budget.t -> ?params:params -> Instance.t -> Outcome.t
type decider = { lang : string; doc : string; decide : decide }

let table : (string, decider) Hashtbl.t = Hashtbl.create 8

let register d = Hashtbl.replace table d.lang d
let find lang = Hashtbl.find_opt table lang

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) table []
  |> List.sort String.compare

let decide ?budget ?params ~lang inst =
  match find lang with
  | Some d -> Ok (d.decide ?budget ?params inst)
  | None ->
      Error
        (Printf.sprintf "unknown language %S; registered: %s" lang
           (String.concat ", " (names ())))
