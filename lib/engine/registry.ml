type params = { k : int }

let default_params = { k = 1 }

type decide = ?budget:Budget.t -> ?params:params -> Instance.t -> Outcome.t
type decider = { lang : string; doc : string; decide : decide }

let table : (string, decider) Hashtbl.t = Hashtbl.create 8

let register d = Hashtbl.replace table d.lang d
let find lang = Hashtbl.find_opt table lang

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) table []
  |> List.sort String.compare

(* Telemetry is plumbed in exactly once, here: every registered language
   gets a root span around its decide call, and the budget's step/poll
   tallies are published after it returns — so the per-phase breakdowns
   and counter catalogue need no per-decider boilerplate. *)
let unknown_lang lang =
  Printf.sprintf "unknown language %S; registered: %s" lang
    (String.concat ", " (names ()))

let decide ?budget ?params ~lang inst =
  match find lang with
  | Some d ->
      Ok
        (Obs.Span.with_ ("decide." ^ lang) (fun () ->
             let o = d.decide ?budget ?params inst in
             Option.iter Budget.flush_telemetry budget;
             o))
  | None -> Error (unknown_lang lang)

(* Batched dispatch: one decider, many instances, fanned out across the
   domain pool.  Each instance is decided exactly as [decide] would —
   its own root span, a fresh budget from [make_budget] (budgets are
   single-use, so a shared one would starve every instance after the
   first), telemetry flushed per attempt — and the result list lines up
   with the input list.  Instances are independent, so outcomes are the
   same at any pool size; a decider that itself uses the pool declines
   to sub-split when called from a worker ([Par.Pool.in_pool]) and runs
   its kernels sequentially inline — batch-level parallelism wins over
   search-level, so instances fill the domains and subtrees stay put. *)
let decide_batch ?make_budget ?params ~lang insts =
  match find lang with
  | None ->
      let e = unknown_lang lang in
      List.map (fun _ -> Error e) insts
  | Some d ->
      let one inst =
        let budget = Option.map (fun mk -> mk ()) make_budget in
        Ok
          (Obs.Span.with_ ("decide." ^ lang) (fun () ->
               let o = d.decide ?budget ?params inst in
               Option.iter Budget.flush_telemetry budget;
               o))
      in
      Par.Pool.map_list one insts
