(** A validated definability problem: a data graph plus a target relation
    on its nodes, checked once at construction so every decider can assume
    a well-formed input — the relation's universe matches the graph, its
    arity is positive, and every tuple mentions only in-range nodes.

    An instance also {e owns} the per-problem derived structures that the
    deciders share (PR 1 cached these in scattered module-level slots):
    the binary view of the relation is packed once, and arbitrary derived
    values — e.g. the homomorphism CSP — can be memoized on the instance
    through typed {!key}s instead of global caches. *)

type t

val create :
  Datagraph.Data_graph.t -> Datagraph.Tuple_relation.t -> (t, string) result
(** Validate and pack.  Errors on a universe/graph-size mismatch, an arity
    below 1, or an out-of-range node id in a tuple. *)

val create_exn : Datagraph.Data_graph.t -> Datagraph.Tuple_relation.t -> t
(** @raise Invalid_argument when {!create} would return [Error]. *)

val of_binary : Datagraph.Data_graph.t -> Datagraph.Relation.t -> t
(** Pack a binary relation.
    @raise Invalid_argument when the relation does not fit the graph. *)

val graph : t -> Datagraph.Data_graph.t
val relation : t -> Datagraph.Tuple_relation.t
val arity : t -> int

val binary : t -> Datagraph.Relation.t option
(** The binary view, packed once at construction; [None] when the arity
    is not 2 (the path-query deciders report such instances as
    unsupported). *)

(** {2 Per-instance memoization}

    A [key] is a typed slot identifier.  Deciders create their keys once
    at module level and call {!memo} to compute a derived structure the
    first time and reuse it on every later dispatch against the same
    instance. *)

type 'a key

val new_key : unit -> 'a key

val memo : t -> 'a key -> (t -> 'a) -> 'a
(** [memo inst key f] returns the cached value for [key], computing it
    with [f inst] on first use. *)
