(** The one result type every decider returns.

    A decider either proves definability and hands back a {e certificate}
    (a synthesized defining query in the decided language), refutes it
    with a {e counterexample} (uncoverable pairs, or a violating
    homomorphism with an escaping tuple), or gives up with a {e reason} —
    in particular [Budget_exhausted] when the {!Budget} ran dry, replacing
    the old per-module [definable : bool option] conventions.

    Certificates are independently checkable: {!check_certificate}
    re-evaluates the query on the graph with the evaluation stack
    (NFA / register-automaton products, conjunctive joins) — a code path
    disjoint from the witness searches that produced it — and compares
    the result with the instance's relation. *)

type certificate =
  | Rpq of Regexp.Regex.t
  | Rem of Rem_lang.Rem.t  (** both [rem] and [krem] *)
  | Ree of Ree_lang.Ree.t
  | Ucrdpq of Query_lang.Conjunctive.t
      (** the empty union [[]] certifies the empty relation *)

type counterexample =
  | Missing_pairs of (int * int) list
      (** pairs of the relation no query of the language can cover *)
  | Violating_hom of { hom : int array; tuple : int list }
      (** a data graph homomorphism moving [tuple] out of the relation *)

type reason =
  | Budget_exhausted
  | Unsupported of string
      (** e.g. a path-query decider on a non-binary relation *)

type verdict =
  | Definable of certificate
  | Not_definable of counterexample
  | Unknown of reason

type stats = {
  steps : int;
      (** search steps: explored tuples, closure elements, CSP nodes *)
  elapsed_s : float;
  extras : (string * int) list;
      (** decider-specific statistics, e.g. REE [closure_size] /
          [max_height] *)
}

type t = { verdict : verdict; stats : stats }

val make : ?extras:(string * int) list -> steps:int -> elapsed_s:float -> verdict -> t

val definable : t -> bool option
(** [Some true] / [Some false] / [None] for unknown. *)

val certificate : t -> certificate option

val certificate_lang : certificate -> string
(** ["rpq"], ["rem"], ["ree"] or ["ucrdpq"]. *)

val certificate_to_string : certificate -> string
(** Concrete syntax of the carried query ([(empty union)] for
    [Ucrdpq \[\]]). *)

val reason_to_string : reason -> string
val verdict_name : verdict -> string
(** ["definable"], ["not_definable"] or ["unknown"]. *)

val check_certificate :
  Instance.t -> certificate -> (unit, string) result
(** Re-evaluate the certificate's query on the instance's graph and
    compare with the relation; [Error] describes the first discrepancy.
    Path-query certificates are rejected on non-binary instances. *)

val pp : Datagraph.Data_graph.t -> Format.formatter -> t -> unit
