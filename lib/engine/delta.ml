module Data_graph = Datagraph.Data_graph
module Tuple_relation = Datagraph.Tuple_relation
module Bitmatrix = Util.Bitmatrix

type graph_edit =
  | Add_edge of int * string * int
  | Remove_edge of int * string * int
  | Add_node of string * Datagraph.Data_value.t
  | Set_relation of int list list

let edit_to_string = function
  | Add_edge (u, a, v) -> Printf.sprintf "add-edge %d -%s-> %d" u a v
  | Remove_edge (u, a, v) -> Printf.sprintf "remove-edge %d -%s-> %d" u a v
  | Add_node (nm, d) ->
      Printf.sprintf "add-node %s=%s" nm
        (Format.asprintf "%a" Datagraph.Data_value.pp d)
  | Set_relation tuples ->
      Printf.sprintf "set-relation (%d tuples)" (List.length tuples)

(* Repair telemetry: the hit rate of the fast path is the headline
   number of the incremental engine, so it is a first-class counter
   pair rather than something reconstructed from logs. *)
let c_repair_hit = Obs.Counter.make "delta.repair_hit"
let c_repair_miss = Obs.Counter.make "delta.repair_miss"

let apply_edit inst edit =
  Obs.Span.with_ "delta.apply" @@ fun () ->
  let g = Instance.graph inst in
  let rel = Instance.relation inst in
  try
    match edit with
    | Add_edge (u, a, v) ->
        Instance.create (Data_graph.add_edge g u a v) rel
    | Remove_edge (u, a, v) ->
        Instance.create (Data_graph.remove_edge g u a v) rel
    | Add_node (nm, d) ->
        let g' = Data_graph.add_node g nm d in
        (* The universe grew; repack the (unchanged) tuples over it. *)
        let rel' =
          Tuple_relation.of_list
            ~universe:(Data_graph.size g')
            ~arity:(Tuple_relation.arity rel)
            (Tuple_relation.to_list rel)
        in
        Instance.create g' rel'
    | Set_relation tuples ->
        (* The graph is shared untouched (same uid), so every derived
           structure keyed on it — CSPs, REM memos, packed matrices —
           stays warm across a retupling. *)
        let arity =
          match tuples with [] -> Instance.arity inst | t :: _ -> List.length t
        in
        let rel' =
          Tuple_relation.of_list ~universe:(Data_graph.size g) ~arity tuples
        in
        Instance.create g rel'
  with Invalid_argument msg -> Error msg

(* Replica of [Definability.Hom.is_hom] (that library sits above the
   engine, so calling it here would be a dependency cycle).  The
   condition is Definition 33: h preserves labeled edges, and for every
   pair (p, q) with q reachable from p, h preserves whether the two
   nodes carry the same data value.  [test_delta] cross-checks this
   replica against the original on random homs. *)
let is_hom g h =
  let n = Data_graph.size g in
  Array.length h = n
  && Array.for_all (fun x -> x >= 0 && x < n) h
  && List.for_all
       (fun (p, a, q) -> Data_graph.mem_edge g h.(p) a h.(q))
       (Data_graph.edges g)
  &&
  let reach = Data_graph.reachability_matrix g in
  let ok = ref true in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if Bitmatrix.get reach p q then
        if Data_graph.same_value g p q <> Data_graph.same_value g h.(p) h.(q)
        then ok := false
    done
  done;
  !ok

(* Does the stored certificate even speak the language we are deciding?
   A cached [krem] outcome carries a [Rem] certificate, etc. *)
let cert_matches_lang ~lang cert =
  match (lang, Outcome.certificate_lang cert) with
  | "krem", "rem" -> true
  | l, cl -> String.equal l cl

(* A repair is only worth attempting while the check stays orders
   cheaper than the search it replaces.  Path-language certificates
   re-evaluate as automaton products — polynomial and small.  A UCRDPQ
   union certificate is joined by backtracking over each member's
   variables — O(n^v) per member — so a large synthesized union can
   cost {e more} to re-check than deciding from scratch (and the check
   is unbudgeted).  Estimate that cost up front and send the edit to
   the budgeted fallback when it exceeds [max_check_cost]. *)
let max_check_cost = 1e7

let cert_check_affordable inst = function
  | Outcome.Rpq _ | Outcome.Rem _ | Outcome.Ree _ -> true
  | Outcome.Ucrdpq union ->
      let n =
        float_of_int (max 1 (Data_graph.size (Instance.graph inst)))
      in
      List.fold_left
        (fun acc q ->
          acc
          +. (n ** float_of_int (List.length (Query_lang.Conjunctive.variables q))))
        0. union
      <= max_check_cost

(* Attempt to repair the previous verdict on the edited instance.

   - [Definable c]: certificates are independently re-checkable, and
     [check_certificate] is orders cheaper than a search — re-check [c]
     on the edited instance and keep it when it still defines the
     relation.
   - [Not_definable (Violating_hom ...)]: sound to keep only for
     UCRDPQ, where Lemma 34 makes "preserved by every homomorphism"
     exactly the definability criterion — so any surviving violating
     hom refutes.  New nodes (isolated, added after the hom was found)
     extend the hom by the identity.  For the path-query languages a
     violating hom is only a necessary-condition witness, so it cannot
     be trusted alone; no repair.
   - [Not_definable (Missing_pairs ...)]: a pair can gain a defining
     witness under an edit (witness sets are not monotone in either
     direction — edits add paths and remove them), so the
     counterexample cannot be re-validated cheaply; no repair.
   - [Unknown _]: nothing to repair. *)
let try_repair ~lang ~params:_ prev inst =
  match prev.Outcome.verdict with
  | Outcome.Definable cert
    when cert_matches_lang ~lang cert && cert_check_affordable inst cert -> (
      match Outcome.check_certificate inst cert with
      | Ok () -> Some (Outcome.Definable cert)
      | Error _ -> None)
  | Outcome.Definable _ -> None
  | Outcome.Not_definable (Outcome.Violating_hom { hom; tuple })
    when String.equal lang "ucrdpq" ->
      let g = Instance.graph inst in
      let rel = Instance.relation inst in
      let n = Data_graph.size g in
      let m = Array.length hom in
      if m > n then None
      else
        let h = Array.init n (fun i -> if i < m then hom.(i) else i) in
        if
          is_hom g h
          && Tuple_relation.mem rel tuple
          && not (Tuple_relation.mem rel (List.map (fun p -> h.(p)) tuple))
        then Some (Outcome.Not_definable (Outcome.Violating_hom { hom = h; tuple }))
        else None
  | Outcome.Not_definable _ -> None
  | Outcome.Unknown _ -> None

type delta_result = {
  inst : Instance.t;  (** the edited instance *)
  outcome : Outcome.t;
  repaired : bool;  (** true = fast path; false = full decide fallback *)
}

let decide_delta ?budget ?params ~lang ~prev inst edit =
  match apply_edit inst edit with
  | Error _ as e -> e
  | Ok inst' -> (
      let t0 = Unix.gettimeofday () in
      let repaired =
        Obs.Span.with_ "delta.repair" @@ fun ()
        -> try_repair ~lang ~params prev inst'
      in
      match repaired with
      | Some verdict ->
          Obs.Counter.incr c_repair_hit;
          let elapsed_s = Unix.gettimeofday () -. t0 in
          let outcome =
            Outcome.make ~extras:[ ("repaired", 1) ] ~steps:0 ~elapsed_s verdict
          in
          Ok { inst = inst'; outcome; repaired = true }
      | None -> (
          Obs.Counter.incr c_repair_miss;
          match Registry.decide ?budget ?params ~lang inst' with
          | Error _ as e -> e
          | Ok outcome -> Ok { inst = inst'; outcome; repaired = false }))

(* ------------------------------------------------------------------ *)
(* Random edit streams — shared by the bench workloads and the fuzz    *)
(* tests, so both exercise the same distribution.                      *)
(* ------------------------------------------------------------------ *)

let random_edits ?(add_nodes = false) ~rand ~steps inst =
  let edits = ref [] in
  let cur = ref inst in
  let node_stamp = ref 0 in
  for _ = 1 to steps do
    let g = Instance.graph !cur in
    let n = Data_graph.size g in
    let labels = Data_graph.alphabet g in
    let labels = if labels = [] then [ "a" ] else labels in
    let pick_label () = List.nth labels (rand (List.length labels)) in
    let try_add () =
      (* Rejection-sample a non-edge; give up after a few throws on
         dense graphs and fall through to a removal. *)
      let rec go k =
        if k = 0 then None
        else
          let u = rand n and v = rand n and a = pick_label () in
          if Data_graph.mem_edge g u a v then go (k - 1)
          else Some (Add_edge (u, a, v))
      in
      go 8
    in
    let try_remove () =
      match Data_graph.edges g with
      | [] -> None
      | es ->
          let u, a, v = List.nth es (rand (List.length es)) in
          Some (Remove_edge (u, a, v))
    in
    let add_node () =
      incr node_stamp;
      let d =
        match Data_graph.domain g with
        | [] -> Datagraph.Data_value.of_int 0
        | dom -> List.nth dom (rand (List.length dom))
      in
      Some (Add_node (Printf.sprintf "w%d" !node_stamp, d))
    in
    let edit =
      match rand (if add_nodes then 5 else 4) with
      | 0 | 1 -> ( match try_add () with Some e -> Some e | None -> try_remove ())
      | 2 | 3 -> ( match try_remove () with Some e -> Some e | None -> try_add ())
      | _ -> add_node ()
    in
    match edit with
    | None -> ()
    | Some e -> (
        match apply_edit !cur e with
        | Ok next ->
            cur := next;
            edits := e :: !edits
        | Error _ -> ())
  done;
  List.rev !edits
