(** Incremental definability: decide an {e edited} instance by repairing
    the previous outcome instead of searching from scratch.

    The asymmetry this exploits: a certificate is independently
    re-checkable with the evaluation stack ({!Outcome.check_certificate}),
    and a check costs orders of magnitude less than the search that
    produced the certificate.  For an edit stream over an evolving graph,
    most edits leave the previous verdict intact — so the fast path is
    "apply the edit structurally (patching the packed matrices, see
    {!Datagraph.Data_graph.add_edge}), re-check the stored witness, and
    only fall back to a budgeted full decide when the witness no longer
    holds".

    Repair soundness is per verdict shape:
    - [Definable c] is kept iff [c] speaks the decided language and
      still checks on the edited instance (re-evaluation against the
      relation is exact, not heuristic).
    - [Not_definable (Violating_hom _)] is kept only for [ucrdpq],
      where a violating homomorphism is the {e exact} refutation
      criterion (Lemma 34); for the path-query languages it is only a
      necessary condition and is never trusted across an edit.
    - [Not_definable (Missing_pairs _)] and [Unknown _] always fall
      back: witness sets are not monotone under edits.

    The repair check itself is unbudgeted, so it must stay orders
    cheaper than a search.  That holds structurally for the
    path-language certificates (automaton-product evaluation); a UCRDPQ
    union certificate joins by backtracking over each member's
    variables — O(n^v) — so repair of a large union is declined up
    front (estimated check cost over [1e7]) and the edit goes straight
    to the budgeted fallback decide.

    Hit/miss telemetry is exported as the [delta.repair_hit] /
    [delta.repair_miss] counters and a [delta.repair] span. *)

type graph_edit =
  | Add_edge of int * string * int  (** [Add_edge (u, label, v)] *)
  | Remove_edge of int * string * int
  | Add_node of string * Datagraph.Data_value.t  (** name and data value *)
  | Set_relation of int list list
      (** retuple the target relation (the graph — and thus every
          graph-keyed cache — is shared untouched) *)

val edit_to_string : graph_edit -> string
(** One-line rendering for logs and error messages. *)

val apply_edit : Instance.t -> graph_edit -> (Instance.t, string) result
(** Apply the edit structurally: graph edits go through the
    cache-patching constructors of {!Datagraph.Data_graph}; a relation
    edit repacks the tuples over the shared graph.  [Error] on invalid
    edits (duplicate edge, missing edge, out-of-range node, bad tuple).
    Recorded under a [delta.apply] span. *)

type delta_result = {
  inst : Instance.t;  (** the edited instance *)
  outcome : Outcome.t;
  repaired : bool;  (** true = fast path; false = full decide fallback *)
}

val decide_delta :
  ?budget:Budget.t ->
  ?params:Registry.params ->
  lang:string ->
  prev:Outcome.t ->
  Instance.t ->
  graph_edit ->
  (delta_result, string) result
(** [decide_delta ~lang ~prev inst edit] applies [edit] to [inst] and
    decides the edited instance, attempting certificate repair of
    [prev] first.  A repaired outcome carries
    [extras = [("repaired", 1)]] and zero steps; a fallback outcome is
    exactly what {!Registry.decide} returns (the [budget] applies only
    to the fallback — repair itself is unbudgeted because it is a
    single certificate check).  [Error] on an invalid edit or an
    unknown language. *)

val is_hom : Datagraph.Data_graph.t -> int array -> bool
(** Replica of [Definability.Hom.is_hom] — that library sits {e above}
    the engine, so the repair path cannot call it without a dependency
    cycle.  Exposed so the differential tests can cross-check the
    replica against the original on random candidate mappings. *)

val random_edits :
  ?add_nodes:bool ->
  rand:(int -> int) ->
  steps:int ->
  Instance.t ->
  graph_edit list
(** A random edit trace of (at most) [steps] valid edits starting from
    the instance: edge insertions (rejection-sampled non-edges over the
    graph's alphabet), edge removals, and — when [add_nodes] is true —
    isolated node additions.  [rand n] must return a uniform draw from
    [0 .. n-1].  Shared by the bench edit-stream workloads and the
    differential fuzz tests. *)
