let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let digest_bytes b pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Store.Crc32.digest_bytes";
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get t ((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest_sub s pos len = digest_bytes (Bytes.unsafe_of_string s) pos len
let digest_string s = digest_sub s 0 (String.length s)
