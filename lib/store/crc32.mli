(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]), table-driven.

    Frames every record in {!Log} so recovery can tell a complete record
    from a torn or bit-rotted one without trusting file length.  The
    stdlib has no checksum and the store takes no dependencies, so the
    256-entry table lives here; the value fits OCaml's native [int] on
    64-bit (always [< 2^32]). *)

val digest_bytes : bytes -> int -> int -> int
(** [digest_bytes b pos len] — CRC-32 of the slice. *)

val digest_string : string -> int

val digest_sub : string -> int -> int -> int
