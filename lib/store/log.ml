(* Durability latencies feed the service metrics plane: every framed
   write and every fsync lands in a histogram, so a shard's p99 decide
   latency can be decomposed into compute vs disk without re-running
   the bench harness.  Both record only while [Obs] is enabled. *)
let h_append = Obs.Histogram.make "store.append"
let h_fsync = Obs.Histogram.make "store.fsync"

type fsync_policy = Never | Every of int | Always

let fsync_policy_to_string = function
  | Never -> "never"
  | Always -> "always"
  | Every n -> Printf.sprintf "every:%d" n

let fsync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "never" -> Ok Never
  | "always" -> Ok Always
  | other ->
      let bad () =
        Error
          (Printf.sprintf
             "bad fsync policy %S (expected never, always or every:N)" s)
      in
      if String.length other > 6 && String.sub other 0 6 = "every:" then
        match int_of_string_opt (String.sub other 6 (String.length other - 6)) with
        | Some n when n >= 1 -> Ok (Every n)
        | _ -> bad ()
      else bad ()

(* Where a live value sits: which file, the offset of the value bytes,
   and their length.  The key itself lives in the index, so [find]
   never re-reads it. *)
type location = { in_snapshot : bool; off : int; len : int }

type t = {
  dir : string;
  fsync : fsync_policy;
  auto_compact_bytes : int;
  check : key:string -> string -> bool;
  index : (string, location) Hashtbl.t;
  mutable log_write : Unix.file_descr;
  mutable log_read : Unix.file_descr;
  mutable snap_read : Unix.file_descr option;
  mutable log_bytes : int;
  mutable snapshot_bytes : int;
  mutable unsynced : int;
  mutable closed : bool;
  mutable appends : int;
  mutable fsyncs : int;
  mutable compactions : int;
  mutable recovered : int;
  mutable dropped_check : int;
  mutable truncated_bytes : int;
  m : Mutex.t;
}

let snapshot_file dir = Filename.concat dir "snapshot.bin"
let log_file dir = Filename.concat dir "log.bin"
let header_len = 8
let max_body = 1 lsl 30

let u32_at b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF

(* One framed record: header (body length + CRC of the body) then body. *)
let frame ~kind ~key ~value =
  let klen = String.length key and vlen = String.length value in
  let blen = 5 + klen + vlen in
  if blen > max_body then invalid_arg "Store.Log: record too large";
  let b = Bytes.create (header_len + blen) in
  Bytes.set_int32_le b 0 (Int32.of_int blen);
  Bytes.set b 8 kind;
  Bytes.set_int32_le b 9 (Int32.of_int klen);
  Bytes.blit_string key 0 b 13 klen;
  Bytes.blit_string value 0 b (13 + klen) vlen;
  Bytes.set_int32_le b 4 (Int32.of_int (Crc32.digest_bytes b header_len blen));
  b

let write_all fd b =
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let read_exactly fd b off len =
  let rec go off len =
    if len = 0 then true
    else
      match Unix.read fd b off len with
      | 0 -> false
      | n -> go (off + n) (len - n)
  in
  go off len

(* Scan the framed records of [fd] from the start, calling [f] for each
   valid one; stops at the first frame that fails a sanity or CRC check
   and returns the byte offset of the end of the valid prefix. *)
let scan fd f =
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let header = Bytes.create header_len in
  let rec go pos =
    if not (read_exactly fd header 0 header_len) then pos
    else
      let blen = u32_at header 0 and crc = u32_at header 4 in
      if blen < 5 || blen > max_body then pos
      else
        let body = Bytes.create blen in
        if not (read_exactly fd body 0 blen) then pos
        else if Crc32.digest_bytes body 0 blen <> crc then pos
        else
          let kind = Bytes.get body 0 in
          let klen = u32_at body 1 in
          if (kind <> 'P' && kind <> 'D') || klen < 0 || klen > blen - 5 then
            pos
          else begin
            let key = Bytes.sub_string body 5 klen in
            let value = Bytes.sub_string body (5 + klen) (blen - 5 - klen) in
            f ~kind ~key ~value ~value_off:(pos + header_len + 5 + klen);
            go (pos + header_len + blen)
          end
  in
  go 0

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let alive t = if t.closed then invalid_arg "Store.Log: store is closed"

let file_size fd = (Unix.fstat fd).Unix.st_size

let do_fsync t fd =
  (* Failpoint: a lying disk that acks without persisting — only
     observable across a crash, which is exactly what the chaos
     harness's kill -9 step exercises. *)
  if Fault.Failpoint.armed () && Fault.Failpoint.fire "store.fsync.skip" then
    t.fsyncs <- t.fsyncs + 1
  else begin
    Obs.Histogram.time h_fsync (fun () -> Unix.fsync fd);
    t.fsyncs <- t.fsyncs + 1
  end

let open_ ?(fsync = Every 64) ?(auto_compact_bytes = 0)
    ?(check = fun ~key:_ _ -> true) dir =
  (match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let log_write =
    Unix.openfile (log_file dir) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  let log_read = Unix.openfile (log_file dir) [ Unix.O_RDONLY ] 0o644 in
  let snap_read =
    if Sys.file_exists (snapshot_file dir) then
      Some (Unix.openfile (snapshot_file dir) [ Unix.O_RDONLY ] 0o644)
    else None
  in
  let t =
    {
      dir;
      fsync;
      auto_compact_bytes;
      check;
      index = Hashtbl.create 256;
      log_write;
      log_read;
      snap_read;
      log_bytes = 0;
      snapshot_bytes = 0;
      unsynced = 0;
      closed = false;
      appends = 0;
      fsyncs = 0;
      compactions = 0;
      recovered = 0;
      dropped_check = 0;
      truncated_bytes = 0;
    m = Mutex.create ();
    }
  in
  (* Recovery.  Both files replay through the same scanner; a put that
     fails [check] counts as a delete of its key — the caller recomputes
     it instead of ever serving it. *)
  let replay ~in_snapshot ~kind ~key ~value ~value_off =
    if kind = 'D' then Hashtbl.remove t.index key
    else if check ~key value then
      Hashtbl.replace t.index key
        { in_snapshot; off = value_off; len = String.length value }
    else begin
      t.dropped_check <- t.dropped_check + 1;
      Hashtbl.remove t.index key
    end
  in
  (match snap_read with
  | None -> ()
  | Some fd ->
      (* The snapshot is written whole and renamed into place, so a
         short prefix here means a damaged file system, not a torn
         append; tolerate it the same way. *)
      let valid = scan fd (replay ~in_snapshot:true) in
      t.truncated_bytes <- t.truncated_bytes + (file_size fd - valid);
      t.snapshot_bytes <- valid);
  let valid = scan log_read (replay ~in_snapshot:false) in
  let actual = file_size log_read in
  if valid < actual then begin
    t.truncated_bytes <- t.truncated_bytes + (actual - valid);
    Unix.ftruncate log_write valid
  end;
  ignore (Unix.lseek log_write valid Unix.SEEK_SET);
  t.log_bytes <- valid;
  t.recovered <- Hashtbl.length t.index;
  t

let read_value t loc =
  let fd =
    if loc.in_snapshot then
      match t.snap_read with
      | Some fd -> fd
      | None -> invalid_arg "Store.Log: dangling snapshot location"
    else t.log_read
  in
  ignore (Unix.lseek fd loc.off Unix.SEEK_SET);
  let b = Bytes.create loc.len in
  if not (read_exactly fd b 0 loc.len) then
    invalid_arg "Store.Log: short read (truncated file under a live store?)";
  Bytes.unsafe_to_string b

(* A location that cannot be read back (a torn write left the file
   shorter than the index believes) degrades to "not stored": the entry
   is dropped and the caller recomputes — never a crash, never a wrong
   value.  Damaged-but-readable bytes are the check callback's problem
   (Tier re-checks certificates on decode). *)
let read_value_opt t loc =
  match read_value t loc with
  | v -> Some v
  | exception Invalid_argument _ -> None

let find t key =
  locked t (fun () ->
      alive t;
      match Hashtbl.find_opt t.index key with
      | None -> None
      | Some loc -> (
          match read_value_opt t loc with
          | Some _ as v -> v
          | None ->
              Hashtbl.remove t.index key;
              None))

let mem t key =
  locked t (fun () ->
      alive t;
      Hashtbl.mem t.index key)

let length t =
  locked t (fun () ->
      alive t;
      Hashtbl.length t.index)

let after_append t =
  t.appends <- t.appends + 1;
  match t.fsync with
  | Always -> do_fsync t t.log_write
  | Never -> ()
  | Every n ->
      t.unsynced <- t.unsynced + 1;
      if t.unsynced >= n then begin
        do_fsync t t.log_write;
        t.unsynced <- 0
      end

let append t ~kind ~key ~value =
  Obs.Histogram.time h_append (fun () ->
      let b = frame ~kind ~key ~value in
      (* Failpoints: bit-rot one byte of the frame, or tear the write
         short, before the bytes reach the file.  Either way the
         in-memory index keeps accounting as if the append succeeded —
         the damage is only discoverable by a reader, which is the
         safety property under test: the CRC frame (recovery) and the
         certificate re-check (live reads) must degrade the damage to a
         recompute, never serve it as a verdict. *)
      if Fault.Failpoint.armed () then begin
        if Fault.Failpoint.fire "store.append.corrupt" then begin
          let salt = Fault.Failpoint.salt "store.append.corrupt" in
          let n = Bytes.length b in
          let pos = Fault.Rng.mix salt t.appends mod n in
          let mask = 1 + (Fault.Rng.mix salt (t.appends + 1) mod 255) in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask land 0xff))
        end;
        if Fault.Failpoint.fire "store.append.torn" then begin
          let keep = max 1 (Bytes.length b / 2) in
          write_all t.log_write (Bytes.sub b 0 keep)
        end
        else write_all t.log_write b
      end
      else write_all t.log_write b;
      let value_off = t.log_bytes + header_len + 5 + String.length key in
      t.log_bytes <- t.log_bytes + Bytes.length b;
      after_append t;
      value_off)

(* Rewrite the live set to a fresh snapshot (temp file + rename, synced
   before and after), then empty the log.  Runs with the lock held. *)
let compact_locked t =
  let tmp = Filename.concat t.dir "snapshot.tmp" in
  let live =
    Hashtbl.fold
      (fun key loc acc ->
        match read_value_opt t loc with
        | Some value -> (key, value) :: acc
        | None -> acc)
      t.index []
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let relocated = Hashtbl.create (List.length live) in
  let pos = ref 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter
        (fun (key, value) ->
          let b = frame ~kind:'P' ~key ~value in
          write_all fd b;
          Hashtbl.replace relocated key
            {
              in_snapshot = true;
              off = !pos + header_len + 5 + String.length key;
              len = String.length value;
            };
          pos := !pos + Bytes.length b)
        live;
      do_fsync t fd);
  Unix.rename tmp (snapshot_file t.dir);
  (* Make the rename itself durable. *)
  (match Unix.openfile t.dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
      (try Unix.fsync dfd with Unix.Unix_error _ -> ());
      Unix.close dfd
  | exception Unix.Unix_error _ -> ());
  (match t.snap_read with Some fd -> Unix.close fd | None -> ());
  t.snap_read <- Some (Unix.openfile (snapshot_file t.dir) [ Unix.O_RDONLY ] 0o644);
  Unix.ftruncate t.log_write 0;
  ignore (Unix.lseek t.log_write 0 Unix.SEEK_SET);
  t.log_bytes <- 0;
  t.unsynced <- 0;
  t.snapshot_bytes <- !pos;
  Hashtbl.reset t.index;
  Hashtbl.iter (Hashtbl.replace t.index) relocated;
  t.compactions <- t.compactions + 1

let maybe_auto_compact t =
  if t.auto_compact_bytes > 0 && t.log_bytes >= t.auto_compact_bytes then
    compact_locked t

let put t key value =
  locked t (fun () ->
      alive t;
      let value_off = append t ~kind:'P' ~key ~value in
      Hashtbl.replace t.index key
        { in_snapshot = false; off = value_off; len = String.length value };
      maybe_auto_compact t)

let remove t key =
  locked t (fun () ->
      alive t;
      if Hashtbl.mem t.index key then begin
        ignore (append t ~kind:'D' ~key ~value:"");
        Hashtbl.remove t.index key;
        maybe_auto_compact t
      end)

let iter t f =
  locked t (fun () ->
      alive t;
      (* Snapshot the bindings first: [f] must not observe the lock. *)
      Hashtbl.fold
        (fun key loc acc ->
          match read_value_opt t loc with
          | Some value -> (key, value) :: acc
          | None -> acc)
        t.index [])
  |> List.iter (fun (key, value) -> f key value)

let sync t =
  locked t (fun () ->
      alive t;
      do_fsync t t.log_write;
      t.unsynced <- 0)

let compact t =
  locked t (fun () ->
      alive t;
      compact_locked t)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (try do_fsync t t.log_write with Unix.Unix_error _ -> ());
        (try Unix.close t.log_write with Unix.Unix_error _ -> ());
        (try Unix.close t.log_read with Unix.Unix_error _ -> ());
        match t.snap_read with
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ()
      end)

let stats t =
  locked t (fun () ->
      List.sort compare
        [
          ("appends", t.appends);
          ("compactions", t.compactions);
          ("fsyncs", t.fsyncs);
          ("live_records", Hashtbl.length t.index);
          ("log_bytes", t.log_bytes);
          ("recovered_records", t.recovered);
          ("recovery_dropped_check", t.dropped_check);
          ("recovery_truncated_bytes", t.truncated_bytes);
          ("snapshot_bytes", t.snapshot_bytes);
        ])

let disk_bytes t = locked t (fun () -> t.snapshot_bytes + t.log_bytes)
