(** A durable, append-only key→value log with CRC-framed records,
    snapshot + compaction, and prefix-truncating recovery.

    {b Layout.}  A store is a directory holding two files in the same
    record format: [snapshot.bin] (the live set as of the last
    compaction, rewritten atomically via a temp file + rename) and
    [log.bin] (everything appended since).  Each record is framed as

    {v
    [body_len : u32 LE] [crc32(body) : u32 LE] [body]
    body = [kind : 'P' | 'D'] [key_len : u32 LE] [key] [value]
    v}

    ['P'] puts (or overwrites) [key]; ['D'] deletes it (the value is
    empty).  The in-memory index maps each live key to the file offset
    of its value bytes, so [find] is one seek + read and memory use is
    O(keys), not O(values).

    {b Recovery.}  Opening replays the snapshot and then the log,
    stopping at the {e first} frame whose header, length or CRC does not
    check out — everything after a torn write is unreachable garbage by
    construction, so the log is truncated back to the last valid frame
    (counted in [recovery_truncated_bytes]).  Each recovered put is then
    passed to the [check] callback; a record that fails (e.g. a stored
    certificate that no longer re-checks) is dropped as if deleted,
    counted in [recovery_dropped_check].  A crash can therefore lose the
    suffix of unsynced appends but can never surface a corrupt value:
    the caller re-computes exactly what recovery dropped.

    {b Durability.}  [fsync_policy] trades write latency for the size of
    that losable suffix: [Always] syncs after every append, [Every n]
    after [n] appends, [Never] leaves syncing to the OS (and to
    compaction/close, which always sync).

    {b Compaction.}  [compact] rewrites the live set to a fresh
    snapshot, fsyncs it, renames it into place and truncates the log to
    zero — the only moment records for dead keys are reclaimed.  With
    [auto_compact_bytes > 0] it runs automatically when the log grows
    past the bound.

    All operations are serialized by an internal mutex; one store can be
    shared by every server thread. *)

type fsync_policy = Never | Every of int | Always

val fsync_policy_to_string : fsync_policy -> string
(** ["never"], ["every:N"], ["always"] — the CLI flag syntax. *)

val fsync_policy_of_string : string -> (fsync_policy, string) result

type t

val open_ :
  ?fsync:fsync_policy ->
  ?auto_compact_bytes:int ->
  ?check:(key:string -> string -> bool) ->
  string ->
  t
(** [open_ dir] creates [dir] if missing and recovers the store in it.
    [fsync] defaults to [Every 64]; [auto_compact_bytes] to [0] (manual
    compaction only); [check] to [fun ~key:_ _ -> true].
    @raise Unix.Unix_error when the directory or files cannot be
    created/read. *)

val find : t -> string -> string option
val mem : t -> string -> bool

val put : t -> string -> string -> unit
(** Insert or overwrite.  The old record, if any, becomes garbage until
    the next compaction. *)

val remove : t -> string -> unit
(** Appends a delete record (no-op when the key is absent). *)

val iter : t -> (string -> string -> unit) -> unit
(** Visit every live binding (order unspecified).  The callback must not
    reenter the store. *)

val length : t -> int
val sync : t -> unit

val compact : t -> unit
(** Rewrite the live set as a fresh snapshot and empty the log. *)

val close : t -> unit
(** Sync and close; idempotent.  Every other operation raises
    [Invalid_argument] after close. *)

val stats : t -> (string * int) list
(** Sorted: [appends], [compactions], [fsyncs], [live_records],
    [log_bytes], [recovered_records], [recovery_dropped_check],
    [recovery_truncated_bytes], [snapshot_bytes]. *)

val disk_bytes : t -> int
(** [snapshot_bytes + log_bytes] — what the store occupies on disk. *)
