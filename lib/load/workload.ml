module Json = Service.Json
module Wire = Service.Wire
module Graph_gen = Datagraph.Graph_gen
module Graph_io = Datagraph.Graph_io
module Data_graph = Datagraph.Data_graph
module Tuple_relation = Datagraph.Tuple_relation

type popularity =
  | Uniform
  | Zipf of float
  | Hot of { fraction : float; period : int }

type mode = Closed of int | Open of { rate : float; max_outstanding : int }

type profile = {
  requests : int;
  mode : mode;
  lang : string;
  k : int;
  fuel : int;
  deadline_s : float option;
  families : (string * int) list;
  size : int;
  popularity : popularity;
  ops : int * int * int;
  batch_size : int;
  edits_per_entry : int;
}

let default_profile =
  {
    requests = 1000;
    mode = Closed 4;
    lang = "rem";
    k = 1;
    (* The defaults are tuned so a cold decide of any default-family
       instance lands in the low milliseconds (sat: ~0.4s) and repeat
       decides are digest-cache hits — a 10^5-request run stays in the
       minutes.  Tiling instances cost ~10s per cold decide even at
       n = 2, so they are profile-opt-in ({"families":{"tiling":N}}),
       not part of the default mix. *)
    fuel = 2_000;
    deadline_s = Some 10.;
    families = [ ("random", 6); ("fig1", 2); ("sat", 3) ];
    size = 6;
    popularity = Zipf 1.1;
    ops = (6, 1, 3);
    batch_size = 4;
    edits_per_entry = 6;
  }

(* ------------------------------------------------------------------ *)
(* Profile decoding.  Absent fields fall back to [default_profile], so
   a profile file names only what it changes. *)

let profile_of_json j =
  let ( let* ) = Result.bind in
  let d = default_profile in
  let int_f name dflt =
    match Json.member name j with
    | None -> Ok dflt
    | Some v -> (
        match Json.to_int v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "%s: expected an integer" name))
  in
  let float_f name dflt =
    match Json.member name j with
    | None -> Ok dflt
    | Some v -> (
        match Json.to_float v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "%s: expected a number" name))
  in
  let str_f name dflt =
    match Json.member name j with
    | None -> Ok dflt
    | Some v -> (
        match Json.to_str v with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "%s: expected a string" name))
  in
  let* requests = int_f "requests" d.requests in
  let* lang = str_f "lang" d.lang in
  let* k = int_f "k" d.k in
  let* fuel = int_f "fuel" d.fuel in
  let* deadline_s =
    match Json.member "deadline_s" j with
    | None -> Ok d.deadline_s
    | Some Json.Null -> Ok None
    | Some v -> (
        match Json.to_float v with
        | Some f -> Ok (Some f)
        | None -> Error "deadline_s: expected a number or null")
  in
  let* size = int_f "size" d.size in
  let* batch_size = int_f "batch_size" d.batch_size in
  let* edits_per_entry = int_f "edits_per_entry" d.edits_per_entry in
  let* mode =
    let* workers = int_f "workers" 4 in
    let* rate = float_f "rate" 200. in
    let* max_outstanding = int_f "max_outstanding" 32 in
    let* which = str_f "mode" "closed" in
    match which with
    | "closed" -> Ok (Closed workers)
    | "open" -> Ok (Open { rate; max_outstanding })
    | s -> Error (Printf.sprintf "mode: unknown %S (closed|open)" s)
  in
  let* popularity =
    let* s = float_f "zipf_s" 1.1 in
    let* fraction = float_f "hot_fraction" 0.125 in
    let* period = int_f "hot_period" 256 in
    let* which = str_f "popularity" "zipf" in
    match which with
    | "uniform" -> Ok Uniform
    | "zipf" -> Ok (Zipf s)
    | "hot" -> Ok (Hot { fraction; period })
    | s -> Error (Printf.sprintf "popularity: unknown %S (uniform|zipf|hot)" s)
  in
  let* families =
    match Json.member "families" j with
    | None -> Ok d.families
    | Some (Json.Obj kvs) ->
        List.fold_left
          (fun acc (name, v) ->
            let* acc = acc in
            match Json.to_int v with
            | Some n when n >= 0 -> Ok ((name, n) :: acc)
            | _ -> Error (Printf.sprintf "families.%s: expected a count" name))
          (Ok []) kvs
        |> Result.map List.rev
    | Some _ -> Error "families: expected an object of counts"
  in
  let* ops =
    match Json.member "ops" j with
    | None -> Ok d.ops
    | Some o ->
        let w name =
          match Option.bind (Json.member name o) Json.to_int with
          | Some n when n >= 0 -> Ok n
          | Some _ -> Error (Printf.sprintf "ops.%s: negative weight" name)
          | None -> Ok 0
        in
        let* de = w "decide" in
        let* ba = w "batch" in
        let* dl = w "delta" in
        Ok (de, ba, dl)
  in
  if requests < 1 then Error "requests: must be >= 1"
  else if batch_size < 1 then Error "batch_size: must be >= 1"
  else if edits_per_entry < 1 then Error "edits_per_entry: must be >= 1"
  else
    Ok
      {
        requests;
        mode;
        lang;
        k;
        fuel;
        deadline_s;
        families;
        size;
        popularity;
        ops;
        batch_size;
        edits_per_entry;
      }

let profile_of_string s =
  Result.bind
    (Result.map_error (fun m -> "profile: " ^ m) (Json.parse s))
    profile_of_json

(* ------------------------------------------------------------------ *)
(* Entry synthesis. *)

type entry = {
  name : string;
  lang : string;
  k : int;
  text : string;
  edits : Service.Wire.edit array;
}

type op = Decide of int | Batch of int array | Delta of int

type t = {
  profile : profile;
  entries : entry array;
  ops : op array;
  schedule_crc : string;
}

(* An always-applicable edit chain over any graph: alternate adding a
   fresh node (names no generator uses) and an edge from it to the
   graph's first node — each step is valid on the result of the
   previous ones, from any starting point of the base instance. *)
let make_edits ~salt g m =
  let first = Data_graph.name g (List.hd (Data_graph.nodes g)) in
  let label = List.hd (Data_graph.alphabet g) in
  let values = Data_graph.domain g in
  let nvals = List.length values in
  Array.init m (fun j ->
      if j land 1 = 0 then
        let v =
          Datagraph.Data_value.to_int
            (List.nth values (Fault.Rng.mix salt j mod nvals))
        in
        Wire.Add_node (Printf.sprintf "zz%d" (j / 2), v)
      else Wire.Add_edge (Printf.sprintf "zz%d" (j / 2), label, first))

let stripes n =
  {
    Reductions.Tiling.num_tiles = 2;
    horiz = [ (0, 1); (1, 0); (0, 0); (1, 1) ];
    vert = [ (0, 0); (1, 1) ];
    t_init = 0;
    t_final = 1;
    n;
  }

let build_family ~seed profile fam count =
  let mk i name lang k g target =
    let salt = Fault.Rng.mix (seed lxor Fault.Rng.of_name name) i in
    {
      name;
      lang;
      k;
      text = Graph_io.instance_to_string g target;
      edits = make_edits ~salt g profile.edits_per_entry;
    }
  in
  match fam with
  | "random" ->
      Ok
        (List.init count (fun i ->
             let s = Fault.Rng.mix (seed lxor 0x11) i in
             let n = profile.size + (i mod 3) in
             let g =
               Graph_gen.random ~seed:s ~n ~delta:(max 2 (n / 2))
                 ~labels:[ "a"; "b" ] ~density:0.3 ()
             in
             let rel =
               Graph_gen.random_reachable_relation ~seed:s g
                 ~count:(max 1 (n / 2))
             in
             mk i
               (Printf.sprintf "random-%d" i)
               profile.lang profile.k g
               (Tuple_relation.of_binary rel)))
  | "fig1" ->
      Ok
        (List.init count (fun i ->
             let g = Graph_gen.fig1 () in
             mk i
               (Printf.sprintf "fig1-%d" i)
               profile.lang profile.k g
               (Tuple_relation.of_binary (Graph_gen.fig1_s2 g))))
  | "tiling" ->
      Ok
        (List.init count (fun i ->
             let r = Reductions.Tiling.build (stripes (2 + (i mod 2))) in
             mk i
               (Printf.sprintf "tiling-%d" i)
               "rem" profile.k r.Reductions.Tiling.graph
               (Tuple_relation.of_binary r.Reductions.Tiling.target)))
  | "sat" ->
      Ok
        (List.init count (fun i ->
             let s = Fault.Rng.mix (seed lxor 0x35) i in
             let f =
               Reductions.Cnf.random ~seed:s ~num_vars:3
                 ~num_clauses:(2 + (i mod 2)) ()
             in
             let r = Reductions.Sat_reduction.build f in
             (* The SAT gadget's relation is unary and its language is
                fixed by Theorem 35; [k] is irrelevant for ucrdpq. *)
             mk i
               (Printf.sprintf "sat-%d" i)
               "ucrdpq" 1 r.Reductions.Sat_reduction.graph
               r.Reductions.Sat_reduction.target))
  | other -> Error (Printf.sprintf "unknown instance family %S" other)

(* ------------------------------------------------------------------ *)
(* Popularity. *)

(* Zipf by inverse-CDF over ranks; rank = entry index, so entry 0 is
   the hottest.  The CDF is precomputed once per build. *)
let zipf_cdf s n =
  let w = Array.init n (fun r -> 1. /. Float.pow (float_of_int (r + 1)) s) in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let pick_cdf cdf u =
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let make_picker ~salt popularity n =
  match popularity with
  | Uniform -> fun i -> Fault.Rng.mix salt i mod n
  | Zipf s ->
      let cdf = zipf_cdf s n in
      fun i -> pick_cdf cdf (Fault.Rng.unit_float (Fault.Rng.mix salt i))
  | Hot { fraction; period } ->
      let hot = max 1 (int_of_float (fraction *. float_of_int n)) in
      let period = max 1 period in
      fun i ->
        let h = Fault.Rng.mix salt (2 * i) in
        if Fault.Rng.unit_float (Fault.Rng.mix salt ((2 * i) + 1)) < 0.9 then
          let base = i / period * hot mod n in
          (base + (h mod hot)) mod n
        else h mod n

(* ------------------------------------------------------------------ *)

let edit_render e = Wire.edit_to_json_string e

let schedule_crc entries ops =
  let b = Buffer.create 4096 in
  Array.iter
    (fun e ->
      Buffer.add_string b e.name;
      Buffer.add_char b '\x00';
      Buffer.add_string b e.lang;
      Buffer.add_string b (string_of_int e.k);
      Buffer.add_string b e.text;
      Array.iter (fun ed -> Buffer.add_string b (edit_render ed)) e.edits)
    entries;
  Array.iter
    (fun op ->
      match op with
      | Decide i -> Buffer.add_string b (Printf.sprintf "D%d;" i)
      | Delta i -> Buffer.add_string b (Printf.sprintf "E%d;" i)
      | Batch idx ->
          Buffer.add_char b 'B';
          Array.iter (fun i -> Buffer.add_string b (Printf.sprintf "%d," i)) idx;
          Buffer.add_char b ';')
    ops;
  Printf.sprintf "%08x" (Store.Crc32.digest_string (Buffer.contents b))

let build ~seed profile =
  let ( let* ) = Result.bind in
  let* entries =
    List.fold_left
      (fun acc (fam, count) ->
        let* acc = acc in
        if count = 0 then Ok acc
        else
          let* es = build_family ~seed profile fam count in
          Ok (acc @ es))
      (Ok []) profile.families
  in
  if entries = [] then Error "no entries: every family count is zero"
  else
    let entries = Array.of_list entries in
    let n = Array.length entries in
    let wd, wb, wdl = profile.ops in
    let total_w = wd + wb + wdl in
    if total_w <= 0 then Error "ops: all weights are zero"
    else begin
      let pick = make_picker ~salt:(seed lxor 0xA5A5) profile.popularity n in
      (* Batch items must share one [lang] (the wire request carries a
         single language), so co-batched entries come from the first
         pick's language group. *)
      let groups = Hashtbl.create 4 in
      Array.iteri
        (fun i e ->
          let prev = Option.value (Hashtbl.find_opt groups e.lang) ~default:[] in
          Hashtbl.replace groups e.lang (i :: prev))
        entries;
      let group_of = Hashtbl.create 4 in
      Hashtbl.iter
        (fun lang is -> Hashtbl.replace group_of lang (Array.of_list (List.rev is)))
        groups;
      let op_salt = seed lxor 0x0F0F in
      let batch_salt = seed lxor 0xB0B0 in
      let ops =
        Array.init profile.requests (fun i ->
            let r = Fault.Rng.mix op_salt i mod total_w in
            if r < wd then Decide (pick i)
            else if r < wd + wb then begin
              let first = pick i in
              let group = Hashtbl.find group_of entries.(first).lang in
              let gn = Array.length group in
              Batch
                (Array.init profile.batch_size (fun j ->
                     if j = 0 then first
                     else group.(Fault.Rng.mix batch_salt ((i * profile.batch_size) + j) mod gn)))
            end
            else Delta (pick i))
      in
      Ok { profile; entries; ops; schedule_crc = schedule_crc entries ops }
    end
