module Json = Service.Json
module Wire = Service.Wire
module Client = Service.Client

type report = {
  seed : int;
  schedule_crc : string;
  requests : int;
  ok : int;
  errors : (string * int) list;
  disallowed : string list;
  verdicts : (string * string) list;
  latency_us : (string * (int * int * int * int)) list;
  wall_s : float;
}

(* The runner's own histograms; recording needs the telemetry plane on,
   so {!run} enables it (with no sinks) for the duration when the
   embedding process has not already. *)
let h_decide = Obs.Histogram.make "load.op.decide"
let h_batch = Obs.Histogram.make "load.op.batch"
let h_delta = Obs.Histogram.make "load.op.delta"

let max_disallowed = 64

(* Per-entry delta-chain state.  The chain mutex is held across the
   whole request: deltas on one chain are inherently sequential (each
   needs the previous response's digest), and two workers racing the
   same chain would fork it. *)
type chain = { cmu : Mutex.t; mutable digest : string option; mutable cursor : int }

type state = {
  wl : Workload.t;
  addr : Wire.address;
  seed : int;
  idx : int Atomic.t;
  completed : int Atomic.t;
  n_requests : int Atomic.t;
  n_ok : int Atomic.t;
  mu : Mutex.t;
  errors : (string, int) Hashtbl.t;
  mutable disallowed : string list;  (* newest first, capped *)
  mutable n_disallowed : int;
  verdicts : (string, string) Hashtbl.t;
  chains : chain array;
  pace_s : float option;  (* per-request interval in open-loop mode *)
  t0 : float;
  progress : int -> unit;
}

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let count_error st cls =
  with_lock st.mu (fun () ->
      Hashtbl.replace st.errors cls
        (1 + Option.value (Hashtbl.find_opt st.errors cls) ~default:0))

let note_disallowed st msg =
  with_lock st.mu (fun () ->
      st.n_disallowed <- st.n_disallowed + 1;
      if st.n_disallowed <= max_disallowed then
        st.disallowed <- msg :: st.disallowed);
  count_error st "disallowed"

let record_verdict st digest verdict =
  match
    with_lock st.mu (fun () ->
        match Hashtbl.find_opt st.verdicts digest with
        | None ->
            Hashtbl.replace st.verdicts digest verdict;
            None
        | Some prior when String.equal prior verdict -> None
        | Some prior -> Some prior)
  with
  | None -> ()
  | Some prior ->
      note_disallowed st
        (Printf.sprintf "verdict conflict for %s: %S vs %S" digest prior
           verdict)

(* ------------------------------------------------------------------ *)
(* Response classification: the typed error taxonomy.  [None] = not an
   allowed failure class. *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let class_of_error_text msg =
  if has_prefix "shard_unavailable" msg then Some "shard_unavailable"
  else if has_prefix "unknown instance digest" msg then Some "stale_digest"
  else if has_prefix "overloaded" msg then
    if has_prefix "overloaded: draining" msg then Some "draining"
    else Some "queue_full"
    (* Requests are sealed ([Wire.seal_line]); a server that detects the
       seal broken — or cannot parse the line at all — saw bytes
       corrupted in transit.  The runner itself always emits well-formed
       sealed JSON, so both are transport-class, not server bugs. *)
  else if has_prefix "request failed integrity check" msg then
    Some "transport"
  else if has_prefix "json:" msg then Some "transport"
  else None

(* One batch-item object: [Ok (digest, verdict)] on success. *)
let classify_item st j =
  match Option.bind (Json.member "error" j) Json.to_str with
  | Some msg -> (
      match class_of_error_text msg with
      | Some cls -> count_error st cls
      | None -> note_disallowed st ("batch item error: " ^ msg))
  | None -> (
      match
        ( Option.bind (Json.member "digest" j) Json.to_str,
          Json.member "result" j )
      with
      | Some digest, Some result ->
          ignore (Atomic.fetch_and_add st.n_ok 1);
          record_verdict st digest (Json.to_string result)
      | _ -> note_disallowed st "batch item without digest/result")

(* A full response line.  Returns the digest of a successful
   decide/delta (to advance the chain); [None] on anything else. *)
let classify st ~batch line =
  match Json.parse line with
  | Error msg ->
      (* [send] already required a verified seal, so an unparseable
         line is a server bug, not line noise. *)
      note_disallowed st ("unparseable response: " ^ msg);
      None
  | Ok j -> (
      match Option.bind (Json.member "status" j) Json.to_str with
      | Some "ok" when batch -> (
          match Option.bind (Json.member "results" j) Json.to_list with
          | Some items ->
              List.iter (classify_item st) items;
              None
          | None ->
              note_disallowed st "batch response without results";
              None)
      | Some "ok" -> (
          match
            ( Option.bind (Json.member "digest" j) Json.to_str,
              Json.member "result" j )
          with
          | Some digest, Some result ->
              ignore (Atomic.fetch_and_add st.n_ok 1);
              record_verdict st digest (Json.to_string result);
              Some digest
          | _ ->
              note_disallowed st "ok response without digest/result";
              None)
      | Some "overloaded" ->
          (match Option.bind (Json.member "detail" j) Json.to_str with
          | Some "draining" -> count_error st "draining"
          | Some _ | None -> count_error st "queue_full");
          None
      | Some "unavailable" ->
          count_error st "shard_unavailable";
          None
      | Some "error" ->
          (match Option.bind (Json.member "error" j) Json.to_str with
          | Some msg -> (
              match class_of_error_text msg with
              | Some cls -> count_error st cls
              | None -> note_disallowed st ("server error: " ^ msg))
          | None -> note_disallowed st "error response without error text");
          None
      | Some other ->
          note_disallowed st ("unknown status: " ^ other);
          None
      | None ->
          note_disallowed st "response without status";
          None)

(* ------------------------------------------------------------------ *)
(* Request execution. *)

type worker_conn = { mutable conn : Client.t option }

let worker_connect st = Client.connect ~retries:3 ~backoff_s:0.05 ?deadline_s:st.wl.Workload.profile.Workload.deadline_s st.addr

let drop_worker_conn wc =
  (match wc.conn with Some c -> (try Client.close c with _ -> ()) | None -> ());
  wc.conn <- None

(* Send one line; transport failures (refused connect, reset, deadline
   expiry, integrity-rejected bytes) classify as ["transport"] and cost
   this worker its connection — the next request redials. *)
let send st wc hist line =
  ignore (Atomic.fetch_and_add st.n_requests 1);
  (* Requests go out sealed so a byte corrupted in flight is rejected
     server-side instead of executing as a different request. *)
  let line = Wire.seal_line line in
  let t0 = Unix.gettimeofday () in
  let result =
    match
      match wc.conn with
      | Some c -> Client.request_raw c line
      | None ->
          let c = worker_connect st in
          wc.conn <- Some c;
          Client.request_raw c line
    with
    | r -> r
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | exception Sys_error msg -> Error msg
    | exception Sys_blocked_io -> Error "deadline expired"
    | exception End_of_file -> Error "connection closed"
  in
  Obs.Histogram.record_s hist (Unix.gettimeofday () -. t0);
  match result with
  (* The server seals every response, so anything short of [`Sealed_ok]
     — seal broken, seal bytes themselves corrupted (reads unsealed), or
     a truncated line — is in-flight damage, never a verdict. *)
  | Ok line when Wire.crc_status line = `Sealed_ok -> Some line
  | Ok _ ->
      drop_worker_conn wc;
      count_error st "transport";
      None
  | Error _ ->
      drop_worker_conn wc;
      count_error st "transport";
      None

let entry st i = st.wl.Workload.entries.(i)

let decide_line st i =
  let e = entry st i in
  Wire.request_to_string
    (Wire.Decide
       {
         lang = e.Workload.lang;
         k = Some e.Workload.k;
         fuel = Some st.wl.Workload.profile.Workload.fuel;
         timeout_s = None;
         instance = e.Workload.text;
       })

let exec st wc op =
  match op with
  | Workload.Decide i -> (
      match send st wc h_decide (decide_line st i) with
      | Some line -> ignore (classify st ~batch:false line)
      | None -> ())
  | Workload.Batch idx -> (
      let first = entry st idx.(0) in
      let line =
        Wire.request_to_string
          (Wire.Batch
             {
               lang = first.Workload.lang;
               k = Some first.Workload.k;
               fuel = Some st.wl.Workload.profile.Workload.fuel;
               timeout_s = None;
               instances =
                 Array.to_list (Array.map (fun i -> (entry st i).Workload.text) idx);
             })
      in
      match send st wc h_batch line with
      | Some line -> ignore (classify st ~batch:true line)
      | None -> ())
  | Workload.Delta i ->
      let e = entry st i in
      let ch = st.chains.(i) in
      with_lock ch.cmu (fun () ->
          match ch.digest with
          | None -> (
              (* Cold chain: decide the base; the next delta op on this
                 entry advances the first edit. *)
              match send st wc h_decide (decide_line st i) with
              | Some line -> (
                  match classify st ~batch:false line with
                  | Some digest ->
                      ch.digest <- Some digest;
                      ch.cursor <- 0
                  | None -> ())
              | None -> ())
          | Some digest -> (
              let edit = e.Workload.edits.(ch.cursor) in
              let line =
                Wire.request_to_string
                  (Wire.Delta
                     {
                       lang = e.Workload.lang;
                       k = Some e.Workload.k;
                       fuel = Some st.wl.Workload.profile.Workload.fuel;
                       timeout_s = None;
                       digest;
                       edit;
                     })
              in
              match send st wc h_delta line with
              | Some line -> (
                  match classify st ~batch:false line with
                  | Some digest' ->
                      ch.cursor <- ch.cursor + 1;
                      if ch.cursor >= Array.length e.Workload.edits then begin
                        (* Chain exhausted: reset so the digest sequence
                           replays the same prefix every cycle. *)
                        ch.digest <- None;
                        ch.cursor <- 0
                      end
                      else ch.digest <- Some digest'
                  | None ->
                      (* Failed (or refused) delta: restart from the
                         base rather than continuing mid-chain, so every
                         digest this entry ever produces lies on the one
                         canonical chain prefix. *)
                      ch.digest <- None;
                      ch.cursor <- 0)
              | None ->
                  ch.digest <- None;
                  ch.cursor <- 0))

let worker st () =
  let wc = { conn = None } in
  let n = Array.length st.wl.Workload.ops in
  let rec loop () =
    let i = Atomic.fetch_and_add st.idx 1 in
    if i < n then begin
      (match st.pace_s with
      | Some interval ->
          let target = st.t0 +. (float_of_int i *. interval) in
          let now = Unix.gettimeofday () in
          if target > now then Thread.delay (target -. now)
      | None -> ());
      (* An exception that escapes [exec] is a harness bug ([send]
         already absorbs every transport-level one): surface it as a
         disallowed event, drop the possibly-poisoned connection, keep
         the worker alive. *)
      (try exec st wc st.wl.Workload.ops.(i)
       with e ->
         drop_worker_conn wc;
         note_disallowed st ("worker exception: " ^ Printexc.to_string e));
      let d = 1 + Atomic.fetch_and_add st.completed 1 in
      if d mod 1000 = 0 then st.progress d;
      loop ()
    end
  in
  loop ();
  drop_worker_conn wc

(* ------------------------------------------------------------------ *)

let percentiles h =
  let s = Obs.Histogram.snapshot h in
  let n = Obs.Histogram.total s in
  if n = 0 then None
  else
    let p q = Obs.Histogram.percentile_of s q / 1000 in
    Some (n, p 50., p 99., p 100.)

let run ?(progress = fun _ -> ()) ~seed ~addr (wl : Workload.t) =
  let obs_was_on = Obs.enabled () in
  if not obs_was_on then Obs.enable [];
  Obs.Histogram.reset h_decide;
  Obs.Histogram.reset h_batch;
  Obs.Histogram.reset h_delta;
  let finish r =
    if not obs_was_on then Obs.disable ();
    r
  in
  (* One up-front ping so "server not running" is an [Error], not a
     report full of transport noise. *)
  match
    (try
       let c = Client.connect ~retries:10 ~backoff_s:0.05 addr in
       Fun.protect
         ~finally:(fun () -> Client.close c)
         (fun () -> Client.request_raw c (Wire.request_to_string Wire.Ping))
     with
    | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | Sys_error m -> Error m)
  with
  | Error msg ->
      finish
        (Error
           (Printf.sprintf "cannot reach %s: %s"
              (Wire.address_to_string addr)
              msg))
  | Ok _ ->
      let n_workers, pace_s =
        match wl.Workload.profile.Workload.mode with
        | Workload.Closed w -> (max 1 w, None)
        | Workload.Open { rate; max_outstanding } ->
            (max 1 max_outstanding, Some (1. /. Float.max 1e-6 rate))
      in
      let st =
        {
          wl;
          addr;
          seed;
          idx = Atomic.make 0;
          completed = Atomic.make 0;
          n_requests = Atomic.make 0;
          n_ok = Atomic.make 0;
          mu = Mutex.create ();
          errors = Hashtbl.create 8;
          disallowed = [];
          n_disallowed = 0;
          verdicts = Hashtbl.create 1024;
          chains =
            Array.map
              (fun _ -> { cmu = Mutex.create (); digest = None; cursor = 0 })
              wl.Workload.entries;
          pace_s;
          t0 = Unix.gettimeofday ();
          progress;
        }
      in
      let threads = List.init n_workers (fun _ -> Thread.create (worker st) ()) in
      List.iter Thread.join threads;
      let wall_s = Unix.gettimeofday () -. st.t0 in
      let latency_us =
        List.filter_map
          (fun (name, h) ->
            Option.map (fun v -> (name, v)) (percentiles h))
          [ ("decide", h_decide); ("batch", h_batch); ("delta", h_delta) ]
      in
      finish
        (Ok
           {
             seed;
             schedule_crc = wl.Workload.schedule_crc;
             requests = Atomic.get st.n_requests;
             ok = Atomic.get st.n_ok;
             errors =
               List.sort compare
                 (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.errors []);
             disallowed = List.rev st.disallowed;
             verdicts =
               List.sort compare
                 (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.verdicts []);
             latency_us;
             wall_s;
           })

(* ------------------------------------------------------------------ *)
(* Report JSON. *)

let json_str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  Json.escape_into b s;
  Buffer.add_char b '"';
  Buffer.contents b

let report_to_string (r : report) =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"report\":\"load\",\"seed\":%d,\"schedule_crc\":%s,\"requests\":%d,\"ok\":%d"
       r.seed (json_str r.schedule_crc) r.requests r.ok);
  Buffer.add_string b ",\"errors\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%s:%d" (json_str k) v))
    r.errors;
  Buffer.add_string b "},\"latency_us\":{";
  List.iteri
    (fun i (op, (count, p50, p99, mx)) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "%s:{\"count\":%d,\"p50\":%d,\"p99\":%d,\"max\":%d}"
           (json_str op) count p50 p99 mx))
    r.latency_us;
  Buffer.add_string b (Printf.sprintf "},\"wall_s\":%.6f" r.wall_s);
  Buffer.add_string b ",\"disallowed\":[";
  List.iteri
    (fun i msg ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (json_str msg))
    r.disallowed;
  Buffer.add_string b "],\"verdicts\":{";
  List.iteri
    (fun i (digest, verdict) ->
      if i > 0 then Buffer.add_char b ',';
      (* The verdict block is itself canonical JSON: embed it raw so a
         report round-trips byte-identically. *)
      Buffer.add_string b (Printf.sprintf "%s:%s" (json_str digest) verdict))
    r.verdicts;
  Buffer.add_string b "}}";
  Buffer.contents b

let report_of_string s =
  let ( let* ) = Result.bind in
  let* j = Result.map_error (fun m -> "report: " ^ m) (Json.parse s) in
  let int_f name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "report: missing %s" name)
  in
  let* seed = int_f "seed" in
  let* requests = int_f "requests" in
  let* ok = int_f "ok" in
  let* schedule_crc =
    match Option.bind (Json.member "schedule_crc" j) Json.to_str with
    | Some s -> Ok s
    | None -> Error "report: missing schedule_crc"
  in
  let* errors =
    match Json.member "errors" j with
    | Some (Json.Obj kvs) ->
        Ok
          (List.filter_map
             (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int v))
             kvs)
    | _ -> Error "report: missing errors"
  in
  let* disallowed =
    match Option.bind (Json.member "disallowed" j) Json.to_list with
    | Some items -> Ok (List.filter_map Json.to_str items)
    | None -> Error "report: missing disallowed"
  in
  let* verdicts =
    match Json.member "verdicts" j with
    | Some (Json.Obj kvs) ->
        Ok (List.map (fun (k, v) -> (k, Json.to_string v)) kvs)
    | _ -> Error "report: missing verdicts"
  in
  let latency_us =
    match Json.member "latency_us" j with
    | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (op, v) ->
            let f name = Option.bind (Json.member name v) Json.to_int in
            match (f "count", f "p50", f "p99", f "max") with
            | Some c, Some p50, Some p99, Some mx -> Some (op, (c, p50, p99, mx))
            | _ -> None)
          kvs
    | _ -> []
  in
  let wall_s =
    Option.value (Option.bind (Json.member "wall_s" j) Json.to_float) ~default:0.
  in
  Ok
    {
      seed;
      schedule_crc;
      requests;
      ok;
      errors;
      disallowed;
      verdicts;
      latency_us;
      wall_s;
    }

(* ------------------------------------------------------------------ *)
(* The safety invariant. *)

let check ~(clean : report) ~(chaos : report) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  if clean.schedule_crc <> chaos.schedule_crc then
    add
      (Printf.sprintf "schedule mismatch: clean %s vs chaos %s"
         clean.schedule_crc chaos.schedule_crc);
  List.iter
    (fun msg -> add ("clean run disallowed event: " ^ msg))
    clean.disallowed;
  List.iter
    (fun msg -> add ("chaos run disallowed event: " ^ msg))
    chaos.disallowed;
  let clean_map = Hashtbl.create (List.length clean.verdicts) in
  List.iter (fun (d, v) -> Hashtbl.replace clean_map d v) clean.verdicts;
  let compared = ref 0 in
  List.iter
    (fun (digest, verdict) ->
      match Hashtbl.find_opt clean_map digest with
      | None -> ()  (* chain prefix the clean run never reached: nothing
                       to compare against, and intra-run conflict
                       detection already guarded it *)
      | Some clean_verdict ->
          Stdlib.incr compared;
          if not (String.equal clean_verdict verdict) then
            add
              (Printf.sprintf "wrong answer for %s: clean %S vs chaos %S"
                 digest clean_verdict verdict))
    chaos.verdicts;
  match !violations with
  | [] -> Ok !compared
  | vs -> Error (List.rev vs)
