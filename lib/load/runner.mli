(** Execute a {!Workload} against a live server or router and check the
    chaos safety invariant.

    The runner drives the precomputed schedule through
    {!Service.Client} connections (closed-loop worker threads, or
    open-loop pacing with bounded outstanding requests), records
    per-op latencies into the [load.op.*] {!Obs.Histogram}s, classifies
    every response into a typed error taxonomy, and collects the
    {e verdict map}: instance digest → verdict block bytes, the
    ground truth a chaos replay is compared against.

    {b Error taxonomy.}  Allowed failures — ones fault injection is
    permitted to cause — are backpressure ([overloaded] /
    [queue_full] / [draining]), typed shard unavailability, transport
    errors (connection reset, deadline expiry, integrity-rejected
    response bytes) and stale delta digests (an evicted or
    restart-lost parent).  Everything else — a malformed-request
    error, an unparseable response, or two different verdict blocks
    for one digest — is {e disallowed} and lands in
    [report.disallowed]: under the safety invariant a faulty run may
    fail loudly but must never answer wrongly.

    {b Delta chains.}  Per-entry chain state walks the entry's edit
    trace: a chain with no live digest first cold-decides the base
    instance, then each [delta] op advances one edit; any failed or
    completed chain resets to the base.  Chained digests are
    path-deterministic, so every run's chain digests are prefixes of
    the same sequence — the chaos run's verdict map keys are (chain
    resets aside) a subset of the clean run's. *)

type report = {
  seed : int;
  schedule_crc : string;
  requests : int;  (** wire requests sent *)
  ok : int;
  errors : (string * int) list;  (** taxonomy class -> count, sorted *)
  disallowed : string list;  (** invariant violations (capped at 64) *)
  verdicts : (string * string) list;
      (** digest -> verdict-block bytes (canonical render), sorted *)
  latency_us : (string * (int * int * int * int)) list;
      (** op -> (count, p50, p99, max) in microseconds *)
  wall_s : float;
}

val run :
  ?progress:(int -> unit) ->
  seed:int ->
  addr:Service.Wire.address ->
  Workload.t ->
  (report, string) result
(** Execute the schedule.  [Error] only when the server is unreachable
    at startup; per-request failures are classified into the report.
    [progress] is called with the number of completed ops, every 1000
    ops. *)

val report_to_string : report -> string
(** One-line JSON rendering (stable field order). *)

val report_of_string : string -> (report, string) result

val check : clean:report -> chaos:report -> (int, string list) result
(** The safety invariant, clean vs chaos: both reports must carry the
    same [schedule_crc]; every chaos verdict whose digest the clean run
    also answered must be byte-identical to the clean verdict; the
    chaos run must have no [disallowed] events.  [Ok n] gives the
    number of digests compared; [Error] lists every violation. *)
