(** Deterministic adversarial workload synthesis.

    A {e workload} is a fully precomputed request schedule against the
    definability service: a pool of instance {e entries} drawn from the
    paper's instance families, plus one {e op} per request slot —
    [decide] / [batch] / [delta] over those entries, keys picked by a
    configurable popularity model.  Everything is a pure function of
    [(seed, profile)] via the splitmix hash in {!Fault.Rng} — no
    [Random], no wall clock — so the same seed replays the same bytes
    on any host, which is what lets the chaos harness compare a clean
    run against a faulty one response-by-response.

    Instance families:
    - ["random"] — {!Datagraph.Graph_gen.random} graphs with a random
      reachable relation;
    - ["fig1"] — the paper's Figure 1 running example with S2;
    - ["tiling"] — the Theorem 25 tiling reduction (stripes system);
    - ["sat"] — the Theorem 35 SAT reduction graphs (Figure 3),
      decided as [ucrdpq].

    Delta chains: every entry carries a fixed edit trace (alternating
    fresh-node / fresh-edge edits, so each chain step is always
    applicable).  The runner walks it from the entry's base digest;
    because {!Service}'s chained digests are path-deterministic, the
    digest sequence of a chain is identical in every run that walks the
    same prefix. *)

type popularity =
  | Uniform
  | Zipf of float  (** exponent [s]; rank 0 = entry 0 most popular *)
  | Hot of { fraction : float; period : int }
      (** a hot set of [fraction * entries] keys takes 90% of picks and
          rotates every [period] requests *)

type mode =
  | Closed of int  (** N workers, each sends as soon as the last answered *)
  | Open of { rate : float; max_outstanding : int }
      (** target requests/s with bounded outstanding requests *)

type profile = {
  requests : int;  (** schedule length (ops, not wire messages) *)
  mode : mode;
  lang : string;  (** language for the random/fig1 families *)
  k : int;
  fuel : int;  (** per-request fuel — the determinism knob: a fuel
                   bound replays identically, a wall-clock budget does
                   not *)
  deadline_s : float option;  (** client-side per-request deadline *)
  families : (string * int) list;  (** family name -> entry count *)
  size : int;  (** base node count for the random family *)
  popularity : popularity;
  ops : int * int * int;  (** decide/batch/delta weights *)
  batch_size : int;
  edits_per_entry : int;  (** delta-chain length *)
}

val default_profile : profile

val profile_of_json : Service.Json.t -> (profile, string) result
(** Decode a profile object; absent fields take their
    {!default_profile} values.  [mode] is ["closed"]/["open"] plus
    ["workers"] / ["rate"], ["max_outstanding"]; [popularity] is
    ["uniform"] / ["zipf"] / ["hot"] plus ["zipf_s"] /
    ["hot_fraction"], ["hot_period"]; [ops] is an object
    [{"decide":W,"batch":W,"delta":W}]. *)

val profile_of_string : string -> (profile, string) result

type entry = {
  name : string;
  lang : string;
  k : int;
  text : string;  (** rendered instance, ready for the wire *)
  edits : Service.Wire.edit array;  (** the entry's delta chain *)
}

type op =
  | Decide of int  (** entry index *)
  | Batch of int array  (** entry indices, all sharing one [lang] *)
  | Delta of int  (** advance the entry's chain by one edit *)

type t = {
  profile : profile;
  entries : entry array;
  ops : op array;
  schedule_crc : string;
      (** CRC-32 (hex) over every entry and op — two runs with equal
          [schedule_crc] executed byte-identical schedules *)
}

val build : seed:int -> profile -> (t, string) result
(** Synthesize the workload.  [Error] on an unknown family name, an
    empty entry pool, or all-zero op weights. *)
