module Graph_io = Datagraph.Graph_io

type config = {
  vnodes : int;
  chain_capacity : int;
  connect_retries : int;
  retry_backoff_s : float;
  shard_timeout_s : float option;
  unhealthy_after : int;
  health_cooldown_s : float;
}

let default_config =
  {
    vnodes = 64;
    chain_capacity = 4096;
    connect_retries = 20;
    retry_backoff_s = 0.05;
    shard_timeout_s = None;
    unhealthy_after = 3;
    health_cooldown_s = 1.0;
  }

(* Per-shard health, under [health_mu].  [fails] counts consecutive
   forward failures; at [unhealthy_after] the shard is marked down
   until [down_until], during which requests fail fast with a typed
   [shard_unavailable] instead of burning a connect-retry cycle each.
   When the cooldown lapses the next request probes the shard
   (half-open): success resets, failure re-arms the cooldown. *)
type health = { mutable fails : int; mutable down_until : float }

type t = {
  config : config;
  shards : (string * Wire.address) list;
  ring : Ring.t;
  chain : string Lru.t;  (* chained digest -> shard name *)
  health : (string, health) Hashtbl.t;
  health_mu : Mutex.t;
  addr : Wire.address;
  listen_fd : Unix.file_descr;
  started_s : float;
  n_requests : int Atomic.t;
  n_forwarded : int Atomic.t;
  n_forward_errors : int Atomic.t;
  n_unavailable : int Atomic.t;
  n_rebalanced : int Atomic.t;
  stop : bool Atomic.t;
}

let c_forwarded = Obs.Counter.make "service.router.forwarded"

let create ?(config = default_config) ~shards addr =
  if shards = [] then invalid_arg "Service.Router.create: no shards";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Same lane-identity hook as the server: the router is also
     thread-per-connection on one domain. *)
  Obs.set_thread_id_fn (fun () -> Thread.id (Thread.self ()));
  let listen_fd =
    match addr with
    | Wire.Unix_sock path ->
        if Sys.file_exists path then (try Unix.unlink path with _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        fd
    | Wire.Tcp _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Wire.sockaddr_of addr);
        fd
  in
  Unix.listen listen_fd 64;
  {
    config;
    shards;
    ring = Ring.create ~vnodes:config.vnodes (List.map fst shards);
    chain = Lru.create ~capacity:config.chain_capacity;
    health = Hashtbl.create 8;
    health_mu = Mutex.create ();
    addr;
    listen_fd;
    started_s = Unix.gettimeofday ();
    n_requests = Atomic.make 0;
    n_forwarded = Atomic.make 0;
    n_forward_errors = Atomic.make 0;
    n_unavailable = Atomic.make 0;
    n_rebalanced = Atomic.make 0;
    stop = Atomic.make false;
  }

let address t = t.addr
let shard_names t = List.map fst t.shards
let shard_addr t name = List.assoc name t.shards

let shard_of_digest t digest =
  match Lru.find t.chain digest with
  | Some name -> name
  | None -> Ring.shard t.ring digest

let incr a = ignore (Atomic.fetch_and_add a 1)

(* ------------------------------------------------------------------ *)
(* Shard health. *)

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let health_of t name =
  match Hashtbl.find_opt t.health name with
  | Some h -> h
  | None ->
      let h = { fails = 0; down_until = 0. } in
      Hashtbl.replace t.health name h;
      h

(* Down and still cooling?  A lapsed cooldown answers [false] without
   resetting [fails] — the caller's request is the half-open probe. *)
let shard_down t name =
  with_lock t.health_mu (fun () ->
      let h = health_of t name in
      h.fails >= t.config.unhealthy_after
      && Unix.gettimeofday () < h.down_until)

let note_forward_ok t name =
  with_lock t.health_mu (fun () ->
      let h = health_of t name in
      h.fails <- 0;
      h.down_until <- 0.)

let note_forward_fail t name =
  with_lock t.health_mu (fun () ->
      let h = health_of t name in
      h.fails <- h.fails + 1;
      if h.fails >= t.config.unhealthy_after then
        h.down_until <- Unix.gettimeofday () +. t.config.health_cooldown_s)

let shard_healthy t name =
  with_lock t.health_mu (fun () ->
      (health_of t name).fails < t.config.unhealthy_after)

(* Typed unavailability: every forward-level failure is reported with
   this prefix so clients (and the load runner's error taxonomy) can
   tell "the shard was down" from "your request was wrong". *)
let unavailable name msg =
  Printf.sprintf "shard_unavailable: %s: %s" name msg

let is_unavailable msg =
  String.length msg >= 17 && String.sub msg 0 17 = "shard_unavailable"

(* ------------------------------------------------------------------ *)
(* Per-incoming-connection shard connections: opened lazily (with
   retry, so a still-binding shard is waited for), dropped on transport
   failure so the next request reconnects. *)

type conns = (string, Client.t) Hashtbl.t

let get_conn t (conns : conns) name =
  match Hashtbl.find_opt conns name with
  | Some c -> c
  | None ->
      let c =
        Client.connect ~retries:t.config.connect_retries
          ~backoff_s:t.config.retry_backoff_s
          ?deadline_s:t.config.shard_timeout_s (shard_addr t name)
      in
      Hashtbl.replace conns name c;
      c

let drop_conn (conns : conns) name =
  match Hashtbl.find_opt conns name with
  | Some c ->
      Client.close c;
      Hashtbl.remove conns name
  | None -> ()

(* Forward one pre-rendered line to a shard, returning the raw response
   line.  One reconnect-and-retry on a transport error: the shard may
   have restarted since this connection was opened.  The reply must
   carry an intact integrity seal ({!Wire.crc_status} [`Sealed_ok]) —
   every shard seals its responses, so anything else means the bytes
   were damaged in flight and relaying them would hand the client a
   corrupted verdict.  A shard marked unhealthy fails fast until its
   cooldown lapses. *)
let forward t conns name line =
  if shard_down t name then begin
    incr t.n_unavailable;
    Error (unavailable name "marked unhealthy, cooling down")
  end
  else begin
    let once () =
      match Client.request_raw (get_conn t conns name) line with
      | Ok reply when Wire.crc_status reply = `Sealed_ok ->
          incr t.n_forwarded;
          Obs.Counter.incr c_forwarded;
          Ok reply
      | Ok _ ->
          drop_conn conns name;
          Error "reply failed integrity check"
      | Error msg ->
          drop_conn conns name;
          Error msg
      | exception Unix.Unix_error (e, _, _) ->
          drop_conn conns name;
          Error (Unix.error_message e)
    in
    match once () with
    | Ok _ as ok ->
        note_forward_ok t name;
        ok
    | Error _ -> (
        match once () with
        | Ok _ as ok ->
            note_forward_ok t name;
            ok
        | Error msg ->
            note_forward_fail t name;
            incr t.n_forward_errors;
            Error (unavailable name msg))
  end

(* Streaming forward: progress frames from the shard relay to the
   client as they arrive; the first non-frame line is the response.
   No reconnect-retry — frames may already have reached the client, so
   a mid-stream transport failure surfaces as an error instead of a
   silent replay. *)
let forward_stream t conns name ~on_progress line =
  if shard_down t name then begin
    incr t.n_unavailable;
    Error (unavailable name "marked unhealthy, cooling down")
  end
  else
    match Client.request_stream (get_conn t conns name) ~on_progress line with
    | Ok reply when Wire.crc_status reply = `Sealed_ok ->
        note_forward_ok t name;
        incr t.n_forwarded;
        Obs.Counter.incr c_forwarded;
        Ok reply
    | Ok _ ->
        drop_conn conns name;
        note_forward_fail t name;
        incr t.n_forward_errors;
        Error (unavailable name "reply failed integrity check")
    | Error msg ->
        drop_conn conns name;
        note_forward_fail t name;
        incr t.n_forward_errors;
        Error (unavailable name msg)
    | exception Unix.Unix_error (e, _, _) ->
        drop_conn conns name;
        note_forward_fail t name;
        incr t.n_forward_errors;
        Error (unavailable name (Unix.error_message e))

(* Responses the router composes itself are sealed like a shard's;
   relayed shard lines keep the shard's own seal (relay is verbatim). *)
let respond oc fields =
  output_string oc (Wire.seal fields);
  output_char oc '\n';
  flush oc

let relay oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let error_fields ?(status = "error") op msg =
  [
    ("op", Wire.json_string op);
    ("status", Wire.json_string status);
    ("error", Wire.json_string msg);
  ]

(* A forward-level failure answers with status ["unavailable"] — the
   typed signal that the request was fine but its shard was not, so the
   caller may retry elsewhere/later; anything else stays ["error"]. *)
let respond_error oc op msg =
  let status = if is_unavailable msg then "unavailable" else "error" in
  respond oc (error_fields ~status op msg)

let ok op rest =
  ("op", Wire.json_string op) :: ("status", Wire.json_string "ok") :: rest

(* ------------------------------------------------------------------ *)

let stats t =
  let unhealthy =
    List.length (List.filter (fun (n, _) -> not (shard_healthy t n)) t.shards)
  in
  List.sort compare
    [
      ("chain_entries", Lru.length t.chain);
      ("chain_hits", Lru.hits t.chain);
      ("chain_misses", Lru.misses t.chain);
      ("chain_evictions", Lru.evictions t.chain);
      ("forward_errors", Atomic.get t.n_forward_errors);
      ("forwarded", Atomic.get t.n_forwarded);
      ("rebalanced", Atomic.get t.n_rebalanced);
      ("requests", Atomic.get t.n_requests);
      ("shards", List.length t.shards);
      ("shards_unhealthy", unhealthy);
      ("unavailable_fast_fails", Atomic.get t.n_unavailable);
      ("uptime_seconds", int_of_float (Unix.gettimeofday () -. t.started_s));
      ("started_at", int_of_float t.started_s);
    ]

(* Remember where a delta response's chained digest lives, so the next
   step of the edit stream goes back to the same shard. *)
let note_chained t name line =
  match Json.parse line with
  | Error _ -> ()
  | Ok j -> (
      match
        (Option.bind (Json.member "status" j) Json.to_str,
         Option.bind (Json.member "digest" j) Json.to_str)
      with
      | Some "ok", Some digest -> Lru.put t.chain digest name
      | _ -> ())

(* Work ops forward the raw line verbatim, envelope included — which is
   exactly how the trace context crosses the router without being
   re-rendered.  A [stream] request switches to the streaming forward so
   the shard's progress frames relay through in arrival order. *)
let forward_work t conns name oc ~(env : Wire.envelope) line =
  if env.Wire.stream then
    forward_stream t conns name ~on_progress:(relay oc) line
  else forward t conns name line

let handle_decide t conns oc line ~env ~lang ~k ~instance =
  match Graph_io.instance_of_string instance with
  | Error msg -> respond oc (error_fields "decide" ("instance: " ^ msg))
  | Ok (g, s) -> (
      let digest =
        Content_hash.instance_key ~lang ~k:(Option.value k ~default:1) g s
      in
      match forward_work t conns (shard_of_digest t digest) oc ~env line with
      | Ok reply -> relay oc reply
      | Error msg -> respond_error oc "decide" msg)

let handle_delta t conns oc line ~env ~digest =
  let name = shard_of_digest t digest in
  match forward_work t conns name oc ~env line with
  | Ok reply ->
      note_chained t name reply;
      relay oc reply
  | Error msg -> respond_error oc "delta" msg

(* Split a batch by placement, forward the sub-batches, reassemble in
   request order.  Items are re-rendered from parsed JSON (string and
   null fields only, so the verdict blocks survive verbatim); a
   sub-batch failure turns into per-item error objects rather than
   failing the whole batch. *)
let handle_batch t conns oc ~env ~lang ~k ~fuel ~timeout_s ~instances =
  let t0 = Unix.gettimeofday () in
  let placed =
    List.mapi
      (fun i text ->
        let digest =
          match Graph_io.instance_of_string text with
          | Ok (g, s) ->
              Some (Content_hash.instance_key ~lang ~k:(Option.value k ~default:1) g s)
          | Error _ -> None
        in
        (* Unparsable instances still go to a shard (the first), whose
           decide_one renders the error object for them. *)
        let name =
          match digest with
          | Some d -> shard_of_digest t d
          | None -> fst (List.hd t.shards)
        in
        (i, name, text))
      instances
  in
  let by_shard = Hashtbl.create 8 in
  List.iter
    (fun (i, name, text) ->
      let prev = Option.value (Hashtbl.find_opt by_shard name) ~default:[] in
      Hashtbl.replace by_shard name ((i, text) :: prev))
    placed;
  let results = Array.make (List.length instances) "{}" in
  Hashtbl.iter
    (fun name items ->
      let items = List.rev items in
      (* Sub-batches keep the trace context but never stream — the
         router reassembles results in request order, so interleaved
         frames from several shards would be misordered noise. *)
      let sub =
        Wire.request_line
          ~envelope:{ env with Wire.stream = false }
          (Wire.Batch
             { lang; k; fuel; timeout_s; instances = List.map snd items })
      in
      let fill_errors msg =
        List.iter
          (fun (i, _) ->
            results.(i) <-
              Wire.json_obj [ ("error", Wire.json_string msg) ])
          items
      in
      match forward t conns name sub with
      | Error msg -> fill_errors msg
      | Ok reply -> (
          match Result.to_option (Json.parse reply) with
          | None ->
              fill_errors (Printf.sprintf "shard %s: malformed batch reply" name)
          | Some j -> (
              match Option.bind (Json.member "status" j) Json.to_str with
              (* A refused sub-batch keeps its typed status: the
                 per-item error text says "overloaded: queue_full", not
                 "malformed", so clients can classify it as
                 backpressure. *)
              | Some "overloaded" ->
                  fill_errors
                    (match
                       Option.bind (Json.member "detail" j) Json.to_str
                     with
                    | Some d -> "overloaded: " ^ d
                    | None -> "overloaded")
              | Some ("unavailable" | "error") ->
                  (* Keep the shard's own error text: it already carries
                     its class prefix ("shard_unavailable: ...",
                     "unknown instance digest ..."). *)
                  fill_errors
                    (match
                       Option.bind (Json.member "error" j) Json.to_str
                     with
                    | Some e -> e
                    | None -> Printf.sprintf "shard %s: unspecified error" name)
              | _ -> (
                  match
                    Option.bind (Json.member "results" j) Json.to_list
                  with
                  | Some objs when List.length objs = List.length items ->
                      List.iter2
                        (fun (i, _) obj -> results.(i) <- Json.to_string obj)
                        items objs
                  | Some _ | None ->
                      fill_errors
                        (Printf.sprintf "shard %s: malformed batch reply" name)
                  ))))
    by_shard;
  let wall_s = Unix.gettimeofday () -. t0 in
  respond oc
    (ok "batch"
       [
         ("results", Wire.json_list (Array.to_list results));
         ( "service",
           Wire.json_obj
             [
               ("queue_wait_s", Printf.sprintf "%.6f" 0.);
               ("wall_s", Printf.sprintf "%.6f" wall_s);
             ] );
       ])

(* Fan an op out to every shard; [combine] renders the response from
   the per-shard raw replies. *)
let fan_out t conns line =
  List.map (fun (name, _) -> (name, forward t conns name line)) t.shards

let handle_stats t conns oc line =
  let replies = fan_out t conns line in
  let totals = Hashtbl.create 32 in
  let per_shard =
    List.map
      (fun (name, reply) ->
        let fields =
          match reply with
          | Error msg -> [ ("error", Wire.json_string msg) ]
          | Ok raw -> (
              match Result.to_option (Json.parse raw) with
              | None -> [ ("error", Wire.json_string "malformed stats reply") ]
              | Some j -> (
                  (* The shard's build string rides along un-summed, so a
                     mixed-version cluster is visible per shard. *)
                  let version =
                    match
                      Option.bind (Json.member "version" j) Json.to_str
                    with
                    | Some v -> [ ("version", Wire.json_string v) ]
                    | None -> []
                  in
                  match Json.member "stats" j with
                  | Some (Json.Obj kvs) ->
                      List.filter_map
                        (fun (k, v) ->
                          match Json.to_int v with
                          | Some n ->
                              Hashtbl.replace totals k
                                (n
                                + Option.value (Hashtbl.find_opt totals k)
                                    ~default:0);
                              Some (k, string_of_int n)
                          | None -> None)
                        kvs
                      @ version
                  | _ -> [ ("error", Wire.json_string "malformed stats reply") ]
                  ))
        in
        (name, Wire.json_obj fields))
      replies
  in
  let aggregated =
    Hashtbl.fold (fun k v acc -> (k, string_of_int v) :: acc) totals []
    |> List.sort compare
  in
  let health =
    List.map
      (fun (name, _) ->
        ( name,
          Wire.json_string (if shard_healthy t name then "up" else "down") ))
      t.shards
  in
  respond oc
    (ok "stats"
       [
         ("stats", Wire.json_obj aggregated);
         ("shards", Wire.json_obj per_shard);
         ("health", Wire.json_obj health);
         ( "router",
           Wire.json_obj
             (List.map (fun (k, v) -> (k, string_of_int v)) (stats t)) );
         ("version", Wire.json_string Metrics.build_string);
       ])

(* Metrics aggregation: merge the shards' raw snapshots (histograms
   pointwise, counters by sum) and render the cluster-wide exposition
   here.  Percentiles of the merged histograms are exact — unlike any
   combination of per-shard percentile numbers. *)
let handle_metrics t conns oc line =
  let replies = fan_out t conns line in
  let merged, per_shard =
    List.fold_left
      (fun (acc, infos) (name, reply) ->
        let failed msg = (acc, (name, Wire.json_obj [ ("error", Wire.json_string msg) ]) :: infos) in
        match reply with
        | Error msg -> failed msg
        | Ok raw -> (
            match Result.to_option (Json.parse raw) with
            | None -> failed "malformed metrics reply"
            | Some j -> (
                let version =
                  match Option.bind (Json.member "version" j) Json.to_str with
                  | Some v -> [ ("version", Wire.json_string v) ]
                  | None -> []
                in
                match
                  Option.bind (Json.member "data" j) (fun d ->
                      Result.to_option (Metrics.of_json d))
                with
                | Some snap ->
                    ( Metrics.merge acc snap,
                      ( name,
                        Wire.json_obj
                          (("status", Wire.json_string "ok") :: version) )
                      :: infos )
                | None -> failed "malformed metrics reply")))
      (Metrics.empty, []) replies
  in
  let gauges =
    [
      ("uptime_seconds", Unix.gettimeofday () -. t.started_s);
      ("shards", float_of_int (List.length t.shards));
    ]
  in
  respond oc
    (ok "metrics"
       [
         ("metrics", Wire.json_string (Metrics.render ~gauges merged));
         ("data", Metrics.to_json merged);
         ("shards", Wire.json_obj (List.rev per_shard));
         ("version", Wire.json_string Metrics.build_string);
       ])

let handle_compact t conns oc line =
  let replies = fan_out t conns line in
  let per_shard =
    List.map
      (fun (name, reply) ->
        ( name,
          match reply with
          | Ok raw -> raw
          | Error msg -> Wire.json_obj (error_fields "compact" msg) ))
      replies
  in
  respond oc (ok "compact" [ ("shards", Wire.json_obj per_shard) ])

let initiate_stop t =
  if not (Atomic.exchange t.stop true) then
    try
      let fd =
        Unix.socket
          (match t.addr with
          | Wire.Unix_sock _ -> Unix.PF_UNIX
          | Wire.Tcp _ -> Unix.PF_INET)
          Unix.SOCK_STREAM 0
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          let addr =
            match t.addr with
            | Wire.Tcp (_, port) ->
                Unix.ADDR_INET (Unix.inet_addr_loopback, port)
            | a -> Wire.sockaddr_of a
          in
          Unix.connect fd addr)
    with _ -> ()

let shutdown t = initiate_stop t

let handle_shutdown t conns oc line =
  (* Every shard drains before the router answers: when the response
     arrives, no in-flight work exists anywhere in the topology. *)
  let _ = fan_out t conns line in
  respond oc (ok "shutdown" [ ("drained", "true") ]);
  initiate_stop t

let dispatch_request t conns oc line ~env req =
  match req with
  | Wire.Ping -> respond oc (ok "ping" [ ("role", Wire.json_string "router") ])
  | Wire.Stats -> handle_stats t conns oc line
  | Wire.Shutdown -> handle_shutdown t conns oc line
  | Wire.Sleep _ -> (
      match forward t conns (fst (List.hd t.shards)) line with
      | Ok reply -> relay oc reply
      | Error msg -> respond_error oc "sleep" msg)
  | Wire.Decide { lang; k; instance; _ } ->
      handle_decide t conns oc line ~env ~lang ~k ~instance
  | Wire.Batch { lang; k; fuel; timeout_s; instances } ->
      handle_batch t conns oc ~env ~lang ~k ~fuel ~timeout_s ~instances
  | Wire.Delta { digest; _ } -> handle_delta t conns oc line ~env ~digest
  | Wire.Compact -> handle_compact t conns oc line
  | Wire.Metrics -> handle_metrics t conns oc line
  | Wire.Export _ | Wire.Import _ ->
      respond oc
        (error_fields "export"
           "shard-direct op (connect to a shard, not the router)")

let handle_request t conns oc line =
  incr t.n_requests;
  (* Same request-seal policy as the shard server: a sealed line whose
     seal fails verification must not execute (it was corrupted in
     transit); unsealed requests are accepted as-is. *)
  if Wire.crc_status line = `Sealed_bad then
    respond oc (error_fields "unknown" "request failed integrity check")
  else
  match Json.parse line with
  | Error msg -> respond oc (error_fields "unknown" msg)
  | Ok j -> (
      match Wire.request_of_json j with
      | Error msg -> respond oc (error_fields "unknown" msg)
      | Ok req ->
          (* The routing span is tagged with the client's trace id; the
             forwarded line carries the same id verbatim, so the shard's
             spans join the same distributed trace. *)
          let env = Wire.envelope_of_json j in
          let work () =
            Obs.Span.with_ "service.route" (fun () ->
                dispatch_request t conns oc line ~env req)
          in
          match env.Wire.trace_id with
          | None -> work ()
          | Some _ as id -> Obs.Ctx.with_trace id work)

let handle_conn t fd =
  let conns : conns = Hashtbl.create 8 in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _ | Sys_blocked_io) -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        (match handle_request t conns oc line with
        | () -> ()
        | exception (Sys_error _ | Sys_blocked_io | Unix.Unix_error _) ->
            raise Exit
        | exception e ->
            respond oc
              (error_fields "unknown" ("internal: " ^ Printexc.to_string e)));
        loop ()
  in
  (try loop () with Exit | Sys_error _ | Sys_blocked_io | Unix.Unix_error _ -> ());
  Hashtbl.iter (fun _ c -> Client.close c) conns;
  try close_out oc with _ -> ()

let run t =
  let rec loop () =
    if not (Atomic.get t.stop) then
      match Unix.accept t.listen_fd with
      | fd, _ ->
          if Atomic.get t.stop then (try Unix.close fd with _ -> ())
          else ignore (Thread.create (handle_conn t) fd);
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          if Atomic.get t.stop then () else loop ()
  in
  loop ();
  (try Unix.close t.listen_fd with _ -> ());
  match t.addr with
  | Wire.Unix_sock path -> ( try Unix.unlink path with _ -> ())
  | Wire.Tcp _ -> ()

(* ------------------------------------------------------------------ *)
(* Warm transfer. *)

let rebalance t ?(limit = 64) () =
  let conns : conns = Hashtbl.create 8 in
  Fun.protect
    ~finally:(fun () -> Hashtbl.iter (fun _ c -> Client.close c) conns)
    (fun () ->
      let ( let* ) = Result.bind in
      (* Collect every shard's hot set. *)
      let* exported =
        List.fold_left
          (fun acc (name, _) ->
            let* acc = acc in
            let* raw =
              forward t conns name
                (Wire.request_to_string (Wire.Export { limit = Some limit }))
            in
            let* j =
              Result.map_error (fun m -> "export reply: " ^ m) (Json.parse raw)
            in
            let entries =
              match Option.bind (Json.member "entries" j) Json.to_list with
              | None -> []
              | Some items ->
                  List.filter_map
                    (fun item ->
                      match
                        (Option.bind (Json.member "digest" item) Json.to_str,
                         Option.bind (Json.member "payload" item) Json.to_str)
                      with
                      | Some d, Some p -> Some (name, d, p)
                      | _ -> None)
                    items
            in
            Ok (entries @ acc))
          (Ok []) t.shards
      in
      (* Ship each misplaced entry to its ring owner. *)
      let by_owner = Hashtbl.create 8 in
      List.iter
        (fun (source, digest, payload) ->
          let owner = shard_of_digest t digest in
          if owner <> source then begin
            let prev =
              Option.value (Hashtbl.find_opt by_owner owner) ~default:[]
            in
            Hashtbl.replace by_owner owner ((digest, payload) :: prev)
          end)
        exported;
      Hashtbl.fold
        (fun owner entries acc ->
          let* moved = acc in
          let* raw =
            forward t conns owner
              (Wire.request_to_string (Wire.Import { entries }))
          in
          let* j =
            Result.map_error (fun m -> "import reply: " ^ m) (Json.parse raw)
          in
          let imported =
            Option.value
              (Option.bind (Json.member "imported" j) Json.to_int)
              ~default:0
          in
          ignore (Atomic.fetch_and_add t.n_rebalanced imported);
          Ok (moved + imported))
        by_owner (Ok 0))
