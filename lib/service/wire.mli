(** The service wire format, shared by the server, the client and the
    CLI.

    {b Emission} is string-based (a tiny escaper and two combinators),
    moved here verbatim from the CLI so the verdict block a [decide]
    response carries is byte-identical to what [defcheck check --json]
    and [defcheck batch] print for the same outcome — and byte-identical
    between a cold decide and a warm cache hit, which the service bench
    and CI assert.

    {b The protocol} is newline-delimited JSON over a stream socket: one
    request object per line in, one response object per line out, in
    order.  Operations:

    {v
    {"op":"ping"}
    {"op":"stats"}
    {"op":"shutdown"}
    {"op":"sleep","ms":250}
    {"op":"decide","lang":"rem","instance":"node v1 0\n...","k":2,
     "fuel":100000,"timeout_s":1.5}
    {"op":"batch","lang":"rem","instances":["...","..."],...}
    {"op":"delta","lang":"rem","digest":"<hex>",
     "edit":{"edit":"add_edge","u":"v0","label":"a","v":"v3"},...}
    {"op":"compact"}
    {"op":"export","limit":64}
    {"op":"import","entries":[{"digest":"<hex>","payload":"<hex>"},...]}
    v}

    [instance] carries the instance file text ({!Datagraph.Graph_io}
    format).  [k], [fuel] and [timeout_s] are optional; absent fuel and
    timeout fall back to the server's defaults.  [sleep] occupies a
    worker slot for [ms] milliseconds and answers [ok] — a diagnostic
    op for load-testing admission control and drain behaviour without
    depending on any instance being slow.

    [delta] is the incremental step: [digest] quotes the instance
    digest a previous [decide] (or [delta]) response carried, and
    [edit] is one {!edit} object.  Edits name nodes by node name, like
    instance files; [add_node] carries the integer data value.
    [set_relation] replaces the target relation's tuple set.

    Responses always carry ["op"] (echoed) and ["status"]: ["ok"],
    ["error"] (with ["error"] text), or ["overloaded"] (admission
    refused; ["detail"] is ["queue_full"] or ["draining"]).  A [decide]
    response carries ["cache"] (["hit"]/["miss"]), ["digest"] (the
    instance digest, quotable in a [delta] request) and ["result"] —
    the CLI verdict block.  A [batch] response carries ["results"], one
    such object (or a per-instance error object) per instance.  A
    [delta] response carries ["repair"] (["hit"] when certificate
    repair served the verdict, ["miss"] when the server fell back to a
    full decide), ["digest"] (the chained digest of the {e edited}
    instance, for the next step of the stream) and ["result"].

    The tiered-storage ops: [compact] rewrites the durable store's
    snapshot and answers with the store's stats; [export] returns the
    server's hottest cache entries as [(digest, hex payload)] pairs in
    the {!Tier} codec; [import] admits such entries (each is
    certificate-checked before it is stored — see {!Cache.import}).
    [export]/[import] are the warm-transfer path a router uses to move
    entries onto the shard the ring says owns them. *)

(** {2 JSON emission} *)

val json_string : string -> string
val json_obj : (string * string) list -> string
val json_list : string list -> string

(** {2 Response integrity}

    Every response line the server or router composes is {e sealed}: a
    trailing ["crc"] field carries the CRC-32 (8 lowercase hex digits)
    of the object rendered without it.  The seal lives inside the JSON
    object, so verbatim relay preserves it across hops and any byte
    flipped in transit (a chaos proxy, a bad NIC) fails verification at
    the first receiver that checks — the router drops and retries the
    shard connection, the client reports a typed transport error —
    instead of surfacing as a silently wrong verdict.  Progress frames
    are not sealed. *)

val seal : (string * string) list -> string
(** [json_obj fields] with the integrity field appended (the empty
    field list renders unsealed — there is nothing to protect). *)

val seal_line : string -> string
(** Seal an already-rendered object line (identity on anything that is
    not an [{...}] object).  Clients may seal {e request} lines with
    this; servers reject a request whose seal fails verification with a
    typed ["request failed integrity check"] error, so a byte flipped in
    transit cannot execute as a subtly different request.  Unsealed
    requests are always accepted. *)

val crc_status : string -> [ `Sealed_ok | `Sealed_bad | `Unsealed ]
(** [`Unsealed] — no trailing crc field (progress frames, foreign or
    truncated lines); [`Sealed_bad] — a crc field that does not match
    the rest of the line's bytes. *)

val crc_ok : string -> bool
(** Not [`Sealed_bad]: unsealed lines pass, so callers that may
    legitimately receive unsealed lines can still reject corruption. *)

val verdict_fields :
  Datagraph.Data_graph.t ->
  lang:string ->
  Engine.Outcome.t ->
  (string * string) list
(** The five-field verdict block ([lang], [verdict], [reason],
    [certificate], [counterexample]) with every value already rendered
    as JSON — everything that must be byte-identical across pool sizes
    and across cache hits.  Node names are taken from the given graph,
    so a cached outcome renders with the requester's names. *)

val verdict_to_string :
  Datagraph.Data_graph.t -> lang:string -> Engine.Outcome.t -> string
(** [json_obj (verdict_fields ...)]. *)

(** {2 Addresses} *)

type address =
  | Unix_sock of string  (** path of a Unix-domain socket *)
  | Tcp of string * int  (** host, port *)

val address_to_string : address -> string
(** ["unix:PATH"] or ["tcp:HOST:PORT"], for logs and banners. *)

val sockaddr_of : address -> Unix.sockaddr
(** Resolve to a [Unix.sockaddr] (TCP hosts via [gethostbyname]).
    @raise Failure on an unresolvable host. *)

(** {2 Edits}

    The wire form of {!Engine.Delta.graph_edit}: nodes by {e name}
    (resolved against a concrete graph only at the point of use), data
    values as integers. *)

type edit =
  | Add_edge of string * string * string  (** source, label, target *)
  | Remove_edge of string * string * string
  | Add_node of string * int  (** name, data value *)
  | Set_relation of string list list  (** tuples of node names *)

val edit_to_json_string : edit -> string
(** One JSON object, e.g.
    [{"edit":"add_edge","u":"v0","label":"a","v":"v3"}]. *)

val edit_of_json : Json.t -> (edit, string) result

val edit_of_string : string -> (edit, string) result
(** Parse one edit object — the line format of a [watch] edit stream. *)

val resolve_edit :
  Datagraph.Data_graph.t -> edit -> (Engine.Delta.graph_edit, string) result
(** Resolve node names against a graph.  [Error] on an unknown name. *)

(** {2 Requests} *)

type request =
  | Ping
  | Stats
  | Shutdown
  | Sleep of { ms : int }
  | Decide of {
      lang : string;
      k : int option;
      fuel : int option;
      timeout_s : float option;
      instance : string;
    }
  | Batch of {
      lang : string;
      k : int option;
      fuel : int option;
      timeout_s : float option;
      instances : string list;
    }
  | Delta of {
      lang : string;
      k : int option;
      fuel : int option;
      timeout_s : float option;
      digest : string;  (** instance digest from a previous response *)
      edit : edit;
    }
  | Compact
  | Export of { limit : int option }  (** default: the server decides *)
  | Import of { entries : (string * string) list }
      (** [(digest, hex-encoded Tier record)] pairs *)
  | Metrics
      (** Prometheus text exposition + a mergeable raw snapshot; the
          router aggregates this across shards. *)

(** {2 The observability envelope}

    Extra fields any request line may carry, orthogonal to the op:

    {v
    {"op":"decide",...,"trace_id":"t-42","parent_span":"client","stream":true}
    v}

    [trace_id]/[parent_span] propagate a distributed-trace context: the
    server opens its root span under [trace_id], so per-process Chrome
    traces from a router and its shards share one id and
    [defcheck trace-merge] can stitch them into a single timeline.
    [stream] (on [decide]) asks for interim newline-JSON [progress]
    frames — span enter/exit and counter deltas — before the final
    response line; each frame is one JSON object with a ["progress"]
    field, so a client distinguishes frames from the response without
    lookahead.  The envelope never changes the verdict bytes. *)

type envelope = {
  trace_id : string option;
  parent_span : string option;
  stream : bool;
}

val empty_envelope : envelope

val envelope_of_json : Json.t -> envelope
(** Total: malformed or absent envelope fields degrade to their
    defaults — tracing can never fail a request. *)

val request_to_string : request -> string
(** One-line JSON encoding (no trailing newline). *)

val request_line : ?envelope:envelope -> request -> string
(** {!request_to_string} with the envelope's fields appended (absent
    fields and [stream = false] are omitted, so
    [request_line r = request_to_string r] for the empty envelope). *)

val request_of_json : Json.t -> (request, string) result
val request_of_string : string -> (request, string) result
