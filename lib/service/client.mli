(** A blocking client for the service protocol: connect, send one
    request line, read one response line, repeat.  Used by the CLI's
    [client] subcommand, the end-to-end tests and the bench's socket
    rows.

    The connection is synchronous and pipelining-free on purpose — the
    server answers in order, so one in-flight request per connection
    keeps the client trivial; concurrency comes from opening more
    connections. *)

type t

val connect :
  ?retries:int -> ?backoff_s:float -> ?deadline_s:float -> Wire.address -> t
(** Connect, retrying a {e transient} refusal (ECONNREFUSED, ENOENT of
    a not-yet-bound Unix socket, ECONNRESET, ETIMEDOUT) up to [retries]
    times (default 0: single attempt) with jittered exponential backoff
    starting at [backoff_s] (default 0.05 s, doubling each attempt,
    ±25% jitter per {!retry_delay_s}) — so a client racing a server
    that is milliseconds from binding waits instead of dying, and N
    clients racing the same restarting shard don't stampede it in
    lockstep.  Non-transient errors propagate immediately.
    [deadline_s] arms a per-request deadline (see {!set_deadline}).
    @raise Unix.Unix_error when the server stays unreachable. *)

val set_deadline : t -> float option -> unit
(** Bound how long any single request may block: a kernel receive/send
    timeout on the socket.  Expiry surfaces from {!request_raw} as a
    transport [Error]; the connection is poisoned afterwards (a late
    response may still arrive), so reconnect before reusing the
    address.  [None] (or a non-positive value) clears the bound. *)

val retry_delay_s : ?salt:int -> attempt:int -> float -> float
(** [retry_delay_s ~attempt base_s] is the delay {!connect} sleeps
    before retry number [attempt] (0-based): [base_s · 2^attempt ·
    factor] with [factor ∈ \[0.75, 1.25)] derived by hashing [attempt]
    against [salt] (default: the process id) — deterministic, pure, no
    [Random] on the hot path.  Successive attempts always wait longer:
    the jitter bands of consecutive attempts never overlap
    (1.25 < 2 · 0.75).  Exposed for unit tests and for callers rolling
    their own retry loop. *)

val request : t -> Wire.request -> (Json.t, string) result
(** Send the request, block for the response line, parse it.  [Error]
    covers transport failures (connection closed mid-exchange) and
    unparsable response lines — protocol-level failures arrive as [Ok]
    objects with ["status"] ["error"] or ["overloaded"]. *)

val request_raw : t -> string -> (string, string) result
(** Send one pre-rendered request line (no newline), return the raw
    response line.  The bench uses this to keep parsing out of timed
    sections.  A response that carries an integrity seal
    ({!Wire.crc_status}) failing verification is reported as a
    transport [Error], never returned. *)

val request_stream :
  t -> on_progress:(string -> unit) -> string -> (string, string) result
(** Like {!request_raw} for a request whose envelope sets ["stream"]:
    every interim line carrying a ["progress"] member is handed to
    [on_progress] (raw, in arrival order) and the first line without
    one is returned as the response.  Also correct for servers that
    ignore streaming — zero progress lines then the response. *)

val close : t -> unit
(** Idempotent. *)

val with_connection :
  ?retries:int -> ?backoff_s:float -> Wire.address -> (t -> 'a) -> 'a
(** [connect], run, [close] (also on exceptions). *)
