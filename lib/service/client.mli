(** A blocking client for the service protocol: connect, send one
    request line, read one response line, repeat.  Used by the CLI's
    [client] subcommand, the end-to-end tests and the bench's socket
    rows.

    The connection is synchronous and pipelining-free on purpose — the
    server answers in order, so one in-flight request per connection
    keeps the client trivial; concurrency comes from opening more
    connections. *)

type t

val connect : Wire.address -> t
(** @raise Unix.Unix_error when the server is not reachable. *)

val request : t -> Wire.request -> (Json.t, string) result
(** Send the request, block for the response line, parse it.  [Error]
    covers transport failures (connection closed mid-exchange) and
    unparsable response lines — protocol-level failures arrive as [Ok]
    objects with ["status"] ["error"] or ["overloaded"]. *)

val request_raw : t -> string -> (string, string) result
(** Send one pre-rendered request line (no newline), return the raw
    response line.  The bench uses this to keep parsing out of timed
    sections. *)

val close : t -> unit
(** Idempotent. *)

val with_connection : Wire.address -> (t -> 'a) -> 'a
(** [connect], run, [close] (also on exceptions). *)
