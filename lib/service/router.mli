(** The shard router: a thin {!Wire}-protocol front for N shard
    servers, placing requests by consistent hashing on {!Content_hash}
    digests.

    The router holds no cache and decides nothing.  It parses each
    request just enough to find its digest, asks the {!Ring} which
    shard owns it, forwards the {e original} request line over a
    per-connection client to that shard, and relays the shard's
    response line verbatim — so a routed [decide]/[delta] response is
    byte-identical to one obtained shard-direct, cache provenance
    included.

    Placement per op:
    - [decide] — parse the instance, compute its {!Content_hash}
      instance key (the digest the shard will answer with), route by
      it.  Every repeat of the same problem lands on the same shard, so
      shard caches partition the key space instead of duplicating it.
    - [delta] — route by the quoted digest.  A chained digest (the
      [Content_hash.chain_key] of an earlier delta) does not hash to
      its parent's shard, so the router remembers
      [chained digest → shard] in a bounded LRU as responses stream
      back; an entry that ages out simply falls back to the ring and a
      cold decide on the (wrong) shard — correctness never depends on
      the map.
    - [batch] — split by per-instance placement, forward sub-batches,
      reassemble results in request order.
    - [stats] — fan out, answer with the field-wise {e sum} over shards
      plus a per-shard breakdown and the router's own counters.
    - [compact] — fan out to every shard.
    - [ping] — answered locally.  [sleep] — forwarded to the first
      shard.  [export]/[import] are shard-direct ops and answer with an
      error here.
    - [shutdown] — forwarded to every shard (each drains), then the
      router answers and stops.

    {b Warm transfer.}  {!rebalance} moves hot entries onto the shard
    the ring says owns them: it [export]s each shard's hottest entries
    and [import]s every entry whose owner differs from where it was
    found — the join path for a shard that starts empty (or restarts
    with a stale store).  Entries are certificate-checked by the
    receiving shard, so a bad transfer is refused, not stored.

    Shard connections are opened lazily per incoming connection (with
    {!Client.connect} retry, so racing a still-binding shard works) and
    a dead shard surfaces as a per-request response with status
    ["unavailable"] and an error beginning ["shard_unavailable:"] — a
    {e typed} failure, distinguishable from a malformed request; the
    next request reconnects.

    {b Health.}  After [unhealthy_after] consecutive forward failures a
    shard is marked down for [health_cooldown_s] seconds, during which
    requests routed to it fail fast with the same typed
    [shard_unavailable] instead of re-running the connect-retry cycle.
    When the cooldown lapses the next routed request probes the shard
    (half-open); success clears the mark.  Per-shard health appears in
    the aggregated [stats] response (["health"] object) and the down
    count in the router's own counters.

    {b Reply integrity.}  Shards seal every response line with a
    trailing CRC ({!Wire.seal}); the router refuses to relay a reply
    whose seal is missing or wrong ({!Wire.crc_status}), so bytes
    damaged between shard and router (a chaos proxy, a bad NIC) become
    a typed [shard_unavailable] rather than a corrupted verdict.

    A [shard_timeout_s] deadline (kernel socket timeouts on the shard
    connections) bounds how long a hung shard can stall a routed
    request; expiry surfaces as the same typed unavailability. *)

type config = {
  vnodes : int;  (** ring points per shard (default 64) *)
  chain_capacity : int;  (** chained-digest map size (default 4096) *)
  connect_retries : int;  (** per shard-connect (default 20) *)
  retry_backoff_s : float;  (** initial backoff (default 0.05 s) *)
  shard_timeout_s : float option;
      (** per-request deadline on shard connections ([None] = wait
          forever, the default) *)
  unhealthy_after : int;
      (** consecutive forward failures before a shard is marked down
          (default 3) *)
  health_cooldown_s : float;
      (** how long a down mark lasts before the next request probes the
          shard again (default 1.0 s) *)
}

val default_config : config

type t

val create :
  ?config:config -> shards:(string * Wire.address) list -> Wire.address -> t
(** Bind the router's own listen address.  [shards] are
    [(name, address)] pairs; names feed the ring, so keep them stable
    across restarts.
    @raise Invalid_argument on an empty or duplicate-bearing shard
    list; [Unix.Unix_error] when binding fails. *)

val address : t -> Wire.address
val shard_names : t -> string list

val shard_of_digest : t -> string -> string
(** Current placement of a digest (chained-digest map first, then the
    ring) — exposed for tests and the CLI banner. *)

val rebalance : t -> ?limit:int -> unit -> (int, string) result
(** One warm-transfer sweep: export up to [limit] (default 64) hot
    entries from every shard, re-import the misplaced ones onto their
    owners.  Returns how many entries moved.  [Error] when a shard is
    unreachable. *)

val run : t -> unit
(** Serve until a [shutdown] request arrives (which is forwarded to
    every shard first); returns after the acceptor stops. *)

val shutdown : t -> unit
(** Stop the acceptor without touching the shards. *)

val stats : t -> (string * int) list
(** The router's own counters: [forwarded], [forward_errors],
    [requests], [chain_entries], [rebalanced], [shards],
    [shards_unhealthy], [unavailable_fast_fails], [uptime_s]. *)
