type t = {
  (* Ring points sorted by point digest; binary search finds the first
     point at or after a key's digest (wrapping to [0]). *)
  points : (string * string) array;
  names : string list;
}

let create ?(vnodes = 64) names =
  if names = [] then invalid_arg "Service.Ring.create: no shards";
  if vnodes < 1 then invalid_arg "Service.Ring.create: vnodes must be >= 1";
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Service.Ring.create: duplicate shard names";
  let points =
    List.concat_map
      (fun name ->
        List.init vnodes (fun i ->
            (Digest.to_hex (Digest.string (Printf.sprintf "%s#%d" name i)), name)))
      names
    |> Array.of_list
  in
  Array.sort compare points;
  { points; names }

let shards t = t.names

let shard t key =
  let h = Digest.to_hex (Digest.string key) in
  let n = Array.length t.points in
  (* Smallest index whose point is >= h; n when every point is < h. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) < h then search (mid + 1) hi else search lo mid
  in
  let i = search 0 n in
  snd t.points.(if i = n then 0 else i)
