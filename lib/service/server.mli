(** The definability server: a long-running process serving the
    {!Wire} protocol over a Unix-domain or TCP socket, backed by the
    cross-request {!Cache}.

    {b Threading model.}  One acceptor (the thread that calls {!run})
    plus one handler thread per connection.  Cheap control ops ([ping],
    [stats], [shutdown]) are answered directly by the handler thread and
    never queue behind work, so the server answers [ping] while a
    long-budget [decide] is in flight.  Work ops ([decide], [batch],
    [delta], [sleep]) pass {e admission control} first; admitted
    [decide]/[batch]/[delta] bodies are then {e submitted to the shared
    [Par.Pool] domains} through its bounded submission queue
    ([pool_queue_depth]) — handler threads only do socket I/O and
    admission, so concurrent requests and batch items fill idle domains.
    A body that cannot even be queued (pool backlog full) is answered
    [overloaded]/[queue_full] like thread-queue saturation.  At pool
    size 1 bodies run inline on the handler thread, the pre-pool
    execution path, byte for byte.

    {b Admission control.}  At most [max_inflight] work ops execute at
    once; up to [queue_depth] more wait (FIFO-ish, condition-variable
    order) for a slot.  Work beyond that bound is refused immediately
    with an [overloaded] response instead of queuing unboundedly or
    hanging — the client can back off and retry.  {!Admission} exposes
    the gate on its own for deterministic unit tests.

    {b Shutdown.}  A [shutdown] request (or {!shutdown}) stops admitting
    new work, {e drains} — waits for every running and queued work op to
    finish — answers the requester, and only then stops the accept loop.
    In-flight requests are never dropped.

    {b Budgets.}  Every decide gets a fresh [Engine.Budget] from the
    request's [fuel]/[timeout_s], falling back to [default_fuel] /
    [default_deadline_s]; a deadline bounds how long a request can hold
    a worker slot, which is the knob that keeps the drain finite.

    {b Durable tier.}  With [store_dir] set, the cache writes every
    cacheable verdict through to a {!Store.Log} in that directory and
    serves warm hits from it across restarts (certificate-revalidated,
    byte-identical verdict blocks).  The [compact], [export] and
    [import] ops expose compaction and warm transfer to routers and
    operators; like the other control ops they bypass admission.

    {b Observability.}  Each request runs under a root
    ["service.request"] span tagged with the wire envelope's [trace_id]
    (minted locally when absent and the plane is live); work-op
    latencies land in the [op.decide]/[op.batch]/[op.delta] histograms;
    the [metrics] op exposes every histogram and counter as Prometheus
    text plus a mergeable raw snapshot ({!Metrics}); a [decide] with
    [stream] set receives newline-JSON progress frames before the final
    line; and [slow_ms] arms a one-line-per-slow-request JSON log.
    None of it changes verdict bytes — the plane fully on or fully off
    yields byte-identical [result] blocks. *)

(** The admission gate, alone: a counting semaphore with a bounded wait
    queue and a draining state. *)
module Admission : sig
  type gate

  val make : max_inflight:int -> queue_depth:int -> gate
  (** @raise Invalid_argument if [max_inflight < 1] or
      [queue_depth < 0]. *)

  val admit : gate -> [ `Admitted | `Overloaded | `Draining ]
  (** Take a slot.  Blocks while a slot may still open (queue not full);
      returns [`Overloaded] without blocking when [queue_depth] waiters
      are already ahead, and [`Draining] once {!drain} has begun. *)

  val release : gate -> unit
  (** Give the slot back (must follow a successful {!admit}). *)

  val drain : gate -> unit
  (** Refuse new admissions and block until every admitted and queued op
      has released.  Idempotent; concurrent drains all wait. *)

  val running : gate -> int
  val waiting : gate -> int
end

type config = {
  max_inflight : int;  (** concurrent work ops (default 4) *)
  queue_depth : int;  (** waiting work ops beyond that (default 16) *)
  pool_queue_depth : int;
      (** backlog bound for work-op bodies submitted to the domain pool
          (default 32); applied to [Par.Pool.set_submission_bound] at
          {!create} — process-global, like the pool itself *)
  default_fuel : int option;  (** budget fuel when the request has none *)
  default_deadline_s : float option;
      (** budget deadline when the request has none *)
  cache : Cache.config;
  store_dir : string option;
      (** durable-tier directory; [None] (default) = memory only.  The
          store is recovered on {!create} (certificates re-checked) and
          closed after {!run}'s drain. *)
  fsync : Store.Log.fsync_policy;  (** default [Every 64] *)
  auto_compact_bytes : int;
      (** compact when the log outgrows this (0 = manual, the default) *)
  shard : (int * int) option;
      (** this process's identity [(index, count)] in a sharded
          deployment — informational (reported in [stats]); placement
          lives in the router's {!Ring} *)
  export_limit : int;
      (** default entry count for an [export] with no limit (64) *)
  slow_ms : float option;
      (** slow-request log threshold: a work op whose wall time is
          [>= slow_ms] milliseconds emits one JSON line (trace id, op,
          digest, phase breakdown) via [slow_log]; [None] (default)
          disarms the log.  Phase totals need the telemetry plane
          enabled; without it the line carries only the queue-wait /
          work split. *)
  slow_log : string -> unit;
      (** where slow-request lines go (default: stderr, flushed) *)
  idle_timeout_s : float option;
      (** close a keep-alive connection whose {e next} request does not
          arrive within this many seconds — a kernel receive timeout on
          the accepted socket, so an idle client stops costing this
          server a parked handler thread.  [None] (default): wait
          forever, the pre-PR-10 behaviour. *)
}

val default_config : config

type t

val create : ?config:config -> Wire.address -> t
(** Bind and listen (a stale Unix-socket file is unlinked first).
    @raise Unix.Unix_error when binding fails. *)

val cache : t -> Cache.t
val config : t -> config
val address : t -> Wire.address

val run : t -> unit
(** Serve until shutdown; returns after the drain completes.  Call from
    the thread that owns the server (tests run it in a [Thread]). *)

val shutdown : t -> unit
(** Programmatic shutdown: same drain path as the [shutdown] op.  Safe
    from any thread; returns once drained and the acceptor is stopping. *)

val stats : t -> (string * int) list
(** Server-level counters (requests by op, overload refusals,
    [uptime_seconds], [started_at]) plus {!Cache.stats}, sorted by
    name. *)
