type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing.  Same escaping as the CLI's verdict emitter, so verdict
   blocks embedded in service responses stay byte-identical to what the
   CLI prints for the same outcome. *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* 12 prints as 12, not 12. — the protocol's counts and exit codes
       must parse back as integers. *)
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Number f -> Buffer.add_string b (number_to_string f)
    | String s ->
        Buffer.add_char b '"';
        escape_into b s;
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape_into b k;
            Buffer.add_string b "\":";
            go x)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the string with one mutable cursor. *)

exception Fail of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  (* UTF-8 encode one code point (for \uXXXX escapes; surrogate pairs
     are combined by the caller). *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub text !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail ("bad \\u escape " ^ s)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = text.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char b '"'; go ()
          | '\\' -> Buffer.add_char b '\\'; go ()
          | '/' -> Buffer.add_char b '/'; go ()
          | 'b' -> Buffer.add_char b '\b'; go ()
          | 'f' -> Buffer.add_char b '\012'; go ()
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'u' ->
              let cp = hex4 () in
              let cp =
                (* High surrogate: consume the paired \uXXXX low half. *)
                if cp >= 0xD800 && cp <= 0xDBFF
                   && !pos + 1 < n
                   && text.[!pos] = '\\'
                   && text.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  else fail "unpaired surrogate"
                end
                else cp
              in
              add_utf8 b cp;
              go ()
          | c -> fail (Printf.sprintf "bad escape \\%c" c))
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match float_of_string_opt s with
    | Some f -> Number f
    | None -> fail ("bad number " ^ s)
  in
  (* Nesting is the only unbounded recursion in this parser (strings,
     numbers and the per-element loops are all tail calls), so a depth
     cap is what turns adversarial input like 10^6 '[' bytes into a
     typed error instead of a stack overflow.  512 is two orders of
     magnitude beyond any protocol document. *)
  let rec parse_value depth =
    if depth > 512 then fail "nesting too deep (max 512)";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else
          let rec elems acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "json: at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_int = function
  | Number f when Float.is_integer f && Float.abs f <= 2. ** 53. ->
      Some (int_of_float f)
  | _ -> None

let to_float = function Number f -> Some f | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None
