module Data_graph = Datagraph.Data_graph
module Tuple_relation = Datagraph.Tuple_relation

(* Canonicalization invariants (see the interface): indices instead of
   names, first-occurrence ranks instead of raw data values, edges
   sorted.  Every field is length-delimited or newline-terminated so
   distinct structures can never serialize to the same bytes by
   concatenation coincidence. *)

let graph_bytes g =
  let n = Data_graph.size g in
  let b = Buffer.create 256 in
  Printf.bprintf b "n %d\n" n;
  (* First-occurrence rank of each node's data value: invariant under
     any bijective renaming of the values. *)
  let rank = Hashtbl.create 16 in
  Buffer.add_string b "values";
  for v = 0 to n - 1 do
    let dv = Datagraph.Data_value.to_int (Data_graph.value g v) in
    let r =
      match Hashtbl.find_opt rank dv with
      | Some r -> r
      | None ->
          let r = Hashtbl.length rank in
          Hashtbl.add rank dv r;
          r
    in
    Printf.bprintf b " %d" r
  done;
  Buffer.add_char b '\n';
  let edges =
    List.sort compare
      (List.map (fun (u, a, v) -> (a, u, v)) (Data_graph.edges g))
  in
  List.iter
    (fun (a, u, v) ->
      (* Label text is length-prefixed: labels are arbitrary strings and
         may contain spaces. *)
      Printf.bprintf b "e %d %d:%s %d\n" u (String.length a) a v)
    edges;
  Buffer.contents b

let relation_bytes s =
  let b = Buffer.create 128 in
  Printf.bprintf b "arity %d\n" (Tuple_relation.arity s);
  (* [to_list] is lexicographically sorted, so tuple order in the input
     does not matter. *)
  List.iter
    (fun tup ->
      Buffer.add_char b 't';
      List.iter (fun v -> Printf.bprintf b " %d" v) tup;
      Buffer.add_char b '\n')
    (Tuple_relation.to_list s);
  Buffer.contents b

let digest bytes = Digest.to_hex (Digest.string bytes)

let graph_key_of_bytes gbytes = digest ("defsvc-graph/1\n" ^ gbytes)
let graph_key g = graph_key_of_bytes (graph_bytes g)

let instance_bytes_of_parts ~lang ~k ~gbytes ~rbytes =
  Printf.sprintf "defsvc-inst/1\nlang %d:%s k %d\n%s%s" (String.length lang)
    lang k gbytes rbytes

let instance_bytes ~lang ~k g s =
  instance_bytes_of_parts ~lang ~k ~gbytes:(graph_bytes g)
    ~rbytes:(relation_bytes s)

let instance_key ~lang ~k g s = digest (instance_bytes ~lang ~k g s)

let edit_bytes (e : Engine.Delta.graph_edit) =
  let label a = Printf.sprintf "%d:%s" (String.length a) a in
  match e with
  | Engine.Delta.Add_edge (u, a, v) -> Printf.sprintf "+e %d %s %d\n" u (label a) v
  | Engine.Delta.Remove_edge (u, a, v) ->
      Printf.sprintf "-e %d %s %d\n" u (label a) v
  | Engine.Delta.Add_node (nm, d) ->
      (* The raw value (not a first-occurrence rank): a chained key has no
         view of the whole graph to canonicalize against.  Chained keys
         trade canonicalization for O(edit-size) hashing; see the
         interface. *)
      Printf.sprintf "+n %s %d\n" (label nm) (Datagraph.Data_value.to_int d)
  | Engine.Delta.Set_relation tuples ->
      let b = Buffer.create 64 in
      Buffer.add_string b "=r\n";
      List.iter
        (fun tup ->
          Buffer.add_char b 't';
          List.iter (fun v -> Printf.bprintf b " %d" v) tup;
          Buffer.add_char b '\n')
        (List.sort compare tuples);
      Buffer.contents b

let chain_key ~parent e =
  digest (Printf.sprintf "defsvc-delta/1\nparent %s\n%s" parent (edit_bytes e))

let keys ~lang ~k g s =
  let gbytes = graph_bytes g in
  ( graph_key_of_bytes gbytes,
    digest
      (instance_bytes_of_parts ~lang ~k ~gbytes ~rbytes:(relation_bytes s)) )
