(** A bounded, mutex-guarded LRU store with string keys.

    Backs the service's verdict and graph caches.  Recency is tracked
    with a monotone stamp per entry; eviction scans for the minimum
    stamp, which is O(capacity) but only runs on insertion past the
    bound — invisible next to the decision procedures the cache fronts,
    and far simpler than an intrusive list.  All operations take the
    store's own mutex, so one store can be shared by every connection
    handler thread. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** [find t k] returns the cached value and marks it most recently
    used. *)

val put : 'a t -> string -> 'a -> unit
(** Insert or refresh; evicts the least recently used entry when the
    store is full. *)

val remove : 'a t -> string -> unit
(** Drop an entry (no-op when absent) — used when a cached verdict fails
    revalidation. *)

val hot : 'a t -> int -> (string * 'a) list
(** The (at most) [n] most recently used bindings, most-recent first,
    without touching recency — the warm-transfer export set. *)

val evictions : 'a t -> int
(** How many entries capacity pressure has pushed out so far. *)

val hits : 'a t -> int
(** How many [find] calls returned an entry. *)

val misses : 'a t -> int
(** How many [find] calls came up empty.  Together with {!hits} this
    makes routing-table caches (the router's delta-chain LRU) auditable
    from [stats] instead of invisible. *)

val clear : 'a t -> unit
