(** The cross-request result cache: the heart of the service — a
    {b memory tier} (LRU) layered over an optional {b durable tier}
    ({!Tier}, backed by {!Store.Log}).

    Two LRU stores, both keyed by {!Content_hash} digests:

    - a {b graph intern table} (graph key → packed [Data_graph.t]): the
      first request that mentions a graph donates its packed form, and
      every later request with the same canonical graph is decided
      against that {e interned} graph.  The per-graph derived artifacts
      — adjacency and reachability matrices (cached inside
      [Data_graph]), Hom CSPs and root domains (keyed by graph [uid])
      — are therefore built once and shared across requests, not once
      per connection.
    - a {b verdict store} (instance key → decided outcome + the instance
      it was decided on).  A hit skips the decision procedure entirely;
      if the cached verdict carries a certificate it is {e revalidated}
      first ([Outcome.check_certificate] re-evaluates the query against
      the instance — a code path disjoint from the search that produced
      it), and an entry that fails revalidation is dropped and recomputed
      rather than served.

    Only [Definable] and [Not_definable] outcomes are stored: they are
    budget-independent facts about the instance.  [Unknown] outcomes
    (budget exhaustion, unsupported arity) depend on the request's
    budget and are never cached, so a later request with more fuel is
    not short-changed by an earlier timeout.

    {b Tiering.}  With a durable tier, every cacheable verdict is
    written through to the store, and a memory miss probes the store
    before deciding: a durable hit is promoted into the LRU (rebuilding
    its instance from the stored text), revalidated exactly like a
    memory hit, and reported as a [`Hit] — callers cannot tell which
    tier served it, only the [store_hits] counter can.  An entry that
    fails revalidation is dropped from {e both} tiers and recomputed.
    Without a durable tier the cache behaves exactly as before.

    Node {e names} are not part of the cache key (see {!Content_hash}),
    and outcomes carry node indices, not names — render a cached outcome
    with the requesting graph and the response shows the requester's
    names even on a hit.

    Concurrency: safe to call from any number of threads.  The LRU
    stores take their own locks; the decision itself runs outside any
    lock.  Two racing requests for the same uncached instance may both
    compute it (last store wins) — the cache trades duplicate work on
    that rare race for never blocking a request behind another's
    decide. *)

type config = {
  verdict_capacity : int;  (** max cached outcomes (default 1024) *)
  graph_capacity : int;  (** max interned graphs (default 256) *)
  revalidate : bool;
      (** re-check certificates on every hit (default [true]) *)
}

val default_config : config

type t

val create : ?config:config -> ?durable:Tier.t -> unit -> t
(** [durable] plugs in the persistent tier; the cache takes ownership
    (see {!close}). *)

val durable : t -> Tier.t option

val close : t -> unit
(** Sync and close the durable tier, if any.  The memory tier needs no
    teardown. *)

val decide :
  t ->
  ?fuel:int ->
  ?deadline_s:float ->
  ?k:int ->
  lang:string ->
  Datagraph.Data_graph.t ->
  Datagraph.Tuple_relation.t ->
  (Engine.Outcome.t * [ `Hit | `Miss ], string) result
(** Decide through the cache.  A fresh {!Engine.Budget} with the given
    fuel/deadline is created only on a miss — hits never consult the
    budget.  [Error] on an invalid instance or an unknown language.
    [k] is the [krem] register bound (default 1). *)

val decide_keyed :
  t ->
  ?fuel:int ->
  ?deadline_s:float ->
  ?k:int ->
  lang:string ->
  Datagraph.Data_graph.t ->
  Datagraph.Tuple_relation.t ->
  (Engine.Outcome.t * [ `Hit | `Miss ] * string, string) result
(** Like {!decide}, also returning the instance digest under which the
    verdict is stored — the handle a client quotes back in a [delta]
    request to edit this instance incrementally. *)

val find_instance : t -> string -> Engine.Instance.t option
(** The instance stored under a digest, if still cached — the server
    resolves edit node names against its graph before {!apply_edit}. *)

type delta_outcome = {
  outcome : Engine.Outcome.t;
  inst : Engine.Instance.t;  (** the edited instance (for rendering) *)
  key : string;  (** chained digest addressing the edited instance *)
  repaired : bool;  (** fast path vs. full-decide fallback *)
}

val apply_edit :
  t ->
  ?fuel:int ->
  ?deadline_s:float ->
  ?k:int ->
  lang:string ->
  key:string ->
  Engine.Delta.graph_edit ->
  (delta_outcome, string) result
(** Incremental step: look up the instance stored under [key], apply the
    edit through {!Engine.Delta.decide_delta} (certificate repair first,
    budgeted full decide on repair miss), and store the result under the
    {e chained} key [Content_hash.chain_key ~parent:key edit] — O(edit)
    hashing, no graph re-serialization.  [Error] when [key] is not in
    the verdict store (never decided, or evicted): the caller must
    cold-decide first.  [lang] and [k] must match the original decide —
    a mismatch is safe (the fallback recomputes in the given language)
    but wastes the fast path. *)

val intern_graph : t -> Datagraph.Data_graph.t -> Datagraph.Data_graph.t
(** The interned twin of the graph (inserting it if new): the canonical
    carrier of the per-graph artifacts.  Exposed for tests and for the
    server's batch path. *)

val insert :
  t ->
  ?k:int ->
  lang:string ->
  Datagraph.Data_graph.t ->
  Datagraph.Tuple_relation.t ->
  Engine.Outcome.t ->
  (unit, string) result
(** Seed the verdict store directly (tests and warm-up tooling); the
    outcome is stored unconditionally, so revalidation on the next hit
    is what stands between a bogus seed and the caller. *)

val export_hot : t -> limit:int -> (string * string) list
(** The (at most [limit]) most recently used memory-tier entries,
    most-recent first, each as [(digest, encoded record)] in the
    {!Tier} codec — the payload of a warm transfer. *)

val import : t -> key:string -> string -> (unit, string) result
(** Admit one encoded record (from {!export_hot}, possibly via another
    process): decode, re-check its certificate, and write it through
    both tiers.  [Error] on a record that does not validate — a corrupt
    or hostile transfer is refused, never stored. *)

val stats : t -> (string * int) list
(** Monotone counters and current sizes, sorted by name:
    [verdict_hits], [verdict_misses], [store_hits], [store_misses],
    [store_drops], [revalidation_ok], [revalidation_failures],
    [graph_hits], [graph_misses], [delta_repair_hits],
    [delta_repair_misses], [verdict_size], [graph_size],
    [verdict_evictions], [graph_evictions] — plus, with a durable tier,
    {!Tier.stats} prefixed [store_].  Counted internally (always on,
    independent of [Obs]); the same events are mirrored to
    [Obs.Counter]s for traces and bench breakdowns. *)
