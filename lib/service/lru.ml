type 'a entry = { mutable stamp : int; value : 'a }

type 'a t = {
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable evicted : int;
  mutable hit : int;
  mutable miss : int;
  m : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Service.Lru.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    tick = 0;
    evicted = 0;
    hit = 0;
    miss = 0;
    m = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let capacity t = t.capacity
let length t = locked t (fun () -> Hashtbl.length t.table)
let evictions t = locked t (fun () -> t.evicted)
let hits t = locked t (fun () -> t.hit)
let misses t = locked t (fun () -> t.miss)

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | None ->
          t.miss <- t.miss + 1;
          None
      | Some e ->
          touch t e;
          t.hit <- t.hit + 1;
          Some e.value)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (k, e.stamp))
      t.table None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evicted <- t.evicted + 1
  | None -> ()

let put t k v =
  locked t (fun () ->
      (* Replace rather than mutate: [value] is immutable so a reader
         that grabbed the old entry keeps a consistent snapshot. *)
      if Hashtbl.mem t.table k then Hashtbl.remove t.table k
      else if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let e = { stamp = 0; value = v } in
      touch t e;
      Hashtbl.add t.table k e)

let remove t k = locked t (fun () -> Hashtbl.remove t.table k)

let hot t n =
  locked t (fun () ->
      let all =
        Hashtbl.fold (fun k e acc -> (e.stamp, k, e.value) :: acc) t.table []
      in
      let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare b a) all in
      List.filteri (fun i _ -> i < n) sorted
      |> List.map (fun (_, k, v) -> (k, v)))

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.tick <- 0)
