(** Content-addressed keys for graphs and definability instances.

    The service's caches are keyed by a {e canonical} serialization of
    the problem content, so two requests that pose the same problem hit
    the same cache line no matter how the instance file spelled it:

    - {b node names are ignored} — nodes are serialized by their dense
      index.  Names are presentation only; the cached outcome carries
      node indices and is re-rendered with the requester's names.
    - {b data values are canonicalized} up to bijective renaming: each
      node records the first-occurrence rank of its value, not the value
      itself.  The query languages only observe (in)equality of values
      (Fact 10: REM/REE languages are closed under automorphisms of the
      data domain), so instances that differ by a value automorphism
      have the same verdict — and the same key.
    - {b edges are sorted} by (label, source, target), so the order of
      [edge] lines in the input does not matter.
    - edge {e labels} and the relation's tuples are serialized verbatim:
      both are observable (labels appear in certificates, tuples are the
      problem statement).

    Keys are MD5 digests (stdlib [Digest]) of the canonical bytes,
    rendered as 32-char lowercase hex.  MD5's known collision attacks
    are irrelevant here — the cache is a performance layer whose hits
    are re-validated against the certificate, not a security boundary —
    and 128 bits make accidental collisions out of reach. *)

val graph_bytes : Datagraph.Data_graph.t -> string
(** The canonical serialization of the graph alone (exposed for tests
    and debugging; the digest is what the caches use). *)

val graph_key : Datagraph.Data_graph.t -> string
(** 32-char hex digest of {!graph_bytes}. *)

val instance_bytes :
  lang:string ->
  k:int ->
  Datagraph.Data_graph.t ->
  Datagraph.Tuple_relation.t ->
  string
(** Canonical serialization of the whole problem: graph bytes, the
    relation's arity and sorted tuples, the language name, and the
    register bound [k] (only [krem] reads it, but keying on it
    unconditionally is cheap and can never serve a wrong verdict). *)

val instance_key :
  lang:string ->
  k:int ->
  Datagraph.Data_graph.t ->
  Datagraph.Tuple_relation.t ->
  string
(** 32-char hex digest of {!instance_bytes}. *)

val keys :
  lang:string ->
  k:int ->
  Datagraph.Data_graph.t ->
  Datagraph.Tuple_relation.t ->
  string * string
(** [(graph_key, instance_key)], serializing the graph only once — the
    cache's lookup path. *)

(** {2 Digest chaining}

    An edit stream addresses its instances by {e chained} keys:
    [chain_key ~parent edit] hashes the parent's key plus the canonical
    edit bytes — O(edit size), never O(graph size) — so a warm server
    follows a stream without re-serializing the graph at every step.
    Chained keys are {e not} content keys: the same edited content
    reached via different edit paths (or via a cold [decide]) gets a
    different key, costing a potential duplicate compute but never a
    wrong answer (entries still carry their instance, and hits still
    revalidate).  Chained keys also skip the data-value
    canonicalization of {!graph_bytes} — same tradeoff. *)

val edit_bytes : Engine.Delta.graph_edit -> string
(** Canonical serialization of one edit ([Set_relation] tuples are
    sorted; labels and names length-prefixed). *)

val chain_key : parent:string -> Engine.Delta.graph_edit -> string
(** 32-char hex digest of the parent key plus {!edit_bytes}. *)
