(* The metrics plane's data model: a point-in-time snapshot of every
   registered Obs histogram and counter, as plain data.  Snapshots are
   what crosses the wire on a [metrics] op — the shard serializes one,
   the router merges N of them and renders the aggregate — so the codec
   and the merge live here, next to the Prometheus renderer, rather
   than in the server. *)

let version = "0.8.0"

let build_string =
  Printf.sprintf "defcheck/%s ocaml/%s" version Sys.ocaml_version

type snapshot = {
  histograms : (string * Obs.Histogram.snapshot) list;
  counters : (string * int) list;
}

let by_name (a, _) (b, _) = String.compare a b

let capture () =
  {
    histograms =
      List.map
        (fun h -> (Obs.Histogram.name h, Obs.Histogram.snapshot h))
        (Obs.Histogram.all ());
    counters = Obs.Counter.all ();
  }

let empty = { histograms = []; counters = [] }

let merge_assoc combine xs ys =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) xs;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some v0 -> Hashtbl.replace tbl k (combine v0 v)
      | None -> Hashtbl.add tbl k v)
    ys;
  List.sort by_name (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let merge a b =
  {
    histograms = merge_assoc Obs.Histogram.merge a.histograms b.histograms;
    counters = merge_assoc ( + ) a.counters b.counters;
  }

(* ---------------------------------------------------------------- *)
(* Wire codec.  Histogram counts travel sparse — [[index, count], …] —
   since a freshly started shard has a 241-bucket array with a handful
   of non-zero cells. *)

let to_json s =
  let hist (name, (h : Obs.Histogram.snapshot)) =
    let cells = ref [] in
    Array.iteri
      (fun i c ->
        if c <> 0 then
          cells := Wire.json_list [ string_of_int i; string_of_int c ] :: !cells)
      h.Obs.Histogram.counts;
    Wire.json_obj
      [
        ("name", Wire.json_string name);
        ("sum_ns", string_of_int h.Obs.Histogram.sum_ns);
        ("counts", Wire.json_list (List.rev !cells));
      ]
  in
  let counter (name, v) =
    Wire.json_list [ Wire.json_string name; string_of_int v ]
  in
  Wire.json_obj
    [
      ("histograms", Wire.json_list (List.map hist s.histograms));
      ("counters", Wire.json_list (List.map counter s.counters));
    ]

let ( let* ) r f = Result.bind r f

let of_json j =
  let list_field field =
    match Option.bind (Json.member field j) Json.to_list with
    | Some items -> Ok items
    | None -> Error (Printf.sprintf "metrics snapshot: missing %S" field)
  in
  let* hists = list_field "histograms" in
  let* histograms =
    List.fold_right
      (fun item acc ->
        let* acc = acc in
        let name = Option.bind (Json.member "name" item) Json.to_str in
        let sum_ns = Option.bind (Json.member "sum_ns" item) Json.to_int in
        let cells = Option.bind (Json.member "counts" item) Json.to_list in
        match (name, sum_ns, cells) with
        | Some name, Some sum_ns, Some cells ->
            let counts = Array.make Obs.Histogram.n_buckets 0 in
            let ok =
              List.for_all
                (fun cell ->
                  match Option.map (List.map Json.to_int) (Json.to_list cell) with
                  | Some [ Some i; Some c ] when i >= 0 ->
                      if i < Obs.Histogram.n_buckets then counts.(i) <- c;
                      true
                  | _ -> false)
                cells
            in
            if ok then
              Ok ((name, { Obs.Histogram.counts; sum_ns }) :: acc)
            else Error "metrics snapshot: ill-formed histogram cell"
        | _ -> Error "metrics snapshot: ill-formed histogram")
      hists (Ok [])
  in
  let* cs = list_field "counters" in
  let* counters =
    List.fold_right
      (fun item acc ->
        let* acc = acc in
        match Option.map (fun l -> l) (Json.to_list item) with
        | Some [ n; v ] -> (
            match (Json.to_str n, Json.to_int v) with
            | Some n, Some v -> Ok ((n, v) :: acc)
            | _ -> Error "metrics snapshot: ill-formed counter")
        | _ -> Error "metrics snapshot: ill-formed counter")
      cs (Ok [])
  in
  Ok { histograms; counters }

let of_string line =
  let* j = Json.parse line in
  of_json j

(* ---------------------------------------------------------------- *)
(* Prometheus text exposition (version 0.0.4).  Histogram buckets are
   cumulative; empty buckets are elided (legal — scrapers interpolate
   between the listed [le] bounds) but the mandatory [+Inf] bucket,
   [_sum] and [_count] always appear. *)

let prom_name name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  "defcheck_" ^ mapped

let le_of_bucket i =
  if i >= Obs.Histogram.n_buckets - 1 then "+Inf"
  else Printf.sprintf "%g" (float_of_int (Obs.Histogram.bucket_upper_ns i) /. 1e9)

let render ?(gauges = []) s =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l) fmt in
  List.iter
    (fun (name, (h : Obs.Histogram.snapshot)) ->
      let n = prom_name name ^ "_seconds" in
      line "# HELP %s Latency of %s operations.\n" n name;
      line "# TYPE %s histogram\n" n;
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          if c <> 0 then begin
            cum := !cum + c;
            if i < Obs.Histogram.n_buckets - 1 then
              line "%s_bucket{le=\"%s\"} %d\n" n (le_of_bucket i) !cum
          end)
        h.Obs.Histogram.counts;
      line "%s_bucket{le=\"+Inf\"} %d\n" n !cum;
      line "%s_sum %.9f\n" n (float_of_int h.Obs.Histogram.sum_ns /. 1e9);
      line "%s_count %d\n" n !cum)
    s.histograms;
  List.iter
    (fun (name, v) ->
      let n = prom_name name ^ "_total" in
      line "# TYPE %s counter\n" n;
      line "%s %d\n" n v)
    s.counters;
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      line "# TYPE %s gauge\n" n;
      line "%s %g\n" n v)
    gauges;
  line "# TYPE defcheck_build_info gauge\n";
  line "defcheck_build_info{version=\"%s\",ocaml=\"%s\"} 1\n" version
    Sys.ocaml_version;
  Buffer.contents b

let percentile_us s ~histogram p =
  match List.assoc_opt histogram s.histograms with
  | None -> None
  | Some h ->
      if Obs.Histogram.total h = 0 then None
      else Some (float_of_int (Obs.Histogram.percentile_of h p) /. 1e3)
