type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let sockaddr_of = Wire.sockaddr_of

let connect_once addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let domain =
    match addr with
    | Wire.Unix_sock _ -> Unix.PF_UNIX
    | Wire.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of addr)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    closed = false;
  }

(* A refused connect usually means the server is a few ms from binding
   (shard startup, restart-after-kill), not that it is gone: the listed
   errors are the transient ones, anything else propagates at once. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.ETIMEDOUT
  | Unix.EAGAIN ->
      true
  | _ -> false

(* Retry delay for attempt [attempt] (0-based): exponential backoff with
   ±25% jitter, so N clients retrying a restarting shard spread out
   instead of stampeding in lockstep.  The jitter is a hash of the
   attempt counter and a per-process salt — deterministic and pure (no
   [Random] state, nothing shared) so it is unit-testable and free on
   the hot path; distinct processes hash to distinct factors, which is
   the only decorrelation a stampede needs. *)
let retry_delay_s ?salt ~attempt base_s =
  let salt = match salt with Some s -> s | None -> Unix.getpid () in
  (* splitmix-style finalizer: a few shift-xor-multiply rounds give the
     low bits avalanche even for consecutive (salt, attempt) inputs. *)
  let h = (salt * 0x1000193) lxor ((attempt + 1) * 0x9E3779B9) in
  let h = (h lxor (h lsr 16)) * 0x45d9f3b in
  let h = (h lxor (h lsr 16)) * 0x45d9f3b in
  let h = (h lxor (h lsr 16)) land 0x3FFFFFFF in
  let unit = float_of_int h /. float_of_int 0x40000000 in
  (* factor in [0.75, 1.25) *)
  let factor = 0.75 +. (0.5 *. unit) in
  base_s *. (2. ** float_of_int attempt) *. factor

(* A per-request deadline is a socket receive/send timeout: the kernel
   bounds how long a blocked read waits, the expiry surfaces through the
   channel as [Sys_blocked_io] and is reported as a transport error.  The
   connection is poisoned afterwards (a late response may still be in
   flight), so callers reconnect — which is why the router maps this to
   a typed [shard_unavailable] and drops the shard connection. *)
let set_deadline t deadline_s =
  let v = match deadline_s with Some s when s > 0. -> s | _ -> 0. in
  Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO v;
  Unix.setsockopt_float t.fd Unix.SO_SNDTIMEO v

let connect ?(retries = 0) ?(backoff_s = 0.05) ?deadline_s addr =
  let rec attempt n left =
    match connect_once addr with
    | t -> t
    | exception (Unix.Unix_error (e, _, _) as exn) when transient e ->
        if left <= 0 then raise exn
        else begin
          Thread.delay (retry_delay_s ~attempt:n backoff_s);
          attempt (n + 1) (left - 1)
        end
  in
  let t = attempt 0 retries in
  (match deadline_s with Some _ -> set_deadline t deadline_s | None -> ());
  t

let request_raw t line =
  if t.closed then Error "connection closed"
  else
    match
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc;
      input_line t.ic
    with
    | line ->
        if Wire.crc_ok line then Ok line
        else Error "transport: response failed integrity check"
    | exception End_of_file -> Error "connection closed by server"
    | exception Sys_error msg -> Error ("transport: " ^ msg)
    (* A buffered channel surfaces an expired SO_RCVTIMEO/SO_SNDTIMEO
       as [Sys_blocked_io], not [Sys_error]. *)
    | exception Sys_blocked_io -> Error "transport: request deadline expired"
    | exception Unix.Unix_error (e, _, _) ->
        Error ("transport: " ^ Unix.error_message e)

(* A line is a progress frame iff it parses as an object with a
   "progress" member — the server guarantees the final response never
   carries one, so no lookahead is needed. *)
let is_progress_line line =
  match Json.parse line with
  | Ok j -> Json.member "progress" j <> None
  | Error _ -> false

let request_stream t ~on_progress line =
  if t.closed then Error "connection closed"
  else begin
    let rec read () =
      let resp = input_line t.ic in
      if is_progress_line resp then begin
        on_progress resp;
        read ()
      end
      else resp
    in
    match
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc;
      read ()
    with
    | resp ->
        if Wire.crc_ok resp then Ok resp
        else Error "transport: response failed integrity check"
    | exception End_of_file -> Error "connection closed by server"
    | exception Sys_error msg -> Error ("transport: " ^ msg)
    | exception Sys_blocked_io -> Error "transport: request deadline expired"
    | exception Unix.Unix_error (e, _, _) ->
        Error ("transport: " ^ Unix.error_message e)
  end

let request t req =
  match request_raw t (Wire.request_to_string req) with
  | Error _ as e -> e
  | Ok line -> (
      match Json.parse line with
      | Ok j -> Ok j
      | Error msg -> Error ("unparsable response: " ^ msg))

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* [close_out] closes the shared fd; the reader just goes stale. *)
    try close_out t.oc with _ -> ()
  end

let with_connection ?retries ?backoff_s addr f =
  let t = connect ?retries ?backoff_s addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
