(** A consistent-hash ring over shard names.

    Placement for the sharded service: a digest maps to the shard owning
    the first ring point clockwise of the digest's own point.  Each
    shard contributes [vnodes] virtual points (MD5 of ["name#i"]), which
    spreads load evenly and — the reason to prefer a ring over
    [hash mod n] — moves only ~[1/n] of the key space when a shard joins
    or leaves, so a topology change invalidates a sliver of each store,
    not all of them.

    Soundness needs nothing from the ring: placement only decides {e
    which} store may hold a digest, and every stored record is
    certificate-checked before it is served.  A router and its shards
    merely have to agree on the shard list (order-insensitive: points
    are sorted). *)

type t

val create : ?vnodes:int -> string list -> t
(** [create names] builds the ring ([vnodes] defaults to 64 per shard).
    @raise Invalid_argument on an empty or duplicate-bearing list. *)

val shards : t -> string list
(** The shard names, in the order given to {!create}. *)

val shard : t -> string -> string
(** [shard t key] — the owning shard of [key] (any string; it is hashed
    onto the ring, so already-uniform digests need no special case). *)
