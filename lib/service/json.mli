(** A minimal JSON value type with a parser and a compact printer — just
    enough for the service protocol (newline-delimited request/response
    objects), with no external dependency.

    The parser accepts standard JSON (RFC 8259): objects, arrays,
    strings with escapes (including [\uXXXX], encoded back as UTF-8),
    numbers, booleans and null.  Numbers are stored as [float]; the
    protocol only ever carries small integers (fuel, ports, counts) and
    seconds, so the 53-bit mantissa is not a practical limit — {!to_int}
    rejects non-integral values rather than silently truncating.

    The printer is compact (no whitespace) and escapes exactly like the
    CLI's verdict emitter, so a value round-trips through
    [parse ∘ to_string]. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** fields in document order *)

val parse : string -> (t, string) result
(** Parse one JSON document; trailing garbage after the document is an
    error.  Errors name the offending byte offset. *)

val to_string : t -> string

val escape_into : Buffer.t -> string -> unit
(** Append the JSON string-escape of the text (no surrounding quotes);
    shared with {!Wire}'s string-based emitter. *)

(** {2 Accessors}

    All return [None] on a type mismatch or a missing field, so request
    handlers can validate with [Option] pipelines instead of matching. *)

val member : string -> t -> t option
(** Field of an object ([None] on non-objects too). *)

val to_str : t -> string option
val to_int : t -> int option
(** Integral numbers only. *)

val to_float : t -> float option
val to_bool : t -> bool option
val to_list : t -> t list option
