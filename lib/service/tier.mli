(** The durable verdict tier: {!Store.Log} records carrying a decided
    outcome, its certificate, and enough of the problem to re-check it.

    {!Cache} layers its in-memory LRU over one of these — the memory
    tier serves the hot set, the durable tier survives restarts and
    eviction.  Everything above the cache ({!Server}, the delta
    chaining, the CLI) sees only the tiered cache; everything below
    ({!Store.Log}) sees only opaque strings.

    {b Record format.}  A record's key is the {!Content_hash} instance
    digest (or a chained delta digest); its value is a small versioned
    header followed by a [Marshal]-encoded payload

    {v { lang; k; instance_text; outcome } v}

    where [instance_text] is the {!Datagraph.Graph_io} rendering of the
    decided instance (an [Engine.Instance.t] carries memo tables and is
    rebuilt from text, never marshaled) and [outcome] is the full
    [Engine.Outcome.t] — certificates are pure ADTs, so the marshaled
    bytes round-trip exactly and a warm hit renders the verdict block
    byte-identical to the cold decide that produced it.

    {b Recovery invariant.}  [Marshal] bytes are trusted only inside a
    CRC-valid frame {e and} only after {!decode} rebuilds the instance
    and re-checks the carried certificate — the [check] hook this module
    installs into {!Store.Log.open_}.  A record that fails any of those
    steps is dropped at recovery (counted in the store's
    [recovery_dropped_check]) and the verdict is recomputed on the next
    request: corruption degrades to work, never to a wrong answer. *)

type entry = {
  lang : string;
  k : int;
  inst : Engine.Instance.t;
  outcome : Engine.Outcome.t;
}
(** What one tier record denotes, with the instance already rebuilt. *)

(** {2 Codec} — also the wire format of [export]/[import] warm
    transfers (hex-encoded over the protocol). *)

val encode : entry -> string

val decode : ?check:bool -> string -> (entry, string) result
(** Decode and validate: version header, [Marshal] round-trip, instance
    re-parse, and (with [check], the default) certificate re-check on
    the rebuilt instance. *)

val to_hex : string -> string
val of_hex : string -> (string, string) result

(** {2 The tier} *)

type t

val open_ :
  ?fsync:Store.Log.fsync_policy -> ?auto_compact_bytes:int -> string -> t
(** Open (and recover) the store directory; every record surviving
    recovery has had its certificate re-checked. *)

val find : t -> string -> entry option
(** Decoded without the certificate re-check — the memory tier above
    revalidates on hit anyway, and one check per hit is enough. *)

val find_raw : t -> string -> string option
(** The encoded record, for [export]. *)

val put : t -> string -> entry -> unit
val put_raw : t -> string -> string -> (unit, string) result
(** [put_raw] validates (including the certificate check) before
    writing — the [import] path for records that crossed a socket. *)

val remove : t -> string -> unit
val compact : t -> unit
val sync : t -> unit
val close : t -> unit
val length : t -> int
val disk_bytes : t -> int

val stats : t -> (string * int) list
(** The underlying {!Store.Log.stats}. *)
