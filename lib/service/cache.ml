module Data_graph = Datagraph.Data_graph
module Tuple_relation = Datagraph.Tuple_relation
module Outcome = Engine.Outcome
module Instance = Engine.Instance
module Budget = Engine.Budget
module Registry = Engine.Registry

type config = {
  verdict_capacity : int;
  graph_capacity : int;
  revalidate : bool;
}

let default_config =
  { verdict_capacity = 1024; graph_capacity = 256; revalidate = true }

(* The memory tier's entry: the instance is stored alongside the outcome
   so a hit can revalidate the certificate without re-validating and
   re-packing the problem; it pins the interned graph (and its derived
   artifacts) for as long as the verdict lives, even past graph-store
   eviction.  [lang]/[k] ride along so the entry can be re-encoded for
   the durable tier and for warm transfer without a reverse lookup. *)
type entry = { outcome : Outcome.t; inst : Instance.t; lang : string; k : int }

type t = {
  config : config;
  verdicts : entry Lru.t;
  durable : Tier.t option;
  graphs : Data_graph.t Lru.t;
  (* Service-level statistics are plain atomics, always on: the [stats]
     protocol op must answer whether or not telemetry is enabled.  The
     Obs counters below mirror the same events for traces/benches. *)
  verdict_hits : int Atomic.t;
  verdict_misses : int Atomic.t;
  store_hits : int Atomic.t;
  store_misses : int Atomic.t;
  store_drops : int Atomic.t;
  revalidation_ok : int Atomic.t;
  revalidation_failures : int Atomic.t;
  graph_hits : int Atomic.t;
  graph_misses : int Atomic.t;
  repair_hits : int Atomic.t;
  repair_misses : int Atomic.t;
}

let c_hit = Obs.Counter.make "service.cache.verdict_hits"
let c_miss = Obs.Counter.make "service.cache.verdict_misses"
let c_store_hit = Obs.Counter.make "service.cache.store_hits"
let c_store_miss = Obs.Counter.make "service.cache.store_misses"
let c_reval_ok = Obs.Counter.make "service.cache.revalidation_ok"
let c_reval_fail = Obs.Counter.make "service.cache.revalidation_failures"
let c_graph_hit = Obs.Counter.make "service.cache.graph_hits"
let c_graph_miss = Obs.Counter.make "service.cache.graph_misses"

(* Tier latency histograms: a hit costs hashing + (maybe) revalidation,
   a miss costs a full decide — separating them is what lets the
   metrics plane show the bimodal shape instead of one meaningless
   average. *)
let h_hit = Obs.Histogram.make "cache.hit"
let h_miss = Obs.Histogram.make "cache.miss"

let create ?(config = default_config) ?durable () =
  {
    config;
    verdicts = Lru.create ~capacity:config.verdict_capacity;
    durable;
    graphs = Lru.create ~capacity:config.graph_capacity;
    verdict_hits = Atomic.make 0;
    verdict_misses = Atomic.make 0;
    store_hits = Atomic.make 0;
    store_misses = Atomic.make 0;
    store_drops = Atomic.make 0;
    revalidation_ok = Atomic.make 0;
    revalidation_failures = Atomic.make 0;
    graph_hits = Atomic.make 0;
    graph_misses = Atomic.make 0;
    repair_hits = Atomic.make 0;
    repair_misses = Atomic.make 0;
  }

let durable t = t.durable

let close t =
  match t.durable with None -> () | Some d -> Tier.close d

let bump a c =
  ignore (Atomic.fetch_and_add a 1);
  Obs.Counter.incr c

(* Two canonically-equal graphs have identical index structure (node
   count, sorted edge list, value partition in index order), so a
   relation expressed over one is valid verbatim over the other — the
   intern substitution below never remaps node ids. *)
let intern_graph_keyed t gkey g =
  match Lru.find t.graphs gkey with
  | Some g0 ->
      bump t.graph_hits c_graph_hit;
      g0
  | None ->
      bump t.graph_misses c_graph_miss;
      Lru.put t.graphs gkey g;
      g

let intern_graph t g = intern_graph_keyed t (Content_hash.graph_key g) g

let cacheable (o : Outcome.t) =
  match o.verdict with
  | Outcome.Definable _ | Outcome.Not_definable _ -> true
  | Outcome.Unknown _ -> false

(* Write-through: the memory tier serves the hot set, the durable tier
   (when configured) makes the verdict survive eviction and restart. *)
let store t key (e : entry) =
  Lru.put t.verdicts key e;
  match t.durable with
  | None -> ()
  | Some d ->
      Obs.Span.with_ "service.cache.store_put" @@ fun () ->
      Tier.put d key { Tier.lang = e.lang; k = e.k; inst = e.inst; outcome = e.outcome }

(* Promote a durable record into the memory tier.  The decoded entry
   carries its own rebuilt instance; nothing above needs to know the
   verdict crossed a disk boundary. *)
let find_durable t key =
  match t.durable with
  | None -> None
  | Some d -> (
      match Obs.Span.with_ "service.cache.store_find" (fun () -> Tier.find d key) with
      | None ->
          bump t.store_misses c_store_miss;
          None
      | Some { Tier.lang; k; inst; outcome } ->
          bump t.store_hits c_store_hit;
          let e = { outcome; inst; lang; k } in
          Lru.put t.verdicts key e;
          Some e)

let find_entry t key =
  match Lru.find t.verdicts key with
  | Some _ as s -> s
  | None -> find_durable t key

let drop t key =
  Lru.remove t.verdicts key;
  match t.durable with
  | None -> ()
  | Some d ->
      ignore (Atomic.fetch_and_add t.store_drops 1);
      Tier.remove d key

let decide_keyed_inner t ?fuel ?deadline_s ?(k = 1) ~lang g s =
  let gkey, ikey =
    Obs.Span.with_ "service.cache.hash" @@ fun () ->
    Content_hash.keys ~lang ~k g s
  in
  let serve_miss () =
    bump t.verdict_misses c_miss;
    let g = intern_graph_keyed t gkey g in
    match Instance.create g s with
    | Error _ as e -> e
    | Ok inst -> (
        let budget = Budget.create ?fuel ?deadline_s () in
        match Registry.decide ~budget ~params:{ Registry.k } ~lang inst with
        | Error _ as e -> e
        | Ok outcome ->
            if cacheable outcome then store t ikey { outcome; inst; lang; k };
            Ok (outcome, `Miss, ikey))
  in
  match find_entry t ikey with
  | None -> serve_miss ()
  | Some { outcome; inst; _ } -> (
      let revalidated =
        if not t.config.revalidate then Ok `Unchecked
        else
          match Outcome.certificate outcome with
          | None -> Ok `Unchecked
          | Some cert -> (
              Obs.Span.with_ "service.cache.revalidate" @@ fun () ->
              match Outcome.check_certificate inst cert with
              | Ok () -> Ok `Checked
              | Error _ as e -> e)
      in
      match revalidated with
      | Ok checked ->
          if checked = `Checked then bump t.revalidation_ok c_reval_ok;
          bump t.verdict_hits c_hit;
          Ok (outcome, `Hit, ikey)
      | Error _ ->
          (* A poisoned or stale entry: drop it (from both tiers) and
             recompute instead of serving a certificate that no longer
             checks. *)
          bump t.revalidation_failures c_reval_fail;
          drop t ikey;
          serve_miss ())

let decide_keyed t ?fuel ?deadline_s ?k ~lang g s =
  if not (Obs.enabled ()) then decide_keyed_inner t ?fuel ?deadline_s ?k ~lang g s
  else begin
    let t0 = Unix.gettimeofday () in
    let r = decide_keyed_inner t ?fuel ?deadline_s ?k ~lang g s in
    (match r with
    | Ok (_, `Hit, _) -> Obs.Histogram.record_s h_hit (Unix.gettimeofday () -. t0)
    | Ok (_, `Miss, _) -> Obs.Histogram.record_s h_miss (Unix.gettimeofday () -. t0)
    | Error _ -> ());
    r
  end

let decide t ?fuel ?deadline_s ?k ~lang g s =
  match decide_keyed t ?fuel ?deadline_s ?k ~lang g s with
  | Error _ as e -> e
  | Ok (outcome, origin, _key) -> Ok (outcome, origin)

let find_instance t key = Option.map (fun e -> e.inst) (find_entry t key)

type delta_outcome = {
  outcome : Outcome.t;
  inst : Instance.t;
  key : string;
  repaired : bool;
}

(* Obs mirrors of the repair outcome live in [Engine.Delta]
   (delta.repair_hit / delta.repair_miss); the atomics here are the
   always-on copies the [stats] op reads. *)
let apply_edit t ?fuel ?deadline_s ?(k = 1) ~lang ~key edit =
  match find_entry t key with
  | None ->
      Error
        (Printf.sprintf
           "unknown instance digest %s (cold-decide it first; it may also have \
            been evicted)"
           key)
  | Some { outcome = prev; inst; _ } -> (
      let budget = Budget.create ?fuel ?deadline_s () in
      match
        Engine.Delta.decide_delta ~budget ~params:{ Registry.k } ~lang ~prev
          inst edit
      with
      | Error _ as e -> e
      | Ok { Engine.Delta.inst = inst'; outcome; repaired } ->
          ignore
            (Atomic.fetch_and_add
               (if repaired then t.repair_hits else t.repair_misses)
               1);
          (* The chained key costs O(edit), not O(graph): the edited
             instance is addressable by the follow-up delta request
             without re-canonicalizing the graph. *)
          let key' = Content_hash.chain_key ~parent:key edit in
          if cacheable outcome then
            store t key' { outcome; inst = inst'; lang; k };
          Ok { outcome; inst = inst'; key = key'; repaired })

let insert t ?(k = 1) ~lang g s outcome =
  let g = intern_graph t g in
  match Instance.create g s with
  | Error _ as e -> e
  | Ok inst ->
      store t (Content_hash.instance_key ~lang ~k g s) { outcome; inst; lang; k };
      Ok ()

(* Warm transfer: the most recently used memory-tier entries, encoded in
   the tier record format (hex on the wire).  [import] is the mirror —
   decode, certificate-check, and write through both tiers, so a
   transferred entry is indistinguishable from a locally decided one. *)
let export_hot t ~limit =
  List.map
    (fun (key, (e : entry)) ->
      ( key,
        Tier.encode
          { Tier.lang = e.lang; k = e.k; inst = e.inst; outcome = e.outcome } ))
    (Lru.hot t.verdicts limit)

let import t ~key raw =
  match Tier.decode ~check:true raw with
  | Error _ as e -> e
  | Ok { Tier.lang; k; inst; outcome } ->
      store t key { outcome; inst; lang; k };
      Ok ()

let stats t =
  let tier =
    match t.durable with
    | None -> []
    | Some d -> List.map (fun (k, v) -> ("store_" ^ k, v)) (Tier.stats d)
  in
  List.sort compare
    ([
       ("verdict_hits", Atomic.get t.verdict_hits);
       ("verdict_misses", Atomic.get t.verdict_misses);
       ("store_hits", Atomic.get t.store_hits);
       ("store_misses", Atomic.get t.store_misses);
       ("store_drops", Atomic.get t.store_drops);
       ("revalidation_ok", Atomic.get t.revalidation_ok);
       ("revalidation_failures", Atomic.get t.revalidation_failures);
       ("graph_hits", Atomic.get t.graph_hits);
       ("graph_misses", Atomic.get t.graph_misses);
       ("delta_repair_hits", Atomic.get t.repair_hits);
       ("delta_repair_misses", Atomic.get t.repair_misses);
       ("verdict_size", Lru.length t.verdicts);
       ("graph_size", Lru.length t.graphs);
       ("verdict_evictions", Lru.evictions t.verdicts);
       ("graph_evictions", Lru.evictions t.graphs);
     ]
    @ tier)
