(** The metrics plane's data model.

    A {!snapshot} is a point-in-time copy of every registered
    {!Obs.Histogram} and {!Obs.Counter}, as plain data.  It is what a
    [metrics] wire op carries: the shard captures and serializes one,
    the router parses N of them, merges (histograms pointwise, counters
    by sum) and renders the cluster-wide aggregate — percentiles of the
    merged histogram are exact, not averages of per-shard percentiles.

    The render target is Prometheus text exposition (histograms as
    cumulative [_bucket{le="…"}] series in {e seconds}, counters as
    [_total], plus caller-supplied gauges and one [defcheck_build_info]
    line).  Empty buckets are elided; the mandatory [+Inf] bucket,
    [_sum] and [_count] always appear. *)

val version : string
(** The build/version string components also reported by [stats]. *)

val build_string : string
(** e.g. ["defcheck/0.8.0 ocaml/5.2.0"]. *)

type snapshot = {
  histograms : (string * Obs.Histogram.snapshot) list;  (** sorted by name *)
  counters : (string * int) list;  (** sorted by name *)
}

val capture : unit -> snapshot
(** Snapshot every registered histogram and counter, zeros included. *)

val empty : snapshot

val merge : snapshot -> snapshot -> snapshot
(** Union by name: histograms merge pointwise, counters add. *)

val to_json : snapshot -> string
(** One JSON object; histogram counts travel sparse
    ([[index, count], …]). *)

val of_json : Json.t -> (snapshot, string) result
val of_string : string -> (snapshot, string) result

val prom_name : string -> string
(** ["cache.hit"] → ["defcheck_cache_hit"] (metric-name charset). *)

val render : ?gauges:(string * float) list -> snapshot -> string
(** Prometheus text exposition of the snapshot. *)

val percentile_us : snapshot -> histogram:string -> float -> float option
(** [percentile_us s ~histogram:"op.decide" 99.] — the merged histogram's
    p99 in µs; [None] when the histogram is absent or empty. *)
